"""Tests for Markdown report generation."""

import math

from repro.analysis.report import (
    experiment_to_markdown,
    markdown_table,
    render_report,
)
from repro.experiments.common import ExperimentResult


class TestMarkdownTable:
    def test_empty(self):
        assert markdown_table([]) == "*(no rows)*"

    def test_structure(self):
        text = markdown_table([{"a": 1, "b": 0.5}])
        lines = text.splitlines()
        assert lines[0] == "| a | b |"
        assert lines[1] == "|---|---|"
        assert lines[2] == "| 1 | 0.500 |"

    def test_column_selection(self):
        text = markdown_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_special_floats(self):
        text = markdown_table([{"x": math.nan, "y": math.inf, "z": None}])
        assert "nan" in text and "inf" in text and "—" in text

    def test_pipe_escaped(self):
        text = markdown_table([{"x": "a|b"}])
        assert "a\\|b" in text


class TestExperimentToMarkdown:
    def make_result(self, **extras):
        return ExperimentResult(
            name="Figure X",
            description="a test figure",
            rows=[{"alpha": 1.0, "eff": 0.5}],
            extras=extras,
        )

    def test_section_layout(self):
        text = experiment_to_markdown(self.make_result())
        assert text.startswith("## Figure X")
        assert "a test figure" in text
        assert "| alpha | eff |" in text

    def test_scalar_extras_listed(self):
        text = experiment_to_markdown(self.make_result(disk_chunks=128))
        assert "**disk_chunks**: 128" in text

    def test_row_list_extras_summarized(self):
        text = experiment_to_markdown(
            self.make_result(per_server=[{"s": 1}, {"s": 2}])
        )
        assert "2 rows (omitted)" in text
        assert "{'s': 1}" not in text


class TestRenderReport:
    def test_full_document(self):
        results = [
            ExperimentResult("A", "first", [{"x": 1}]),
            ExperimentResult("B", "second", [{"y": 2}]),
        ]
        text = render_report(results, title="T", preamble="P")
        assert text.startswith("# T")
        assert "P" in text
        assert "## A" in text and "## B" in text


class TestCliMarkdownFlag:
    def test_writes_report_file(self, tmp_path, capsys, monkeypatch):
        from repro.cli import main_experiment

        monkeypatch.setenv("REPRO_SCALE", "quick")
        out = tmp_path / "report.md"
        code = main_experiment(["fig5", "--markdown", str(out)])
        assert code == 0
        content = out.read_text()
        assert content.startswith("# Reproduction report")
        assert "Figure 5" in content
