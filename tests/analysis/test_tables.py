"""Tests for text-table formatting."""

import pytest

from repro.analysis.tables import format_series, format_table


class TestFormatTable:
    def test_empty(self):
        assert "(no rows)" in format_table([])

    def test_title_and_header(self):
        text = format_table([{"a": 1, "b": 2.5}], title="T")
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "2.500" in text

    def test_column_selection_and_order(self):
        text = format_table([{"a": 1, "b": 2, "c": 3}], columns=["c", "a"])
        header = text.splitlines()[0]
        assert header.index("c") < header.index("a")
        assert "b" not in header

    def test_missing_cells_dash(self):
        text = format_table([{"a": 1}, {"a": 2, "b": 3}], columns=["a", "b"])
        assert "-" in text.splitlines()[2]

    def test_nan_rendering(self):
        text = format_table([{"x": float("nan")}])
        assert "nan" in text

    def test_floatfmt(self):
        text = format_table([{"x": 0.123456}], floatfmt=".1f")
        assert "0.1" in text and "0.12" not in text

    def test_alignment(self):
        text = format_table([{"name": "a", "v": 1}, {"name": "longer", "v": 2}])
        lines = text.splitlines()
        assert len(lines[2]) <= len(lines[1]) + 2
        # all rows align on the second column
        assert lines[2].rstrip().endswith("1")
        assert lines[3].rstrip().endswith("2")


class TestFormatSeries:
    def test_renders_in_units(self):
        text = format_series(
            [0.0, 86400.0],
            {"eff": [0.5, 0.6]},
            t_unit=86400.0,
            t_label="day",
        )
        assert "day" in text
        assert "1.000" in text

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError, match="points"):
            format_series([0.0, 1.0], {"x": [1.0]})

    def test_max_rows_downsamples(self):
        times = [float(i) for i in range(100)]
        text = format_series(
            times, {"v": [float(i) for i in range(100)]}, t_unit=1.0, max_rows=10
        )
        body = text.splitlines()[2:]
        assert len(body) <= 11
        assert "0.000" in body[0]  # first kept
        assert "99.000" in body[-1]  # last kept

    def test_multiple_series_columns(self):
        text = format_series(
            [0.0], {"a": [1.0], "b": [2.0]}, t_unit=1.0
        )
        header = text.splitlines()[0]
        assert "a" in header and "b" in header
