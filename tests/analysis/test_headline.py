"""Tests for the derived headline numbers of Section 9."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.analysis.headline import (
    equivalent_disk_factor,
    interpolate_disk_for_efficiency,
    relative_inefficiency_reduction,
)


class TestRelativeInefficiencyReduction:
    def test_paper_numbers(self):
        """xLRU 62% -> Cafe 73%: 'a relative 29% reduction'."""
        assert relative_inefficiency_reduction(0.62, 0.73) == pytest.approx(
            0.289, abs=0.005
        )

    def test_no_change(self):
        assert relative_inefficiency_reduction(0.5, 0.5) == 0.0

    def test_regression_is_negative(self):
        assert relative_inefficiency_reduction(0.7, 0.6) < 0.0

    def test_perfect_source_rejected(self):
        with pytest.raises(ValueError):
            relative_inefficiency_reduction(1.0, 0.9)

    @given(a=st.floats(-0.99, 0.99), b=st.floats(-0.99, 0.99))
    def test_property_sign_matches_improvement(self, a, b):
        r = relative_inefficiency_reduction(a, b)
        # differences below float granularity of (1 - x) can round to 0
        if b > a + 1e-9:
            assert r > 0
        elif b < a - 1e-9:
            assert r < 0


class TestInterpolation:
    DISKS = [100.0, 200.0, 400.0, 800.0]
    EFFS = [0.3, 0.5, 0.65, 0.75]

    def test_exact_points(self):
        for d, e in zip(self.DISKS, self.EFFS):
            assert interpolate_disk_for_efficiency(
                self.DISKS, self.EFFS, e
            ) == pytest.approx(d)

    def test_between_points_log_scale(self):
        d = interpolate_disk_for_efficiency(self.DISKS, self.EFFS, 0.4)
        assert 100.0 < d < 200.0
        # log-space midpoint of [100, 200] at efficiency midpoint 0.4
        assert d == pytest.approx(math.sqrt(100.0 * 200.0))

    def test_below_curve_clamps_to_smallest(self):
        assert interpolate_disk_for_efficiency(self.DISKS, self.EFFS, 0.1) == 100.0

    def test_above_curve_is_inf(self):
        assert interpolate_disk_for_efficiency(self.DISKS, self.EFFS, 0.9) == math.inf

    def test_validation(self):
        with pytest.raises(ValueError):
            interpolate_disk_for_efficiency([1.0], [0.5], 0.5)
        with pytest.raises(ValueError):
            interpolate_disk_for_efficiency([1.0, 2.0], [0.5], 0.5)


class TestEquivalentDiskFactor:
    def test_identical_curves_factor_one(self):
        disks = [100.0, 200.0, 400.0]
        effs = [0.3, 0.5, 0.6]
        factors = equivalent_disk_factor(disks, effs, effs)
        assert factors == pytest.approx([1.0, 1.0, 1.0])

    def test_worse_algorithm_needs_more_disk(self):
        disks = [100.0, 200.0, 400.0, 800.0]
        better = [0.5, 0.6, 0.7, 0.8]
        worse = [0.3, 0.5, 0.6, 0.7]  # shifted one step down
        factors = equivalent_disk_factor(disks, better, worse)
        # matching "better at 100" (0.5) takes the worse curve 200 -> 2x
        assert factors[0] == pytest.approx(2.0)
        assert factors[-1] == math.inf  # 0.8 is beyond the worse curve

    def test_mapping_input(self):
        disks = [100.0, 200.0]
        factors = equivalent_disk_factor(
            disks, {100.0: 0.5, 200.0: 0.6}, {100.0: 0.5, 200.0: 0.6}
        )
        assert factors == pytest.approx([1.0, 1.0])
