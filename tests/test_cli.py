"""Tests for the command-line entry points."""

import pytest

from repro.cli import main_experiment, main_gen, main_sim


class TestGen:
    def test_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        code = main_gen(
            ["--server", "asia", "--days", "1", "--scale", "0.02", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_writes_jsonl_with_stats(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl.gz"
        code = main_gen(
            ["--server", "asia", "--days", "1", "--scale", "0.02", "--stats", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "videos" in captured

    def test_rejects_unknown_server(self, tmp_path):
        with pytest.raises(SystemExit):
            main_gen(["--server", "mars", str(tmp_path / "x.csv")])


class TestSim:
    @pytest.fixture
    def trace_file(self, tmp_path):
        out = tmp_path / "trace.csv"
        main_gen(["--server", "asia", "--days", "2", "--scale", "0.02", str(out)])
        return out

    def test_replays_trace(self, trace_file, capsys):
        code = main_sim(
            [str(trace_file), "--algorithm", "Cafe", "--disk-chunks", "64",
             "--alpha", "2.0"]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "efficiency" in captured
        assert "Cafe" in captured

    def test_series_flag(self, trace_file, capsys):
        code = main_sim(
            [str(trace_file), "--disk-chunks", "64", "--series"]
        )
        assert code == 0
        assert "time series" in capsys.readouterr().out

    def test_offline_algorithm(self, trace_file, capsys):
        code = main_sim(
            [str(trace_file), "--algorithm", "Psychic", "--disk-chunks", "64"]
        )
        assert code == 0

    def test_requires_disk_chunks(self, trace_file):
        with pytest.raises(SystemExit):
            main_sim([str(trace_file)])


class TestExperiment:
    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main_experiment(["fig99"])

    def test_runs_fig4_quick(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        code = main_experiment(["fig4"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Figure 4" in captured
        assert "scale: quick" in captured

    def test_scale_flag_overrides_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        code = main_experiment(["fig5", "--scale", "quick"])
        assert code == 0
        assert "scale: quick" in capsys.readouterr().out


class TestValidate:
    @pytest.fixture
    def trace_file(self, tmp_path):
        from repro.cli import main_gen

        out = tmp_path / "trace.csv"
        main_gen(["--server", "asia", "--days", "1", "--scale", "0.02", str(out)])
        return out

    def test_clean_trace_exits_zero(self, trace_file, capsys):
        from repro.cli import main_validate

        assert main_validate([str(trace_file)]) == 0
        assert "no issues" in capsys.readouterr().out

    def test_dirty_trace_exits_one(self, tmp_path, capsys):
        from repro.cli import main_validate
        from repro.trace.io import write_trace_csv
        from repro.trace.requests import Request

        path = tmp_path / "dirty.csv"
        write_trace_csv(path, [Request(10.0, 1, 0, 9), Request(5.0, 2, 0, 9)])
        assert main_validate([str(path)]) == 1
        assert "time-order" in capsys.readouterr().out

    def test_repair_writes_clean_copy(self, tmp_path, capsys):
        from repro.cli import main_validate
        from repro.trace.io import write_trace_csv
        from repro.trace.requests import Request

        dirty = tmp_path / "dirty.csv"
        fixed = tmp_path / "fixed.csv"
        write_trace_csv(dirty, [Request(10.0, 1, 0, 9), Request(5.0, 2, 0, 9)])
        assert main_validate([str(dirty), "--repair", str(fixed)]) == 0
        assert main_validate([str(fixed)]) == 0
