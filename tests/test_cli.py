"""Tests for the command-line entry points."""

import pytest

from repro.cli import main_experiment, main_gen, main_sim, main_verify


class TestGen:
    def test_writes_csv(self, tmp_path, capsys):
        out = tmp_path / "trace.csv"
        code = main_gen(
            ["--server", "asia", "--days", "1", "--scale", "0.02", str(out)]
        )
        assert code == 0
        assert out.exists()
        assert "wrote" in capsys.readouterr().out

    def test_writes_jsonl_with_stats(self, tmp_path, capsys):
        out = tmp_path / "trace.jsonl.gz"
        code = main_gen(
            ["--server", "asia", "--days", "1", "--scale", "0.02", "--stats", str(out)]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "videos" in captured

    def test_rejects_unknown_server(self, tmp_path):
        with pytest.raises(SystemExit):
            main_gen(["--server", "mars", str(tmp_path / "x.csv")])


class TestSim:
    @pytest.fixture
    def trace_file(self, tmp_path):
        out = tmp_path / "trace.csv"
        main_gen(["--server", "asia", "--days", "2", "--scale", "0.02", str(out)])
        return out

    def test_replays_trace(self, trace_file, capsys):
        code = main_sim(
            [str(trace_file), "--algorithm", "Cafe", "--disk-chunks", "64",
             "--alpha", "2.0"]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "efficiency" in captured
        assert "Cafe" in captured

    def test_series_flag(self, trace_file, capsys):
        code = main_sim(
            [str(trace_file), "--disk-chunks", "64", "--series"]
        )
        assert code == 0
        assert "time series" in capsys.readouterr().out

    def test_offline_algorithm(self, trace_file, capsys):
        code = main_sim(
            [str(trace_file), "--algorithm", "Psychic", "--disk-chunks", "64"]
        )
        assert code == 0

    def test_requires_disk_chunks(self, trace_file):
        with pytest.raises(SystemExit):
            main_sim([str(trace_file)])

    def test_profile_flag(self, trace_file, capsys):
        code = main_sim(
            [str(trace_file), "--disk-chunks", "64", "--profile", "5"]
        )
        assert code == 0
        captured = capsys.readouterr()
        # cProfile table goes to stderr, the normal report to stdout.
        assert "cumulative" in captured.err
        assert "efficiency" in captured.out

    def test_profile_flag_default_n(self, trace_file, capsys):
        code = main_sim([str(trace_file), "--disk-chunks", "64", "--profile"])
        assert code == 0
        assert "cumulative" in capsys.readouterr().err

    def test_fleet_lane(self, trace_file, capsys):
        code = main_sim(
            [str(trace_file), "--algorithm", "Cafe", "--disk-chunks", "64",
             "--fleet-edges", "3"]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "edge00" in captured and "edge02" in captured
        assert "parent" in captured
        assert "origin offload" in captured

    def test_profile_covers_fleet_lane(self, trace_file, capsys):
        code = main_sim(
            [str(trace_file), "--disk-chunks", "64",
             "--fleet-edges", "2", "--profile", "40"]
        )
        assert code == 0
        captured = capsys.readouterr()
        # The profile must attribute time inside the batched fleet
        # replay, not just the single-cache engine.
        assert "_replay_fleet_batched" in captured.err
        assert "efficiency" in captured.out

    def test_fleet_rejects_single_lane_flags(self, trace_file, tmp_path):
        with pytest.raises(SystemExit):
            main_sim(
                [str(trace_file), "--disk-chunks", "64", "--fleet-edges", "2",
                 "--telemetry", str(tmp_path / "t.jsonl")]
            )
        with pytest.raises(SystemExit):
            main_sim(
                [str(trace_file), "--disk-chunks", "64", "--fleet-edges", "0"]
            )


class TestExperiment:
    def test_unknown_figure_rejected(self):
        with pytest.raises(SystemExit):
            main_experiment(["fig99"])

    def test_runs_fig4_quick(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        code = main_experiment(["fig4"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Figure 4" in captured
        assert "scale: quick" in captured

    def test_scale_flag_overrides_env(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "paper")
        code = main_experiment(["fig5", "--scale", "quick"])
        assert code == 0
        assert "scale: quick" in capsys.readouterr().out

    def test_checkpoint_flag_sets_env(self, tmp_path, capsys, monkeypatch):
        import os

        # register the var with monkeypatch so the CLI's mutation is
        # rolled back after the test
        monkeypatch.setenv("REPRO_CHECKPOINT", "sentinel")
        monkeypatch.setenv("REPRO_SCALE", "quick")
        path = tmp_path / "sweep.ckpt"
        code = main_experiment(["fig4", "--checkpoint", str(path)])
        assert code == 0
        assert os.environ["REPRO_CHECKPOINT"] == str(path)

    def test_runs_availability_quick(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        code = main_experiment(["availability"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "Availability" in captured
        assert "eff_faulted" in captured


class TestValidate:
    @pytest.fixture
    def trace_file(self, tmp_path):
        from repro.cli import main_gen

        out = tmp_path / "trace.csv"
        main_gen(["--server", "asia", "--days", "1", "--scale", "0.02", str(out)])
        return out

    def test_clean_trace_exits_zero(self, trace_file, capsys):
        from repro.cli import main_validate

        assert main_validate([str(trace_file)]) == 0
        assert "no issues" in capsys.readouterr().out

    def test_dirty_trace_exits_one(self, tmp_path, capsys):
        from repro.cli import main_validate
        from repro.trace.io import write_trace_csv
        from repro.trace.requests import Request

        path = tmp_path / "dirty.csv"
        write_trace_csv(path, [Request(10.0, 1, 0, 9), Request(5.0, 2, 0, 9)])
        assert main_validate([str(path)]) == 1
        assert "time-order" in capsys.readouterr().out

    def test_repair_writes_clean_copy(self, tmp_path, capsys):
        from repro.cli import main_validate
        from repro.trace.io import write_trace_csv
        from repro.trace.requests import Request

        dirty = tmp_path / "dirty.csv"
        fixed = tmp_path / "fixed.csv"
        write_trace_csv(dirty, [Request(10.0, 1, 0, 9), Request(5.0, 2, 0, 9)])
        assert main_validate([str(dirty), "--repair", str(fixed)]) == 0
        assert main_validate([str(fixed)]) == 0


class TestSimAudit:
    @pytest.fixture
    def trace_file(self, tmp_path):
        out = tmp_path / "trace.csv"
        main_gen(["--server", "asia", "--days", "2", "--scale", "0.02", str(out)])
        return out

    def test_clean_audit_exits_zero(self, trace_file, capsys):
        code = main_sim(
            [str(trace_file), "--algorithm", "xLRU", "--disk-chunks", "64",
             "--audit"]
        )
        assert code == 0
        captured = capsys.readouterr().out
        assert "audit[xLRU]" in captured
        assert "OK" in captured


class TestVerify:
    def test_all_algorithms_match_oracles(self, capsys):
        code = main_verify(["--seeds", "2", "--requests", "120"])
        assert code == 0
        captured = capsys.readouterr().out
        assert "all algorithms match their oracles" in captured
        assert "Cafe" in captured and "xLRU" in captured

    def test_algorithm_subset(self, capsys):
        code = main_verify(
            ["--seeds", "1", "--requests", "80", "--algorithms", "PullLRU"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "PullLRU" in out
        assert "Cafe" not in out.split("differential verification")[-1]

    def test_unknown_algorithm_rejected(self):
        with pytest.raises(SystemExit):
            main_verify(["--algorithms", "NotReal"])

    def test_replay_missing_artifact_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            main_verify(["--replay", str(tmp_path / "nope")])

    def test_fault_fuzz_table_prints(self, capsys):
        code = main_verify(
            ["--seeds", "1", "--requests", "100", "--fault-seeds", "2",
             "--algorithms", "PullLRU"]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fault fuzzing" in out
        assert "restarts" in out

    def test_fault_seeds_zero_disables(self, capsys):
        code = main_verify(
            ["--seeds", "1", "--requests", "80", "--fault-seeds", "0",
             "--algorithms", "PullLRU"]
        )
        assert code == 0
        assert "fault fuzzing" not in capsys.readouterr().out

    def test_replay_roundtrip(self, tmp_path, capsys):
        from repro.verify.differential import dump_counterexample
        from repro.verify.fuzz import FuzzScenario
        from repro.verify.differential import DifferentialResult

        scenario = FuzzScenario(
            seed=5, num_requests=40, disk_chunks=4, chunk_bytes=1024,
            alpha_f2r=1.0,
        )
        result = DifferentialResult(algorithm="PullLRU", num_requests=40)
        path = dump_counterexample(
            str(tmp_path), "PullLRU", scenario, result, scenario.trace()
        )
        # artifact replays clean against the (correct) current sources
        code = main_verify(["--replay", path])
        assert code == 0
        assert "no longer reproduces" in capsys.readouterr().out
