"""Tests for the invariant-auditing cache wrapper."""

import pytest

from repro.core.base import (
    REDIRECT,
    SERVE_HIT,
    CacheResponse,
    Decision,
    VideoCache,
)
from repro.core.cafe import CafeCache
from repro.sim.engine import replay
from repro.trace.requests import Request
from repro.verify.audit import AuditedCache, InvariantViolation
from repro.verify.fuzz import adversarial_trace

K = 1024


def req(t, video, c0, c1=None):
    c1 = c0 if c1 is None else c1
    return Request(t, video, c0 * K, (c1 + 1) * K - 1)


class FakeCache(VideoCache):
    """Minimal dict-backed LRU-ish cache with injectable misbehaviours.

    ``bug`` selects one deliberate violation: ``capacity`` (never
    evicts), ``serve-incomplete`` (claims SERVE without storing),
    ``fill-lie`` (over-reports ``filled_chunks``), ``evict-lie``
    (over-reports ``evicted_chunks``), ``redirect-impure`` (mutates
    state on REDIRECT).
    """

    name = "fake"

    def __init__(self, disk_chunks=4, chunk_bytes=K, bug=None):
        super().__init__(disk_chunks, chunk_bytes)
        self._store = {}
        self.bug = bug

    def handle(self, request):
        chunks = list(request.chunk_ids(self.chunk_bytes))
        if self.bug == "redirect-impure":
            self._store[chunks[0]] = True
            return REDIRECT
        if len(chunks) > self.disk_chunks:
            return REDIRECT
        missing = [c for c in chunks if c not in self._store]
        if not missing:
            return SERVE_HIT
        evicted = 0
        if self.bug != "capacity":
            while len(self._store) + len(missing) > self.disk_chunks:
                del self._store[next(iter(self._store))]
                evicted += 1
        if self.bug != "serve-incomplete":
            for chunk in missing:
                self._store[chunk] = True
        filled = len(missing) + (1 if self.bug == "fill-lie" else 0)
        evicted += 1 if self.bug == "evict-lie" else 0
        return CacheResponse(
            Decision.SERVE, filled_chunks=filled, evicted_chunks=evicted
        )

    def __contains__(self, chunk):
        return chunk in self._store

    def __len__(self):
        return len(self._store)


class TestCleanCachePasses:
    def test_correct_cache_has_no_violations(self):
        audited = AuditedCache(FakeCache(disk_chunks=2))
        for i in range(20):
            audited.handle(req(float(i), i % 5, 0))
        assert audited.ok
        assert audited.requests_audited == 20
        assert "OK" in audited.summary()

    def test_real_cache_on_fuzz_trace(self):
        audited = AuditedCache(CafeCache(8, chunk_bytes=K))
        for request in adversarial_trace(
            seed=2, num_requests=400, disk_chunks=8, chunk_bytes=K
        ):
            audited.handle(request)
        assert audited.ok

    def test_drops_into_replay_engine(self):
        audited = AuditedCache(CafeCache(8, chunk_bytes=K))
        trace = adversarial_trace(seed=4, num_requests=200, chunk_bytes=K)
        result = replay(audited, trace)
        assert result.totals.num_requests == 200
        assert audited.ok


class TestPlantedViolationsCaught:
    @pytest.mark.parametrize(
        "bug,invariant",
        [
            ("capacity", "capacity"),
            ("serve-incomplete", "serve-completeness"),
            ("fill-lie", "fill-accounting"),
            ("evict-lie", "eviction-accounting"),
            ("redirect-impure", "redirect-purity"),
        ],
    )
    def test_bug_flagged(self, bug, invariant):
        audited = AuditedCache(FakeCache(disk_chunks=2, bug=bug), strict=False)
        for i in range(10):
            audited.handle(req(float(i), i, 0, 1))
        assert not audited.ok
        assert invariant in {v.invariant for v in audited.violations}

    def test_time_regression_flagged(self):
        audited = AuditedCache(FakeCache(), strict=False)
        audited.handle(req(10.0, 1, 0))
        audited.handle(req(3.0, 2, 0))
        assert {v.invariant for v in audited.violations} == {"time-order"}

    def test_strict_mode_raises(self):
        audited = AuditedCache(FakeCache(disk_chunks=1, bug="fill-lie"))
        with pytest.raises(InvariantViolation, match="fill-accounting"):
            audited.handle(req(0.0, 1, 0))

    def test_violation_records_context(self):
        audited = AuditedCache(FakeCache(bug="fill-lie"), strict=False)
        request = req(0.0, 7, 0)
        audited.handle(request)
        violation = audited.violations[0]
        assert violation.index == 0
        assert violation.request == request
        assert "fill-accounting" in str(violation)


class TestWipeAudit:
    def test_clean_wipe_passes(self):
        inner = FakeCache(disk_chunks=4)
        audited = AuditedCache(inner, strict=False)
        audited.handle(req(0.0, 1, 0, 1))
        inner._store.clear()  # a proper cold restart empties the cache
        audited.note_wipe()
        assert audited.wipes == 1
        assert audited.ok

    def test_dirty_wipe_flagged(self):
        audited = AuditedCache(FakeCache(disk_chunks=4), strict=False)
        audited.handle(req(0.0, 1, 0, 1))
        audited.note_wipe()  # chunks still on disk: not a cold restart
        assert not audited.ok
        violation = audited.violations[0]
        assert violation.invariant == "wipe-emptiness"
        assert violation.request is None  # lifecycle violation, no request

    def test_dirty_wipe_strict_raises(self):
        audited = AuditedCache(FakeCache(disk_chunks=4))
        audited.handle(req(0.0, 1, 0))
        with pytest.raises(InvariantViolation, match="wipe-emptiness"):
            audited.note_wipe()

    def test_auditing_continues_after_wipe(self):
        inner = FakeCache(disk_chunks=2)
        audited = AuditedCache(inner, strict=False)
        audited.handle(req(0.0, 1, 0, 1))
        inner._store.clear()
        audited.note_wipe()
        # Post-wipe fills are still audited against capacity and the
        # fill/eviction accounting laws.
        audited.handle(req(1.0, 2, 0, 1))
        assert audited.ok
        assert audited.requests_audited == 2


class TestDelegation:
    def test_cache_interface_passthrough(self):
        inner = FakeCache(disk_chunks=4)
        audited = AuditedCache(inner)
        audited.handle(req(0.0, 1, 0, 1))
        assert len(audited) == len(inner) == 2
        assert (1, 0) in audited
        assert audited.name == "audited:fake"
        assert "fake" in audited.describe()
        assert audited.disk_chunks == inner.disk_chunks
