"""Tests for the differential replay harness itself.

The harness's power comes from catching bugs, so the core test plants
a deliberate bug behind the production interface and checks the full
path: divergence detection, delta-debug shrinking to a minimal trace,
artifact dump, and replay.
"""

import pytest

from repro.core.base import REDIRECT, VideoCache
from repro.sim.runner import build_cache
from repro.trace.requests import Request
from repro.verify.differential import (
    diff_replay,
    dump_counterexample,
    load_counterexample,
    replay_counterexample,
    shrink_trace,
    verify_algorithm,
)
from repro.verify.fuzz import FuzzScenario, adversarial_trace
from repro.verify.oracles import ORACLE_FACTORIES, build_oracle

K = 1024


class EveryNthRedirect(VideoCache):
    """Planted bug: behaves like ``inner`` except every ``n``-th request
    is redirected unconditionally."""

    def __init__(self, inner: VideoCache, n: int) -> None:
        super().__init__(inner.disk_chunks, inner.chunk_bytes, inner.cost_model)
        self.name = inner.name
        self._inner = inner
        self._n = n
        self._count = 0

    def handle(self, request: Request):
        self._count += 1
        if self._count % self._n == 0:
            return REDIRECT
        return self._inner.handle(request)

    def __contains__(self, chunk):
        return chunk in self._inner

    def __len__(self):
        return len(self._inner)


def buggy_factory(n):
    def build(algorithm, disk_chunks, **kwargs):
        return EveryNthRedirect(build_cache(algorithm, disk_chunks, **kwargs), n)

    return build


SCENARIO = FuzzScenario(
    seed=1, num_requests=150, disk_chunks=8, chunk_bytes=K, alpha_f2r=1.0
)


class TestDiffReplay:
    @pytest.mark.parametrize("name", sorted(ORACLE_FACTORIES))
    def test_fast_matches_oracle(self, name):
        result, minimal = verify_algorithm(name, SCENARIO)
        assert result.ok, result.divergence or result.violations
        assert minimal is None

    def test_trace_must_be_time_ordered(self):
        fast = build_cache("PullLRU", 4, chunk_bytes=K)
        oracle = build_oracle("PullLRU", 4, chunk_bytes=K)
        trace = [Request(5.0, 1, 0, K - 1), Request(1.0, 1, 0, K - 1)]
        with pytest.raises(ValueError, match="time-ordered"):
            diff_replay(fast, oracle, trace)


class TestPlantedBugCaught:
    def test_divergence_located_and_shrunk(self, tmp_path):
        # PullLRU always serves, so a forced redirect at request #37
        # diverges there and nowhere earlier: the minimal trace is any
        # 37 requests, no fewer.
        result, minimal = verify_algorithm(
            "PullLRU", SCENARIO, build_fast=buggy_factory(37)
        )
        assert not result.ok
        assert minimal is not None
        assert len(minimal) == 37
        assert result.divergence is not None
        assert result.divergence.index == 36
        assert result.divergence.fast[0] != result.divergence.oracle[0]

        # dump -> load -> replay roundtrip (replay uses the *production*
        # registry, which has no bug, so the artifact no longer fails)
        path = dump_counterexample(
            str(tmp_path), "PullLRU", SCENARIO, result, minimal
        )
        meta, trace = load_counterexample(path)
        assert meta["algorithm"] == "PullLRU"
        assert meta["divergence"] is not None
        assert len(trace) == 37
        assert replay_counterexample(path).ok

    def test_no_shrink_mode(self):
        result, minimal = verify_algorithm(
            "PullLRU", SCENARIO, build_fast=buggy_factory(37), shrink=False
        )
        assert not result.ok
        assert minimal is None


class TestShrinkTrace:
    def test_shrinks_to_single_trigger(self):
        trace = adversarial_trace(seed=6, num_requests=200)
        poison = trace[123]

        def still_fails(candidate):
            return poison in candidate

        minimal = shrink_trace(trace, still_fails)
        assert minimal == [poison]

    def test_respects_probe_budget(self):
        trace = adversarial_trace(seed=6, num_requests=200)
        calls = []

        def still_fails(candidate):
            calls.append(1)
            return trace[50] in candidate

        shrink_trace(trace, still_fails, max_probes=10)
        assert len(calls) <= 10
