"""Tests for the fault-schedule fuzzing harness."""

import pytest

from repro.verify.faultcheck import (
    DEFAULT_ALGORITHMS,
    FaultCheckResult,
    FaultScenario,
    fault_scenarios,
    run_fault_fuzz,
    run_fault_scenario,
)


class TestScenarioMatrix:
    def test_matrix_shape(self):
        scenarios = list(fault_scenarios(seeds=6))
        assert len(scenarios) == 6 * len(DEFAULT_ALGORITHMS)
        # topology sizes cycle 1 -> 2 -> 3 across the seed axis
        sizes = [s.num_servers for s in scenarios[:6]]
        assert sizes == [1, 2, 3, 1, 2, 3]
        assert {s.algorithm for s in scenarios} == set(DEFAULT_ALGORITHMS)

    def test_seeds_are_distinct_per_algorithm(self):
        scenarios = list(fault_scenarios(seeds=4, algorithms=("xLRU",)))
        assert len({s.seed for s in scenarios}) == 4

    def test_invalid_server_count_rejected(self):
        with pytest.raises(ValueError, match="num_servers"):
            FaultScenario(seed=1, num_servers=4, algorithm="xLRU")

    def test_label_names_the_case(self):
        scenario = FaultScenario(seed=7, num_servers=2, algorithm="Cafe")
        assert scenario.label == "Cafe/servers=2/seed=7"


class TestScenarioChecks:
    @pytest.mark.parametrize("num_servers", [1, 2, 3])
    def test_scenarios_pass_on_all_topology_sizes(self, num_servers):
        scenario = FaultScenario(
            seed=4001,
            num_servers=num_servers,
            algorithm="Cafe",
            num_requests=200,
        )
        outcome = run_fault_scenario(scenario)
        assert outcome.ok, (outcome.issues, outcome.violations)

    def test_faults_actually_fire(self):
        # At least one scenario in a short sweep must exercise restarts,
        # otherwise the harness silently tests nothing.
        outcomes = [
            run_fault_scenario(
                FaultScenario(
                    seed=4000 + i,
                    num_servers=(i % 3) + 1,
                    algorithm="PullLRU",
                    num_requests=200,
                )
            )
            for i in range(4)
        ]
        assert all(o.ok for o in outcomes)
        assert sum(o.restarts for o in outcomes) > 0

    def test_result_ok_reflects_issues(self):
        result = FaultCheckResult(
            FaultScenario(seed=1, num_servers=1, algorithm="xLRU")
        )
        assert result.ok
        result.issues.append("boom")
        assert not result.ok


class TestFuzzEntryPoint:
    def test_small_fuzz_run_is_green(self):
        outcomes = run_fault_fuzz(
            seeds=2, algorithms=("xLRU",), num_requests=150
        )
        assert len(outcomes) == 2
        assert all(o.ok for o in outcomes)
