"""Behavioural sanity for the reference oracles.

Exactness against the fast implementations is the differential
harness's job (``test_differential.py``); these tests pin the oracles'
own contracts so a broken oracle can't silently "agree" with a broken
fast cache.
"""

import pytest

from repro.core.base import Decision
from repro.sim.runner import CACHE_FACTORIES, build_cache
from repro.trace.requests import Request
from repro.verify.audit import AuditedCache
from repro.verify.fuzz import adversarial_trace
from repro.verify.oracles import ORACLE_FACTORIES, build_oracle

K = 1024


def req(t, video, c0, c1=None):
    c1 = c0 if c1 is None else c1
    return Request(t, video, c0 * K, (c1 + 1) * K - 1)


class TestRegistryCoverage:
    def test_every_online_algorithm_has_an_oracle(self):
        online = {
            name
            for name in CACHE_FACTORIES
            if not build_cache(name, 4).offline
        }
        assert online == set(ORACLE_FACTORIES)

    def test_build_oracle_rejects_unknown(self):
        with pytest.raises(ValueError, match="no oracle"):
            build_oracle("NotAnAlgorithm", 8)

    @pytest.mark.parametrize("name", sorted(ORACLE_FACTORIES))
    def test_shapes_match_fast_side(self, name):
        oracle = build_oracle(name, 8, chunk_bytes=K)
        fast = build_cache(name, 8, chunk_bytes=K)
        assert oracle.name == f"oracle:{fast.name}"
        assert oracle.disk_chunks == fast.disk_chunks
        assert oracle.chunk_bytes == fast.chunk_bytes
        assert oracle.cost_model.alpha_f2r == fast.cost_model.alpha_f2r

    @pytest.mark.parametrize("name", ["Cafe", "LFU", "LRU-K", "GDS"])
    def test_treap_seed_accepted_for_signature_parity(self, name):
        # the fast side takes a treap_seed; the oracle must swallow the
        # same kwargs so one scenario spec can build both lanes
        build_oracle(name, 8, chunk_bytes=K, treap_seed=99)

    def test_housekeeping_knobs_accepted(self):
        # the scenario matrix shrinks these to force the cleanup paths
        build_oracle("xLRU", 8, chunk_bytes=K, tracker_cleanup_interval=97)
        build_oracle("LFU", 8, chunk_bytes=K, aging_interval=89)


class TestOracleContracts:
    @pytest.mark.parametrize("name", sorted(ORACLE_FACTORIES))
    def test_invariants_hold_on_fuzz_trace(self, name):
        """Each oracle survives its own audit on an adversarial trace."""
        audited = AuditedCache(
            build_oracle(name, 4, chunk_bytes=K), strict=True
        )
        for request in adversarial_trace(
            seed=17, num_requests=300, disk_chunks=4, chunk_bytes=K
        ):
            audited.handle(request)
        assert audited.ok

    @pytest.mark.parametrize("name", sorted(ORACLE_FACTORIES))
    def test_oversized_request_redirected_untouched(self, name):
        oracle = build_oracle(name, 2, chunk_bytes=K)
        before = len(oracle)
        response = oracle.handle(req(0.0, 1, 0, 5))  # 6 chunks > 2 disk
        assert response.decision is Decision.REDIRECT
        assert response.filled_chunks == 0
        assert len(oracle) == before

    def test_pull_lru_serves_and_hits(self):
        oracle = build_oracle("PullLRU", 4, chunk_bytes=K)
        first = oracle.handle(req(0.0, 1, 0))
        again = oracle.handle(req(1.0, 1, 0))
        assert first.decision is Decision.SERVE and first.filled_chunks == 1
        assert again.decision is Decision.SERVE and again.filled_chunks == 0

    def test_xlru_redirects_first_seen(self):
        oracle = build_oracle("xLRU", 4, chunk_bytes=K)
        assert oracle.handle(req(0.0, 1, 0)).decision is Decision.REDIRECT
        assert oracle.handle(req(1.0, 1, 0)).decision is Decision.SERVE
