"""Tests for the adversarial fuzz trace generator."""

from repro.trace.requests import Request
from repro.verify.fuzz import (
    TIME_STEP,
    FuzzScenario,
    adversarial_trace,
    scenario_matrix,
)


class TestAdversarialTrace:
    def test_deterministic_per_seed(self):
        assert adversarial_trace(seed=7) == adversarial_trace(seed=7)
        assert adversarial_trace(seed=7) != adversarial_trace(seed=8)

    def test_time_ordered(self):
        trace = adversarial_trace(seed=3, num_requests=500)
        for a, b in zip(trace, trace[1:]):
            assert a.t <= b.t

    def test_timestamps_are_dyadic(self):
        """All stamps are multiples of TIME_STEP, so EWMA math is exact."""
        for request in adversarial_trace(seed=11, num_requests=400):
            steps = request.t / TIME_STEP
            assert steps == int(steps)

    def test_contains_ties(self):
        trace = adversarial_trace(seed=5, num_requests=500)
        assert any(a.t == b.t for a, b in zip(trace, trace[1:]))

    def test_contains_oversized_requests(self):
        disk, k = 8, 1024
        trace = adversarial_trace(
            seed=9, num_requests=500, disk_chunks=disk, chunk_bytes=k
        )
        assert any(r.num_chunks(k) > disk for r in trace)

    def test_ranges_valid(self):
        for request in adversarial_trace(seed=13, num_requests=500):
            assert 0 <= request.b0 <= request.b1

    def test_requested_length(self):
        assert len(adversarial_trace(seed=1, num_requests=123)) == 123


class TestScenarioMatrix:
    def test_count_and_uniqueness(self):
        scenarios = list(scenario_matrix(seeds=20))
        assert len(scenarios) == 20
        assert len({s.label for s in scenarios}) == 20

    def test_covers_degenerate_corners(self):
        scenarios = list(scenario_matrix(seeds=20))
        assert any(s.disk_chunks == 1 for s in scenarios)
        assert any(s.chunk_bytes == 1000 for s in scenarios)
        assert any(s.alpha_f2r == 0.5 for s in scenarios)
        assert any(s.alpha_f2r == 4.0 for s in scenarios)

    def test_housekeeping_stressed_on_half(self):
        scenarios = list(scenario_matrix(seeds=4))
        stressed = [s for s in scenarios if s.cache_kwargs]
        assert len(stressed) == 2
        assert all("xLRU" in s.cache_kwargs for s in stressed)

    def test_scenario_trace_roundtrip(self):
        scenario = FuzzScenario(
            seed=42, num_requests=50, disk_chunks=4, chunk_bytes=1000,
            alpha_f2r=2.0,
        )
        trace = scenario.trace()
        assert len(trace) == 50
        assert trace == scenario.trace()  # regenerable from the knobs
        assert all(isinstance(r, Request) for r in trace)


class TestCafeExplainProperty:
    def test_explain_predicts_handle_on_fuzz_traces(self):
        """Property (on seeded adversarial traces): ``explain(r)`` names
        exactly the decision ``handle(r)`` then takes."""
        from repro.core.cafe import CafeCache
        from repro.core.costs import CostModel

        for seed in range(6):
            for alpha in (0.5, 1.0, 4.0):
                cache = CafeCache(
                    8, chunk_bytes=1024, cost_model=CostModel(alpha)
                )
                trace = adversarial_trace(
                    seed=seed, num_requests=250, disk_chunks=8,
                    chunk_bytes=1024,
                )
                for index, request in enumerate(trace):
                    explanation = cache.explain(request)
                    response = cache.handle(request)
                    assert explanation.decision is response.decision, (
                        f"seed={seed} alpha={alpha} request #{index}: "
                        f"explain said {explanation.decision}, handle did "
                        f"{response.decision}"
                    )
