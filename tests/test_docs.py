"""Docs-consistency tests: the narrative must match the repository.

DESIGN.md, EXPERIMENTS.md and README.md reference modules, bench files
and experiment names; these tests keep those references from rotting.
"""

import re
from pathlib import Path

import pytest

ROOT = Path(__file__).resolve().parent.parent


def read(name: str) -> str:
    return (ROOT / name).read_text()


class TestRequiredDocsExist:
    @pytest.mark.parametrize(
        "name",
        ["README.md", "DESIGN.md", "EXPERIMENTS.md",
         "docs/ALGORITHMS.md", "docs/WORKLOAD.md"],
    )
    def test_present_and_substantial(self, name):
        path = ROOT / name
        assert path.exists(), name
        assert len(path.read_text()) > 1000, f"{name} is suspiciously thin"


class TestBenchReferencesResolve:
    def test_design_bench_files_exist(self):
        text = read("DESIGN.md")
        for match in re.findall(r"benchmarks/(test_\w+\.py)", text):
            assert (ROOT / "benchmarks" / match).exists(), match

    def test_experiments_bench_files_exist(self):
        text = read("EXPERIMENTS.md")
        for match in re.findall(r"`(test_\w+)\.py`", text):
            assert (ROOT / "benchmarks" / f"{match}.py").exists() or (
                ROOT / "tests" / "cdn" / f"{match}.py"
            ).exists(), match

    def test_readme_bench_table_rows_exist(self):
        text = read("README.md")
        for match in re.findall(r"\| `(test_\w+?)(?:_\*)?` \|", text):
            candidates = list((ROOT / "benchmarks").glob(f"{match}*.py"))
            assert candidates, match


class TestModuleReferencesResolve:
    @pytest.mark.parametrize("doc", ["README.md", "DESIGN.md", "docs/ALGORITHMS.md"])
    def test_module_paths_import(self, doc):
        text = read(doc)
        for dotted in set(re.findall(r"`(repro\.[a-z_.]+)`", text)):
            module_path = dotted.replace(".", "/")
            candidates = [
                ROOT / "src" / f"{module_path}.py",
                ROOT / "src" / module_path / "__init__.py",
            ]
            # attribute references like repro.core.cafe.DecisionExplanation
            parent = dotted.rsplit(".", 1)[0].replace(".", "/")
            candidates += [
                ROOT / "src" / f"{parent}.py",
                ROOT / "src" / parent / "__init__.py",
            ]
            assert any(c.exists() for c in candidates), dotted


class TestExperimentRegistryMatchesCli:
    def test_cli_help_lists_every_experiment(self):
        from repro.experiments import ALL_FIGURES

        cli_source = (ROOT / "src" / "repro" / "cli.py").read_text()
        for name in ALL_FIGURES:
            assert name.split("fig")[-1] if name.startswith("fig") else True
        # extension names are spelled out in the CLI help
        for name in ("cdnwide", "proactive", "robustness", "lp_tightness"):
            assert name in cli_source, name

    def test_design_lists_every_paper_figure(self):
        text = read("DESIGN.md")
        for fig in ("Fig. 2(a)", "Fig. 3", "Fig. 4", "Fig. 5", "Fig. 6", "Fig. 7"):
            assert fig in text, fig
