"""Tests for the sweep scheduler: planning, execution, parallelism."""

import os
import time

import pytest

from repro.sim.runner import RunConfig
from repro.sim.schedule import (
    CHECKPOINT_ENV,
    WORKERS_ENV,
    SweepCheckpoint,
    SweepScheduler,
    resolve_workers,
)


def _matrix(algorithms, alphas, disk=64):
    return [
        RunConfig(algo, disk, alpha, label=f"{algo}/a={alpha:g}")
        for algo in algorithms
        for alpha in alphas
    ]


class TestResolveWorkers:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_workers(3) == 3

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers() == 4

    def test_bad_env_value(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(0)


class TestPlanning:
    def test_online_share_one_broadcast_group(self):
        plan = SweepScheduler().plan(_matrix(("xLRU", "Cafe"), (1.0, 2.0)))
        broadcast = [g for g in plan.groups if g.kind == "broadcast"]
        assert len(broadcast) == 1
        assert len(broadcast[0].configs) == 4
        assert plan.num_cells == 4

    def test_offline_cells_are_single_tasks(self):
        plan = SweepScheduler().plan(_matrix(("xLRU", "Psychic"), (1.0, 2.0)))
        singles = [g for g in plan.groups if g.kind == "single"]
        assert len(singles) == 2
        assert all(c.algorithm == "Psychic" for g in singles for c in g.configs)

    def test_alpha_collapse_of_cost_insensitive_cells(self):
        # PullLRU never consults the cost model: one simulation feeds
        # every alpha; xLRU stays one simulation per alpha.
        plan = SweepScheduler().plan(_matrix(("xLRU", "PullLRU"), (0.5, 1.0, 2.0)))
        assert plan.num_cells == 6
        assert plan.num_simulated == 4  # 3 xLRU + 1 PullLRU primary
        assert len(plan.clones) == 2
        assert set(plan.clones.values()) == {"PullLRU/a=0.5"}

    def test_collapse_keeps_distinct_disks_separate(self):
        configs = [
            RunConfig("PullLRU", 32, 1.0, label="d32"),
            RunConfig("PullLRU", 64, 2.0, label="d64"),
        ]
        plan = SweepScheduler().plan(configs)
        assert plan.num_simulated == 2 and not plan.clones

    def test_collapse_can_be_disabled(self):
        plan = SweepScheduler(collapse=False).plan(
            _matrix(("PullLRU",), (1.0, 2.0))
        )
        assert plan.num_simulated == 2 and not plan.clones

    def test_parallel_mode_splits_broadcast_group(self):
        scheduler = SweepScheduler(workers=2, mode="parallel", collapse=False)
        plan = scheduler.plan(_matrix(("xLRU", "Cafe"), (1.0, 2.0)))
        broadcast = [g for g in plan.groups if g.kind == "broadcast"]
        assert len(broadcast) == 2
        assert sorted(len(g.configs) for g in broadcast) == [2, 2]

    def test_cells_mode_is_per_cell(self):
        plan = SweepScheduler(mode="cells").plan(_matrix(("xLRU", "PullLRU"), (1.0, 2.0)))
        assert all(g.kind == "single" and len(g.configs) == 1 for g in plan.groups)
        assert plan.num_simulated == 4 and not plan.clones

    def test_duplicate_keys_rejected(self):
        configs = [RunConfig("xLRU", 64, label="k"), RunConfig("Cafe", 64, label="k")]
        with pytest.raises(ValueError, match="duplicate RunConfig keys"):
            SweepScheduler().plan(configs)

    def test_describe(self):
        plan = SweepScheduler().plan(_matrix(("xLRU", "PullLRU"), (1.0, 2.0)))
        text = plan.describe()
        assert "4 cells" in text and "3 simulations" in text

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            SweepScheduler(mode="warp")


class TestExecution:
    def test_serial_run_keys_in_input_order(self, small_trace):
        configs = _matrix(("Cafe", "xLRU"), (2.0, 1.0))
        results = SweepScheduler(mode="serial").run(configs, small_trace[:300])
        assert list(results) == [c.key for c in configs]

    def test_generator_trace_streams_for_online_plan(self, small_trace):
        trace = small_trace[:300]
        results = SweepScheduler(mode="serial").run(
            [RunConfig("xLRU", 64, 1.0, label="x"), RunConfig("Cafe", 64, 1.0, label="c")],
            iter(trace),
        )
        assert results["x"].num_requests == 300

    def test_clone_results_share_counters_not_cost_model(self, small_trace):
        trace = small_trace[:400]
        configs = _matrix(("PullLRU",), (1.0, 4.0))
        results = SweepScheduler(mode="serial").run(configs, trace)
        a, b = results["PullLRU/a=1"], results["PullLRU/a=4"]
        # identical traffic counters, different cost interpretation
        assert a.totals.num_requests == b.totals.num_requests
        assert a.totals.ingress_bytes == b.totals.ingress_bytes
        assert b.cache.cost_model.alpha_f2r == 4.0
        assert a.totals.efficiency != b.totals.efficiency

    def test_parallel_execution_matches_serial(self, small_trace):
        trace = small_trace[:400]
        configs = _matrix(("xLRU", "Cafe"), (1.0, 2.0))
        serial = SweepScheduler(mode="serial").run(configs, trace)
        par = SweepScheduler(workers=2, mode="parallel").run(configs, trace)
        for key in serial:
            assert serial[key].totals == par[key].totals
            assert serial[key].steady == par[key].steady

    def test_parallel_fallback_warns_and_succeeds(self, small_trace, monkeypatch):
        import repro.sim.schedule as schedule

        class BrokenPool:
            def __init__(self, *a, **k):
                raise OSError("no processes in this sandbox")

        monkeypatch.setattr(schedule, "ProcessPoolExecutor", BrokenPool)
        configs = _matrix(("xLRU", "Cafe"), (1.0,))
        scheduler = SweepScheduler(workers=2, mode="parallel", collapse=False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            results = scheduler.run(configs, small_trace[:200])
        assert len(results) == 2
        assert scheduler.last_report.mode == "parallel"  # requested mode kept
        assert scheduler.last_report.workers == 1  # but executed in-process

    def test_unpicklable_primary_degrades_to_dedicated_replay(
        self, small_trace, monkeypatch
    ):
        from repro.core.baselines import PullThroughLruCache
        from repro.sim.runner import CACHE_FACTORIES

        class UnpicklablePullLRU(PullThroughLruCache):
            def __getstate__(self):
                raise TypeError("live file handle cannot be pickled")

        monkeypatch.setitem(
            CACHE_FACTORIES, "UnpicklablePullLRU", UnpicklablePullLRU
        )
        trace = small_trace[:300]
        configs = [
            RunConfig("UnpicklablePullLRU", 64, a, label=f"u/{a:g}")
            for a in (1.0, 2.0)
        ]
        with pytest.warns(RuntimeWarning, match="not picklable"):
            results = SweepScheduler(mode="serial").run(configs, trace)
        reference = SweepScheduler(mode="serial", collapse=False).run(
            configs, trace
        )
        # Dedicated replay of the clone is exact: same counters as a
        # collapse-free run of the same cell.
        assert results["u/2"].totals == reference["u/2"].totals

    def test_unpicklable_primary_with_spent_generator_raises(
        self, small_trace, monkeypatch
    ):
        from repro.core.baselines import PullThroughLruCache
        from repro.sim.runner import CACHE_FACTORIES

        class UnpicklablePullLRU(PullThroughLruCache):
            def __getstate__(self):
                raise TypeError("live file handle cannot be pickled")

        monkeypatch.setitem(
            CACHE_FACTORIES, "UnpicklablePullLRU", UnpicklablePullLRU
        )
        configs = [
            RunConfig("UnpicklablePullLRU", 64, a, label=f"u/{a:g}")
            for a in (1.0, 2.0)
        ]
        # One broadcast group, serial, no checkpoint: the generator is
        # streamed and spent, so the fallback replay is impossible and
        # the failure must be loud, not silent.
        with pytest.warns(RuntimeWarning, match="not picklable"):
            with pytest.raises(RuntimeError, match="one-shot generator"):
                SweepScheduler(mode="serial").run(
                    configs, iter(small_trace[:300])
                )

    def test_last_report_and_result_reports(self, small_trace):
        scheduler = SweepScheduler(mode="serial")
        configs = _matrix(("xLRU", "PullLRU"), (1.0, 2.0))
        results = scheduler.run(configs, small_trace[:300])
        report = scheduler.last_report
        assert report is not None and report.engine == "scheduler"
        assert report.extra["cells"] == 4
        assert report.extra["simulated"] == 3
        assert report.extra["clones"] == 1
        for result in results.values():
            assert result.report is not None
            assert result.report.extra["scheduler_mode"] == "serial"


# --------------------------------------------------------------------------
# Supervised executor & checkpoint tests.
#
# The helpers below are module-level on purpose: the scheduler submits the
# (monkeypatched) ``schedule._execute_group`` to a ProcessPoolExecutor,
# which pickles the callable by qualified name — test-local closures would
# fail to pickle and the crash would fire in the parent process instead of
# a worker.  Paths are plumbed through environment variables, which fork
# workers inherit.  ``_ORIG_EXECUTE_GROUP`` is captured at import time so
# the helpers can delegate to the real implementation even though the
# module attribute is patched while they run.

import repro.sim.schedule as schedule_module

_ORIG_EXECUTE_GROUP = schedule_module._execute_group

_CRASH_MARKER_ENV = "REPRO_TEST_SCHED_CRASH_MARKER"
_RUNS_DIR_ENV = "REPRO_TEST_SCHED_RUNS_DIR"
_DONE_MARKER_ENV = "REPRO_TEST_SCHED_DONE_MARKER"
_MAIN_PID_ENV = "REPRO_TEST_SCHED_MAIN_PID"


def _crash_once_execute_group(kind, configs, requests, interval, progress, *extra):
    """Die like a SIGKILLed worker the first time group ``x`` runs."""
    marker = os.environ[_CRASH_MARKER_ENV]
    if any(c.key == "x" for c in configs) and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(1)
    return _ORIG_EXECUTE_GROUP(kind, configs, requests, interval, progress, *extra)


def _instrumented_execute_group(kind, configs, requests, interval, progress, *extra):
    """Count executions per group; group ``x`` waits until the parent has
    *harvested* its sibling (signalled via the checkpoint's ``append``,
    which runs in the parent) and then dies like a killed worker."""
    runs_dir = os.environ[_RUNS_DIR_ENV]
    done_marker = os.environ[_DONE_MARKER_ENV]
    crash_marker = os.environ[_CRASH_MARKER_ENV]
    key = configs[0].key
    count = len([n for n in os.listdir(runs_dir) if n.startswith(key + "-")])
    open(os.path.join(runs_dir, f"{key}-{count}-{os.getpid()}"), "w").close()
    if key == "x" and not os.path.exists(crash_marker):
        open(crash_marker, "w").close()
        deadline = time.monotonic() + 30.0
        while not os.path.exists(done_marker):  # pragma: no branch
            if time.monotonic() > deadline:  # pragma: no cover
                break  # don't hang the suite; crash anyway
            time.sleep(0.01)
        os._exit(1)
    return _ORIG_EXECUTE_GROUP(kind, configs, requests, interval, progress, *extra)


class _SignalingCheckpoint(SweepCheckpoint):
    """Checkpoint whose parent-side ``append`` drops a marker file when
    the ``c`` group is recorded — proof the future was harvested."""

    def append(self, fingerprint, group_id, results):
        super().append(fingerprint, group_id, results)
        if "c" in results:
            open(os.environ[_DONE_MARKER_ENV], "w").close()


def _sleepy_execute_group(kind, configs, requests, interval, progress, *extra):
    """Hang forever — but only inside a pool worker, never the parent."""
    main_pid = int(os.environ[_MAIN_PID_ENV])
    if any(c.key == "x" for c in configs) and os.getpid() != main_pid:
        time.sleep(60.0)
    return _ORIG_EXECUTE_GROUP(kind, configs, requests, interval, progress, *extra)


class TestSupervisedExecutor:
    def _configs(self):
        return [
            RunConfig("xLRU", 64, 1.0, label="x"),
            RunConfig("Cafe", 64, 1.0, label="c"),
        ]

    def test_worker_killed_mid_group_is_retried(
        self, small_trace, monkeypatch, tmp_path
    ):
        trace = small_trace[:300]
        monkeypatch.setenv(_CRASH_MARKER_ENV, str(tmp_path / "crashed"))
        monkeypatch.setattr(
            schedule_module, "_execute_group", _crash_once_execute_group
        )
        scheduler = SweepScheduler(
            workers=2, mode="parallel", collapse=False, backoff_seconds=0.01
        )
        results = scheduler.run(self._configs(), trace)
        serial = SweepScheduler(mode="serial", collapse=False).run(
            self._configs(), trace
        )
        for key in serial:
            assert serial[key].totals == results[key].totals
        assert scheduler.last_report.extra["group_retries"] >= 1
        kinds = {e.kind for e in scheduler.last_report.events}
        assert "group-crash" in kinds and "retry-backoff" in kinds

    def test_completed_groups_salvaged_not_rerun(
        self, small_trace, monkeypatch, tmp_path
    ):
        trace = small_trace[:300]
        runs_dir = tmp_path / "runs"
        runs_dir.mkdir()
        monkeypatch.setenv(_RUNS_DIR_ENV, str(runs_dir))
        monkeypatch.setenv(_DONE_MARKER_ENV, str(tmp_path / "c-done"))
        monkeypatch.setenv(_CRASH_MARKER_ENV, str(tmp_path / "crashed"))
        monkeypatch.setattr(
            schedule_module, "_execute_group", _instrumented_execute_group
        )
        scheduler = SweepScheduler(
            workers=2, mode="parallel", collapse=False, backoff_seconds=0.01,
            checkpoint=_SignalingCheckpoint(tmp_path / "salvage.ckpt"),
        )
        results = scheduler.run(self._configs(), trace)
        assert set(results) == {"x", "c"}
        # The crashed group ran twice; the salvaged sibling exactly once.
        runs = sorted(p.name for p in runs_dir.iterdir())
        assert len([n for n in runs if n.startswith("x-")]) == 2
        assert len([n for n in runs if n.startswith("c-")]) == 1
        assert scheduler.last_report.extra["group_retries"] >= 1

    def test_group_timeout_triggers_fallback(self, small_trace, monkeypatch):
        trace = small_trace[:200]
        monkeypatch.setenv(_MAIN_PID_ENV, str(os.getpid()))
        monkeypatch.setattr(
            schedule_module, "_execute_group", _sleepy_execute_group
        )
        scheduler = SweepScheduler(
            workers=2, mode="parallel", collapse=False,
            max_retries=0, group_timeout=1.0,
        )
        t0 = time.perf_counter()
        with pytest.warns(RuntimeWarning, match="falling back"):
            results = scheduler.run(self._configs(), trace)
        assert time.perf_counter() - t0 < 30.0  # never waited for the hang
        serial = SweepScheduler(mode="serial", collapse=False).run(
            self._configs(), trace
        )
        for key in serial:
            assert serial[key].totals == results[key].totals
        kinds = {e.kind for e in scheduler.last_report.events}
        assert "group-crash" in kinds and "group-fallback" in kinds
        assert scheduler.last_report.extra["fallback_groups"] >= 1

    def test_retry_knob_validation(self):
        with pytest.raises(ValueError, match="max_retries"):
            SweepScheduler(max_retries=-1)
        with pytest.raises(ValueError, match="group_timeout"):
            SweepScheduler(group_timeout=0.0)
        with pytest.raises(ValueError, match="backoff_seconds"):
            SweepScheduler(backoff_seconds=-0.5)


class TestCheckpoint:
    def _configs(self):
        return [
            RunConfig("xLRU", 64, 1.0, label="x"),
            RunConfig("Cafe", 64, 1.0, label="c"),
            RunConfig("Psychic", 64, 1.0, label="p"),
        ]

    def test_checkpoint_written_and_fully_resumed(
        self, small_trace, tmp_path, monkeypatch
    ):
        trace = small_trace[:300]
        path = tmp_path / "sweep.ckpt"
        first = SweepScheduler(mode="serial", checkpoint=path).run(
            self._configs(), trace
        )
        assert path.exists()

        # Resume must touch no simulation code at all (serial mode: the
        # patched callable would run in-process, so a closure is fine).
        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("resume re-executed a completed group")

        monkeypatch.setattr(schedule_module, "_execute_group", boom)
        scheduler = SweepScheduler(mode="serial", checkpoint=path)
        second = scheduler.run(self._configs(), trace)
        for key in first:
            assert first[key].totals == second[key].totals
        assert scheduler.last_report.extra["resumed_groups"] == 2
        assert any(
            e.kind == "checkpoint-resume" for e in scheduler.last_report.events
        )

    def test_killed_sweep_resumes_identically(
        self, small_trace, tmp_path, monkeypatch
    ):
        """The acceptance path: die mid-sweep, resume, match uninterrupted."""
        trace = small_trace[:300]
        path = tmp_path / "sweep.ckpt"
        calls = {"n": 0}

        def dies_after_first_group(kind, configs, requests, interval, progress, *extra):
            calls["n"] += 1
            if calls["n"] > 1:
                raise KeyboardInterrupt  # the process is killed
            return _ORIG_EXECUTE_GROUP(
                kind, configs, requests, interval, progress, *extra
            )

        monkeypatch.setattr(
            schedule_module, "_execute_group", dies_after_first_group
        )
        with pytest.raises(KeyboardInterrupt):
            SweepScheduler(mode="serial", checkpoint=path).run(
                self._configs(), trace
            )
        monkeypatch.setattr(
            schedule_module, "_execute_group", _ORIG_EXECUTE_GROUP
        )

        scheduler = SweepScheduler(mode="serial", checkpoint=path)
        resumed = scheduler.run(self._configs(), trace)
        assert scheduler.last_report.extra["resumed_groups"] == 1
        uninterrupted = SweepScheduler(mode="serial").run(
            self._configs(), trace
        )
        assert list(resumed) == list(uninterrupted)
        for key in uninterrupted:
            assert uninterrupted[key].totals == resumed[key].totals
            assert uninterrupted[key].steady == resumed[key].steady

    def test_worker_sigkill_with_checkpoint_resumes(
        self, small_trace, tmp_path, monkeypatch
    ):
        """SIGKILL of a pool worker: the supervisor retries the dead
        group, the checkpoint keeps both, and a fresh scheduler resumes
        without re-executing anything."""
        trace = small_trace[:300]
        path = tmp_path / "sweep.ckpt"
        monkeypatch.setenv(_CRASH_MARKER_ENV, str(tmp_path / "crashed"))
        monkeypatch.setattr(
            schedule_module, "_execute_group", _crash_once_execute_group
        )
        configs = [
            RunConfig("xLRU", 64, 1.0, label="x"),
            RunConfig("Cafe", 64, 1.0, label="c"),
        ]
        scheduler = SweepScheduler(
            workers=2, mode="parallel", collapse=False,
            checkpoint=path, backoff_seconds=0.01,
        )
        results = scheduler.run(configs, trace)
        serial = SweepScheduler(mode="serial", collapse=False).run(
            configs, trace
        )
        for key in serial:
            assert serial[key].totals == results[key].totals

        def boom(*args, **kwargs):  # pragma: no cover - must not run
            raise AssertionError("resume re-executed a completed group")

        monkeypatch.setattr(schedule_module, "_execute_group", boom)
        again = SweepScheduler(
            workers=2, mode="parallel", collapse=False, checkpoint=path
        ).run(configs, trace)
        for key in serial:
            assert serial[key].totals == again[key].totals

    def test_corrupt_tail_tolerated(self, small_trace, tmp_path):
        trace = small_trace[:300]
        path = tmp_path / "sweep.ckpt"
        SweepScheduler(mode="serial", checkpoint=path).run(
            self._configs(), trace
        )
        with open(path, "ab") as fh:
            fh.write(b"\x80\x05truncated-mid-append")
        scheduler = SweepScheduler(mode="serial", checkpoint=path)
        results = scheduler.run(self._configs(), trace)
        assert scheduler.last_report.extra["resumed_groups"] == 2
        assert len(results) == 3

    def test_stale_fingerprint_ignored(self, small_trace, tmp_path):
        trace = small_trace[:300]
        path = tmp_path / "sweep.ckpt"
        SweepScheduler(mode="serial", checkpoint=path).run(
            self._configs(), trace
        )
        # Different trace -> different fingerprint -> fresh run, not a
        # graft of foreign results.
        other = small_trace[:200]
        scheduler = SweepScheduler(mode="serial", checkpoint=path)
        results = scheduler.run(self._configs(), other)
        assert "resumed_groups" not in scheduler.last_report.extra
        assert results["x"].totals.num_requests == 200

    def test_env_knob_sets_checkpoint(self, tmp_path, monkeypatch):
        path = tmp_path / "env.ckpt"
        monkeypatch.setenv(CHECKPOINT_ENV, str(path))
        scheduler = SweepScheduler()
        assert scheduler.checkpoint is not None
        assert str(scheduler.checkpoint.path) == str(path)
        monkeypatch.delenv(CHECKPOINT_ENV)
        assert SweepScheduler().checkpoint is None

    def test_checkpoint_accepts_instance(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "x.ckpt")
        assert SweepScheduler(checkpoint=ckpt).checkpoint is ckpt

    def test_load_missing_file_is_fresh(self, tmp_path):
        ckpt = SweepCheckpoint(tmp_path / "missing.ckpt")
        assert ckpt.load("whatever") == {}
