"""Tests for the sweep scheduler: planning, execution, parallelism."""

import pytest

from repro.sim.runner import RunConfig
from repro.sim.schedule import (
    WORKERS_ENV,
    SweepScheduler,
    resolve_workers,
)


def _matrix(algorithms, alphas, disk=64):
    return [
        RunConfig(algo, disk, alpha, label=f"{algo}/a={alpha:g}")
        for algo in algorithms
        for alpha in alphas
    ]


class TestResolveWorkers:
    def test_default_is_one(self, monkeypatch):
        monkeypatch.delenv(WORKERS_ENV, raising=False)
        assert resolve_workers() == 1

    def test_explicit_wins(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "8")
        assert resolve_workers(3) == 3

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "4")
        assert resolve_workers() == 4

    def test_bad_env_value(self, monkeypatch):
        monkeypatch.setenv(WORKERS_ENV, "lots")
        with pytest.raises(ValueError, match=WORKERS_ENV):
            resolve_workers()

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError, match="workers"):
            resolve_workers(0)


class TestPlanning:
    def test_online_share_one_broadcast_group(self):
        plan = SweepScheduler().plan(_matrix(("xLRU", "Cafe"), (1.0, 2.0)))
        broadcast = [g for g in plan.groups if g.kind == "broadcast"]
        assert len(broadcast) == 1
        assert len(broadcast[0].configs) == 4
        assert plan.num_cells == 4

    def test_offline_cells_are_single_tasks(self):
        plan = SweepScheduler().plan(_matrix(("xLRU", "Psychic"), (1.0, 2.0)))
        singles = [g for g in plan.groups if g.kind == "single"]
        assert len(singles) == 2
        assert all(c.algorithm == "Psychic" for g in singles for c in g.configs)

    def test_alpha_collapse_of_cost_insensitive_cells(self):
        # PullLRU never consults the cost model: one simulation feeds
        # every alpha; xLRU stays one simulation per alpha.
        plan = SweepScheduler().plan(_matrix(("xLRU", "PullLRU"), (0.5, 1.0, 2.0)))
        assert plan.num_cells == 6
        assert plan.num_simulated == 4  # 3 xLRU + 1 PullLRU primary
        assert len(plan.clones) == 2
        assert set(plan.clones.values()) == {"PullLRU/a=0.5"}

    def test_collapse_keeps_distinct_disks_separate(self):
        configs = [
            RunConfig("PullLRU", 32, 1.0, label="d32"),
            RunConfig("PullLRU", 64, 2.0, label="d64"),
        ]
        plan = SweepScheduler().plan(configs)
        assert plan.num_simulated == 2 and not plan.clones

    def test_collapse_can_be_disabled(self):
        plan = SweepScheduler(collapse=False).plan(
            _matrix(("PullLRU",), (1.0, 2.0))
        )
        assert plan.num_simulated == 2 and not plan.clones

    def test_parallel_mode_splits_broadcast_group(self):
        scheduler = SweepScheduler(workers=2, mode="parallel", collapse=False)
        plan = scheduler.plan(_matrix(("xLRU", "Cafe"), (1.0, 2.0)))
        broadcast = [g for g in plan.groups if g.kind == "broadcast"]
        assert len(broadcast) == 2
        assert sorted(len(g.configs) for g in broadcast) == [2, 2]

    def test_cells_mode_is_per_cell(self):
        plan = SweepScheduler(mode="cells").plan(_matrix(("xLRU", "PullLRU"), (1.0, 2.0)))
        assert all(g.kind == "single" and len(g.configs) == 1 for g in plan.groups)
        assert plan.num_simulated == 4 and not plan.clones

    def test_duplicate_keys_rejected(self):
        configs = [RunConfig("xLRU", 64, label="k"), RunConfig("Cafe", 64, label="k")]
        with pytest.raises(ValueError, match="duplicate RunConfig keys"):
            SweepScheduler().plan(configs)

    def test_describe(self):
        plan = SweepScheduler().plan(_matrix(("xLRU", "PullLRU"), (1.0, 2.0)))
        text = plan.describe()
        assert "4 cells" in text and "3 simulations" in text

    def test_unknown_mode_rejected(self):
        with pytest.raises(ValueError, match="mode"):
            SweepScheduler(mode="warp")


class TestExecution:
    def test_serial_run_keys_in_input_order(self, small_trace):
        configs = _matrix(("Cafe", "xLRU"), (2.0, 1.0))
        results = SweepScheduler(mode="serial").run(configs, small_trace[:300])
        assert list(results) == [c.key for c in configs]

    def test_generator_trace_streams_for_online_plan(self, small_trace):
        trace = small_trace[:300]
        results = SweepScheduler(mode="serial").run(
            [RunConfig("xLRU", 64, 1.0, label="x"), RunConfig("Cafe", 64, 1.0, label="c")],
            iter(trace),
        )
        assert results["x"].num_requests == 300

    def test_clone_results_share_counters_not_cost_model(self, small_trace):
        trace = small_trace[:400]
        configs = _matrix(("PullLRU",), (1.0, 4.0))
        results = SweepScheduler(mode="serial").run(configs, trace)
        a, b = results["PullLRU/a=1"], results["PullLRU/a=4"]
        # identical traffic counters, different cost interpretation
        assert a.totals.num_requests == b.totals.num_requests
        assert a.totals.ingress_bytes == b.totals.ingress_bytes
        assert b.cache.cost_model.alpha_f2r == 4.0
        assert a.totals.efficiency != b.totals.efficiency

    def test_parallel_execution_matches_serial(self, small_trace):
        trace = small_trace[:400]
        configs = _matrix(("xLRU", "Cafe"), (1.0, 2.0))
        serial = SweepScheduler(mode="serial").run(configs, trace)
        par = SweepScheduler(workers=2, mode="parallel").run(configs, trace)
        for key in serial:
            assert serial[key].totals == par[key].totals
            assert serial[key].steady == par[key].steady

    def test_parallel_fallback_warns_and_succeeds(self, small_trace, monkeypatch):
        import repro.sim.schedule as schedule

        class BrokenPool:
            def __init__(self, *a, **k):
                raise OSError("no processes in this sandbox")

        monkeypatch.setattr(schedule, "ProcessPoolExecutor", BrokenPool)
        configs = _matrix(("xLRU", "Cafe"), (1.0,))
        scheduler = SweepScheduler(workers=2, mode="parallel", collapse=False)
        with pytest.warns(RuntimeWarning, match="falling back"):
            results = scheduler.run(configs, small_trace[:200])
        assert len(results) == 2
        assert scheduler.last_report.mode == "parallel"  # requested mode kept
        assert scheduler.last_report.workers == 1  # but executed in-process

    def test_last_report_and_result_reports(self, small_trace):
        scheduler = SweepScheduler(mode="serial")
        configs = _matrix(("xLRU", "PullLRU"), (1.0, 2.0))
        results = scheduler.run(configs, small_trace[:300])
        report = scheduler.last_report
        assert report is not None and report.engine == "scheduler"
        assert report.extra["cells"] == 4
        assert report.extra["simulated"] == 3
        assert report.extra["clones"] == 1
        for result in results.values():
            assert result.report is not None
            assert result.report.extra["scheduler_mode"] == "serial"
