"""Tests for engine observability: timers, tickers, run reports."""

import json

import pytest

from repro.sim.engine import replay
from repro.sim.instrumentation import (
    ProgressTicker,
    RunReport,
    StageTimer,
    StageTiming,
)
from repro.sim.runner import build_cache


class TestStageTiming:
    def test_rate(self):
        timing = StageTiming("replay", seconds=2.0, items=1000)
        assert timing.rate == 500.0

    def test_rate_zero_seconds(self):
        assert StageTiming("noop", seconds=0.0, items=10).rate == 0.0

    def test_dict_round_trip(self):
        timing = StageTiming("prepare", seconds=0.5, items=3)
        again = StageTiming.from_dict(timing.to_dict())
        assert again == timing


class TestStageTimer:
    def test_stage_context_accumulates(self):
        timer = StageTimer()
        with timer.stage("a"):
            pass
        with timer.stage("a"):
            pass
        with timer.stage("b", items=7):
            pass
        timings = timer.timings()
        assert [t.name for t in timings] == ["a", "b"]
        assert timings[1].items == 7
        assert timer.seconds("a") >= 0.0
        assert timer.seconds("never-entered") == 0.0

    def test_add_folds_items(self):
        timer = StageTimer()
        timer.add("replay", 1.0, items=10)
        timer.add("replay", 2.0, items=5)
        (timing,) = timer.timings()
        assert timing.seconds == pytest.approx(3.0)
        assert timing.items == 15

    def test_exception_still_recorded(self):
        timer = StageTimer()
        with pytest.raises(RuntimeError):
            with timer.stage("boom"):
                raise RuntimeError("x")
        assert timer.seconds("boom") >= 0.0
        assert [t.name for t in timer.timings()] == ["boom"]


class TestProgressTicker:
    def test_fires_on_cadence(self):
        calls = []
        ticker = ProgressTicker(lambda d, t, e: calls.append((d, t)), every=3, total=10)
        for i in range(1, 8):
            ticker.tick(i)
        assert [c[0] for c in calls] == [3, 6]
        assert all(c[1] == 10 for c in calls)

    def test_finish_always_fires(self):
        calls = []
        ticker = ProgressTicker(lambda d, t, e: calls.append(d), every=1000)
        ticker.finish(42)
        assert calls == [42]

    def test_no_callback_is_free(self):
        ticker = ProgressTicker(None, every=2)
        ticker.tick(2)
        ticker.finish(2)  # must not raise

    def test_rejects_bad_cadence(self):
        with pytest.raises(ValueError, match="every"):
            ProgressTicker(None, every=0)

    def test_unknown_total_passed_through_as_none(self):
        """Generator traces have no len(): callbacks see total=None."""
        calls = []
        ticker = ProgressTicker(
            lambda d, t, e: calls.append((d, t)), every=2, total=None
        )
        for i in range(1, 5):
            ticker.tick(i)
        ticker.finish(4)
        assert calls == [(2, None), (4, None), (4, None)]

    def test_rejects_negative_total(self):
        with pytest.raises(ValueError, match="total"):
            ProgressTicker(None, every=1, total=-1)

    def test_tick_batch_fires_once_per_cadence_crossing(self):
        """Block replay advances the counter by whole shards; the
        batched tick fires when a boundary is crossed, never twice for
        the same boundary, and not before the next one."""
        calls = []
        ticker = ProgressTicker(
            lambda d, t, e: calls.append(d), every=10, total=100
        )
        for done in (3, 9, 10, 12, 35, 36, 40, 99):
            ticker.tick_batch(done)
        assert calls == [10, 35, 40, 99]

    def test_tick_batch_no_callback_is_free(self):
        ticker = ProgressTicker(None, every=4)
        ticker.tick_batch(1000)  # must not raise


class TestRunReport:
    def test_rates(self):
        report = RunReport(
            engine="multireplay", wall_seconds=2.0, num_requests=1000, num_caches=4
        )
        assert report.requests_per_second == 500.0
        assert report.handles_per_second == 2000.0

    def test_json_round_trip(self):
        report = RunReport(
            engine="scheduler",
            mode="parallel",
            wall_seconds=1.5,
            num_requests=100,
            num_caches=3,
            workers=2,
            stages=[StageTiming("replay", 1.4, 100)],
            extra={"cells": 3},
        )
        data = json.loads(report.to_json())
        again = RunReport.from_dict(data)
        assert again == report

    def test_describe_mentions_engine_and_rate(self):
        report = RunReport(engine="replay", wall_seconds=1.0, num_requests=500)
        text = report.describe()
        assert "replay" in text and "500 requests" in text and "req/s" in text


class TestReplayReport:
    def test_replay_attaches_report(self, small_trace):
        trace = small_trace[:400]
        result = replay(build_cache("xLRU", 64), trace)
        report = result.report
        assert report is not None
        assert report.engine == "replay"
        assert report.mode == "serial"
        assert report.num_requests == 400
        assert report.wall_seconds > 0.0
        assert report.requests_per_second > 0.0
        # must be JSON-serializable end to end
        json.dumps(report.to_dict())
        stage_names = [s.name for s in report.stages]
        assert "replay" in stage_names

    def test_offline_replay_times_prepare(self, small_trace):
        result = replay(build_cache("Psychic", 64), small_trace[:400])
        stage_names = [s.name for s in result.report.stages]
        assert stage_names == ["prepare", "replay"]

    def test_replay_progress_callbacks(self, small_trace):
        calls = []
        replay(
            build_cache("xLRU", 64),
            small_trace[:300],
            progress=lambda done, total, elapsed: calls.append((done, total)),
        )
        # final callback always fires with the full count
        assert calls[-1] == (300, 300)
