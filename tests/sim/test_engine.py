"""Tests for the replay engine."""

import pytest

from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.psychic import PsychicCache
from repro.core.xlru import XlruCache
from repro.sim.engine import replay
from repro.trace.requests import Request

K = 1024


def req(t, video, c0):
    return Request(t, video, c0 * K, (c0 + 1) * K - 1)


class TestReplay:
    def test_counts_all_requests(self):
        trace = [req(float(i), i % 3, 0) for i in range(30)]
        result = replay(XlruCache(8, chunk_bytes=K), trace)
        assert result.num_requests == 30
        assert result.totals.num_requests == 30

    def test_accepts_generator_for_online_cache(self):
        result = replay(
            XlruCache(8, chunk_bytes=K),
            (req(float(i), 1, 0) for i in range(10)),
        )
        assert result.num_requests == 10

    def test_accepts_generator_for_offline_cache(self):
        result = replay(
            PsychicCache(8, chunk_bytes=K),
            (req(float(i), 1, 0) for i in range(10)),
        )
        assert result.num_requests == 10

    def test_offline_cache_prepared_automatically(self):
        trace = [req(float(i), 1, 0) for i in range(5)]
        cache = PsychicCache(8, chunk_bytes=K)
        result = replay(cache, trace)
        assert result.totals.num_served >= 4  # knows the future

    def test_rejects_unordered_trace(self):
        trace = [req(5.0, 1, 0), req(1.0, 2, 0)]
        with pytest.raises(ValueError, match="not time-ordered"):
            replay(XlruCache(8, chunk_bytes=K), trace)

    def test_on_request_hook(self):
        seen = []
        trace = [req(float(i), 1, 0) for i in range(4)]
        replay(
            XlruCache(8, chunk_bytes=K),
            trace,
            on_request=lambda i, r: seen.append(i),
        )
        assert seen == [0, 1, 2, 3]

    def test_describe_mentions_metrics(self, small_trace):
        cache = CafeCache(64, cost_model=CostModel(2.0))
        result = replay(cache, small_trace[:500])
        text = result.describe()
        assert "eff=" in text and "Cafe" in text

    def test_steady_uses_second_half(self, small_trace):
        cache = XlruCache(64, cost_model=CostModel(1.0))
        result = replay(cache, small_trace)
        # warm-up in the first half means steady >= whole-trace efficiency
        assert result.steady.efficiency >= result.totals.efficiency - 0.02

    def test_empty_trace(self):
        result = replay(XlruCache(8, chunk_bytes=K), [])
        assert result.num_requests == 0
