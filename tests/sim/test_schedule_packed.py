"""Scheduler heuristics and shared-memory trace transport.

Covers the auto-mode work-size heuristic (small sweeps collapse to
serial instead of paying pool startup) and the shared-memory lifecycle:
the parent owns the segment, workers attach zero-copy, and the segment
is unlinked even when groups crash, retry, or fall back in-process.
"""

import os

import pytest

import repro.sim.schedule as schedule_module
from repro.sim.runner import RunConfig
from repro.sim.schedule import (
    DEFAULT_PARALLEL_MIN_WORK,
    PARALLEL_MIN_WORK_ENV,
    SweepScheduler,
    _resolve_min_work,
)
from repro.trace.columnar import active_shared_traces

_ORIG_EXECUTE_GROUP = schedule_module._execute_group

_CRASH_MARKER_ENV = "REPRO_TEST_SHM_CRASH_MARKER"


def _configs():
    return [
        RunConfig("xLRU", 64, 1.0, label="x"),
        RunConfig("Cafe", 64, 1.0, label="c"),
    ]


class TestMinWorkResolution:
    def test_default(self, monkeypatch):
        monkeypatch.delenv(PARALLEL_MIN_WORK_ENV, raising=False)
        assert _resolve_min_work(None) == DEFAULT_PARALLEL_MIN_WORK

    def test_explicit_wins_over_env(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MIN_WORK_ENV, "99")
        assert _resolve_min_work(5) == 5

    def test_env_knob(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MIN_WORK_ENV, "1234")
        assert _resolve_min_work(None) == 1234
        assert SweepScheduler().parallel_min_work == 1234

    def test_bad_env_value(self, monkeypatch):
        monkeypatch.setenv(PARALLEL_MIN_WORK_ENV, "plenty")
        with pytest.raises(ValueError, match=PARALLEL_MIN_WORK_ENV):
            _resolve_min_work(None)

    def test_rejects_negative(self):
        with pytest.raises(ValueError, match="parallel_min_work"):
            _resolve_min_work(-1)


class TestAutoModeHeuristic:
    def test_small_sweep_collapses_to_serial(self, small_trace, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        scheduler = SweepScheduler(workers=2, mode="auto")
        results = scheduler.run(_configs(), small_trace[:300])
        assert len(results) == 2
        report = scheduler.last_report
        assert report.mode == "serial" and report.workers == 1
        assert any(e.kind == "parallel-collapsed" for e in report.events)
        # Collapsed sweeps are planned as ONE broadcast group (a single
        # trace pass), not a parallel split executed serially.
        assert report.extra["groups"] == 1

    def test_single_cpu_host_collapses(self, small_trace, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        scheduler = SweepScheduler(
            workers=2, mode="auto", parallel_min_work=0
        )
        scheduler.run(_configs(), small_trace[:300])
        assert scheduler.last_report.mode == "serial"
        assert any(
            e.kind == "parallel-collapsed"
            for e in scheduler.last_report.events
        )

    def test_large_enough_sweep_goes_parallel(self, small_trace, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        scheduler = SweepScheduler(
            workers=2, mode="auto", parallel_min_work=100
        )
        results = scheduler.run(_configs(), small_trace[:300])
        assert len(results) == 2
        report = scheduler.last_report
        assert report.mode == "parallel"
        assert not any(e.kind == "parallel-collapsed" for e in report.events)

    def test_explicit_parallel_bypasses_heuristic(
        self, small_trace, monkeypatch
    ):
        # Explicit mode="parallel" must use pools even for a sweep far
        # below the threshold on a single-CPU host.
        monkeypatch.setattr(os, "cpu_count", lambda: 1)
        scheduler = SweepScheduler(workers=2, mode="parallel")
        results = scheduler.run(_configs(), small_trace[:300])
        assert len(results) == 2
        report = scheduler.last_report
        assert report.mode == "parallel"
        assert not any(e.kind == "parallel-collapsed" for e in report.events)

    def test_heuristic_run_matches_serial(self, small_trace, monkeypatch):
        monkeypatch.setattr(os, "cpu_count", lambda: 8)
        trace = small_trace[:300]
        collapsed = SweepScheduler(workers=2, mode="auto").run(_configs(), trace)
        serial = SweepScheduler(mode="serial").run(_configs(), trace)
        for key in serial:
            assert serial[key].totals == collapsed[key].totals


def _crash_once_execute_group(kind, configs, requests, interval, progress, *extra):
    """Die like a SIGKILLed worker the first time group ``x`` runs."""
    marker = os.environ[_CRASH_MARKER_ENV]
    if any(c.key == "x" for c in configs) and not os.path.exists(marker):
        open(marker, "w").close()
        os._exit(1)
    return _ORIG_EXECUTE_GROUP(kind, configs, requests, interval, progress, *extra)


def _always_raise_execute_group(kind, configs, requests, interval, progress, *extra):
    """Fail every pool attempt; succeed only in the in-process fallback."""
    if os.getpid() != int(os.environ["REPRO_TEST_SHM_MAIN_PID"]):
        raise RuntimeError("synthetic group failure")
    return _ORIG_EXECUTE_GROUP(kind, configs, requests, interval, progress, *extra)


class TestSharedMemoryLifecycle:
    def test_parallel_run_uses_shared_trace_and_cleans_up(self, small_trace):
        trace = small_trace[:400]
        scheduler = SweepScheduler(workers=2, mode="parallel", collapse=False)
        results = scheduler.run(_configs(), trace)
        serial = SweepScheduler(mode="serial", collapse=False).run(
            _configs(), trace
        )
        for key in serial:
            assert serial[key].totals == results[key].totals
        kinds = {e.kind for e in scheduler.last_report.events}
        assert "shared-trace" in kinds
        assert active_shared_traces() == frozenset()

    def test_offline_cells_survive_shared_transport(self, small_trace):
        # Offline caches pickle their prepared trace back inside the
        # result; the worker-side mapping must stay open long enough.
        trace = small_trace[:400]
        configs = _configs() + [RunConfig("Psychic", 64, 1.0, label="p")]
        par = SweepScheduler(workers=2, mode="parallel", collapse=False).run(
            configs, trace
        )
        serial = SweepScheduler(mode="serial", collapse=False).run(
            configs, trace
        )
        for key in serial:
            assert serial[key].totals == par[key].totals
        assert active_shared_traces() == frozenset()

    def test_segment_unlinked_after_worker_crash_and_retry(
        self, small_trace, monkeypatch, tmp_path
    ):
        trace = small_trace[:300]
        monkeypatch.setenv(_CRASH_MARKER_ENV, str(tmp_path / "crashed"))
        monkeypatch.setattr(
            schedule_module, "_execute_group", _crash_once_execute_group
        )
        scheduler = SweepScheduler(
            workers=2, mode="parallel", collapse=False, backoff_seconds=0.01
        )
        results = scheduler.run(_configs(), trace)
        assert set(results) == {"x", "c"}
        assert scheduler.last_report.extra["group_retries"] >= 1
        assert active_shared_traces() == frozenset()

    def test_segment_unlinked_after_fallback(self, small_trace, monkeypatch):
        trace = small_trace[:300]
        monkeypatch.setenv("REPRO_TEST_SHM_MAIN_PID", str(os.getpid()))
        monkeypatch.setattr(
            schedule_module, "_execute_group", _always_raise_execute_group
        )
        scheduler = SweepScheduler(
            workers=2, mode="parallel", collapse=False,
            max_retries=0, backoff_seconds=0.01,
        )
        with pytest.warns(RuntimeWarning, match="falling back"):
            results = scheduler.run(_configs(), trace)
        assert set(results) == {"x", "c"}
        # The in-process fallback attached the still-linked segment; the
        # run() finally-block must still have unlinked it afterwards.
        assert active_shared_traces() == frozenset()

    def test_segment_unlinked_when_sweep_dies(self, small_trace, monkeypatch):
        trace = small_trace[:300]

        class KilledPool:
            def __init__(self, *a, **k):
                raise KeyboardInterrupt  # the sweep itself is killed

        monkeypatch.setattr(schedule_module, "ProcessPoolExecutor", KilledPool)
        scheduler = SweepScheduler(workers=2, mode="parallel", collapse=False)
        with pytest.raises(KeyboardInterrupt):
            scheduler.run(_configs(), trace)
        assert active_shared_traces() == frozenset()

    def test_pack_stage_reported(self, small_trace):
        scheduler = SweepScheduler(workers=2, mode="parallel", collapse=False)
        scheduler.run(_configs(), small_trace[:300])
        stages = {s.name for s in scheduler.last_report.stages}
        assert "pack" in stages and "sweep" in stages


# -- signal-driven exit -------------------------------------------------------

_SIGNAL_CHILD = '''
"""Child for the SIGTERM leak test: a parallel sweep that never finishes."""
import os
import sys
import time

import repro.sim.schedule as schedule_module
from repro.sim.runner import RunConfig
from repro.sim.schedule import SweepScheduler
from repro.trace.requests import Request


def _stall_execute_group(*args):
    # Park the (forked) worker until it is orphaned by the parent\'s
    # death, then exit quietly -- keeps the pool "busy" for the whole
    # test without leaving 60s stragglers behind.
    deadline = time.monotonic() + 60.0
    while os.getppid() != 1 and time.monotonic() < deadline:
        time.sleep(0.05)
    os._exit(0)


schedule_module._execute_group = _stall_execute_group

journal = sys.argv[1]
requests = [Request(float(i), i % 7, 0, 2) for i in range(400)]
configs = [
    RunConfig("xLRU", 64, 1.0, label="x"),
    RunConfig("Cafe", 64, 1.0, label="c"),
]
sched = SweepScheduler(
    workers=2, mode="parallel", collapse=False, checkpoint=journal
)
sched.run(configs, requests)
'''


@pytest.mark.skipif(
    not os.path.isdir("/dev/shm"), reason="needs a POSIX /dev/shm"
)
def test_sigterm_releases_segments_and_exits_cleanly(tmp_path):
    """SIGTERM mid-sweep must not leak /dev/shm segments.

    The default SIGTERM disposition kills the process without running
    ``finally`` blocks, so the parent-owned shared trace segment would
    outlive the sweep.  The installed handler unlinks it, syncs the
    checkpoint journal, and exits ``128 + SIGTERM``.
    """
    import signal as signal_module
    import subprocess
    import sys as sys_module
    import time as time_module

    import repro

    script = tmp_path / "sweep_child.py"
    script.write_text(_SIGNAL_CHILD)
    journal = tmp_path / "sweep.ckpt"
    src_dir = os.path.dirname(os.path.dirname(os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src_dir + os.pathsep + env.get("PYTHONPATH", "")

    before = set(os.listdir("/dev/shm"))
    proc = subprocess.Popen(
        [sys_module.executable, str(script), str(journal)], env=env
    )
    try:
        observed = set()
        deadline = time_module.monotonic() + 30.0
        while time_module.monotonic() < deadline:
            observed = {
                name
                for name in set(os.listdir("/dev/shm")) - before
                if name.startswith("psm_")
            }
            if observed:
                break
            assert proc.poll() is None, "sweep child died before sharing"
            time_module.sleep(0.02)
        assert observed, "sweep child never created a shared trace segment"
        proc.send_signal(signal_module.SIGTERM)
        code = proc.wait(timeout=30)
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait()

    assert code == 128 + signal_module.SIGTERM
    leftover = observed & set(os.listdir("/dev/shm"))
    assert leftover == set(), f"leaked shared segments: {sorted(leftover)}"


def test_checkpoint_sync_tolerates_missing_and_flushes(tmp_path):
    from repro.sim.schedule import SweepCheckpoint

    ckpt = SweepCheckpoint(tmp_path / "none.ckpt")
    ckpt.sync()  # missing journal: no-op, no error
    ckpt = SweepCheckpoint(tmp_path / "sweep.ckpt")
    ckpt.append("fp", "gid", {})
    ckpt.sync()
    assert ckpt.load("fp") == {"gid": {}}
