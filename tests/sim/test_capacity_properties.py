"""Property tests for the egress capacity gate."""

from hypothesis import given, settings, strategies as st

from repro.core.baselines import PullThroughLruCache
from repro.sim.capacity import EgressCapacityGate
from repro.trace.requests import Request

K = 1024


@st.composite
def bursty_trace(draw):
    n = draw(st.integers(1, 80))
    t = 0.0
    requests = []
    for _ in range(n):
        t += draw(st.floats(0.0, 5.0))
        nbytes = draw(st.integers(1, 8 * K))
        requests.append(Request(t, draw(st.integers(0, 5)), 0, nbytes - 1))
    return requests


@settings(max_examples=50, deadline=None)
@given(
    trace=bursty_trace(),
    rate=st.floats(100.0, 50_000.0),
    burst=st.floats(0.5, 30.0),
)
def test_served_volume_never_exceeds_token_supply(trace, rate, burst):
    """Served bytes <= initial bucket + rate x elapsed, at every prefix."""
    cache = PullThroughLruCache(256, chunk_bytes=K)
    gate = EgressCapacityGate(
        cache, egress_bytes_per_second=rate, burst_seconds=burst
    )
    t0 = trace[0].t
    served = 0
    for request in trace:
        response = gate.handle(request)
        if response.served:
            served += request.num_bytes
        supply = rate * burst + rate * (request.t - t0)
        assert served <= supply + 1e-6
        assert 0.0 <= gate.utilization <= 1.0 + 1e-9


@settings(max_examples=50, deadline=None)
@given(trace=bursty_trace())
def test_unbounded_gate_is_transparent(trace):
    """With capacity far above demand the gate changes nothing."""
    plain = PullThroughLruCache(256, chunk_bytes=K)
    gated_cache = PullThroughLruCache(256, chunk_bytes=K)
    gate = EgressCapacityGate(
        gated_cache, egress_bytes_per_second=1e12, burst_seconds=60.0
    )
    for request in trace:
        a = plain.handle(request)
        b = gate.handle(request)
        assert a.decision == b.decision
        assert a.filled_chunks == b.filled_chunks
    assert gate.overload_redirects == 0
