"""Tests for byte accounting and the evaluation metrics (Section 4.2)."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.core.base import CacheResponse, Decision
from repro.core.costs import CostModel
from repro.sim.metrics import MetricsCollector, TrafficSummary
from repro.trace.requests import Request

K = 1024

SERVE_HIT = CacheResponse(Decision.SERVE)
REDIRECT = CacheResponse(Decision.REDIRECT)


def collector(alpha=1.0, interval=3600.0):
    return MetricsCollector(CostModel(alpha), chunk_bytes=K, interval=interval)


class TestAccounting:
    def test_hit_counts_egress_only(self):
        m = collector()
        m.record(Request(0.0, 1, 0, 99), SERVE_HIT)
        t = m.totals()
        assert t.requested_bytes == 100
        assert t.egress_bytes == 100
        assert t.ingress_bytes == 0
        assert t.redirected_bytes == 0

    def test_fill_counts_whole_chunks(self):
        """A chunk is fetched in full even if requested partially."""
        m = collector()
        m.record(Request(0.0, 1, 0, 9), CacheResponse(Decision.SERVE, filled_chunks=1))
        t = m.totals()
        assert t.requested_bytes == 10
        assert t.ingress_bytes == K  # whole chunk
        assert t.filled_chunks == 1

    def test_redirect_counts_requested_bytes(self):
        m = collector()
        m.record(Request(0.0, 1, 0, 2 * K - 1), REDIRECT)
        t = m.totals()
        assert t.redirected_bytes == 2 * K
        assert t.redirected_chunks == 2
        assert t.egress_bytes == 0

    def test_counts_accumulate(self):
        m = collector()
        m.record(Request(0.0, 1, 0, K - 1), CacheResponse(Decision.SERVE, filled_chunks=1))
        m.record(Request(1.0, 1, 0, K - 1), SERVE_HIT)
        m.record(Request(2.0, 2, 0, K - 1), REDIRECT)
        t = m.totals()
        assert t.num_requests == 3
        assert t.num_served == 2
        assert t.num_redirected == 1


class TestDerivedMetrics:
    def test_efficiency_eq2(self):
        m = collector(alpha=2.0)
        # one filled chunk served, one chunk-sized redirect
        m.record(Request(0.0, 1, 0, K - 1), CacheResponse(Decision.SERVE, filled_chunks=1))
        m.record(Request(1.0, 2, 0, K - 1), REDIRECT)
        t = m.totals()
        cf, cr = 4 / 3, 2 / 3
        expected = 1.0 - (K * cf + K * cr) / (2 * K)
        assert t.efficiency == pytest.approx(expected)

    def test_efficiency_chunks_matches_bytes_when_aligned(self):
        """With chunk-aligned requests the two efficiencies coincide."""
        m = collector(alpha=2.0)
        m.record(Request(0.0, 1, 0, K - 1), CacheResponse(Decision.SERVE, filled_chunks=1))
        m.record(Request(1.0, 2, 0, 3 * K - 1), REDIRECT)
        t = m.totals()
        assert t.efficiency == pytest.approx(t.efficiency_chunks)

    def test_ingress_fraction(self):
        m = collector()
        m.record(Request(0.0, 1, 0, 2 * K - 1), CacheResponse(Decision.SERVE, filled_chunks=1))
        assert m.totals().ingress_fraction == pytest.approx(0.5)

    def test_redirect_ratio(self):
        m = collector()
        m.record(Request(0.0, 1, 0, K - 1), SERVE_HIT)
        m.record(Request(1.0, 2, 0, K - 1), REDIRECT)
        assert m.totals().redirect_ratio == pytest.approx(0.5)

    def test_idle_metrics_are_nan(self):
        t = collector().totals()
        assert math.isnan(t.efficiency)
        assert math.isnan(t.redirect_ratio)
        assert math.isnan(t.ingress_fraction)

    @given(
        fills=st.integers(0, 5),
        redirect=st.booleans(),
        alpha=st.floats(0.1, 10.0),
        nbytes=st.integers(1, 4 * K),
    )
    def test_property_efficiency_bounded(self, fills, redirect, alpha, nbytes):
        m = collector(alpha=alpha)
        if redirect:
            response = REDIRECT
        else:
            # fills bounded by the chunk span of the request
            span = (nbytes + K - 1) // K
            response = CacheResponse(Decision.SERVE, filled_chunks=min(fills, span))
        m.record(Request(0.0, 1, 0, nbytes - 1), response)
        t = m.totals()
        # a single request's efficiency is within [-1, 1] up to the
        # chunk-rounding of ingress (fills count whole chunks)
        assert t.efficiency <= 1.0 + 1e-9
        assert t.efficiency >= -1.0 - 2.0 * K / nbytes


class TestTimeSeries:
    def test_bucketing(self):
        m = collector(interval=10.0)
        m.record(Request(0.0, 1, 0, K - 1), SERVE_HIT)
        m.record(Request(5.0, 1, 0, K - 1), SERVE_HIT)
        m.record(Request(15.0, 1, 0, K - 1), REDIRECT)
        series = m.series()
        assert len(series) == 2
        assert series[0].t_start == 0.0
        assert series[0].summary.num_requests == 2
        assert series[1].t_start == 10.0
        assert series[1].summary.num_redirected == 1

    def test_empty_buckets_skipped(self):
        m = collector(interval=10.0)
        m.record(Request(0.0, 1, 0, K - 1), SERVE_HIT)
        m.record(Request(100.0, 1, 0, K - 1), SERVE_HIT)
        assert len(m.series()) == 2  # no empty buckets in between

    def test_buckets_aligned_to_interval(self):
        m = collector(interval=10.0)
        m.record(Request(17.0, 1, 0, K - 1), SERVE_HIT)
        assert m.series()[0].t_start == 10.0

    def test_series_sums_to_totals(self):
        m = collector(interval=7.0)
        for i in range(50):
            response = SERVE_HIT if i % 3 else REDIRECT
            m.record(Request(float(i), 1, 0, K - 1), response)
        series = m.series()
        assert sum(s.summary.num_requests for s in series) == 50
        assert sum(s.summary.redirected_bytes for s in series) == (
            m.totals().redirected_bytes
        )

    def test_interval_validation(self):
        with pytest.raises(ValueError):
            MetricsCollector(CostModel(), interval=0.0)


class TestWindows:
    def test_window_selects_buckets(self):
        m = collector(interval=10.0)
        m.record(Request(0.0, 1, 0, K - 1), REDIRECT)
        m.record(Request(20.0, 1, 0, K - 1), SERVE_HIT)
        late = m.window(15.0)
        assert late.num_requests == 1
        assert late.num_redirected == 0

    def test_steady_state_second_half(self):
        m = collector(interval=1.0)
        # first half: all redirects; second half: all hits
        for i in range(10):
            m.record(Request(float(i), 1, 0, K - 1), REDIRECT)
        for i in range(10, 20):
            m.record(Request(float(i), 1, 0, K - 1), SERVE_HIT)
        steady = m.steady_state(0.5)
        assert steady.efficiency == pytest.approx(1.0)
        assert m.totals().efficiency == pytest.approx(0.5)

    def test_steady_state_fraction_validation(self):
        with pytest.raises(ValueError):
            collector().steady_state(0.0)

    def test_steady_state_empty(self):
        steady = collector().steady_state()
        assert steady.num_requests == 0


class TestLostRequests:
    def test_lost_counters_separate_from_traffic(self):
        m = collector()
        m.record(Request(0.0, 1, 0, K - 1), SERVE_HIT)
        m.record_lost(1.0, 3 * K)
        t = m.totals()
        assert t.num_requests == 1  # lost request not in the classic counters
        assert t.num_lost == 1
        assert t.lost_bytes == 3 * K
        assert t.requested_bytes == K  # byte totals untouched

    def test_availability_property(self):
        m = collector()
        for i in range(3):
            m.record(Request(float(i), 1, 0, K - 1), SERVE_HIT)
        m.record_lost(3.0, K)
        assert m.totals().availability == pytest.approx(0.75)

    def test_availability_is_one_without_losses(self):
        m = collector()
        m.record(Request(0.0, 1, 0, K - 1), SERVE_HIT)
        assert m.totals().availability == 1.0

    def test_availability_nan_when_idle(self):
        assert math.isnan(collector().totals().availability)

    def test_lost_only_bucket_survives_bucket_advance(self):
        # A bucket holding nothing but losses must be emitted, not
        # silently folded into the next interval.
        m = collector(interval=10.0)
        m.record_lost(5.0, K)
        m.record(Request(25.0, 1, 0, K - 1), SERVE_HIT)
        series = m.series()
        assert len(series) == 2
        assert series[0].summary.num_lost == 1
        assert series[0].summary.num_requests == 0
        assert series[1].summary.num_lost == 0

    def test_lost_requests_respect_time_order(self):
        m = collector(interval=10.0)
        m.record(Request(50.0, 1, 0, K - 1), SERVE_HIT)
        with pytest.raises(ValueError, match="precedes the live bucket"):
            m.record_lost(5.0, K)

    def test_with_cost_model_preserves_lost_counters(self):
        m = collector(alpha=1.0)
        m.record_lost(0.0, K)
        clone = m.with_cost_model(CostModel(2.0))
        assert clone.totals().num_lost == 1
        assert clone.totals().lost_bytes == K


class TestTrafficSummaryInvariants:
    def test_hit_bytes(self):
        s = TrafficSummary(
            cost_model=CostModel(),
            num_requests=2,
            num_served=2,
            requested_bytes=2 * K,
            requested_chunks=2,
            egress_bytes=2 * K,
            ingress_bytes=K,
            filled_chunks=1,
        )
        assert s.hit_bytes == K


class TestTimeRegression:
    """Regression: samples older than the live bucket are rejected.

    Before the fix a time-travelling sample was silently folded into
    whatever bucket happened to be open, skewing the interval series
    without any signal that the input was out of order.
    """

    def test_sample_before_live_bucket_raises(self):
        m = collector(interval=3600.0)
        m.record(Request(5000.0, 1, 0, K - 1), SERVE_HIT)  # bucket [3600, 7200)
        with pytest.raises(ValueError, match="precedes the live bucket"):
            m.record(Request(100.0, 1, 0, K - 1), SERVE_HIT)

    def test_backwards_within_live_bucket_allowed(self):
        # heapq-merged multi-edge streams can interleave equal or
        # slightly-earlier stamps that still land in the open bucket
        m = collector(interval=3600.0)
        m.record(Request(5000.0, 1, 0, K - 1), SERVE_HIT)
        m.record(Request(3600.0, 1, 0, K - 1), SERVE_HIT)  # == bucket start
        assert m.totals().num_requests == 2

    def test_exactly_bucket_start_boundary(self):
        m = collector(interval=3600.0)
        m.record(Request(3600.0, 1, 0, K - 1), SERVE_HIT)
        with pytest.raises(ValueError):
            m.record_raw(3599.875, K, 1, SERVE_HIT)


class TestPackedBlockRecord:
    """record_packed_block must equal element-wise record_raw."""

    @staticmethod
    def block(n=300, seed=3):
        """A time-sorted block with bucket crossings, gaps and a mix of
        hit / fill / redirect responses."""
        ts, nbytes, nchunks, responses = [], [], [], []
        t, state = 0.0, seed
        for _ in range(n):
            state = (state * 48271) % 2147483647
            t += (state % 5) * 400.0  # crosses 3600s buckets, with ties
            chunks = state % 4 + 1
            ts.append(t)
            nbytes.append(chunks * K - state % 100)
            nchunks.append(chunks)
            kind = state % 7
            if kind < 4:
                responses.append(SERVE_HIT)
            elif kind < 6:
                responses.append(
                    CacheResponse(Decision.SERVE, filled_chunks=state % 3 + 1)
                )
            else:
                responses.append(REDIRECT)
        return ts, nbytes, nchunks, responses

    @staticmethod
    def misses_of(responses):
        return [
            i for i, response in enumerate(responses) if response is not SERVE_HIT
        ]

    def fill_raw(self, m, block):
        for t, nb, nc, response in zip(*block):
            m.record_raw(t, nb, nc, response)

    def test_matches_record_raw(self):
        block = self.block()
        raw, packed = collector(), collector()
        self.fill_raw(raw, block)
        try:
            import numpy as np
        except ImportError:
            ts, nbytes, nchunks, responses = block
        else:
            ts = np.asarray(block[0], dtype=np.float64)
            nbytes = np.asarray(block[1], dtype=np.int64)
            nchunks = np.asarray(block[2], dtype=np.int64)
            responses = block[3]
        packed.record_packed_block(
            ts, nbytes, nchunks, responses, self.misses_of(responses)
        )
        assert packed.totals() == raw.totals()
        assert packed.series() == raw.series()

    @pytest.mark.parametrize("seed", [3, 5, 13])
    @pytest.mark.parametrize("redirect_heavy", [False, True])
    def test_matches_record_packed_on_mixed_block(self, seed, redirect_heavy):
        """Satellite audit: the non-hit patching (vectorized interned
        redirects + scalar walk for fills) equals record_packed on a
        mixed hit / redirect / fill block."""
        np = pytest.importorskip("numpy")
        block = self.block(250, seed=seed)
        if redirect_heavy:
            # the interned REDIRECT, so the vectorized prefix-sum patch
            # (not the scalar walk) absorbs the bulk of the misses
            from repro.core.base import REDIRECT as INTERNED_REDIRECT

            ts, nbytes, nchunks, responses = block
            responses = [
                INTERNED_REDIRECT if i % 3 else response
                for i, response in enumerate(responses)
            ]
            block = ts, nbytes, nchunks, responses
        loop, vec = collector(), collector()
        loop.record_packed(*block)
        vec.record_packed_block(
            np.asarray(block[0], dtype=np.float64),
            np.asarray(block[1], dtype=np.int64),
            np.asarray(block[2], dtype=np.int64),
            block[3],
            self.misses_of(block[3]),
        )
        assert vec.totals() == loop.totals()
        assert vec.series() == loop.series()

    def test_no_numpy_lane_matches_record_packed(self, monkeypatch):
        """Satellite audit: with numpy disabled (REPRO_NO_NUMPY lane)
        record_packed_block must route to record_packed and stay
        byte-identical on a mixed hit / redirect block."""
        from repro.sim import metrics as metrics_mod

        block = self.block(180, seed=21)
        loop = collector()
        loop.record_packed(*block)
        monkeypatch.setattr(metrics_mod, "_np", None)
        fallback = collector()
        fallback.record_packed_block(*block, self.misses_of(block[3]))
        assert fallback.totals() == loop.totals()
        assert fallback.series() == loop.series()

    def test_plain_lists_fall_back_to_record_packed(self):
        block = self.block(120, seed=8)
        raw, packed = collector(), collector()
        self.fill_raw(raw, block)
        packed.record_packed_block(*block, self.misses_of(block[3]))
        assert packed.totals() == raw.totals()
        assert packed.series() == raw.series()

    def test_empty_block_is_a_noop(self):
        m = collector()
        m.record_packed_block([], [], [], [], [])
        assert m.totals().num_requests == 0

    def test_split_blocks_match_one_block(self):
        block = self.block(200, seed=5)
        whole, split = collector(), collector()
        whole.record_packed_block(*block, self.misses_of(block[3]))
        for lo in (0, 80):
            hi = lo + 80 if lo == 0 else 200
            part = tuple(col[lo:hi] for col in block)
            split.record_packed_block(*part, self.misses_of(part[3]))
        assert split.totals() == whole.totals()
        assert split.series() == whole.series()
