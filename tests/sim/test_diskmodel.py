"""Tests for the disk read/write interference model (Section 2)."""

import math

import pytest

from repro.core.cafe import CafeCache
from repro.core.baselines import PullThroughLruCache
from repro.core.costs import CostModel
from repro.sim.diskmodel import DiskModel, analyze_disk_load
from repro.sim.engine import replay


class TestDiskModel:
    def test_validation(self):
        with pytest.raises(ValueError):
            DiskModel(read_blocks_per_second=0.0)
        with pytest.raises(ValueError):
            DiskModel(read_blocks_per_second=100.0, write_read_penalty=-1.0)
        with pytest.raises(ValueError):
            DiskModel(read_blocks_per_second=100.0, block_bytes=0)

    def test_paper_penalty_default(self):
        """'for every extra write-block operation we lose 1.2-1.3 reads'."""
        model = DiskModel(read_blocks_per_second=1000.0)
        assert 1.2 <= model.write_read_penalty <= 1.3

    def test_effective_capacity(self):
        model = DiskModel(read_blocks_per_second=1000.0, write_read_penalty=1.25)
        assert model.effective_read_capacity(0.0) == 1000.0
        assert model.effective_read_capacity(100.0) == 875.0

    def test_capacity_floor_zero(self):
        model = DiskModel(read_blocks_per_second=100.0, write_read_penalty=1.25)
        assert model.effective_read_capacity(1e6) == 0.0


class TestAnalyzeLoad:
    @pytest.fixture(scope="class")
    def cafe_result(self, medium_trace):
        return replay(CafeCache(256, cost_model=CostModel(2.0)), medium_trace)

    def test_sample_per_bucket(self, cafe_result):
        model = DiskModel(read_blocks_per_second=1e6)
        report = analyze_disk_load(cafe_result, model)
        assert len(report.samples) == len(cafe_result.metrics.series())

    def test_roomy_disk_never_overloads(self, cafe_result):
        model = DiskModel(read_blocks_per_second=1e9)
        report = analyze_disk_load(cafe_result, model)
        assert report.overloaded_buckets == 0
        assert report.peak_utilization < 1.0

    def test_tiny_disk_overloads_every_serving_bucket(self, cafe_result):
        model = DiskModel(read_blocks_per_second=1e-6)
        report = analyze_disk_load(cafe_result, model)
        serving = [s for s in report.samples if s.read_blocks_per_second > 0]
        assert serving
        assert all(s.utilization > 1.0 for s in serving)
        assert math.isinf(report.peak_utilization) or report.peak_utilization > 1.0

    def test_summary_keys(self, cafe_result):
        report = analyze_disk_load(cafe_result, DiskModel(read_blocks_per_second=1e5))
        summary = report.summary()
        assert {"buckets", "overload_fraction", "reads_lost_to_writes"} <= set(summary)

    def test_reads_and_writes_track_traffic(self, cafe_result):
        model = DiskModel(read_blocks_per_second=1e6, block_bytes=1 << 18)
        report = analyze_disk_load(cafe_result, model)
        interval = cafe_result.metrics.interval
        total_reads = sum(
            s.read_blocks_per_second * interval for s in report.samples
        )
        expected = cafe_result.totals.egress_bytes / model.block_bytes
        assert total_reads == pytest.approx(expected, rel=1e-6)


class TestSection2Argument:
    def test_cafe_destroys_less_read_capacity_than_pull_lru(self, medium_trace):
        """The disk-constrained case for alpha > 1, quantified: the
        cache-all policy's writes destroy far more read capacity."""
        model = DiskModel(read_blocks_per_second=1e5)
        cafe = analyze_disk_load(
            replay(CafeCache(256, cost_model=CostModel(2.0)), medium_trace), model
        )
        pull = analyze_disk_load(
            replay(PullThroughLruCache(256, cost_model=CostModel(2.0)), medium_trace),
            model,
        )
        assert cafe.reads_lost_to_writes < 0.5 * pull.reads_lost_to_writes

    def test_sized_disk_overloads_under_pull_lru_only(self, medium_trace):
        """A disk provisioned for Cafe's load melts under cache-all."""
        cafe_result = replay(
            CafeCache(256, cost_model=CostModel(2.0)), medium_trace
        )
        pull_result = replay(
            PullThroughLruCache(256, cost_model=CostModel(2.0)), medium_trace
        )
        # provision to Cafe's peak with 10% headroom
        probe = DiskModel(read_blocks_per_second=1.0)
        peak = max(
            s.read_blocks_per_second + 1.25 * s.write_blocks_per_second
            for s in analyze_disk_load(cafe_result, probe).samples
        )
        model = DiskModel(read_blocks_per_second=1.1 * peak)
        assert analyze_disk_load(cafe_result, model).overloaded_buckets == 0
        assert analyze_disk_load(pull_result, model).overloaded_buckets > 0
