"""Tests for bootstrap comparison of cache runs."""

import pytest

from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.xlru import XlruCache
from repro.sim.compare import compare_runs, efficiency_ci, paired_gap_ci
from repro.sim.engine import replay


@pytest.fixture(scope="module")
def runs(medium_trace):
    cost_model = CostModel(2.0)
    return {
        "Cafe": replay(CafeCache(256, cost_model=cost_model), medium_trace),
        "xLRU": replay(XlruCache(256, cost_model=cost_model), medium_trace),
    }


class TestEfficiencyCi:
    def test_interval_brackets_estimate(self, runs):
        ci = efficiency_ci(runs["Cafe"])
        assert ci.low <= ci.estimate <= ci.high
        assert ci.confidence == 0.95
        assert ci.width > 0.0

    def test_estimate_tracks_steady_summary(self, runs):
        ci = efficiency_ci(runs["Cafe"])
        steady = runs["Cafe"].steady.efficiency
        # bucket-mean vs byte-weighted mean: close but not identical
        assert abs(ci.estimate - steady) < 0.15

    def test_deterministic_given_seed(self, runs):
        a = efficiency_ci(runs["Cafe"], seed=7)
        b = efficiency_ci(runs["Cafe"], seed=7)
        assert (a.low, a.high) == (b.low, b.high)

    def test_higher_confidence_wider(self, runs):
        narrow = efficiency_ci(runs["Cafe"], confidence=0.5)
        wide = efficiency_ci(runs["Cafe"], confidence=0.99)
        assert wide.width >= narrow.width

    def test_confidence_validation(self, runs):
        with pytest.raises(ValueError):
            efficiency_ci(runs["Cafe"], confidence=1.0)

    def test_custom_metric(self, runs):
        ci = efficiency_ci(runs["Cafe"], metric=lambda s: s.redirect_ratio)
        assert 0.0 <= ci.estimate <= 1.0

    def test_too_few_buckets_rejected(self):
        from repro.core.xlru import XlruCache
        from repro.trace.requests import Request

        result = replay(XlruCache(8), [Request(0.0, 1, 0, 1023)])
        with pytest.raises(ValueError, match="buckets"):
            efficiency_ci(result)


class TestPairedGap:
    def test_cafe_vs_xlru_gap_significant(self, runs):
        """The headline gap survives its own error bars."""
        ci = paired_gap_ci(runs["Cafe"], runs["xLRU"])
        assert ci.estimate > 0.0
        assert ci.excludes_zero()

    def test_gap_antisymmetric(self, runs):
        forward = paired_gap_ci(runs["Cafe"], runs["xLRU"], seed=1)
        backward = paired_gap_ci(runs["xLRU"], runs["Cafe"], seed=1)
        assert forward.estimate == pytest.approx(-backward.estimate)

    def test_self_gap_is_zero(self, runs):
        ci = paired_gap_ci(runs["Cafe"], runs["Cafe"])
        assert ci.estimate == pytest.approx(0.0)
        assert not ci.excludes_zero()


class TestCompareRuns:
    def test_rows_against_baseline(self, runs):
        rows = compare_runs(runs, baseline="xLRU")
        assert len(rows) == 1
        row = rows[0]
        assert row["run"] == "Cafe"
        assert row["vs"] == "xLRU"
        assert row["ci_low"] <= row["gap"] <= row["ci_high"]
        assert row["significant"] is True

    def test_unknown_baseline(self, runs):
        with pytest.raises(KeyError):
            compare_runs(runs, baseline="nope")
