"""Golden equivalence: broadcast/scheduled sweeps == sequential replay.

The layered engine promises *exact* equivalence, not approximate: a
broadcast pass, a scheduler plan (with alpha-collapsing) and a process
pool must all produce byte-identical traffic counters to the seed
behaviour of replaying each cell on its own.  These tests hold every
registered algorithm to that, both whole-trace and steady-state.
"""

import pytest

from repro.sim.engine import MultiReplay, replay
from repro.sim.runner import CACHE_FACTORIES, RunConfig, build_cache
from repro.sim.schedule import SweepScheduler

ONLINE = sorted(n for n, f in CACHE_FACTORIES.items() if not f.offline)
OFFLINE = sorted(n for n, f in CACHE_FACTORIES.items() if f.offline)
ALL = ONLINE + OFFLINE

DISK = 64


@pytest.fixture(scope="module")
def trace(small_trace):
    return small_trace[:600]


@pytest.fixture(scope="module")
def sequential_baseline(trace):
    """Per-cell sequential replay of every algorithm (the seed path)."""
    out = {}
    for algo in ALL:
        result = replay(build_cache(algo, DISK, alpha_f2r=2.0), trace)
        out[algo] = (result.totals, result.steady)
    return out


class TestBroadcastEquivalence:
    @pytest.mark.parametrize("algo", ALL)
    def test_each_algorithm_matches_sequential(
        self, algo, trace, sequential_baseline
    ):
        # every algorithm in ONE broadcast engine, vs one-at-a-time
        engine = MultiReplay(
            {a: build_cache(a, DISK, alpha_f2r=2.0) for a in ALL}
        )
        results = engine.run(trace)
        totals, steady = sequential_baseline[algo]
        assert results[algo].totals == totals
        assert results[algo].steady == steady

    def test_broadcast_series_matches_sequential(self, trace):
        solo = replay(build_cache("Cafe", DISK, alpha_f2r=2.0), trace)
        multi = MultiReplay({"Cafe": build_cache("Cafe", DISK, alpha_f2r=2.0)})
        shared = multi.run(trace)["Cafe"]
        assert [
            (s.t_start, s.summary) for s in solo.metrics.series()
        ] == [(s.t_start, s.summary) for s in shared.metrics.series()]


class TestSchedulerEquivalence:
    @pytest.mark.parametrize("mode", ["serial", "cells", "parallel"])
    def test_all_algorithms_all_modes(
        self, mode, trace, sequential_baseline
    ):
        configs = [
            RunConfig(algo, DISK, 2.0, label=algo) for algo in ALL
        ]
        workers = 2 if mode == "parallel" else None
        scheduler = SweepScheduler(workers=workers, mode=mode)
        results = scheduler.run(configs, trace)
        for algo in ALL:
            totals, steady = sequential_baseline[algo]
            assert results[algo].totals == totals, algo
            assert results[algo].steady == steady, algo

    @pytest.mark.parametrize("algo", ONLINE)
    def test_alpha_collapse_is_exact_online(self, algo, trace):
        """collapse=True must equal collapse=False at every alpha."""
        configs = [
            RunConfig(algo, DISK, alpha, label=f"a={alpha:g}")
            for alpha in (0.5, 1.0, 2.0, 4.0)
        ]
        collapsed = SweepScheduler(mode="serial", collapse=True).run(configs, trace)
        direct = SweepScheduler(mode="serial", collapse=False).run(configs, trace)
        for key in direct:
            assert collapsed[key].totals == direct[key].totals, (algo, key)
            assert collapsed[key].steady == direct[key].steady, (algo, key)
            assert (
                collapsed[key].cache.cost_model.alpha_f2r
                == direct[key].cache.cost_model.alpha_f2r
            )

    @pytest.mark.parametrize("algo", OFFLINE)
    def test_offline_fallback_path(self, algo, trace, sequential_baseline):
        """Offline cells run as independent single tasks — still exact."""
        configs = [RunConfig(algo, DISK, 2.0, label=algo)]
        results = SweepScheduler(mode="serial").run(configs, trace)
        totals, steady = sequential_baseline[algo]
        assert results[algo].totals == totals
        assert results[algo].steady == steady

    def test_mixed_online_offline_matrix(self, trace):
        """The fig3-shaped matrix: online broadcast + offline singles."""
        configs = [
            RunConfig(algo, DISK, 2.0, label=algo)
            for algo in ("xLRU", "Cafe", "Psychic", "Belady")
        ]
        scheduled = SweepScheduler(mode="serial").run(configs, trace)
        for config in configs:
            solo = replay(
                build_cache(config.algorithm, DISK, alpha_f2r=2.0), trace
            )
            assert scheduled[config.key].totals == solo.totals, config.key
            assert scheduled[config.key].steady == solo.steady, config.key

    def test_collapsed_clone_cache_state_matches_direct(self, trace):
        """The clone's cache is a faithful final state, not a stub."""
        configs = [
            RunConfig("PullLRU", DISK, 1.0, label="a1"),
            RunConfig("PullLRU", DISK, 4.0, label="a4"),
        ]
        results = SweepScheduler(mode="serial").run(configs, trace)
        direct = replay(build_cache("PullLRU", DISK, alpha_f2r=4.0), trace)
        clone_cache = results["a4"].cache
        assert len(clone_cache) == len(direct.cache)
        assert clone_cache.cost_model.alpha_f2r == 4.0
