"""Tests for the sweep runner and cache registry."""

import pytest

from repro.core.cafe import CafeCache
from repro.sim.runner import (
    CACHE_FACTORIES,
    PAPER_ALGORITHMS,
    RunConfig,
    build_cache,
    results_table,
    run_matrix,
    sweep_alpha,
    sweep_disk,
)


class TestBuildCache:
    def test_registry_covers_paper_algorithms(self):
        for name in PAPER_ALGORITHMS:
            assert name in CACHE_FACTORIES

    def test_build_sets_knobs(self):
        cache = build_cache("Cafe", 64, alpha_f2r=2.0, chunk_bytes=4096)
        assert isinstance(cache, CafeCache)
        assert cache.disk_chunks == 64
        assert cache.cost_model.alpha_f2r == 2.0
        assert cache.chunk_bytes == 4096

    def test_unknown_algorithm(self):
        with pytest.raises(ValueError, match="unknown algorithm"):
            build_cache("NotACache", 64)

    def test_extra_kwargs_forwarded(self):
        cache = build_cache("Cafe", 64, gamma=0.5)
        assert cache._stats.gamma == 0.5


class TestRunConfig:
    def test_key_defaults(self):
        config = RunConfig("xLRU", 64, 2.0)
        assert "xLRU" in config.key and "2.0" in config.key

    def test_label_overrides_key(self):
        assert RunConfig("xLRU", 64, label="mine").key == "mine"


class TestSweeps:
    def test_run_matrix_keys(self, small_trace):
        configs = [
            RunConfig("xLRU", 64, 1.0, label="a"),
            RunConfig("Cafe", 64, 1.0, label="b"),
        ]
        results = run_matrix(configs, small_trace[:500])
        assert set(results) == {"a", "b"}
        assert results["a"].num_requests == 500

    def test_sweep_alpha_shape(self, small_trace):
        sweep = sweep_alpha(
            small_trace[:400], 64, alphas=(1.0, 2.0), algorithms=("xLRU", "Cafe")
        )
        assert set(sweep) == {1.0, 2.0}
        assert set(sweep[1.0]) == {"xLRU", "Cafe"}

    def test_sweep_disk_shape(self, small_trace):
        sweep = sweep_disk(
            small_trace[:400], [32, 64], algorithms=("xLRU",), alpha_f2r=2.0
        )
        assert set(sweep) == {32, 64}
        assert sweep[32]["xLRU"].cache.disk_chunks == 32

    def test_more_disk_never_much_worse(self, small_trace):
        sweep = sweep_disk(
            small_trace, [32, 256], algorithms=("Cafe",), alpha_f2r=2.0
        )
        small = sweep[32]["Cafe"].steady.efficiency
        large = sweep[256]["Cafe"].steady.efficiency
        assert large >= small - 0.02

    def test_results_table(self, small_trace):
        configs = [RunConfig("xLRU", 64, 1.0, label="x")]
        rows = results_table(run_matrix(configs, small_trace[:300]))
        assert rows[0]["config"] == "x"
        assert "efficiency" in rows[0]

    def test_duplicate_keys_raise(self, small_trace):
        # Regression: duplicate keys used to silently overwrite results.
        configs = [
            RunConfig("xLRU", 64, 1.0, label="same"),
            RunConfig("Cafe", 64, 1.0, label="same"),
        ]
        with pytest.raises(ValueError, match="duplicate RunConfig keys"):
            run_matrix(configs, small_trace[:100])

    def test_duplicate_default_keys_raise(self, small_trace):
        configs = [RunConfig("xLRU", 64, 1.0), RunConfig("xLRU", 64, 1.0)]
        with pytest.raises(ValueError, match="duplicate"):
            run_matrix(configs, small_trace[:100])

    def test_sweep_alpha_tolerates_repeated_alphas(self, small_trace):
        # The seed silently deduped via dict keys; keep that behaviour
        # rather than surfacing the scheduler's duplicate-key error.
        sweep = sweep_alpha(
            small_trace[:300], 64, alphas=(1.0, 1.0, 2.0), algorithms=("xLRU",)
        )
        assert set(sweep) == {1.0, 2.0}

    def test_results_ordered_like_configs(self, small_trace):
        configs = [
            RunConfig("Cafe", 64, 2.0, label="z"),
            RunConfig("xLRU", 64, 1.0, label="a"),
            RunConfig("Psychic", 64, 1.0, label="m"),
        ]
        results = run_matrix(configs, small_trace[:300])
        assert list(results) == ["z", "a", "m"]


class TestPublicApi:
    def test_results_table_exported(self):
        # Regression: results_table was missing from runner.__all__.
        import repro.sim.runner as runner

        assert "results_table" in runner.__all__
        assert "PAPER_ALGORITHMS" in runner.__all__

    def test_package_reexports(self):
        import repro.sim as sim

        for name in ("SweepScheduler", "MultiReplay", "RunReport", "results_table"):
            assert hasattr(sim, name)
            assert name in sim.__all__
