"""The packed fast lane: golden equivalence and fallback rules.

The columnar lane promises *byte-identical* metrics to the object path
for every registered algorithm — the batched ``handle_span`` hot paths
are the same code both lanes call, so equivalence here is equivalence
by construction, and these tests are the tripwire for anyone breaking
that property later.
"""

import pytest

import repro.sim.engine as engine_module
from repro.sim.engine import MultiReplay, replay
from repro.sim.metrics import MetricsCollector
from repro.sim.runner import CACHE_FACTORIES, build_cache
from repro.trace.columnar import pack_trace

ALL = sorted(CACHE_FACTORIES)

DISK = 64


@pytest.fixture(scope="module")
def trace(small_trace):
    return small_trace[:800]


@pytest.fixture(scope="module")
def packed(trace):
    cache = build_cache(ALL[0], DISK)
    return pack_trace(trace, chunk_bytes=cache.chunk_bytes)


@pytest.fixture(scope="module")
def object_baseline(trace):
    """Object-path replay of every algorithm (auto-pack disabled)."""
    out = {}
    original = engine_module.AUTO_PACK_MIN_REQUESTS
    engine_module.AUTO_PACK_MIN_REQUESTS = 10**9
    try:
        for algo in ALL:
            result = replay(build_cache(algo, DISK, alpha_f2r=2.0), trace)
            assert result.report.extra["trace_format"] == "objects"
            out[algo] = result
    finally:
        engine_module.AUTO_PACK_MIN_REQUESTS = original
    return out


class TestPackedEquivalence:
    @pytest.mark.parametrize("kernels", ["on", "off"])
    @pytest.mark.parametrize("algo", ALL)
    def test_explicit_packed_trace_matches_objects(
        self, algo, kernels, packed, object_baseline, monkeypatch
    ):
        # both gears of the packed lane — the vectorized decision
        # kernels and the scalar block walk — must be byte-identical
        # to the object path, regardless of the CI job's env.
        monkeypatch.setenv(
            engine_module.NO_KERNELS_ENV, "1" if kernels == "off" else "0"
        )
        result = replay(build_cache(algo, DISK, alpha_f2r=2.0), packed)
        baseline = object_baseline[algo]
        assert result.totals == baseline.totals, algo
        assert result.steady == baseline.steady, algo
        assert [
            (s.t_start, s.summary) for s in result.metrics.series()
        ] == [(s.t_start, s.summary) for s in baseline.metrics.series()]

    def test_auto_pack_kicks_in_above_threshold(self, trace, monkeypatch):
        monkeypatch.setattr(engine_module, "AUTO_PACK_MIN_REQUESTS", 100)
        result = replay(build_cache("xLRU", DISK), trace)
        assert result.report.extra["trace_format"] == "packed"
        stages = {s.name for s in result.report.stages}
        assert "pack" in stages and "replay" in stages

    def test_short_traces_stay_on_object_path(self, trace, monkeypatch):
        monkeypatch.setattr(
            engine_module, "AUTO_PACK_MIN_REQUESTS", len(trace) + 1
        )
        result = replay(build_cache("xLRU", DISK), trace)
        assert result.report.extra["trace_format"] == "objects"

    def test_multireplay_all_algorithms_one_packed_pass(
        self, packed, object_baseline
    ):
        caches = {a: build_cache(a, DISK, alpha_f2r=2.0) for a in ALL}
        results = MultiReplay(caches).run(packed)
        for algo in ALL:
            assert results[algo].report.extra["trace_format"] == "packed"
            assert results[algo].totals == object_baseline[algo].totals, algo
            assert results[algo].steady == object_baseline[algo].steady, algo

    def test_mismatched_chunk_size_is_rechunked_exactly(self, trace):
        cache_k = build_cache("xLRU", DISK)
        small_k = cache_k.chunk_bytes // 2
        packed_small = pack_trace(trace, chunk_bytes=small_k)
        via_packed = replay(build_cache("xLRU", DISK), packed_small)
        via_objects = replay(build_cache("xLRU", DISK), trace)
        assert via_packed.report.extra["trace_format"] == "packed"
        assert via_packed.totals == via_objects.totals


class TestPackedFallbacks:
    def test_on_request_hook_forces_object_path(self, packed):
        seen = []
        result = replay(
            build_cache("xLRU", DISK),
            packed,
            on_request=lambda i, r: seen.append(i),
        )
        assert result.report.extra["trace_format"] == "objects"
        assert len(seen) == len(packed)

    def test_record_overriding_collector_forces_object_path(self, packed):
        class CountingCollector(MetricsCollector):
            calls = 0

            def record_raw(self, t, num_bytes, num_chunks, response):
                type(self).calls += 1
                super().record_raw(t, num_bytes, num_chunks, response)

        cache = build_cache("xLRU", DISK)
        collector = CountingCollector(cache.cost_model, chunk_bytes=cache.chunk_bytes)
        result = replay(cache, packed, metrics=collector)
        assert result.report.extra["trace_format"] == "objects"
        assert CountingCollector.calls == len(packed)

    def test_generator_trace_streams_object_path(self, trace, monkeypatch):
        monkeypatch.setattr(engine_module, "AUTO_PACK_MIN_REQUESTS", 100)
        result = replay(build_cache("xLRU", DISK), iter(trace))
        assert result.report.extra["trace_format"] == "objects"
        assert result.num_requests == len(trace)

    def test_duck_typed_cache_without_handle_span(self, packed):
        """A non-VideoCache duck type must fall back, not crash."""

        class MinimalCache:
            chunk_bytes = 2 * 1024 * 1024
            offline = False

            def __init__(self):
                from repro.core.costs import CostModel

                self.cost_model = CostModel(2.0)

            def handle(self, request):
                from repro.core.base import SERVE_HIT

                return SERVE_HIT

        results = MultiReplay({"duck": MinimalCache()}).run(packed)
        assert results["duck"].report.extra["trace_format"] == "objects"
        assert results["duck"].num_requests == len(packed)


class TestRecordPacked:
    def test_matches_record_raw(self, trace):
        from repro.core.costs import CostModel

        cache_a = build_cache("Cafe", DISK)
        cache_b = build_cache("Cafe", DISK)
        k = cache_a.chunk_bytes
        col_a = MetricsCollector(CostModel(2.0), chunk_bytes=k)
        col_b = MetricsCollector(CostModel(2.0), chunk_bytes=k)

        ts, nbs, ncs, responses = [], [], [], []
        for r in trace:
            response = cache_a.handle(r)
            col_a.record_raw(r.t, r.num_bytes, r.num_chunks(k), response)
            ts.append(r.t)
            nbs.append(r.num_bytes)
            ncs.append(r.num_chunks(k))
            responses.append(cache_b.handle(r))
        col_b.record_packed(ts, nbs, ncs, responses)

        assert col_a.totals() == col_b.totals()
        assert [
            (b.t_start, b.summary) for b in col_a.series()
        ] == [(b.t_start, b.summary) for b in col_b.series()]

    def test_empty_batch_is_noop(self):
        from repro.core.costs import CostModel

        collector = MetricsCollector(CostModel(2.0))
        collector.record_packed([], [], [], [])
        assert collector.totals().num_requests == 0
