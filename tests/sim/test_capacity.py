"""Tests for the egress-capacity gate (Section 2's saturated server)."""

import pytest

from repro.core.base import Decision
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.psychic import PsychicCache
from repro.core.xlru import XlruCache
from repro.sim.capacity import EgressCapacityGate
from repro.trace.requests import Request

K = 1024


def req(t, video=1, nbytes=K):
    return Request(t, video, 0, nbytes - 1)


def make_gate(rate=10 * K, burst=1.0, cache=None):
    cache = cache or XlruCache(64, chunk_bytes=K)
    return EgressCapacityGate(cache, egress_bytes_per_second=rate, burst_seconds=burst)


class TestValidation:
    def test_offline_cache_rejected(self):
        with pytest.raises(ValueError, match="online"):
            EgressCapacityGate(PsychicCache(8), egress_bytes_per_second=1e6)

    def test_positive_parameters(self):
        with pytest.raises(ValueError):
            make_gate(rate=0.0)
        with pytest.raises(ValueError):
            make_gate(burst=0.0)

    def test_time_order_enforced(self):
        gate = make_gate()
        gate.handle(req(10.0))
        with pytest.raises(ValueError, match="time-ordered"):
            gate.handle(req(5.0))


class TestGating:
    def test_within_capacity_passes_through(self):
        gate = make_gate(rate=100 * K, burst=10.0)
        # xLRU redirects first-seen; the *gate* added no redirects
        gate.handle(req(0.0))
        response = gate.handle(req(1.0))
        assert response.decision is Decision.SERVE
        assert gate.overload_redirects == 0

    def test_burst_exhaustion_redirects(self):
        # bucket: 10K * 1s = 10K bytes; requests of 4K each, same second
        gate = make_gate(rate=10 * K, burst=1.0)
        gate.handle(req(0.0, video=1, nbytes=4 * K))  # redirect (first-seen), no tokens used
        served = redirected = 0
        for i in range(5):
            response = gate.handle(req(0.001 * (i + 1), video=1, nbytes=4 * K))
            if response.served:
                served += 1
            else:
                redirected += 1
        # only 2 x 4K fit in the 10K bucket within the same instant
        assert served == 2
        assert gate.overload_redirects >= 3

    def test_tokens_recover_over_time(self):
        gate = make_gate(rate=10 * K, burst=1.0)
        gate.handle(req(0.0, nbytes=K))  # first-seen redirect
        gate.handle(req(0.1, nbytes=8 * K))  # serve: bucket nearly empty
        assert gate.handle(req(0.2, nbytes=8 * K)).decision is Decision.REDIRECT
        # after a second the bucket refills
        response = gate.handle(req(1.5, nbytes=8 * K))
        assert response.decision is Decision.SERVE

    def test_only_served_requests_consume_tokens(self):
        gate = make_gate(rate=10 * K, burst=1.0)
        # all first-seen: xLRU redirects them; bucket must stay full
        for i in range(20):
            gate.handle(req(float(i) / 100.0, video=100 + i, nbytes=2 * K))
        assert gate.utilization == pytest.approx(0.0)

    def test_overload_accounting(self):
        gate = make_gate(rate=K, burst=1.0)
        gate.handle(req(0.0, nbytes=K))
        gate.handle(req(0.001, nbytes=K))  # serve: drains bucket
        gate.handle(req(0.002, nbytes=K))  # overload
        assert gate.overload_bytes == K


class TestSaturatedServerArgument:
    def test_gated_egress_same_across_alphas(self, small_trace):
        """Section 2: at saturation, served volume is capacity-bound —
        the same whether the cache fills eagerly (alpha<=1) or
        conservatively (alpha=2); eager ingress is wasted."""
        from repro.sim.metrics import MetricsCollector

        egress = {}
        ingress = {}
        # pin the rate well below mean demand so the gate really binds
        demand = sum(r.num_bytes for r in small_trace)
        duration = small_trace[-1].t - small_trace[0].t
        rate = 0.35 * demand / duration
        for alpha in (1.0, 2.0):
            cache = CafeCache(128, cost_model=CostModel(alpha))
            gate = EgressCapacityGate(
                cache,
                egress_bytes_per_second=rate,
                # bucket must hold the largest single request (8 MB spans)
                burst_seconds=max(60.0, (16 << 20) / rate),
            )
            metrics = MetricsCollector(cache.cost_model)
            for r in small_trace:
                metrics.record(r, gate.handle(r))
            totals = metrics.totals()
            egress[alpha] = totals.egress_bytes
            ingress[alpha] = totals.ingress_bytes
        assert gate.overload_redirects >= 0
        # egress pinned by capacity: within 15% across alphas
        assert egress[2.0] == pytest.approx(egress[1.0], rel=0.15)
        # but the conservative setting ingresses less for it
        assert ingress[2.0] < ingress[1.0]
