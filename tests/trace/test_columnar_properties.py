"""Property tests: packed derived columns vs the scalar chunk model.

The columnar pack derives ``c0``/``c1``/``num_bytes``/``num_chunks`` in
bulk (vectorised when numpy is available).  These properties pin the
bulk derivation to the scalar reference implementations in
``repro.trace.requests`` — ``chunk_range`` and ``request_chunks`` —
across random byte ranges, odd chunk sizes, 1-byte requests, and
ranges ending exactly on a chunk boundary.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.trace.columnar import pack_trace
from repro.trace.requests import Request, chunk_range, request_chunks

request_strategy = st.builds(
    lambda t, video, b0, length: Request(t, video, b0, b0 + length - 1),
    t=st.floats(0, 1e9, allow_nan=False, allow_infinity=False),
    video=st.integers(0, 2**62),
    b0=st.integers(0, 2**40),
    length=st.integers(1, 2**30),
)

# Deliberately include pathological chunk sizes: 1 byte, odd primes,
# powers of two, and the paper's 2 MB default.
chunk_bytes_strategy = st.sampled_from([1, 3, 7, 13, 255, 256, 1024, 4097, 2 * 1024 * 1024])

trace_strategy = st.lists(request_strategy, min_size=1, max_size=30).map(
    lambda reqs: sorted(reqs, key=lambda r: r.t)
)


@given(trace=trace_strategy, chunk_bytes=chunk_bytes_strategy)
@settings(max_examples=60, deadline=None)
def test_derived_columns_match_chunk_range(trace, chunk_bytes):
    packed = pack_trace(trace, chunk_bytes=chunk_bytes)
    c0s = packed.column("c0")
    c1s = packed.column("c1")
    nbs = packed.column("num_bytes")
    ncs = packed.column("num_chunks")
    for i, r in enumerate(trace):
        c0, c1 = chunk_range(r.b0, r.b1, chunk_bytes)
        assert c0s[i] == c0
        assert c1s[i] == c1
        assert nbs[i] == r.b1 - r.b0 + 1
        assert ncs[i] == c1 - c0 + 1


# request_chunks materialises the full chunk-ID list, so keep ranges
# short enough that the reference stays cheap even at chunk_bytes=1.
short_request_strategy = st.builds(
    lambda t, video, b0, length: Request(t, video, b0, b0 + length - 1),
    t=st.floats(0, 1e9, allow_nan=False, allow_infinity=False),
    video=st.integers(0, 2**62),
    b0=st.integers(0, 2**40),
    length=st.integers(1, 5000),
)


@given(
    trace=st.lists(short_request_strategy, min_size=1, max_size=20).map(
        lambda reqs: sorted(reqs, key=lambda r: r.t)
    ),
    chunk_bytes=chunk_bytes_strategy,
)
@settings(max_examples=40, deadline=None)
def test_num_chunks_matches_request_chunks(trace, chunk_bytes):
    packed = pack_trace(trace, chunk_bytes=chunk_bytes)
    ncs = packed.column("num_chunks")
    for i, r in enumerate(trace):
        assert ncs[i] == len(request_chunks(r, chunk_bytes))


@given(
    t=st.floats(0, 1e9, allow_nan=False, allow_infinity=False),
    video=st.integers(0, 2**62),
    b0=st.integers(0, 2**40),
    chunk_bytes=chunk_bytes_strategy,
)
@settings(max_examples=60, deadline=None)
def test_one_byte_requests_cover_one_chunk(t, video, b0, chunk_bytes):
    packed = pack_trace([Request(t, video, b0, b0)], chunk_bytes=chunk_bytes)
    assert packed.column("num_bytes")[0] == 1
    assert packed.column("num_chunks")[0] == 1
    assert packed.column("c0")[0] == packed.column("c1")[0] == b0 // chunk_bytes


@given(
    t=st.floats(0, 1e9, allow_nan=False, allow_infinity=False),
    video=st.integers(0, 2**62),
    chunk=st.integers(0, 2**30),
    chunk_bytes=st.sampled_from([3, 256, 1024, 4097, 2 * 1024 * 1024]),
)
@settings(max_examples=60, deadline=None)
def test_chunk_boundary_b1_is_inclusive(t, video, chunk, chunk_bytes):
    # b1 on the last byte of a chunk must NOT spill into the next chunk;
    # b1 on the first byte of the next chunk must.
    b0 = chunk * chunk_bytes
    last = b0 + chunk_bytes - 1
    packed = pack_trace(
        [Request(t, video, b0, last), Request(t, video, b0, last + 1)],
        chunk_bytes=chunk_bytes,
    )
    assert (packed.column("c0")[0], packed.column("c1")[0]) == (chunk, chunk)
    assert packed.column("num_chunks")[0] == 1
    assert (packed.column("c0")[1], packed.column("c1")[1]) == (chunk, chunk + 1)
    assert packed.column("num_chunks")[1] == 2


@given(trace=trace_strategy, chunk_bytes=chunk_bytes_strategy)
@settings(max_examples=40, deadline=None)
def test_packed_requests_roundtrip(trace, chunk_bytes):
    packed = pack_trace(trace, chunk_bytes=chunk_bytes)
    assert list(packed) == trace
