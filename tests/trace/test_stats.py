"""Tests for TraceStats — the workload-characterization metrics."""

import math

import pytest

from repro.trace.requests import Request
from repro.trace.stats import TraceStats

K = 1024


def req(t, video, c0, c1):
    return Request(t, video, c0 * K, (c1 + 1) * K - 1)


class TestCounters:
    def test_empty(self):
        stats = TraceStats(chunk_bytes=K)
        assert stats.num_requests == 0
        assert stats.duration == 0.0
        assert stats.num_videos == 0
        assert stats.single_hit_fraction() == 0.0
        assert stats.head_concentration() == 0.0

    def test_basic_counts(self):
        stats = TraceStats.from_requests(
            [req(0, 1, 0, 1), req(10, 1, 0, 0), req(20, 2, 5, 5)], chunk_bytes=K
        )
        assert stats.num_requests == 3
        assert stats.num_videos == 2
        assert stats.num_unique_chunks == 3  # (1,0) (1,1) (2,5)
        assert stats.footprint_bytes == 3 * K
        assert stats.duration == 20.0

    def test_requested_bytes(self):
        stats = TraceStats.from_requests([Request(0, 1, 0, 99)], chunk_bytes=K)
        assert stats.total_requested_bytes == 100

    def test_video_hits(self):
        stats = TraceStats.from_requests(
            [req(0, 1, 0, 0), req(1, 1, 0, 0), req(2, 2, 0, 0)], chunk_bytes=K
        )
        assert stats.video_hits[1] == 2
        assert stats.video_hits[2] == 1


class TestDerived:
    def test_single_hit_fraction(self):
        stats = TraceStats.from_requests(
            [req(0, 1, 0, 0), req(1, 1, 0, 0), req(2, 2, 0, 0), req(3, 3, 0, 0)],
            chunk_bytes=K,
        )
        assert stats.single_hit_fraction() == pytest.approx(2 / 3)

    def test_head_concentration(self):
        # 10 videos; video 0 gets 91 hits, others 1 each
        requests = [req(float(i), 0, 0, 0) for i in range(91)]
        requests += [req(100.0 + v, v, 0, 0) for v in range(1, 10)]
        stats = TraceStats.from_requests(requests, chunk_bytes=K)
        assert stats.head_concentration(0.1) == pytest.approx(0.91)

    def test_head_concentration_validation(self):
        with pytest.raises(ValueError):
            TraceStats().head_concentration(0.0)

    def test_zipf_fit_on_exact_zipf(self):
        # construct counts following rank^-1 exactly
        requests = []
        t = 0.0
        for rank in range(1, 51):
            count = max(1, round(1000 / rank))
            for _ in range(count):
                requests.append(req(t, rank, 0, 0))
                t += 1.0
        stats = TraceStats.from_requests(requests, chunk_bytes=K)
        assert stats.zipf_exponent() == pytest.approx(1.0, abs=0.1)

    def test_zipf_needs_three_videos(self):
        stats = TraceStats.from_requests([req(0, 1, 0, 0), req(1, 2, 0, 0)], chunk_bytes=K)
        with pytest.raises(ValueError):
            stats.zipf_exponent()

    def test_early_chunk_bias(self):
        requests = [req(float(i), 1, 0, 0) for i in range(10)]  # 10 hits chunk 0
        requests.append(req(100.0, 1, 5, 5))  # 1 hit on a late chunk
        stats = TraceStats.from_requests(requests, chunk_bytes=K)
        assert stats.early_chunk_bias(prefix_chunks=1) == pytest.approx(10.0)

    def test_early_chunk_bias_no_tail(self):
        stats = TraceStats.from_requests([req(0, 1, 0, 0)], chunk_bytes=K)
        assert stats.early_chunk_bias(prefix_chunks=1) == float("inf")

    def test_diurnal_peak_to_trough(self):
        # all requests in one hour bucket -> some hours empty -> inf
        stats = TraceStats.from_requests([req(10.0, 1, 0, 0)], chunk_bytes=K)
        assert stats.diurnal_peak_to_trough() == float("inf")

    def test_summary_keys(self):
        stats = TraceStats.from_requests(
            [req(float(i), v, 0, 0) for i, v in enumerate([1, 2, 3, 1])],
            chunk_bytes=K,
        )
        summary = stats.summary()
        assert {"requests", "videos", "unique_chunks", "zipf_exponent"} <= set(summary)


class TestSyntheticTraceProperties:
    """The generated workloads must show the paper's trace properties."""

    @pytest.fixture(scope="class")
    def stats(self, small_trace):
        return TraceStats.from_requests(small_trace)

    def test_zipf_like_popularity(self, stats):
        assert 0.5 <= stats.zipf_exponent() <= 2.0

    def test_heavy_head(self, stats):
        assert stats.head_concentration(0.1) > 0.35

    def test_long_tail_of_rare_videos(self, stats):
        assert stats.single_hit_fraction() > 0.10

    def test_early_chunk_bias_present(self, stats):
        bias = stats.early_chunk_bias(prefix_chunks=2)
        assert bias > 2.0

    def test_diurnal_swing_present(self, stats):
        ratio = stats.diurnal_peak_to_trough()
        assert math.isinf(ratio) or ratio > 1.5
