"""PackedTraceBuilder: streaming append/finalize vs one-shot pack_trace."""

from __future__ import annotations

import pytest

from repro.trace.columnar import (
    _COLUMNS,
    PackedTrace,
    PackedTraceBuilder,
    pack_trace,
)
from repro.trace.requests import Request

K = 1024


def columns_equal(a: PackedTrace, b: PackedTrace) -> bool:
    if len(a) != len(b) or a.chunk_bytes != b.chunk_bytes:
        return False
    return all(
        list(a.column(name)) == list(b.column(name)) for name, _ in _COLUMNS
    )


def sample_requests(n: int = 500) -> list:
    """Deterministic requests with interleaved (unsorted) timestamps."""
    requests = []
    for i in range(n):
        t = float((i * 7919) % 97)  # visits many ties, out of order
        b0 = (i % 13) * K
        b1 = b0 + (i % 5 + 1) * K - 1
        requests.append(Request(t=t, video=i % 37, b0=b0, b1=b1))
    return requests


class TestBuilderEquivalence:
    def test_matches_pack_trace_of_sorted_objects(self):
        requests = sample_requests()
        builder = PackedTraceBuilder(chunk_bytes=K)
        for r in requests:
            builder.append(r.t, r.video, r.b0, r.b1)
        packed = builder.finalize()
        reference = pack_trace(
            sorted(requests, key=lambda r: r.t), chunk_bytes=K
        )
        assert columns_equal(packed, reference)

    def test_stable_sort_preserves_tie_order(self):
        """Equal timestamps keep append order — the same tie behaviour
        as ``list.sort(key=lambda r: r.t)`` on materialized requests."""
        builder = PackedTraceBuilder(chunk_bytes=K)
        builder.append(5.0, 1, 0, K - 1)
        builder.append(1.0, 2, 0, K - 1)
        builder.append(1.0, 3, 0, K - 1)
        builder.append(1.0, 4, 0, K - 1)
        packed = builder.finalize()
        assert list(packed.column("video")) == [2, 3, 4, 1]

    def test_small_flush_blocks_match_single_block(self):
        requests = sample_requests(300)
        small = PackedTraceBuilder(chunk_bytes=K, flush_every=7)
        big = PackedTraceBuilder(chunk_bytes=K, flush_every=1 << 20)
        small.extend(requests)
        big.extend(requests)
        assert columns_equal(small.finalize(), big.finalize())

    def test_already_sorted_input_skips_nothing(self):
        requests = sorted(sample_requests(100), key=lambda r: r.t)
        builder = PackedTraceBuilder(chunk_bytes=K)
        builder.extend(requests)
        assert columns_equal(
            builder.finalize(), pack_trace(requests, chunk_bytes=K)
        )

    def test_empty_builder_finalizes_empty_trace(self):
        packed = PackedTraceBuilder(chunk_bytes=K).finalize()
        assert len(packed) == 0
        assert packed.chunk_bytes == K


class TestBuilderValidation:
    def test_invalid_byte_range_rejected(self):
        builder = PackedTraceBuilder(chunk_bytes=K)
        with pytest.raises(ValueError, match="invalid byte range"):
            builder.append(0.0, 1, 10, 5)
        with pytest.raises(ValueError, match="invalid byte range"):
            builder.append(0.0, 1, -1, 5)

    def test_int64_overflow_rejected(self):
        builder = PackedTraceBuilder(chunk_bytes=K, flush_every=1)
        with pytest.raises(OverflowError):
            builder.append(0.0, 1, 0, 1 << 63)

    def test_single_use(self):
        builder = PackedTraceBuilder(chunk_bytes=K)
        builder.append(0.0, 1, 0, K - 1)
        builder.finalize()
        with pytest.raises(RuntimeError, match="finalized"):
            builder.append(1.0, 2, 0, K - 1)
        with pytest.raises(RuntimeError, match="finalized"):
            builder.finalize()

    def test_constructor_validation(self):
        with pytest.raises(ValueError):
            PackedTraceBuilder(chunk_bytes=0)
        with pytest.raises(ValueError):
            PackedTraceBuilder(chunk_bytes=K, flush_every=0)

    def test_len_tracks_appends(self):
        builder = PackedTraceBuilder(chunk_bytes=K, flush_every=2)
        for i in range(5):
            builder.append(float(i), i, 0, K - 1)
        assert len(builder) == 5
