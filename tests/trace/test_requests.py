"""Tests for the request/chunk model (Section 4)."""

import pytest
from hypothesis import given, strategies as st

from repro.trace.requests import (
    DEFAULT_CHUNK_BYTES,
    Request,
    chunk_range,
    request_chunks,
)

K = 1024


class TestChunkRange:
    def test_single_chunk(self):
        assert chunk_range(0, K - 1, K) == (0, 0)

    def test_spanning_boundary(self):
        assert chunk_range(K - 1, K, K) == (0, 1)

    def test_aligned_multi_chunk(self):
        assert chunk_range(2 * K, 5 * K - 1, K) == (2, 4)

    def test_single_byte(self):
        assert chunk_range(3 * K + 7, 3 * K + 7, K) == (3, 3)

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            chunk_range(10, 5, K)
        with pytest.raises(ValueError):
            chunk_range(-1, 5, K)

    def test_invalid_chunk_size_rejected(self):
        with pytest.raises(ValueError):
            chunk_range(0, 10, 0)

    def test_default_chunk_is_2mb(self):
        assert DEFAULT_CHUNK_BYTES == 2 * 1024 * 1024

    @given(b0=st.integers(0, 10**9), length=st.integers(1, 10**8))
    def test_property_covers_endpoints(self, b0, length):
        b1 = b0 + length - 1
        c0, c1 = chunk_range(b0, b1, K)
        assert c0 * K <= b0 < (c0 + 1) * K
        assert c1 * K <= b1 < (c1 + 1) * K
        assert c0 <= c1


class TestRequest:
    def test_num_bytes_inclusive(self):
        r = Request(0.0, 1, 100, 199)
        assert r.num_bytes == 100

    def test_invalid_range_rejected(self):
        with pytest.raises(ValueError):
            Request(0.0, 1, 100, 50)

    def test_num_chunks(self):
        r = Request(0.0, 1, 0, 3 * K - 1)
        assert r.num_chunks(K) == 3

    def test_chunk_ids(self):
        r = Request(0.0, 7, K, 3 * K - 1)
        assert list(r.chunk_ids(K)) == [(7, 1), (7, 2)]

    def test_request_chunks_helper(self):
        r = Request(0.0, 7, 0, 2 * K - 1)
        assert request_chunks(r, K) == [(7, 0), (7, 1)]

    def test_frozen(self):
        r = Request(0.0, 1, 0, 10)
        with pytest.raises(AttributeError):
            r.t = 5.0  # type: ignore[misc]

    def test_equality(self):
        assert Request(1.0, 2, 3, 4) == Request(1.0, 2, 3, 4)
        assert Request(1.0, 2, 3, 4) != Request(1.0, 2, 3, 5)


class TestClipped:
    def test_no_clip_needed(self):
        r = Request(0.0, 1, 0, 99)
        assert r.clipped(1000) == r

    def test_clip_tail(self):
        r = Request(0.0, 1, 50, 500)
        clipped = r.clipped(100)
        assert clipped is not None
        assert (clipped.b0, clipped.b1) == (50, 99)

    def test_fully_beyond_cap_dropped(self):
        r = Request(0.0, 1, 200, 300)
        assert r.clipped(100) is None

    def test_boundary_exact(self):
        r = Request(0.0, 1, 99, 150)
        clipped = r.clipped(100)
        assert clipped is not None and (clipped.b0, clipped.b1) == (99, 99)

    @given(
        b0=st.integers(0, 10**6),
        length=st.integers(1, 10**6),
        cap=st.integers(1, 2 * 10**6),
    )
    def test_property_clip_within_cap(self, b0, length, cap):
        r = Request(0.0, 1, b0, b0 + length - 1)
        clipped = r.clipped(cap)
        if b0 >= cap:
            assert clipped is None
        else:
            assert clipped is not None
            assert clipped.b1 <= cap - 1
            assert clipped.b0 == b0
            assert clipped.num_bytes <= r.num_bytes
