"""Property tests: trace serialization round-trips exactly."""

from hypothesis import given, settings, strategies as st

from repro.trace.io import (
    read_trace_csv,
    read_trace_jsonl,
    write_trace_csv,
    write_trace_jsonl,
)
from repro.trace.requests import Request

request_strategy = st.builds(
    lambda t, video, b0, length: Request(t, video, b0, b0 + length - 1),
    t=st.floats(0, 1e9, allow_nan=False, allow_infinity=False),
    video=st.integers(0, 2**62),
    b0=st.integers(0, 2**40),
    length=st.integers(1, 2**30),
)


@settings(max_examples=40, deadline=None)
@given(trace=st.lists(request_strategy, max_size=50))
def test_csv_roundtrip_exact(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "t.csv"
    write_trace_csv(path, trace)
    assert list(read_trace_csv(path)) == trace


@settings(max_examples=40, deadline=None)
@given(trace=st.lists(request_strategy, max_size=50))
def test_jsonl_roundtrip_exact(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "t.jsonl"
    write_trace_jsonl(path, trace)
    assert list(read_trace_jsonl(path)) == trace


@settings(max_examples=20, deadline=None)
@given(trace=st.lists(request_strategy, min_size=1, max_size=30))
def test_gzip_roundtrip_exact(trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("io") / "t.csv.gz"
    write_trace_csv(path, trace)
    assert list(read_trace_csv(path)) == trace
