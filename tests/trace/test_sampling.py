"""Tests for the Section 9.1 down-sampling pipeline."""

from collections import Counter

import pytest

from repro.trace.requests import Request
from repro.trace.sampling import (
    disk_chunks_for_fraction,
    downsample_trace,
    select_files_uniform_by_rank,
    time_window,
)

K = 1024


def req(t, video, b0=0, b1=K - 1):
    return Request(t, video, b0, b1)


class TestTimeWindow:
    def test_half_open_interval(self):
        trace = [req(0.0, 1), req(5.0, 2), req(10.0, 3)]
        assert time_window(trace, 0.0, 10.0) == trace[:2]

    def test_empty_window_rejected(self):
        with pytest.raises(ValueError):
            time_window([], 10.0, 5.0)

    def test_order_preserved(self):
        trace = [req(1.0, 1), req(2.0, 2), req(3.0, 1)]
        assert time_window(trace, 0.0, 100.0) == trace


class TestSelectFilesUniform:
    def test_selects_m_files(self):
        hits = Counter({v: 100 - v for v in range(100)})
        chosen = select_files_uniform_by_rank(hits, 10)
        assert len(chosen) == 10
        assert len(set(chosen)) == 10

    def test_spans_head_and_tail(self):
        hits = Counter({v: 1000 // (v + 1) for v in range(100)})
        chosen = select_files_uniform_by_rank(hits, 10)
        ranked = [v for v, _ in hits.most_common()]
        positions = [ranked.index(v) for v in chosen]
        assert min(positions) == 0  # includes the most popular file
        assert max(positions) >= 80  # reaches the tail

    def test_m_larger_than_population(self):
        hits = Counter({1: 5, 2: 3})
        assert set(select_files_uniform_by_rank(hits, 10)) == {1, 2}

    def test_m_validation(self):
        with pytest.raises(ValueError):
            select_files_uniform_by_rank(Counter({1: 1}), 0)


class TestDownsample:
    def test_restricts_to_selected_files(self):
        trace = [req(float(i), v) for i, v in enumerate([1, 2, 3, 4, 5] * 4)]
        sample = downsample_trace(trace, num_files=2, max_file_bytes=None)
        assert len({r.video for r in sample}) == 2

    def test_size_cap_clips(self):
        trace = [Request(0.0, 1, 0, 10 * K), Request(1.0, 1, 20 * K, 30 * K)]
        sample = downsample_trace(trace, num_files=1, max_file_bytes=5 * K)
        assert len(sample) == 1  # second request lies beyond the cap
        assert sample[0].b1 == 5 * K - 1

    def test_window_applied_first(self):
        trace = [req(0.0, 1), req(100.0, 2)]
        sample = downsample_trace(
            trace, num_files=10, max_file_bytes=None, window=(0.0, 50.0)
        )
        assert [r.video for r in sample] == [1]

    def test_empty_input(self):
        assert downsample_trace([], num_files=10) == []

    def test_paper_defaults(self, small_trace):
        t0 = small_trace[0].t
        sample = downsample_trace(
            small_trace, window=(t0, t0 + 2 * 86400.0)
        )
        videos = {r.video for r in sample}
        assert 0 < len(videos) <= 100
        assert all(r.b1 < 20 * 1024 * 1024 for r in sample)
        # chronological order preserved
        assert all(a.t <= b.t for a, b in zip(sample, sample[1:]))


class TestDiskSizing:
    def test_five_percent_of_unique_chunks(self):
        # 100 unique chunks -> 5
        trace = [Request(float(c), 1, c * K, (c + 1) * K - 1) for c in range(100)]
        assert disk_chunks_for_fraction(trace, 0.05, chunk_bytes=K) == 5

    def test_at_least_one(self):
        trace = [Request(0.0, 1, 0, K - 1)]
        assert disk_chunks_for_fraction(trace, 0.05, chunk_bytes=K) == 1

    def test_duplicates_not_double_counted(self):
        trace = [Request(float(i), 1, 0, K - 1) for i in range(50)]
        assert disk_chunks_for_fraction(trace, 1.0, chunk_bytes=K) == 1

    def test_fraction_validation(self):
        with pytest.raises(ValueError):
            disk_chunks_for_fraction([], 0.0)
