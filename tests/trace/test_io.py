"""Round-trip and format tests for trace I/O."""

import pytest

from repro.trace.io import (
    read_trace_csv,
    read_trace_jsonl,
    write_trace_csv,
    write_trace_jsonl,
)
from repro.trace.requests import Request


@pytest.fixture
def sample():
    return [
        Request(0.0, 1, 0, 1023),
        Request(1.5, 2, 2048, 4095),
        Request(1.5, 1, 0, 0),
        Request(86400.123456, 999999, 10**9, 2 * 10**9),
    ]


class TestCsv:
    def test_roundtrip(self, tmp_path, sample):
        path = tmp_path / "trace.csv"
        assert write_trace_csv(path, sample) == len(sample)
        assert list(read_trace_csv(path)) == sample

    def test_roundtrip_gzip(self, tmp_path, sample):
        path = tmp_path / "trace.csv.gz"
        write_trace_csv(path, sample)
        assert list(read_trace_csv(path)) == sample
        # actually compressed: gzip magic bytes
        assert path.read_bytes()[:2] == b"\x1f\x8b"

    def test_empty_trace(self, tmp_path):
        path = tmp_path / "empty.csv"
        assert write_trace_csv(path, []) == 0
        assert list(read_trace_csv(path)) == []

    def test_float_precision_preserved(self, tmp_path):
        r = Request(0.1 + 0.2, 1, 0, 1)
        path = tmp_path / "p.csv"
        write_trace_csv(path, [r])
        assert next(iter(read_trace_csv(path))).t == r.t

    def test_bad_header_rejected(self, tmp_path):
        path = tmp_path / "bad.csv"
        path.write_text("time,vid,start,end\n1,2,3,4\n")
        with pytest.raises(ValueError, match="unexpected trace header"):
            list(read_trace_csv(path))

    def test_streaming_reader_is_lazy(self, tmp_path, sample):
        path = tmp_path / "trace.csv"
        write_trace_csv(path, sample)
        reader = read_trace_csv(path)
        assert next(reader) == sample[0]  # no full materialization needed


class TestJsonl:
    def test_roundtrip(self, tmp_path, sample):
        path = tmp_path / "trace.jsonl"
        assert write_trace_jsonl(path, sample) == len(sample)
        assert list(read_trace_jsonl(path)) == sample

    def test_roundtrip_gzip(self, tmp_path, sample):
        path = tmp_path / "trace.jsonl.gz"
        write_trace_jsonl(path, sample)
        assert list(read_trace_jsonl(path)) == sample

    def test_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "trace.jsonl"
        path.write_text('{"t": 1.0, "video": 2, "b0": 0, "b1": 9}\n\n\n')
        assert list(read_trace_jsonl(path)) == [Request(1.0, 2, 0, 9)]

    def test_generator_input(self, tmp_path, sample):
        path = tmp_path / "gen.jsonl"
        write_trace_jsonl(path, (r for r in sample))
        assert list(read_trace_jsonl(path)) == sample
