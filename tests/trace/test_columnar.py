"""Unit tests for the columnar trace representation."""

import pickle

import pytest

from repro.trace.columnar import (
    PackedTrace,
    SharedTraceHandle,
    active_shared_traces,
    pack_trace,
)
from repro.trace.requests import DEFAULT_CHUNK_BYTES, Request

CHUNK = 1024


def _trace(n=50):
    return [
        Request(float(i) * 1.5, i % 7, (i * 37) % 4000, (i * 37) % 4000 + 900 + i)
        for i in range(n)
    ]


class TestPackTrace:
    def test_roundtrip_requests(self):
        trace = _trace()
        packed = pack_trace(trace, chunk_bytes=CHUNK)
        assert len(packed) == len(trace)
        assert list(packed) == trace
        assert packed[0] == trace[0]
        assert packed[-1] == trace[-1]

    def test_derived_columns(self):
        trace = _trace()
        packed = pack_trace(trace, chunk_bytes=CHUNK)
        for i, r in enumerate(trace):
            c0, c1 = r.chunks(CHUNK)
            assert packed.column("c0")[i] == c0
            assert packed.column("c1")[i] == c1
            assert packed.column("num_bytes")[i] == r.num_bytes
            assert packed.column("num_chunks")[i] == r.num_chunks(CHUNK)

    def test_default_chunk_bytes(self):
        packed = pack_trace(_trace(3))
        assert packed.chunk_bytes == DEFAULT_CHUNK_BYTES

    def test_time_order_validation_mirrors_engine(self):
        trace = [Request(5.0, 1, 0, 10), Request(1.0, 1, 0, 10)]
        with pytest.raises(ValueError, match="trace not time-ordered at index 1"):
            pack_trace(trace, chunk_bytes=CHUNK)

    def test_rejects_nonpositive_chunk_bytes(self):
        with pytest.raises(ValueError, match="chunk_bytes"):
            pack_trace(_trace(2), chunk_bytes=0)

    def test_pack_of_packed_is_identity(self):
        packed = pack_trace(_trace(), chunk_bytes=CHUNK)
        assert pack_trace(packed, chunk_bytes=CHUNK) is packed

    def test_pack_of_packed_rechunks(self):
        trace = _trace()
        packed = pack_trace(trace, chunk_bytes=CHUNK)
        repacked = pack_trace(packed, chunk_bytes=256)
        assert repacked.chunk_bytes == 256
        for i, r in enumerate(trace):
            c0, c1 = r.chunks(256)
            assert repacked.column("c0")[i] == c0
            assert repacked.column("c1")[i] == c1
            assert repacked.column("num_chunks")[i] == c1 - c0 + 1
        # source columns are shared, not copied
        assert list(repacked.column("b0")) == list(packed.column("b0"))

    def test_empty_trace(self):
        packed = pack_trace([], chunk_bytes=CHUNK)
        assert len(packed) == 0
        assert list(packed) == []


class TestSequenceProtocol:
    def test_slice_is_zero_copy_view(self):
        trace = _trace()
        packed = pack_trace(trace, chunk_bytes=CHUNK)
        view = packed[10:20]
        assert isinstance(view, PackedTrace)
        assert list(view) == trace[10:20]
        assert view.chunk_bytes == CHUNK

    def test_slice_with_step(self):
        trace = _trace()
        packed = pack_trace(trace, chunk_bytes=CHUNK)
        assert list(packed[::7]) == trace[::7]

    def test_negative_index(self):
        trace = _trace()
        packed = pack_trace(trace, chunk_bytes=CHUNK)
        assert packed[-3] == trace[-3]

    def test_index_out_of_range(self):
        packed = pack_trace(_trace(5), chunk_bytes=CHUNK)
        with pytest.raises(IndexError):
            packed[5]

    def test_hot_columns_are_plain_lists(self):
        packed = pack_trace(_trace(), chunk_bytes=CHUNK)
        hot = packed.hot_columns()
        assert len(hot) == 8
        assert all(isinstance(col, list) for col in hot)
        assert hot is packed.hot_columns()  # cached

    def test_pickle_roundtrip(self):
        trace = _trace()
        packed = pack_trace(trace, chunk_bytes=CHUNK)
        clone = pickle.loads(pickle.dumps(packed))
        assert list(clone) == trace
        assert clone.chunk_bytes == CHUNK


class TestSharedMemory:
    def test_export_attach_roundtrip(self):
        trace = _trace()
        packed = pack_trace(trace, chunk_bytes=CHUNK)
        handle = packed.to_shared()
        try:
            assert handle.name in active_shared_traces()
            assert len(handle) == len(trace)
            attached = handle.attach()
            assert list(attached) == trace
            assert attached.chunk_bytes == CHUNK
            attached.close()
        finally:
            handle.unlink()
        assert handle.name not in active_shared_traces()

    def test_handle_pickles_small(self):
        packed = pack_trace(_trace(), chunk_bytes=CHUNK)
        handle = packed.to_shared()
        try:
            blob = pickle.dumps(handle)
            # the whole point: constant-size vs O(trace) pickling
            assert len(blob) < 256
            clone = pickle.loads(blob)
            assert isinstance(clone, SharedTraceHandle)
            assert clone.name == handle.name
            attached = clone.attach()
            assert attached[0] == packed[0]
            attached.close()
        finally:
            handle.unlink()

    def test_unlink_is_idempotent(self):
        packed = pack_trace(_trace(5), chunk_bytes=CHUNK)
        handle = packed.to_shared()
        handle.unlink()
        handle.unlink()  # second call must not raise
        assert handle.name not in active_shared_traces()

    def test_empty_trace_cannot_be_shared(self):
        packed = pack_trace([], chunk_bytes=CHUNK)
        with pytest.raises(ValueError, match="empty trace"):
            packed.to_shared()
