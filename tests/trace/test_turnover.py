"""Tests for popularity-turnover measurement."""

import pytest

from repro.trace.requests import Request
from repro.trace.turnover import popularity_turnover, top_videos_by_window

K = 1024


def req(t, video, nbytes=K):
    return Request(t, video, 0, nbytes - 1)


class TestTopVideos:
    def test_validation(self):
        with pytest.raises(ValueError):
            top_videos_by_window([], window=0.0, top_k=5)
        with pytest.raises(ValueError):
            top_videos_by_window([], window=10.0, top_k=0)

    def test_ranked_by_bytes_not_count(self):
        trace = [req(0.0, 1, nbytes=10 * K)] + [req(0.1, 2, nbytes=K)] * 3
        tops = top_videos_by_window(trace, window=10.0, top_k=2)
        assert tops[0.0] == [1, 2]

    def test_window_alignment(self):
        trace = [req(5.0, 1), req(15.0, 2)]
        tops = top_videos_by_window(trace, window=10.0, top_k=5)
        assert set(tops) == {0.0, 10.0}

    def test_top_k_truncates(self):
        trace = [req(0.0, v) for v in range(10)]
        tops = top_videos_by_window(trace, window=10.0, top_k=3)
        assert len(tops[0.0]) == 3


class TestTurnover:
    def test_identical_windows_no_turnover(self):
        trace = [req(t, v) for t in (0.0, 10.0) for v in range(5)]
        samples = popularity_turnover(trace, window=10.0, top_k=5)
        assert len(samples) == 1
        assert samples[0].jaccard == 1.0
        assert samples[0].new_fraction == 0.0

    def test_disjoint_windows_full_turnover(self):
        trace = [req(0.0, v) for v in range(5)]
        trace += [req(10.0, v) for v in range(100, 105)]
        samples = popularity_turnover(trace, window=10.0, top_k=5)
        assert samples[0].jaccard == 0.0
        assert samples[0].new_fraction == 1.0

    def test_partial_overlap(self):
        trace = [req(0.0, v) for v in (1, 2, 3)]
        trace += [req(10.0, v) for v in (2, 3, 4)]
        samples = popularity_turnover(trace, window=10.0, top_k=3)
        assert samples[0].jaccard == pytest.approx(2 / 4)
        assert samples[0].new_fraction == pytest.approx(1 / 3)

    def test_single_window_no_samples(self):
        trace = [req(0.0, 1), req(1.0, 2)]
        assert popularity_turnover(trace, window=100.0) == []

    def test_synthetic_trace_churns(self, medium_trace):
        """The paper's premise: the popular set is transient."""
        samples = popularity_turnover(medium_trace, window=2 * 86400.0, top_k=30)
        assert len(samples) >= 3
        mean_new = sum(s.new_fraction for s in samples) / len(samples)
        # some churn every couple of days, but not total chaos
        assert 0.05 < mean_new < 0.9
