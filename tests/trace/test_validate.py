"""Tests for trace validation and repair."""

import pytest

from repro.trace.requests import Request
from repro.trace.validate import repair_trace, validate_trace

K = 1024


def req(t, video=1, b0=0, b1=K - 1):
    return Request(t, video, b0, b1)


class TestValidateClean:
    def test_empty_trace_ok(self):
        report = validate_trace([])
        assert report.ok
        assert report.num_requests == 0
        assert "no issues" in report.summary()

    def test_clean_trace_ok(self, small_trace):
        report = validate_trace(small_trace[:500])
        assert report.ok

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            validate_trace([], size_jump_factor=1.0)
        with pytest.raises(ValueError):
            validate_trace([], duplicate_threshold=0)


class TestTimeOrder:
    def test_out_of_order_flagged(self):
        report = validate_trace([req(10.0), req(5.0)])
        assert report.by_kind()["time-order"] == 1
        assert report.issues[0].index == 1

    def test_equal_timestamps_ok(self):
        report = validate_trace([req(5.0, video=1), req(5.0, video=2)])
        assert report.ok


class TestSizeJump:
    def test_wild_extent_jump_flagged(self):
        trace = [
            req(0.0, video=7, b0=0, b1=K - 1),
            # same video suddenly 10000x bigger: ID-collision symptom
            req(1.0, video=7, b0=0, b1=10_000 * K * K),
        ]
        report = validate_trace(trace)
        assert report.by_kind()["size-jump"] == 1

    def test_moderate_growth_ok(self):
        trace = [
            req(0.0, video=7, b0=0, b1=10 * K),
            req(1.0, video=7, b0=0, b1=20 * K),  # file grew; fine
        ]
        assert validate_trace(trace).ok

    def test_small_files_never_trip(self):
        trace = [
            req(0.0, video=7, b0=0, b1=10),
            req(1.0, video=7, b0=0, b1=100_000),  # below the 1 MB floor
        ]
        assert validate_trace(trace).ok


class TestDuplicates:
    def test_triplicate_flagged(self):
        trace = [req(1.0), req(1.0), req(1.0)]
        report = validate_trace(trace, duplicate_threshold=2)
        assert report.by_kind()["duplicate"] == 1

    def test_pair_below_threshold_ok(self):
        trace = [req(1.0), req(1.0)]
        assert validate_trace(trace, duplicate_threshold=2).ok

    def test_max_issues_caps_report(self):
        trace = [req(1.0)] * 50
        report = validate_trace(trace, duplicate_threshold=1, max_issues=5)
        assert len(report.issues) == 5


class TestRepair:
    def test_restores_time_order(self):
        trace = [req(10.0, video=1), req(5.0, video=2), req(7.0, video=3)]
        repaired = repair_trace(trace)
        assert [r.t for r in repaired] == [5.0, 7.0, 10.0]
        assert validate_trace(repaired).ok

    def test_stable_for_equal_timestamps(self):
        trace = [req(5.0, video=1), req(5.0, video=2)]
        assert [r.video for r in repair_trace(trace)] == [1, 2]

    def test_repaired_trace_replays(self, small_trace):
        import random

        shuffled = list(small_trace[:300])
        random.Random(3).shuffle(shuffled)
        repaired = repair_trace(shuffled)

        from repro.core.xlru import XlruCache
        from repro.sim.engine import replay

        result = replay(XlruCache(64), repaired)
        assert result.num_requests == 300
