"""Tests for the HTTP-log adapters."""

import pytest

from repro.trace.adapters import (
    ParseStats,
    parse_clf_range_line,
    read_clf_log,
    read_tsv_log,
)
from repro.trace.requests import Request

GOOD_CLF = (
    '- - [13/Apr/2014:09:21:30 +0000] "GET /videos/123456 HTTP/1.1" '
    '206 2097152 "bytes=0-2097151"'
)


class TestClfLine:
    def test_good_line(self):
        r = parse_clf_range_line(GOOD_CLF)
        assert r is not None
        assert r.video == 123456
        assert (r.b0, r.b1) == (0, 2097151)
        # 2014-04-13T09:21:30Z
        assert r.t == pytest.approx(1397380890.0)

    def test_epoch_rebasing(self):
        r = parse_clf_range_line(GOOD_CLF, epoch=1397380890.0)
        assert r.t == pytest.approx(0.0)

    def test_query_string_id(self):
        line = GOOD_CLF.replace("/videos/123456", "/watch/777?quality=hd")
        r = parse_clf_range_line(line)
        assert r is not None and r.video == 777

    def test_no_range_header_uses_cap(self):
        line = '- - [13/Apr/2014:09:21:30 +0000] "GET /videos/5 HTTP/1.1" 200 999'
        r = parse_clf_range_line(line, whole_file_bytes=1000)
        assert r is not None
        assert (r.b0, r.b1) == (0, 999)

    def test_timezone_offset_honoured(self):
        plus_two = GOOD_CLF.replace("+0000", "+0200")
        r = parse_clf_range_line(plus_two)
        assert r.t == pytest.approx(1397380890.0 - 7200.0)

    @pytest.mark.parametrize(
        "bad",
        [
            "",
            "garbage",
            # non-2xx
            GOOD_CLF.replace(" 206 ", " 302 "),
            # POST
            GOOD_CLF.replace("GET", "POST"),
            # no numeric video id
            GOOD_CLF.replace("/videos/123456", "/healthz"),
            # inverted range
            GOOD_CLF.replace("bytes=0-2097151", "bytes=100-5"),
            # unparseable date
            GOOD_CLF.replace("13/Apr/2014", "99/Xxx/2014"),
        ],
    )
    def test_bad_lines_rejected(self, bad):
        assert parse_clf_range_line(bad) is None


class TestClfStream:
    def test_skips_counted(self):
        stats = ParseStats()
        lines = [GOOD_CLF, "garbage", "", GOOD_CLF]
        requests = list(read_clf_log(lines, stats=stats))
        assert len(requests) == 2
        assert stats.parsed == 2
        assert stats.skipped == 1  # blank lines are not counted
        assert stats.examples == ["garbage"]

    def test_example_cap(self):
        stats = ParseStats()
        list(read_clf_log(["bad"] * 20, stats=stats))
        assert stats.skipped == 20
        assert len(stats.examples) == 5


class TestTsv:
    def test_good_records(self):
        lines = ["0.5\t42\t0-1023", "1.5\t43\t2048-4095"]
        assert list(read_tsv_log(lines)) == [
            Request(0.5, 42, 0, 1023),
            Request(1.5, 43, 2048, 4095),
        ]

    def test_comments_and_blanks_skipped_silently(self):
        stats = ParseStats()
        lines = ["# header", "", "0.5\t42\t0-1023"]
        assert len(list(read_tsv_log(lines, stats=stats))) == 1
        assert stats.skipped == 0

    @pytest.mark.parametrize(
        "bad",
        [
            "justonefield",
            "0.5\t42",  # missing range
            "x\t42\t0-10",  # bad timestamp
            "0.5\tvid\t0-10",  # bad id
            "0.5\t42\t10-5",  # inverted
            "0.5\t42\t-5-10",  # negative start parses as '' split
        ],
    )
    def test_bad_records_counted(self, bad):
        stats = ParseStats()
        assert list(read_tsv_log([bad], stats=stats)) == []
        assert stats.skipped == 1

    def test_pipeline_into_validation(self):
        """Adapter output flows into validate/repair as promised."""
        from repro.trace.validate import repair_trace, validate_trace

        lines = ["5.0\t1\t0-99", "1.0\t2\t0-99"]  # time-skewed
        requests = list(read_tsv_log(lines))
        assert not validate_trace(requests).ok
        assert validate_trace(repair_trace(requests)).ok
