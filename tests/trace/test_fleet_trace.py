"""FleetTrace: merge plan vs heapq.merge, validation, shared memory."""

from __future__ import annotations

import heapq
import pickle

import pytest

from repro.trace.columnar import active_shared_traces, pack_trace
from repro.trace.fleet import FleetTrace
from repro.trace.requests import Request

K = 1024


def edge_requests(seed: int, n: int, step: float) -> list:
    """Deterministic time-sorted requests for one synthetic edge."""
    requests = []
    t = float(seed)
    for i in range(n):
        t += ((seed * 31 + i * 17) % 5) * step
        b0 = (i % 7) * K
        b1 = b0 + ((i + seed) % 3 + 1) * K - 1
        requests.append(Request(t=t, video=(seed * 1000) + i % 11, b0=b0, b1=b1))
    return requests


@pytest.fixture()
def edge_objects():
    return {
        "gamma": edge_requests(3, 40, 0.5),
        "alpha": edge_requests(1, 55, 0.25),
        "beta": edge_requests(2, 0, 1.0),  # an empty edge
        "delta": edge_requests(4, 30, 0.75),
    }


@pytest.fixture()
def fleet(edge_objects):
    return FleetTrace(
        {name: pack_trace(trace, K) for name, trace in edge_objects.items()}
    )


def reference_merge(edge_objects):
    """The object lane's merged order: heapq.merge over (t, i, name)."""

    def stream(name, trace):
        return ((r.t, i, name, r) for i, r in enumerate(trace))

    streams = [stream(name, trace) for name, trace in edge_objects.items()]
    return [
        (name, r) for _t, _i, name, r in heapq.merge(*streams)
    ]


class TestMergePlan:
    def test_merged_matches_heapq_reference(self, fleet, edge_objects):
        got = [(name, r) for name, r in fleet.merged()]
        assert got == reference_merge(edge_objects)

    def test_runs_partition_the_stream(self, fleet):
        run_edge, run_start, run_stop = fleet.merge_runs()
        assert sum(
            stop - start for start, stop in zip(run_start, run_stop)
        ) == len(fleet)
        # Consecutive runs always switch edges (runs are maximal).
        assert all(
            a != b for a, b in zip(run_edge, run_edge[1:])
        )

    def test_equal_timestamps_tie_break_on_name(self):
        # Two edges, one request each at the same instant: the object
        # lane orders by (t, position, edge name), so "a" precedes "z".
        shard = pack_trace([Request(t=1.0, video=7, b0=0, b1=K - 1)], K)
        fleet = FleetTrace({"z": shard, "a": shard})
        names = [name for name, _ in fleet.merged()]
        assert names == ["a", "z"]

    def test_plan_cached(self, fleet):
        assert fleet.merge_runs() is fleet.merge_runs()


class TestValidation:
    def test_unsorted_shard_rejected_with_edge_and_index(self):
        bad = pack_trace(
            [
                Request(t=2.0, video=1, b0=0, b1=K - 1),
                Request(t=1.0, video=1, b0=0, b1=K - 1),
            ],
            K,
            validate=False,
        )
        with pytest.raises(ValueError, match=r"edge 'e1'.*index 1"):
            FleetTrace({"e1": bad})

    def test_empty_mapping_rejected(self):
        with pytest.raises(ValueError, match="at least one"):
            FleetTrace({})

    def test_non_packed_shard_rejected(self, edge_objects):
        with pytest.raises(TypeError, match="must be a PackedTrace"):
            FleetTrace({"alpha": edge_objects["alpha"]})


class TestSharedMemory:
    def test_roundtrip_through_pickled_handle(self, fleet, edge_objects):
        handle = fleet.to_shared()
        try:
            clone = pickle.loads(pickle.dumps(handle))
            attached = clone.attach()
            try:
                assert [(n, r) for n, r in attached.merged()] == (
                    reference_merge(edge_objects)
                )
            finally:
                attached.close()
        finally:
            handle.unlink()

    def test_empty_shards_survive_the_roundtrip(self, fleet):
        handle = fleet.to_shared()
        try:
            attached = handle.attach()
            try:
                assert len(attached.shards["beta"]) == 0
                assert attached.names == fleet.names
            finally:
                attached.close()
        finally:
            handle.unlink()

    def test_unlink_releases_segments(self, fleet):
        before = active_shared_traces()
        handle = fleet.to_shared()
        assert len(active_shared_traces()) > len(before)
        handle.unlink()
        assert active_shared_traces() == before
        handle.unlink()  # idempotent
