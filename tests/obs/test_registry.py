"""MetricRegistry: recording, merging across workers, serialization."""

from __future__ import annotations

import pytest

from repro.obs.registry import MetricRegistry


class TestRecording:
    def test_counters_and_gauges(self):
        registry = MetricRegistry()
        registry.count("serve")
        registry.count("serve", 4)
        registry.gauge("occupancy", 10)
        registry.gauge("occupancy", 7)  # latest wins locally
        assert registry.counter("serve") == 5
        assert registry.counter("missing") == 0
        assert registry.gauges["occupancy"] == 7

    def test_histogram_created_on_first_use(self):
        registry = MetricRegistry()
        registry.observe("age", 3.0)
        registry.observe("age", 9.0)
        assert registry.histogram("age").count == 2

    def test_timer_accumulates(self):
        registry = MetricRegistry()
        with registry.timer("stage", items=10):
            pass
        registry.add_time("stage", 1.5, items=5)
        timings = {t.name: t for t in registry._timer.timings()}
        assert timings["stage"].items == 15
        assert timings["stage"].seconds >= 1.5

    def test_rate(self):
        registry = MetricRegistry()
        assert registry.rate("a", "a", "b") is None
        registry.count("a", 1)
        registry.count("b", 3)
        assert registry.rate("a", "a", "b") == pytest.approx(0.25)


class TestMerge:
    def test_merge_folds_everything(self):
        parent, worker = MetricRegistry(), MetricRegistry()
        parent.count("serve", 2)
        worker.count("serve", 3)
        worker.count("redirect", 1)
        parent.gauge("occupancy", 5)
        worker.gauge("occupancy", 9)  # merged gauges keep the high-water mark
        parent.observe("age", 1.0)
        worker.observe("age", 100.0)
        worker.add_time("replay", 2.0, items=7)
        parent.merge(worker)
        assert parent.counter("serve") == 5
        assert parent.counter("redirect") == 1
        assert parent.gauges["occupancy"] == 9
        assert parent.histogram("age").count == 2
        assert parent.histogram("age").max == 100.0
        timings = {t.name: t for t in parent._timer.timings()}
        assert timings["replay"].items == 7


class TestSerialization:
    def test_round_trip(self):
        registry = MetricRegistry()
        registry.count("serve", 5)
        registry.gauge("disk_used", 0.5)
        registry.observe("age", 42.0)
        registry.add_time("replay", 1.0, items=3)
        clone = MetricRegistry.from_dict(registry.to_dict())
        assert clone.counter("serve") == 5
        assert clone.gauges["disk_used"] == 0.5
        assert clone.histogram("age").count == 1
        assert clone.to_dict() == registry.to_dict()
