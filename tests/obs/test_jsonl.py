"""JSONL exporter: round-trips, gzip, and schema validation."""

from __future__ import annotations

import json

from repro.obs import Telemetry, TelemetryOptions
from repro.obs.jsonl import (
    SCHEMA_NAME,
    SCHEMA_VERSION,
    read_telemetry,
    validate_telemetry,
    write_telemetry,
)
from repro.sim.engine import replay
from repro.sim.runner import CACHE_FACTORIES


def _telemetry(trace) -> Telemetry:
    telemetry = Telemetry(TelemetryOptions(snapshot_every=200))
    telemetry.meta.update({"trace": "unit", "label": "run-A"})
    telemetry.events.info("setup", "unit-test run")
    replay(CACHE_FACTORIES["xLRU"](256), trace, telemetry=telemetry)
    replay(CACHE_FACTORIES["Cafe"](256), trace, telemetry=telemetry)
    return telemetry


class TestRoundTrip:
    def test_write_then_read(self, small_trace, tmp_path):
        telemetry = _telemetry(small_trace)
        path = tmp_path / "run.jsonl"
        records = write_telemetry(path, telemetry)
        assert records == sum(1 for _ in open(path))
        loaded = read_telemetry(path)
        assert loaded.ok, loaded.issues
        assert loaded.label == "run-A"
        assert loaded.meta["schema"] == SCHEMA_NAME
        assert loaded.meta["version"] == SCHEMA_VERSION
        assert set(loaded.lanes) == {"xLRU", "Cafe"}
        assert loaded.lane_snapshots("xLRU")
        assert any(e["tag"] == "setup" for e in loaded.events)
        lane = loaded.lanes["xLRU"]
        assert lane["num_requests"] == len(small_trace)
        assert lane["registry"]["counters"]["serve"] > 0

    def test_meta_is_first_line(self, small_trace, tmp_path):
        path = tmp_path / "run.jsonl"
        write_telemetry(path, _telemetry(small_trace))
        first = json.loads(open(path).readline())
        assert first["kind"] == "meta"
        assert first["options"]["snapshot_every"] == 200

    def test_gzip_transparent(self, small_trace, tmp_path):
        telemetry = _telemetry(small_trace)
        plain, gz = tmp_path / "run.jsonl", tmp_path / "run.jsonl.gz"
        assert write_telemetry(plain, telemetry) == write_telemetry(gz, telemetry)
        a, b = read_telemetry(plain), read_telemetry(gz)
        assert b.ok
        assert a.lanes == b.lanes
        assert len(a.snapshots) == len(b.snapshots)

    def test_reports_written(self, small_trace, tmp_path):
        telemetry = Telemetry()
        result = replay(
            CACHE_FACTORIES["PullLRU"](256), small_trace, telemetry=telemetry
        )
        path = tmp_path / "run.jsonl"
        write_telemetry(path, telemetry, reports=[result.report])
        loaded = read_telemetry(path)
        assert loaded.ok, loaded.issues
        assert len(loaded.reports) == 1
        assert loaded.reports[0]["engine"]


class TestValidation:
    def _write(self, tmp_path, lines):
        path = tmp_path / "bad.jsonl"
        path.write_text("\n".join(lines) + "\n")
        return path

    def _meta_line(self):
        return json.dumps(
            {
                "kind": "meta",
                "schema": SCHEMA_NAME,
                "version": SCHEMA_VERSION,
                "created_unix": 0.0,
            }
        )

    def test_clean_file_validates(self, small_trace, tmp_path):
        path = tmp_path / "run.jsonl"
        write_telemetry(path, _telemetry(small_trace))
        assert validate_telemetry(path) == []

    def test_missing_meta(self, tmp_path):
        path = self._write(
            tmp_path,
            [json.dumps({"kind": "event", "wall": 1.0, "level": "info", "tag": "x"})],
        )
        issues = validate_telemetry(path)
        assert any("no meta record" in issue for issue in issues)

    def test_meta_not_first(self, tmp_path):
        event = json.dumps({"kind": "event", "wall": 1.0, "level": "info", "tag": "x"})
        path = self._write(tmp_path, [event, self._meta_line()])
        assert any("first line" in i for i in validate_telemetry(path))

    def test_bad_event_level(self, tmp_path):
        bad = json.dumps({"kind": "event", "wall": 1.0, "level": "fatal", "tag": "x"})
        path = self._write(tmp_path, [self._meta_line(), bad])
        assert any("invalid level" in i for i in validate_telemetry(path))

    def test_unknown_kind_and_bad_json(self, tmp_path):
        path = self._write(
            tmp_path,
            [self._meta_line(), json.dumps({"kind": "mystery"}), "{not json"],
        )
        issues = validate_telemetry(path)
        assert any("unknown record kind" in i for i in issues)
        assert any("invalid JSON" in i for i in issues)

    def test_missing_fields_and_wrong_version(self, tmp_path):
        meta = json.dumps(
            {
                "kind": "meta",
                "schema": SCHEMA_NAME,
                "version": 99,
                "created_unix": 0.0,
            }
        )
        snapshot = json.dumps({"kind": "snapshot", "lane": "x"})
        path = self._write(tmp_path, [meta, snapshot])
        issues = validate_telemetry(path)
        assert any("version" in i for i in issues)
        assert any("missing fields" in i for i in issues)

    def test_tolerant_reader_keeps_good_records(self, tmp_path):
        lane = json.dumps(
            {
                "kind": "lane",
                "lane": "x",
                "algorithm": "xLRU",
                "registry": {"counters": {}, "gauges": {}, "histograms": {}},
            }
        )
        path = self._write(tmp_path, [self._meta_line(), "garbage{", lane])
        loaded = read_telemetry(path)
        assert not loaded.ok
        assert set(loaded.lanes) == {"x"}
