"""HistogramSketch: quantile error bounds, exact merging, round-trips."""

from __future__ import annotations

import json
import math
import random

import pytest

from repro.obs.sketch import DEFAULT_GROWTH, HistogramSketch


class TestRecording:
    def test_exact_aggregates(self):
        sketch = HistogramSketch()
        for value in (1.0, 2.0, 3.0, -4.0, 0.0):
            sketch.add(value)
        assert sketch.count == 5
        assert sketch.total == pytest.approx(2.0)
        assert sketch.mean == pytest.approx(0.4)
        assert sketch.min == -4.0
        assert sketch.max == 3.0
        assert len(sketch) == 5

    def test_weighted_add(self):
        sketch = HistogramSketch()
        sketch.add(10.0, n=7)
        assert sketch.count == 7
        assert sketch.total == pytest.approx(70.0)

    def test_rejects_non_finite(self):
        sketch = HistogramSketch()
        for bad in (math.inf, -math.inf, math.nan):
            with pytest.raises(ValueError, match="finite"):
                sketch.add(bad)
        with pytest.raises(ValueError, match="positive"):
            sketch.add(1.0, n=0)

    def test_rejects_bad_growth(self):
        with pytest.raises(ValueError, match="growth"):
            HistogramSketch(growth=1.0)

    def test_empty_queries(self):
        sketch = HistogramSketch()
        assert math.isnan(sketch.mean)
        assert math.isnan(sketch.quantile(0.5))
        assert sketch.summary() == {"count": 0}


class TestQuantiles:
    def test_relative_error_bound(self):
        """Every quantile answer is within the documented relative error."""
        rng = random.Random(7)
        samples = [rng.uniform(0.1, 10_000.0) for _ in range(5000)]
        sketch = HistogramSketch()
        sketch.add_many(samples)
        samples.sort()
        # The sketch guarantees a factor-of-growth bucket; allow one
        # full growth factor of slack on the exact empirical quantile.
        for q in (0.1, 0.5, 0.9, 0.99):
            exact = samples[int(q * (len(samples) - 1))]
            approx = sketch.quantile(q)
            assert exact / DEFAULT_GROWTH <= approx <= exact * DEFAULT_GROWTH

    def test_clamped_to_observed_range(self):
        sketch = HistogramSketch()
        sketch.add_many([5.0, 5.0, 5.0])
        assert sketch.quantile(0.0) == 5.0
        assert sketch.quantile(1.0) == 5.0

    def test_signed_ordering(self):
        sketch = HistogramSketch()
        sketch.add_many([-100.0, -1.0, 0.0, 1.0, 100.0])
        q = sketch.quantiles([0.0, 0.5, 1.0])
        assert q == sorted(q)
        assert q[0] == pytest.approx(-100.0, rel=DEFAULT_GROWTH - 1.0)
        assert q[1] == 0.0  # the zero bucket is exact
        assert q[2] == pytest.approx(100.0, rel=DEFAULT_GROWTH - 1.0)

    def test_quantile_domain(self):
        sketch = HistogramSketch()
        sketch.add(1.0)
        with pytest.raises(ValueError):
            sketch.quantile(1.5)


class TestMerge:
    def test_merge_is_exact(self):
        """Merging shards equals sketching the concatenated stream."""
        rng = random.Random(3)
        values = [rng.uniform(-50.0, 50.0) for _ in range(2000)]
        whole = HistogramSketch()
        whole.add_many(values)
        merged = HistogramSketch()
        for start in range(0, len(values), 250):
            shard = HistogramSketch()
            shard.add_many(values[start : start + 250])
            merged.merge(shard)
        assert merged.count == whole.count
        assert merged.total == pytest.approx(whole.total)
        assert merged.min == whole.min
        assert merged.max == whole.max
        for q in (0.05, 0.5, 0.95):
            assert merged.quantile(q) == whole.quantile(q)

    def test_merge_growth_mismatch(self):
        a, b = HistogramSketch(growth=1.15), HistogramSketch(growth=1.2)
        with pytest.raises(ValueError, match="growth"):
            a.merge(b)


class TestSerialization:
    def test_round_trip(self):
        sketch = HistogramSketch()
        sketch.add_many([0.0, -2.5, 17.0, 17.0, 1e6])
        data = json.loads(json.dumps(sketch.to_dict()))
        clone = HistogramSketch.from_dict(data)
        assert clone.count == sketch.count
        assert clone.total == pytest.approx(sketch.total)
        assert clone.min == sketch.min
        assert clone.max == sketch.max
        for q in (0.0, 0.25, 0.5, 0.75, 1.0):
            assert clone.quantile(q) == sketch.quantile(q)

    def test_summary_keys(self):
        sketch = HistogramSketch()
        sketch.add_many([1.0, 2.0, 4.0])
        summary = sketch.summary()
        assert set(summary) == {"count", "mean", "min", "p50", "p90", "p99", "max"}
        assert summary["count"] == 3
