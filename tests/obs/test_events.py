"""EventLog: levels, warning passthrough, bounding and merging."""

from __future__ import annotations

import pytest

from repro.obs.events import LEVELS, EventLog, TelemetryEvent


class TestEmission:
    def test_levels_recorded(self):
        log = EventLog()
        log.debug("a")
        log.info("b", "detail-b")
        log.error("c")
        assert [e.level for e in log] == ["debug", "info", "error"]
        assert len(log) == 3
        assert log.select("info")[0].detail == "detail-b"

    def test_invalid_level_rejected(self):
        log = EventLog()
        with pytest.raises(ValueError, match="level"):
            log.emit("fatal", "x")

    def test_warning_raises_runtime_warning(self):
        """warning() must keep pytest.warns/-W error semantics working."""
        log = EventLog()
        with pytest.warns(RuntimeWarning, match="falling back"):
            log.warning("fallback", "parallel execution failed; falling back")
        assert log.select("warning")[0].tag == "fallback"

    def test_error_echoes_to_stderr(self, capsys):
        EventLog().error("boom", "it broke")
        assert "boom" in capsys.readouterr().err

    def test_bounded_with_drop_count(self):
        log = EventLog(max_records=5)
        for i in range(12):
            log.emit("info", f"e{i}")
        assert len(log) == 5
        assert log.dropped == 7
        assert log.records[-1].tag == "e11"  # newest kept


class TestComposition:
    def test_merge_sorts_by_wall(self):
        a, b = EventLog(), EventLog()
        a.emit("info", "first", wall=1.0)
        a.emit("info", "third", wall=3.0)
        b.emit("info", "second", wall=2.0)
        a.merge(b)
        assert [e.tag for e in a] == ["first", "second", "third"]

    def test_event_round_trip(self):
        event = TelemetryEvent(wall=12.5, level="warning", tag="t", detail="d")
        clone = TelemetryEvent.from_dict(event.to_dict())
        assert clone == event
        assert "[warning] t: d" == str(event)

    def test_levels_constant(self):
        assert LEVELS == ("debug", "info", "warning", "error")
