"""Telemetry through the engine and scheduler: snapshots, parity, merging.

The load-bearing guarantee is **probe parity**: replaying with
telemetry attached must produce byte-identical traffic accounting to a
probe-free replay, for every algorithm, on both the object and the
packed engine lanes — probes are observers, never participants.
"""

from __future__ import annotations

import pytest

import repro.sim.engine as engine_module
from repro.obs import Telemetry, TelemetryOptions
from repro.obs.probes import CacheProbe, CafeProbe, XlruProbe, probe_for
from repro.sim.engine import MultiReplay, replay
from repro.sim.runner import CACHE_FACTORIES, RunConfig
from repro.sim.schedule import SweepScheduler
from repro.trace.columnar import pack_trace

DISK = 512


def _caches():
    return {name: factory(DISK) for name, factory in CACHE_FACTORIES.items()}


def _summaries(results):
    return {
        key: (result.totals.to_dict(), result.steady.to_dict())
        for key, result in results.items()
    }


class TestProbeParity:
    def test_object_lane_all_algorithms(self, small_trace, monkeypatch):
        monkeypatch.setattr(engine_module, "AUTO_PACK_MIN_REQUESTS", 10**9)
        baseline = MultiReplay(_caches()).run(small_trace)
        telemetry = Telemetry(TelemetryOptions(snapshot_every=256))
        probed = MultiReplay(_caches(), telemetry=telemetry).run(small_trace)
        assert baseline.keys() == probed.keys()
        assert _summaries(baseline) == _summaries(probed)
        assert all(r.report.extra["trace_format"] == "objects" for r in probed.values())

    def test_packed_lane_all_algorithms(self, small_trace):
        packed = pack_trace(small_trace)
        baseline = MultiReplay(_caches()).run(packed)
        telemetry = Telemetry(TelemetryOptions(snapshot_every=256))
        probed = MultiReplay(_caches(), telemetry=telemetry).run(packed)
        assert _summaries(baseline) == _summaries(probed)
        assert all(r.report.extra["trace_format"] == "packed" for r in probed.values())


class TestEngineTelemetry:
    def test_disabled_costs_nothing(self, small_trace):
        results = MultiReplay({"x": CACHE_FACTORIES["xLRU"](DISK)}).run(small_trace)
        result = results["x"]
        assert result.telemetry is None
        assert result.cache.probe is None

    def test_lane_snapshots_and_finish(self, small_trace, monkeypatch):
        monkeypatch.setattr(engine_module, "AUTO_PACK_MIN_REQUESTS", 10**9)
        telemetry = Telemetry(TelemetryOptions(snapshot_every=200))
        results = MultiReplay(
            {"x": CACHE_FACTORIES["xLRU"](DISK)}, telemetry=telemetry
        ).run(small_trace)
        lane = results["x"].telemetry
        assert lane is telemetry.lanes["x"]
        assert lane.algorithm == "xLRU"
        assert len(lane.snapshots) == len(small_trace) // 200
        first = lane.snapshots[0]
        assert set(first) >= {"t", "done", "occupancy", "disk_used"}
        assert first["done"] == 200
        # finish() sealed the lane with summaries and final gauges
        assert lane.num_requests == len(small_trace)
        assert lane.totals["num_requests"] == len(small_trace)
        assert "occupancy" in lane.registry.gauges

    def test_packed_lane_snapshots_json_safe(self, small_trace):
        telemetry = Telemetry(TelemetryOptions(snapshot_every=500))
        results = MultiReplay(
            {"x": CACHE_FACTORIES["xLRU"](DISK)}, telemetry=telemetry
        ).run(pack_trace(small_trace))
        lane = results["x"].telemetry
        assert lane.snapshots, "packed lane must sample at block boundaries"
        for snapshot in lane.snapshots:
            assert type(snapshot["t"]) is float  # numpy scalars are not JSON-safe

    def test_probes_can_be_disabled(self, small_trace):
        telemetry = Telemetry(TelemetryOptions(probes=False, snapshot_every=500))
        results = MultiReplay(
            {"x": CACHE_FACTORIES["xLRU"](DISK)}, telemetry=telemetry
        ).run(small_trace)
        lane = results["x"].telemetry
        assert lane.probe is None
        assert results["x"].cache.probe is None
        assert lane.snapshots  # sampling still on

    def test_replay_labels_lane(self, small_trace):
        telemetry = Telemetry(TelemetryOptions(snapshot_every=500))
        replay(CACHE_FACTORIES["Cafe"](DISK), small_trace, telemetry=telemetry)
        assert list(telemetry.lanes) == ["Cafe"]
        replay(
            CACHE_FACTORIES["Cafe"](DISK),
            small_trace,
            telemetry=telemetry,
            label="cell-7",
        )
        assert "cell-7" in telemetry.lanes


class TestProbeCapture:
    def test_xlru_probe_contents(self, small_trace):
        telemetry = Telemetry(TelemetryOptions(snapshot_every=0))
        replay(CACHE_FACTORIES["xLRU"](64), small_trace, telemetry=telemetry)
        registry = telemetry.lanes["xLRU"].registry
        counters = registry.counters
        assert counters["redirect.never-seen"] >= 1
        assert counters["serve"] + counters["redirect"] == len(small_trace)
        # a 64-chunk disk churns: eviction ages must have been observed
        assert registry.histogram("evict_age").count > 0
        assert registry.histogram("residence").count > 0

    def test_cafe_probe_iat_sources(self, small_trace):
        telemetry = Telemetry(TelemetryOptions(snapshot_every=0))
        replay(CACHE_FACTORIES["Cafe"](64), small_trace, telemetry=telemetry)
        lane = telemetry.lanes["Cafe"]
        counters = lane.registry.counters
        sources = [counters.get(k, 0) for k in ("iat.own", "iat.video", "iat.cold")]
        assert sum(sources) > 0
        rate = lane.probe.iat_fallback_rate()
        assert rate is not None and 0.0 <= rate <= 1.0

    def test_probe_dispatch(self):
        assert isinstance(probe_for(CACHE_FACTORIES["xLRU"](8)), XlruProbe)
        assert isinstance(probe_for(CACHE_FACTORIES["Cafe"](8)), CafeProbe)
        probe = probe_for(CACHE_FACTORIES["PullLRU"](8))
        assert type(probe) is CacheProbe


class TestSchedulerTelemetry:
    def _configs(self):
        return [
            RunConfig("xLRU", 256, 1.0, label="x1"),
            RunConfig("Cafe", 256, 1.0, label="c1"),
            RunConfig("PullLRU", 256, 1.0, label="p1"),
            RunConfig("PullLRU", 256, 2.0, label="p2"),  # collapsed clone
            RunConfig("Belady", 256, 1.0, label="b1"),  # offline single
        ]

    def test_serial_lanes_adopted(self, small_trace):
        telemetry = Telemetry(TelemetryOptions(snapshot_every=256))
        scheduler = SweepScheduler(mode="serial", telemetry=telemetry)
        results = scheduler.run(self._configs(), small_trace)
        assert set(results) == {"x1", "c1", "p1", "p2", "b1"}
        assert set(telemetry.lanes) == {"x1", "c1", "p1", "b1"}  # no clone lane
        assert telemetry.lanes["x1"].registry.counters["serve"] > 0
        assert scheduler.events is telemetry.events

    def test_parallel_lanes_cross_process(self, small_trace):
        telemetry = Telemetry(TelemetryOptions(snapshot_every=256))
        scheduler = SweepScheduler(workers=2, mode="parallel", telemetry=telemetry)
        results = scheduler.run(self._configs(), small_trace)
        serial = SweepScheduler(mode="serial").run(self._configs(), small_trace)
        for key in serial:
            assert serial[key].totals == results[key].totals
        assert set(telemetry.lanes) == {"x1", "c1", "p1", "b1"}
        # worker-built lanes carried real probe data across the pickle
        assert telemetry.lanes["c1"].registry.counters["serve"] > 0
        assert telemetry.lanes["x1"].totals is not None

    def test_parity_with_and_without_telemetry(self, small_trace):
        bare = SweepScheduler(mode="serial").run(self._configs(), small_trace)
        telemetry = Telemetry(TelemetryOptions(snapshot_every=128))
        probed = SweepScheduler(mode="serial", telemetry=telemetry).run(
            self._configs(), small_trace
        )
        assert _summaries(bare) == _summaries(probed)

    def test_event_log_default_is_private(self):
        scheduler = SweepScheduler(mode="serial")
        assert len(scheduler.events) == 0

    def test_checkpoint_activity_logged(self, small_trace, tmp_path):
        path = tmp_path / "sweep.ckpt"
        configs = self._configs()[:2]
        SweepScheduler(mode="serial", checkpoint=path).run(configs, small_trace)
        # corrupt the tail: the resume must tolerate it and log it
        with open(path, "ab") as fh:
            fh.write(b"\x80garbage")
        telemetry = Telemetry()
        scheduler = SweepScheduler(mode="serial", checkpoint=path, telemetry=telemetry)
        scheduler.run(configs, small_trace)
        tags = {event.tag for event in telemetry.events}
        assert "checkpoint-corrupt-tail" in tags
        assert "checkpoint-resume" in tags


class TestOptionsValidation:
    def test_bad_options(self):
        with pytest.raises(ValueError):
            TelemetryOptions(snapshot_every=-1)
        with pytest.raises(ValueError):
            TelemetryOptions(max_snapshots=1)

    def test_snapshot_thinning(self, small_trace):
        telemetry = Telemetry(TelemetryOptions(snapshot_every=50, max_snapshots=8))
        results = MultiReplay(
            {"x": CACHE_FACTORIES["xLRU"](DISK)}, telemetry=telemetry
        ).run(iter(small_trace))  # generator: object lane
        lane = results["x"].telemetry
        assert len(lane.snapshots) <= 9
        dones = [snapshot["done"] for snapshot in lane.snapshots]
        assert dones == sorted(dones)
        assert dones[-1] >= len(small_trace) - 50
