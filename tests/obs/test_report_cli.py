"""repro-report: rendering, comparison, JSON mode, and CI gates."""

from __future__ import annotations

import json

import pytest

from repro.cli import main_report
from repro.obs import Telemetry, TelemetryOptions
from repro.obs.jsonl import write_telemetry
from repro.obs.report import (
    compare_runs,
    lane_metrics,
    load_runs,
    max_efficiency_drop,
    render_comparison,
    render_single,
)
from repro.sim.engine import replay
from repro.sim.runner import CACHE_FACTORIES


@pytest.fixture(scope="module")
def run_files(small_trace, tmp_path_factory):
    """Two telemetry files over the same trace at different disk sizes."""
    root = tmp_path_factory.mktemp("runs")
    paths = []
    for name, disk in (("base", 256), ("cand", 1024)):
        telemetry = Telemetry(TelemetryOptions(snapshot_every=250))
        telemetry.meta["label"] = name
        for algorithm in ("xLRU", "Cafe"):
            replay(
                CACHE_FACTORIES[algorithm](disk),
                small_trace,
                telemetry=telemetry,
                label=algorithm,
            )
        path = root / f"{name}.jsonl"
        write_telemetry(path, telemetry)
        paths.append(str(path))
    return paths


class TestLaneMetrics:
    def test_flattening(self, run_files):
        telemetry_file = load_runs(run_files)[0]
        metrics = lane_metrics(telemetry_file.lanes["xLRU"])
        assert metrics["lane"] == "xLRU"
        assert metrics["algorithm"] == "xLRU"
        assert metrics["requests"] > 0
        assert 0.0 <= metrics["efficiency"] <= 1.0
        assert metrics["fill_chunks"] > 0
        assert metrics["evict_age_p50"] > 0
        cafe = lane_metrics(telemetry_file.lanes["Cafe"])
        assert cafe["iat_fallback_rate"] is not None


class TestRendering:
    def test_single_report_tables(self, run_files):
        text = render_single(load_runs(run_files)[0])
        assert "telemetry: base" in text
        assert "traffic (steady state)" in text
        assert "cache internals" in text
        for lane in ("xLRU", "Cafe"):
            assert lane in text
        assert "snapshot(s)" in text

    def test_comparison_table(self, run_files):
        text = render_comparison(load_runs(run_files))
        assert "steady-state efficiency" in text
        assert "base" in text and "cand" in text
        assert "delta" in text


class TestComparison:
    def test_structure_and_gate(self, run_files):
        comparison = compare_runs(load_runs(run_files))
        assert comparison["files"] == ["base", "cand"]
        assert set(comparison["lanes"]) == {"xLRU", "Cafe"}
        for entry in comparison["lanes"].values():
            assert len(entry["metrics"]) == 2
            assert "efficiency" in entry["deltas"]
        # a 4x bigger disk cannot be a steady-state efficiency regression
        assert max_efficiency_drop(comparison) == 0.0

    def test_missing_lane_tolerated(self, run_files):
        files = load_runs(run_files)
        del files[1].lanes["Cafe"]
        comparison = compare_runs(files)
        assert comparison["lanes"]["Cafe"]["metrics"][1] is None
        assert comparison["lanes"]["Cafe"]["deltas"] == {}


class TestCli:
    def test_single_file(self, run_files, capsys):
        assert main_report([run_files[0]]) == 0
        out = capsys.readouterr().out
        assert "traffic (steady state)" in out

    def test_json_mode(self, run_files, capsys):
        assert main_report(["--json", *run_files]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["schema_ok"] is True
        assert payload["files"] == ["base", "cand"]
        assert set(payload["lanes"]) == {"xLRU", "Cafe"}

    def test_check_rejects_corrupt_file(self, run_files, tmp_path, capsys):
        bad = tmp_path / "bad.jsonl"
        bad.write_text('{"kind": "mystery"}\n')
        assert main_report(["--check", str(bad)]) == 1
        err_out = capsys.readouterr().out
        assert "unknown record kind" in err_out or "no meta record" in err_out
        # without --check the same file still renders (tolerant mode)
        assert main_report([str(bad)]) == 0

    def test_max_eff_drop_gate(self, run_files, capsys):
        # bigger disk last: no drop, gate passes
        assert main_report(["--max-eff-drop", "0.0", *run_files]) == 0
        # reversed order: the smaller disk regresses efficiency
        reversed_files = [run_files[1], run_files[0]]
        assert main_report(["--max-eff-drop", "0.0001", *reversed_files]) == 1
        assert "FAIL" in capsys.readouterr().out

    def test_json_reports_drop(self, run_files, capsys):
        code = main_report(
            ["--json", "--max-eff-drop", "1.0", run_files[1], run_files[0]]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["max_efficiency_drop"] > 0.0
