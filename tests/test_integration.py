"""Cross-module integration tests: the paper's headline properties.

These replay a shared synthetic trace (10 days, ~5k requests) through
all algorithms and assert the qualitative results of Section 9 — the
relationships the figures hinge on — at test scale.
"""

import pytest

from repro import (
    BeladyCache,
    CafeCache,
    CostModel,
    PsychicCache,
    PullThroughLruCache,
    XlruCache,
    replay,
)

DISK = 256


def run(cls, trace, alpha, disk=DISK, **kwargs):
    cache = cls(disk, cost_model=CostModel(alpha), **kwargs)
    return replay(cache, trace)


class TestHeadlineOrdering:
    """Section 9.2: Psychic >= Cafe > xLRU for constrained ingress."""

    @pytest.fixture(scope="class")
    def at_alpha2(self, medium_trace):
        return {
            cls.name: run(cls, medium_trace, 2.0)
            for cls in (XlruCache, CafeCache, PsychicCache, PullThroughLruCache)
        }

    def test_cafe_beats_xlru_clearly(self, at_alpha2):
        gain = (
            at_alpha2["Cafe"].steady.efficiency
            - at_alpha2["xLRU"].steady.efficiency
        )
        assert gain > 0.05  # the paper reports ~+10-12% at alpha=2

    def test_psychic_upper_bounds_online(self, at_alpha2):
        psychic = at_alpha2["Psychic"].steady.efficiency
        assert psychic >= at_alpha2["Cafe"].steady.efficiency - 0.03
        assert psychic > at_alpha2["xLRU"].steady.efficiency

    def test_standard_solution_is_worst(self, at_alpha2):
        """Pull-through LRU cannot respect alpha=2 (Section 2)."""
        assert (
            at_alpha2["PullLRU"].steady.efficiency
            < at_alpha2["xLRU"].steady.efficiency
        )

    def test_cafe_ingress_compliance(self, at_alpha2):
        """Figure 5: Cafe shrinks ingress far below xLRU at alpha=2."""
        cafe = at_alpha2["Cafe"].steady.ingress_fraction
        xlru = at_alpha2["xLRU"].steady.ingress_fraction
        assert cafe < 0.6 * xlru


class TestComparableAtCheapIngress:
    """Section 9.2: at alpha <= 1, Cafe and xLRU are comparable."""

    def test_alpha1_gap_small(self, medium_trace):
        cafe = run(CafeCache, medium_trace, 1.0).steady.efficiency
        xlru = run(XlruCache, medium_trace, 1.0).steady.efficiency
        assert abs(cafe - xlru) < 0.12


class TestDiskSensitivity:
    """Figure 6: xLRU degrades faster than Cafe as disk shrinks."""

    def test_xlru_gap_widens_with_small_disk(self, medium_trace):
        gaps = {}
        for disk in (64, 512):
            cafe = run(CafeCache, medium_trace, 2.0, disk=disk).steady.efficiency
            xlru = run(XlruCache, medium_trace, 2.0, disk=disk).steady.efficiency
            gaps[disk] = cafe - xlru
        assert gaps[64] > gaps[512] - 0.03


class TestOfflineAlgorithms:
    def test_belady_all_serves_but_costly_ingress(self, medium_trace):
        """Perfect replacement without a redirect option still loses to
        Cafe when ingress is expensive — the serve-vs-redirect decision
        matters beyond replacement (Sections 2-3)."""
        belady = run(BeladyCache, medium_trace, 4.0).steady
        cafe = run(CafeCache, medium_trace, 4.0).steady
        assert belady.redirect_ratio == pytest.approx(0.0, abs=0.01)
        assert cafe.efficiency > belady.efficiency

    def test_psychic_tracks_trace_scale(self, medium_trace):
        """Offline Psychic stays well-behaved across alphas."""
        for alpha in (0.5, 1.0, 2.0):
            steady = run(PsychicCache, medium_trace, alpha).steady
            assert -1.0 <= steady.efficiency <= 1.0


class TestDeterminism:
    def test_replay_is_reproducible(self, small_trace):
        a = run(CafeCache, small_trace, 2.0).totals
        b = run(CafeCache, small_trace, 2.0).totals
        assert a == b
