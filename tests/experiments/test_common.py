"""Tests for experiment infrastructure (scales, memoization, sizing)."""

import pytest

from repro.experiments.common import (
    FULL,
    PAPER,
    QUICK,
    ExperimentResult,
    ExperimentScale,
    alpha_sweep_cached,
    scale_from_env,
    scaled_disk_chunks,
    server_trace,
    trace_footprint_chunks,
)


class TestScales:
    def test_named_scales_ordered(self):
        assert QUICK.profile_scale < FULL.profile_scale <= PAPER.profile_scale
        assert QUICK.days < FULL.days

    def test_validation(self):
        with pytest.raises(ValueError):
            ExperimentScale("bad", profile_scale=0.0, days=1.0)

    def test_scale_from_env_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_SCALE", raising=False)
        assert scale_from_env() is FULL
        assert scale_from_env(default=QUICK) is QUICK

    def test_scale_from_env_named(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "quick")
        assert scale_from_env() is QUICK

    def test_scale_from_env_invalid(self, monkeypatch):
        monkeypatch.setenv("REPRO_SCALE", "gigantic")
        with pytest.raises(ValueError, match="REPRO_SCALE"):
            scale_from_env()


class TestTraceMemoization:
    def test_same_object_returned(self):
        a = server_trace("asia", QUICK)
        b = server_trace("asia", QUICK)
        assert a is b

    def test_footprint_positive(self):
        assert trace_footprint_chunks("asia", QUICK) > 0

    def test_scaled_disk(self):
        footprint = trace_footprint_chunks("asia", QUICK)
        disk = scaled_disk_chunks("asia", QUICK, 0.5)
        assert disk == max(16, footprint // 2)

    def test_disk_fraction_validation(self):
        with pytest.raises(ValueError):
            scaled_disk_chunks("asia", QUICK, 0.0)


class TestSweepCache:
    def test_sweep_memoized(self):
        a = alpha_sweep_cached("asia", QUICK, alphas=(1.0,))
        b = alpha_sweep_cached("asia", QUICK, alphas=(1.0,))
        assert a is b

    def test_sweep_contains_paper_algorithms(self):
        sweep = alpha_sweep_cached("asia", QUICK, alphas=(1.0,))
        assert set(sweep[1.0]) == {"xLRU", "Cafe", "Psychic"}


class TestExperimentResult:
    def test_to_text_includes_extras(self):
        result = ExperimentResult(
            name="X",
            description="d",
            rows=[{"a": 1.0}],
            extras={"note": "hello"},
        )
        text = result.to_text()
        assert "X: d" in text
        assert "note: hello" in text
