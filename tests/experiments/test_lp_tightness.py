"""Structure tests for the LP-tightness experiment (QUICK scale)."""

import pytest

from repro.experiments import QUICK, lp_tightness


class TestLpTightness:
    @pytest.fixture(scope="class")
    def result(self):
        return lp_tightness.run(
            QUICK,
            servers=("europe",),
            alphas=(2.0,),
            disk_fractions=(0.05, 0.15),
            num_files=8,
            max_requests=80,
        )

    def test_row_per_cell(self, result):
        assert len(result.rows) == 2
        assert {r["disk_fraction"] for r in result.rows} == {0.05, 0.15}

    def test_lp_bounds_ip(self, result):
        for row in result.rows:
            assert row["integrality_gap"] >= -1e-6
            assert row["lp_eff"] >= row["ip_eff"] - 1e-6

    def test_ip_bounds_psychic(self, result):
        for row in result.rows:
            assert row["psychic_vs_ip"] >= -1e-6

    def test_extras_aggregate(self, result):
        gaps = [r["integrality_gap"] for r in result.rows]
        assert result.extras["gap_max"] == pytest.approx(max(gaps))
        assert result.extras["gap_mean"] == pytest.approx(sum(gaps) / len(gaps))

    def test_registered(self):
        from repro.experiments import ALL_FIGURES

        assert "lp_tightness" in ALL_FIGURES
