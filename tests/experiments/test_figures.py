"""Structure and shape tests for the figure experiments (QUICK scale).

The QUICK traces are small and noisy, so assertions here check
structure exactly but shapes only loosely; the full reproduction
criteria run in ``benchmarks/`` at FULL scale.
"""

import math

import pytest

from repro.experiments import QUICK, fig2, fig3, fig4, fig5, fig6, fig7, policies


class TestFig2:
    @pytest.fixture(scope="class")
    def result(self):
        return fig2.run(
            QUICK,
            servers=("europe", "asia"),
            alphas=(2.0,),
            num_files=30,
            max_file_bytes=8 * 1024 * 1024,
        )

    def test_row_per_alpha(self, result):
        assert [r["alpha"] for r in result.rows] == [2.0]

    def test_lp_bound_dominates_psychic(self, result):
        for row in result.extras["per_server"]:
            assert row["optimal_eff"] >= row["psychic_eff"] - 1e-9

    def test_delta_stats_consistent(self, result):
        row = result.rows[0]
        assert row["delta_min"] <= row["delta_avg"] <= row["delta_max"]

    def test_exact_mode_on_one_tiny_server(self):
        row = fig2.run_one_server(
            "asia",
            QUICK,
            alpha=1.0,
            num_files=6,
            max_file_bytes=4 * 1024 * 1024,
            exact=True,
        )
        assert row["optimal_eff"] >= row["psychic_eff"] - 1e-9


class TestFig3:
    @pytest.fixture(scope="class")
    def result(self):
        return fig3.run(QUICK)

    def test_three_algorithms(self, result):
        assert [r["algorithm"] for r in result.rows] == ["xLRU", "Cafe", "Psychic"]

    def test_series_has_hourly_samples(self, result):
        series = result.extras["series"]
        xlru_points = [r for r in series if r["algorithm"] == "xLRU"]
        assert len(xlru_points) > 24  # more than a day of hourly buckets

    def test_gain_column_relative_to_xlru(self, result):
        by_algo = {r["algorithm"]: r for r in result.rows}
        assert by_algo["xLRU"]["gain_over_xLRU"] == pytest.approx(0.0)
        assert by_algo["Psychic"]["gain_over_xLRU"] == pytest.approx(
            by_algo["Psychic"]["efficiency"] - by_algo["xLRU"]["efficiency"]
        )

    def test_psychic_on_top(self, result):
        by_algo = {r["algorithm"]: r["efficiency"] for r in result.rows}
        assert by_algo["Psychic"] >= by_algo["Cafe"] - 0.05
        assert by_algo["Psychic"] > by_algo["xLRU"]


class TestFig4:
    @pytest.fixture(scope="class")
    def result(self):
        return fig4.run(QUICK, alphas=(1.0, 2.0))

    def test_rows_per_alpha(self, result):
        assert [r["alpha"] for r in result.rows] == [1.0, 2.0]
        assert {"xLRU", "Cafe", "Psychic"} <= set(result.rows[0])

    def test_cafe_gap_grows_with_alpha(self, result):
        gap = {r["alpha"]: r["Cafe"] - r["xLRU"] for r in result.rows}
        assert gap[2.0] > gap[1.0] - 0.05

    def test_headline_extras_present(self, result):
        assert "relative_inefficiency_reduction_alpha2" in result.extras
        assert "cafe_minus_xlru_alpha1" in result.extras


class TestFig5:
    @pytest.fixture(scope="class")
    def result(self):
        return fig5.run(QUICK, alphas=(4.0, 1.0))

    def test_one_point_per_algo_per_alpha(self, result):
        assert len(result.rows) == 6

    def test_cafe_ingress_shrinks_with_alpha(self, result):
        cafe = {r["alpha"]: r["ingress_fraction"] for r in result.rows
                if r["algorithm"] == "Cafe"}
        assert cafe[4.0] < cafe[1.0] + 0.02

    def test_cafe_complies_better_than_xlru_at_alpha4(self, result):
        at4 = {r["algorithm"]: r for r in result.rows if r["alpha"] == 4.0}
        assert at4["Cafe"]["ingress_fraction"] < at4["xLRU"]["ingress_fraction"]


class TestFig6:
    @pytest.fixture(scope="class")
    def result(self):
        return fig6.run(QUICK, fractions=(0.09, 0.36), with_alpha1=False)

    def test_row_per_disk(self, result):
        disks = [r["disk_chunks"] for r in result.rows]
        assert disks == sorted(disks)
        assert len(disks) == 2

    def test_more_disk_helps_cafe(self, result):
        assert result.rows[-1]["Cafe"] >= result.rows[0]["Cafe"] - 0.03

    def test_disk_factor_extra(self, result):
        factors = result.extras["xlru_disk_factor_vs_cafe"]
        assert len(factors) == 2
        assert all(f >= 0.9 or math.isinf(f) for f in factors)


class TestFig7:
    @pytest.fixture(scope="class")
    def result(self):
        return fig7.run(QUICK, servers=("asia", "south_america"))

    def test_row_per_server(self, result):
        assert [r["server"] for r in result.rows] == ["asia", "south_america"]

    def test_ordering_holds_on_every_server(self, result):
        for row in result.rows:
            assert row["Psychic"] >= row["Cafe"] - 0.05
            assert row["Psychic"] > row["xLRU"]

    def test_concentrated_server_more_efficient(self, result):
        by_server = {r["server"]: r for r in result.rows}
        assert by_server["asia"]["Cafe"] > by_server["south_america"]["Cafe"]


class TestPolicies:
    @pytest.fixture(scope="class")
    def result(self):
        return policies.run(QUICK, alphas=(2.0, 0.5))

    def test_row_per_alpha_per_algorithm(self, result):
        got = [(r["alpha"], r["algorithm"]) for r in result.rows]
        want = [(a, algo) for a in (2.0, 0.5) for algo in policies.ALGORITHMS]
        assert got == want

    def test_registry_exposes_the_experiment(self):
        from repro.experiments import ALL_FIGURES

        assert "policies" in ALL_FIGURES

    def test_admission_gated_policies_ingress_below_pull_lru(self, result):
        for alpha in (2.0, 0.5):
            rows = {r["algorithm"]: r for r in result.rows if r["alpha"] == alpha}
            for algo in ("LFU-PK", "Retention"):
                assert (
                    rows[algo]["ingress_fraction"] < rows["PullLRU"]["ingress_fraction"]
                ), (alpha, algo)

    def test_retention_beats_pull_lru_at_costly_ingress(self, result):
        at2 = {r["algorithm"]: r for r in result.rows if r["alpha"] == 2.0}
        assert at2["Retention"]["efficiency"] > at2["PullLRU"]["efficiency"]
