"""Structure tests for the extension experiments (QUICK scale)."""

import math

import pytest

from repro.experiments import ALL_FIGURES, QUICK, proactive, robustness


class TestRobustness:
    @pytest.fixture(scope="class")
    def result(self):
        return robustness.run(QUICK, algorithms=("xLRU", "Cafe"))

    def test_row_per_algorithm(self, result):
        assert [r["algorithm"] for r in result.rows] == ["xLRU", "Cafe"]

    def test_flash_traffic_observed(self, result):
        for row in result.rows:
            assert row["flash_requests"] > 0
            assert 0.0 <= row["flash_local_serve_ratio"] <= 1.0

    def test_recovery_delta_consistent(self, result):
        for row in result.rows:
            assert row["recovery_delta"] == pytest.approx(
                row["after_eff"] - row["baseline_eff"]
            )

    def test_same_flash_volume_for_all(self, result):
        counts = {r["flash_requests"] for r in result.rows}
        assert len(counts) == 1  # deterministic injection, shared trace


class TestProactive:
    @pytest.fixture(scope="class")
    def result(self):
        return proactive.run(QUICK, budget_chunks_per_window=(0, 32))

    def test_zero_budget_is_plain_cafe(self, result):
        base = result.rows[0]
        assert base["prefetch_budget"] == 0
        assert base["prefetched_chunks"] == 0
        assert base["offpeak_windows"] == 0

    def test_budget_row_prefetches(self, result):
        row = result.rows[1]
        assert row["offpeak_windows"] > 0

    def test_gap_to_psychic_consistent(self, result):
        psychic = result.extras["psychic_eff"]
        for row in result.rows:
            assert row["gap_to_psychic"] == pytest.approx(
                psychic - row["efficiency"]
            )
            assert not math.isnan(row["efficiency"])


class TestRegistration:
    def test_extensions_registered(self):
        assert {"cdnwide", "proactive", "robustness"} <= set(ALL_FIGURES)
