"""Structure tests for the availability experiment (QUICK scale)."""

import math

import pytest

from repro.cdn.faults import FaultSchedule
from repro.experiments import QUICK, availability


class TestFaultSchedule:
    def test_schedule_scales_to_span(self):
        span = 10_000.0
        schedule = availability.fault_schedule(span)
        assert len(schedule) == 4
        kinds = {e.kind for e in schedule.events}
        assert kinds == {"outage", "restart", "degrade", "brownout"}
        for event in schedule.events:
            assert 0.0 < event.t < span
            assert event.t_end <= span

    def test_outage_window_matches_constants(self):
        span = 1000.0
        schedule = availability.fault_schedule(span)
        outage = next(e for e in schedule.events if e.kind == "outage")
        assert outage.server == availability.OUTAGE_SERVER
        assert outage.t == pytest.approx(availability.OUTAGE_WINDOW[0] * span)
        assert outage.t_end == pytest.approx(
            availability.OUTAGE_WINDOW[1] * span
        )

    def test_schedule_is_deterministic(self):
        a = availability.fault_schedule(500.0)
        b = availability.fault_schedule(500.0)
        assert isinstance(a, FaultSchedule)
        assert a.describe() == b.describe()
        assert a.seed == b.seed == availability.FAULT_SEED


class TestAvailabilityRun:
    @pytest.fixture(scope="class")
    def result(self):
        return availability.run(QUICK, edge_algorithms=("PullLRU", "Cafe"))

    def test_row_per_edge_algorithm(self, result):
        assert [r["edge_algo"] for r in result.rows] == ["PullLRU", "Cafe"]

    def test_faults_cost_efficiency(self, result):
        for row in result.rows:
            assert row["eff_faulted"] <= row["eff_clean"] + 1e-9
            assert row["eff_drop"] >= -1e-9

    def test_parent_absorbs_failover_inside_outage(self, result):
        for row in result.rows:
            # Users of the dark edge land on the parent: it must see
            # failover hops, and its in-window efficiency is reported.
            assert row["failover_hops"] > 0
            assert not math.isnan(row["parent_eff_in_outage"])

    def test_availability_and_loss_accounting(self, result):
        for row in result.rows:
            assert 0.0 <= row["availability"] <= 1.0
            assert row["requests_lost"] >= 0
            assert row["refill_gb"] >= 0.0

    def test_extras_describe_schedule(self, result):
        assert "outage" in result.extras["schedule"]
        assert result.extras["trace_span_seconds"] > 0
        from repro.experiments.cdnwide import EDGE_SERVERS

        assert set(result.extras["edge_disks"]) == set(EDGE_SERVERS)

    def test_registered_in_cli_experiments(self):
        from repro.experiments import ALL_FIGURES

        assert "availability" in ALL_FIGURES
