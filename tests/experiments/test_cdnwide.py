"""Structure tests for the CDN-wide experiment (QUICK scale)."""

import pytest

from repro.experiments import QUICK, cdnwide


class TestCdnWide:
    @pytest.fixture(scope="class")
    def result(self):
        return cdnwide.run(QUICK, edge_algorithms=("xLRU", "Cafe"))

    def test_row_per_edge_algorithm(self, result):
        assert [r["edge_algo"] for r in result.rows] == ["xLRU", "Cafe"]

    def test_accounting_fields_present(self, result):
        for row in result.rows:
            assert row["origin_gb"] >= 0
            assert row["edge_ingress_gb"] >= 0
            assert 0 <= row["origin_share_of_user_bytes"] <= 1
            assert row["parent_requests"] > 0

    def test_cafe_edges_pull_less_backbone(self, result):
        by_algo = {r["edge_algo"]: r for r in result.rows}
        assert (
            by_algo["Cafe"]["edge_ingress_gb"]
            < by_algo["xLRU"]["edge_ingress_gb"]
        )

    def test_extras_describe_topology(self, result):
        assert set(result.extras["edge_disks"]) == set(cdnwide.EDGE_SERVERS)
        assert result.extras["parent_disk"] > max(
            result.extras["edge_disks"].values()
        )

    def test_registered_in_cli_experiments(self):
        from repro.experiments import ALL_FIGURES

        assert "cdnwide" in ALL_FIGURES
