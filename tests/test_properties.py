"""Property-based invariant tests across all cache algorithms.

Hypothesis generates arbitrary (time-ordered) request sequences; every
algorithm must uphold the Problem-1 contract on all of them:

* the disk never exceeds capacity;
* a served request leaves all its chunks resident, chunks filled never
  exceed the chunks requested, evictions never exceed fills;
* the engine's byte accounting balances exactly (egress + redirected ==
  requested; ingress == filled chunks x chunk size);
* efficiency stays within Eq. 2's range given the chunk rounding.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.baselines import BeladyCache, LfuAdmissionCache, PullThroughLruCache
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.lru_variants import GreedyDualSizeCache, LruKCache
from repro.core.psychic import PsychicCache
from repro.core.xlru import XlruCache
from repro.sim.engine import replay
from repro.trace.requests import Request

K = 1024
DISK = 12

ALL_CACHE_CLASSES = [
    XlruCache,
    CafeCache,
    PsychicCache,
    BeladyCache,
    PullThroughLruCache,
    LfuAdmissionCache,
    LruKCache,
    GreedyDualSizeCache,
]


@st.composite
def request_sequences(draw):
    """Time-ordered sequences over a small universe of videos/chunks."""
    n = draw(st.integers(1, 60))
    t = 0.0
    requests = []
    for _ in range(n):
        t += draw(st.floats(0.0, 100.0))
        video = draw(st.integers(0, 7))
        c0 = draw(st.integers(0, 9))
        span = draw(st.integers(1, 4))
        b0 = c0 * K + draw(st.integers(0, K - 1))
        b1 = (c0 + span) * K - 1 - draw(st.integers(0, K - 1))
        if b1 < b0:
            b0, b1 = b1, b0
        requests.append(Request(t, video, b0, b1))
    return requests


@pytest.mark.parametrize("cache_cls", ALL_CACHE_CLASSES, ids=lambda c: c.name)
@settings(max_examples=25, deadline=None)
@given(trace=request_sequences(), alpha=st.sampled_from([0.5, 1.0, 2.0]))
def test_cache_contract(cache_cls, trace, alpha):
    cache = cache_cls(DISK, chunk_bytes=K, cost_model=CostModel(alpha))
    if cache.offline:
        cache.prepare(trace)
    for request in trace:
        span = request.num_chunks(K)
        response = cache.handle(request)
        assert len(cache) <= DISK, "capacity exceeded"
        assert response.filled_chunks <= span, "filled more than requested"
        assert response.evicted_chunks <= response.filled_chunks, (
            "evicted without filling"
        )
        if response.served and span <= DISK:
            for chunk in request.chunk_ids(K):
                assert chunk in cache, "served but chunk not resident"


@pytest.mark.parametrize("cache_cls", ALL_CACHE_CLASSES, ids=lambda c: c.name)
@settings(max_examples=15, deadline=None)
@given(trace=request_sequences())
def test_accounting_balances(cache_cls, trace):
    cache = cache_cls(DISK, chunk_bytes=K, cost_model=CostModel(2.0))
    result = replay(cache, trace)
    totals = result.totals
    requested = sum(r.num_bytes for r in trace)
    assert totals.requested_bytes == requested
    assert totals.egress_bytes + totals.redirected_bytes == requested
    assert totals.ingress_bytes == totals.filled_chunks * K
    assert totals.num_served + totals.num_redirected == len(trace)
    # Eq. 2 bound, allowing the whole-chunk rounding of ingress
    slack = 2.0 * K * totals.filled_chunks / max(requested, 1)
    assert -1.0 - slack <= totals.efficiency <= 1.0 + 1e-9


@settings(max_examples=15, deadline=None)
@given(trace=request_sequences())
def test_cafe_tracks_cached_chunks(trace):
    """Cafe-specific: every cached chunk retains IAT state."""
    cache = CafeCache(DISK, chunk_bytes=K, cost_model=CostModel(1.0))
    for request in trace:
        cache.handle(request)
        assert cache.tracked_chunks >= len(cache)


@settings(max_examples=15, deadline=None)
@given(trace=request_sequences())
def test_psychic_and_belady_agree_on_serve_everything_when_roomy(trace):
    """With a disk larger than the chunk universe, offline caches fill
    once and never redirect after warm-up decisions allow."""
    big = 8 * 10 + 8  # whole universe fits
    belady = BeladyCache(big, chunk_bytes=K, cost_model=CostModel(1.0))
    result = replay(belady, trace)
    assert result.totals.num_redirected == 0
