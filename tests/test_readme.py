"""Docs-sync tests: the README's code must actually run.

Extracts the fenced Python blocks from README.md and executes them, so
the quickstart can never silently rot as the API evolves.
"""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text()
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


def test_readme_exists_with_python_blocks():
    assert README.exists()
    assert len(python_blocks()) >= 1


@pytest.mark.parametrize("index", range(len(python_blocks())))
def test_readme_python_block_executes(index):
    code = python_blocks()[index]
    # shrink any trace generation so the docs test stays fast
    code = code.replace("days=7", "days=2")
    namespace: dict = {}
    exec(compile(code, f"README.md[python#{index}]", "exec"), namespace)
    # the quickstart prints metrics from a replay result; make sure the
    # objects it built are sane if they exist
    if "result" in namespace:
        steady = namespace["result"].steady
        assert -1.0 <= steady.efficiency <= 1.0
