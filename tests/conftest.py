"""Shared test fixtures and request-building helpers."""

from __future__ import annotations

import pytest

from repro.trace.requests import Request
from repro.workload.generator import TraceGenerator
from repro.workload.servers import SERVER_PROFILES

#: Small chunk size used across unit tests for readable numbers.
K = 1024


def chunk_request(t: float, video: int, c0: int, c1: int, k: int = K) -> Request:
    """A request covering exactly chunks ``c0..c1`` (inclusive) of a video."""
    return Request(t=t, video=video, b0=c0 * k, b1=(c1 + 1) * k - 1)


@pytest.fixture(scope="session")
def small_trace():
    """A deterministic ~2k-request synthetic trace (4 days, tiny volume).

    Session-scoped: generation costs ~100 ms and many tests share it.
    Tests must not mutate it.
    """
    profile = SERVER_PROFILES["europe"].scaled(0.04)
    return TraceGenerator(profile).generate(days=4.0)


@pytest.fixture(scope="session")
def medium_trace():
    """A ~6k-request, 10-day trace for steadier integration checks."""
    profile = SERVER_PROFILES["europe"].scaled(0.06)
    return TraceGenerator(profile).generate(days=10.0)
