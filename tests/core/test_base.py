"""Tests for the cache framework (Decision, CacheResponse, VideoCache)."""

import pytest

from repro.core.base import CacheResponse, Decision, VideoCache
from repro.core.costs import CostModel
from repro.core.xlru import XlruCache


class TestCacheResponse:
    def test_serve_with_fill(self):
        r = CacheResponse(Decision.SERVE, filled_chunks=3, evicted_chunks=2)
        assert r.served
        assert r.filled_chunks == 3

    def test_redirect_cannot_fill(self):
        with pytest.raises(ValueError):
            CacheResponse(Decision.REDIRECT, filled_chunks=1)

    def test_redirect(self):
        r = CacheResponse(Decision.REDIRECT)
        assert not r.served

    def test_negative_counts_rejected(self):
        with pytest.raises(ValueError):
            CacheResponse(Decision.SERVE, filled_chunks=-1)
        with pytest.raises(ValueError):
            CacheResponse(Decision.SERVE, evicted_chunks=-1)

    def test_frozen(self):
        r = CacheResponse(Decision.SERVE)
        with pytest.raises(AttributeError):
            r.filled_chunks = 5  # type: ignore[misc]


class TestVideoCacheConstruction:
    def test_disk_chunks_validated(self):
        with pytest.raises(ValueError):
            XlruCache(0)
        with pytest.raises(ValueError):
            XlruCache(-5)

    def test_chunk_bytes_validated(self):
        with pytest.raises(ValueError):
            XlruCache(10, chunk_bytes=0)

    def test_default_cost_model_is_alpha_one(self):
        cache = XlruCache(10)
        assert cache.cost_model.alpha_f2r == 1.0

    def test_disk_bytes(self):
        cache = XlruCache(10, chunk_bytes=2048)
        assert cache.disk_bytes == 20480

    def test_disk_used_fraction_starts_empty(self):
        cache = XlruCache(10)
        assert cache.disk_used_fraction == 0.0
        assert len(cache) == 0

    def test_describe_mentions_config(self):
        cache = XlruCache(10, chunk_bytes=2048, cost_model=CostModel(2.0))
        text = cache.describe()
        assert "xLRU" in text
        assert "10" in text and "2048" in text and "2.0" in text

    def test_online_prepare_is_noop(self):
        cache = XlruCache(10)
        cache.prepare([])  # must not raise
        assert not cache.offline

    def test_abstract_base_cannot_instantiate(self):
        with pytest.raises(TypeError):
            VideoCache(10)  # type: ignore[abstract]
