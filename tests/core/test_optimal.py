"""Tests for the Optimal Cache IP/LP (Section 7, Eqs. 10-12)."""

import pytest

from repro.core.costs import CostModel
from repro.core.optimal import OptimalCache, solve_optimal
from repro.core.psychic import PsychicCache
from repro.sim.engine import replay
from repro.trace.requests import Request

K = 1024


def req(t, video, c0, c1=None):
    c1 = c0 if c1 is None else c1
    return Request(t, video, c0 * K, (c1 + 1) * K - 1)


@pytest.fixture
def alternating_trace():
    """A, B, A, B on a 1-chunk disk: the optimum caches one video."""
    return [req(float(i), 1 + i % 2, 0) for i in range(4)]


class TestValidation:
    def test_empty_requests_rejected(self):
        with pytest.raises(ValueError):
            solve_optimal([], 1)

    def test_disk_validation(self):
        with pytest.raises(ValueError):
            solve_optimal([req(0.0, 1, 0)], 0)

    def test_variable_limit_enforced(self):
        trace = [req(float(i), i, 0) for i in range(50)]
        with pytest.raises(ValueError, match="down-sample"):
            solve_optimal(trace, 1, max_variables=10)


class TestExactTinyInstances:
    def test_alternating_videos_one_slot(self, alternating_trace):
        """Known optimum: cache one video (1 fill), redirect the other
        twice -> cost 3 of 4 requested chunks, efficiency 0.25."""
        sol = solve_optimal(
            alternating_trace, 1, cost_model=CostModel(1.0), relaxed=False
        )
        assert sol.objective_cost == pytest.approx(3.0)
        assert sol.efficiency == pytest.approx(0.25)
        assert sol.decisions is not None
        # multiple schedules reach cost 3 (e.g. fill A, redirect B twice,
        # or fill A then B and redirect once); only totals are pinned
        assert sol.fill_chunks + sol.redirected_chunks == pytest.approx(3.0)
        assert sum(sol.decisions) == 4 - sol.redirected_chunks

    def test_single_request(self):
        """One request ever: a fill cannot pay off; redirect (alpha=1)."""
        sol = solve_optimal([req(0.0, 1, 0)], 4, relaxed=False)
        # redirect (cost C_R = 1) and fill-and-serve (cost C_F = 1) tie;
        # either way the objective is 1.
        assert sol.objective_cost == pytest.approx(1.0)
        assert sol.efficiency == pytest.approx(0.0)

    def test_repeated_request_is_cached(self):
        """Same chunk five times: fill once, serve the rest."""
        trace = [req(float(i), 1, 0) for i in range(5)]
        sol = solve_optimal(trace, 2, relaxed=False)
        assert sol.objective_cost == pytest.approx(1.0)  # one fill
        assert sol.efficiency == pytest.approx(1.0 - 1.0 / 5.0)
        assert all(sol.decisions)

    def test_alpha_changes_optimum(self):
        """At high alpha, filling for a twice-requested chunk loses."""
        trace = [req(0.0, 1, 0), req(1.0, 1, 0)]
        cheap = solve_optimal(trace, 1, cost_model=CostModel(0.5), relaxed=False)
        costly = solve_optimal(trace, 1, cost_model=CostModel(4.0), relaxed=False)
        # alpha=0.5: fill (2/3) beats two redirects (8/3) -> serve both
        assert all(cheap.decisions)
        # alpha=4: one fill costs 1.6, two redirects cost 0.8 -> redirect
        assert not any(costly.decisions)

    def test_disk_capacity_binds(self):
        """Two popular chunks, one slot: only one can stay resident."""
        trace = []
        for i in range(4):
            trace.append(req(float(2 * i), 1, 0))
            trace.append(req(float(2 * i + 1), 2, 0))
        tight = solve_optimal(trace, 1, relaxed=False)
        roomy = solve_optimal(trace, 2, relaxed=False)
        assert roomy.objective_cost < tight.objective_cost


class TestLpRelaxation:
    def test_lp_bounds_exact_from_above(self, alternating_trace):
        exact = solve_optimal(alternating_trace, 1, relaxed=False)
        bound = solve_optimal(alternating_trace, 1, relaxed=True)
        assert bound.efficiency >= exact.efficiency - 1e-9
        assert bound.objective_cost <= exact.objective_cost + 1e-9

    def test_lp_bounds_psychic(self, small_trace):
        """The LP bound dominates any real algorithm (Section 9.1)."""
        from repro.trace.sampling import (
            disk_chunks_for_fraction,
            downsample_trace,
        )

        t0 = small_trace[0].t
        sample = downsample_trace(
            small_trace,
            num_files=25,
            max_file_bytes=8 * 1024 * 1024,
            window=(t0, t0 + 2 * 86400.0),
        )
        assert sample, "down-sampled trace must not be empty"
        disk = disk_chunks_for_fraction(sample, 0.05)
        cost_model = CostModel(2.0)

        psychic = PsychicCache(disk, cost_model=cost_model)
        measured = replay(psychic, sample).totals.efficiency_chunks
        bound = solve_optimal(sample, disk, cost_model=cost_model, relaxed=True)
        assert bound.efficiency >= measured - 1e-9

    def test_relaxed_solution_has_no_decisions(self, alternating_trace):
        sol = solve_optimal(alternating_trace, 1, relaxed=True)
        assert sol.relaxed
        assert sol.decisions is None


class TestOptimalCacheReplay:
    def test_handle_before_prepare_raises(self):
        cache = OptimalCache(1, chunk_bytes=K)
        with pytest.raises(RuntimeError):
            cache.handle(req(0.0, 1, 0))

    def test_replay_accounting_matches_solution(self, alternating_trace):
        cache = OptimalCache(1, chunk_bytes=K, cost_model=CostModel(1.0))
        result = replay(cache, alternating_trace)
        totals = result.totals
        solution = cache.solution
        assert totals.filled_chunks == pytest.approx(solution.fill_chunks)
        assert totals.redirected_chunks == pytest.approx(solution.redirected_chunks)
        assert totals.efficiency_chunks == pytest.approx(solution.efficiency)

    def test_replay_respects_capacity(self):
        trace = [req(float(i), i % 3, 0) for i in range(12)]
        trace += [req(12.0 + i, i % 3, 0) for i in range(6)]
        cache = OptimalCache(2, chunk_bytes=K)
        replay(cache, trace)
        assert len(cache) <= 2

    def test_replay_order_must_match(self, alternating_trace):
        cache = OptimalCache(1, chunk_bytes=K)
        cache.prepare(alternating_trace)
        cache.handle(alternating_trace[0])
        with pytest.raises(RuntimeError, match="order"):
            cache.handle(req(99.0, 9, 0))

    def test_beats_or_matches_psychic_on_tiny_trace(self):
        """Exact optimum is at least as good as the greedy heuristic."""
        trace = []
        t = 0.0
        for i in range(30):
            trace.append(req(t, (i * 7) % 5, 0))
            t += 1.0
        cost_model = CostModel(2.0)
        optimal = OptimalCache(2, chunk_bytes=K, cost_model=cost_model)
        opt_eff = replay(optimal, trace).totals.efficiency_chunks
        psychic = PsychicCache(2, chunk_bytes=K, cost_model=cost_model)
        psy_eff = replay(psychic, trace).totals.efficiency_chunks
        assert opt_eff >= psy_eff - 1e-9
