"""Behavioural tests for Cafe Cache (Section 6, Eqs. 6-9)."""

import math

import pytest

from repro.core.base import Decision
from repro.core.cafe import CafeCache, _future_term
from repro.core.costs import CostModel
from repro.sim.engine import replay
from repro.trace.requests import Request

K = 1024


def req(t, video, c0, c1=None):
    c1 = c0 if c1 is None else c1
    return Request(t, video, c0 * K, (c1 + 1) * K - 1)


def make_cache(disk=4, alpha=1.0, **kwargs):
    return CafeCache(disk, chunk_bytes=K, cost_model=CostModel(alpha), **kwargs)


class TestConstruction:
    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            make_cache(ghost_factor=-1.0)
        with pytest.raises(ValueError):
            make_cache(horizon=0.0)
        with pytest.raises(ValueError):
            CafeCache(4, cost_model=CostModel(1.0), gamma=0.0)

    def test_paper_default_gamma(self):
        cache = make_cache()
        assert cache._stats.gamma == 0.25


class TestFutureTerm:
    def test_no_history_contributes_nothing(self):
        assert _future_term(float("inf"), 100.0) == 0.0
        assert _future_term(float("inf"), float("inf")) == 0.0

    def test_warmup_horizon_with_history_is_unbounded(self):
        assert math.isinf(_future_term(10.0, float("inf")))

    def test_expected_requests_in_horizon(self):
        # T / IAT: a chunk arriving every 5 s over a 50 s horizon -> 10
        assert _future_term(5.0, 50.0) == pytest.approx(10.0)


class TestAdmission:
    def test_first_seen_video_redirected_alpha1(self):
        cache = make_cache(alpha=1.0, disk=2)
        # fill the disk first so the horizon is finite (steady state)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0, 1))
        assert cache.handle(req(2.0, 99, 0)).decision is Decision.REDIRECT

    def test_first_seen_redirected_then_served_during_warmup(self):
        # alpha=2: first-seen is strictly costlier to fill (C_F > C_R,
        # no expected future value), second sighting flips to serve.
        cache = make_cache(alpha=2.0)
        first = cache.handle(req(0.0, 1, 0))
        assert first.decision is Decision.REDIRECT
        response = cache.handle(req(1.0, 1, 0))
        assert response.decision is Decision.SERVE
        assert response.filled_chunks == 1

    def test_alpha1_warmup_ties_prefill(self):
        # at alpha=1 with free disk, fill and redirect cost the same
        # (C_F = C_R, no eviction): the tie goes to serving, which
        # pre-fills the empty disk.
        cache = make_cache(alpha=1.0)
        assert cache.handle(req(0.0, 1, 0)).decision is Decision.SERVE

    def test_pure_hit_always_served(self):
        cache = make_cache()
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0))
        hit = cache.handle(req(2.0, 1, 0))
        assert hit.decision is Decision.SERVE
        assert hit.filled_chunks == 0

    def test_request_bigger_than_disk_redirected(self):
        cache = make_cache(disk=2)
        cache.handle(req(0.0, 1, 0, 5))
        assert cache.handle(req(1.0, 1, 0, 5)).decision is Decision.REDIRECT

    def test_costly_ingress_rejects_what_cheap_ingress_fills(self):
        """Same trace: alpha=4 redirects what alpha=0.5 fills.

        Videos 1 and 2 (cached) and the probe video 9 all have period-4
        popularity, so serving 9 means evicting an equally popular
        chunk: worth it only when ingress is cheap (C_F < C_R).
        """
        probe = req(25.0, 9, 0)

        def scenario(alpha):
            cache = make_cache(disk=2, alpha=alpha)
            trace = [req(float(t), 1, 0) for t in range(0, 25, 4)]
            trace += [req(float(t), 2, 0) for t in range(2, 23, 4)]
            trace.append(req(21.0, 9, 0))
            for r in sorted(trace, key=lambda r: r.t):
                cache.handle(r)
            return cache.handle(probe).decision

        assert scenario(0.5) is Decision.SERVE
        assert scenario(4.0) is Decision.REDIRECT


class TestEviction:
    def test_least_popular_chunk_evicted(self):
        cache = make_cache(disk=2, alpha=1.0)
        # A requested every 2 s (recent, popular); B twice, sparsely.
        trace = [req(float(t), 1, 0) for t in range(0, 11, 2)]
        trace += [req(1.0, 2, 0), req(9.0, 2, 0)]
        for r in sorted(trace, key=lambda r: r.t):
            cache.handle(r)
        assert (1, 0) in cache and (2, 0) in cache  # disk full [A, B]
        # C becomes popular; admitting it must evict B, not A
        cache.handle(req(11.0, 3, 0))
        response = cache.handle(req(12.0, 3, 0))
        assert response.decision is Decision.SERVE
        assert (1, 0) in cache
        assert (2, 0) not in cache
        assert (3, 0) in cache

    def test_requested_chunks_excluded_from_eviction(self):
        cache = make_cache(disk=2, alpha=1.0)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0))  # (1,0) cached
        # request spans cached (1,0) + missing (1,1): the fill must not
        # evict (1,0) itself
        cache.handle(req(2.0, 1, 0, 1))
        response = cache.handle(req(3.0, 1, 0, 1))
        assert response.decision is Decision.SERVE
        assert (1, 0) in cache and (1, 1) in cache

    def test_capacity_never_exceeded(self, small_trace):
        cache = CafeCache(64, cost_model=CostModel(2.0))
        for r in small_trace[:800]:
            cache.handle(r)
            assert len(cache) <= 64


class TestUnseenChunkEstimate:
    def _popularize(self, cache):
        cache.handle(req(0.0, 1, 0, 1))  # first-seen: redirected, tracked
        for t in (1.0, 2.0, 3.0, 4.0):
            cache.handle(req(t, 1, 0, 1))  # filled at t=1, then hits

    def test_sibling_estimate_admits_new_chunk(self):
        cache = make_cache(disk=2, alpha=1.0, use_video_iat_estimate=True)
        self._popularize(cache)
        response = cache.handle(req(5.0, 1, 2))  # chunk 2 never seen
        assert response.decision is Decision.SERVE

    def test_without_estimate_new_chunk_redirected(self):
        cache = make_cache(disk=2, alpha=1.0, use_video_iat_estimate=False)
        self._popularize(cache)
        response = cache.handle(req(5.0, 1, 2))
        assert response.decision is Decision.REDIRECT


class TestGhostHistory:
    def _evict_a(self):
        """alpha=2 scenario ending with A evicted at t=8 (ghosts on).

        A: requests at 0..4 (cached, then goes quiet).  B: 5, 6
        (cached; disk full).  C: 7, 8 — its second sighting wins the
        cost comparison and evicts A, the least popular chunk.
        """
        cache = make_cache(disk=2, alpha=2.0, ghost_factor=4.0)
        for t in (0.0, 1.0, 2.0, 3.0, 4.0):
            cache.handle(req(t, 1, 0))
        cache.handle(req(5.0, 2, 0))
        cache.handle(req(6.0, 2, 0))
        cache.handle(req(7.0, 3, 0))
        cache.handle(req(8.0, 3, 0))
        assert (1, 0) not in cache
        assert (2, 0) in cache and (3, 0) in cache
        return cache

    def test_evicted_chunk_keeps_iat_history(self):
        cache = self._evict_a()
        assert cache.ghost_chunks >= 1
        assert math.isfinite(cache.chunk_iat((1, 0), 8.0))

    def test_ghost_enables_readmission(self):
        """A's retained history lets a burst of re-requests readmit it."""
        cache = self._evict_a()
        decisions = [
            cache.handle(req(t, 1, 0)).decision for t in (9.0, 10.0, 10.5, 11.0)
        ]
        assert Decision.SERVE in decisions
        assert (1, 0) in cache

    def test_ghost_factor_zero_fossilizes_after_warmup(self):
        """Without any non-cached history every miss looks first-seen
        (its stats are dropped on redirect), so at alpha = 1 the warm-up
        tie pre-fills the disk and then nothing new is ever admitted —
        ghosts are what make re-admission possible at all."""
        cache = make_cache(disk=2, alpha=1.0, ghost_factor=0.0)
        cache.handle(req(0.0, 1, 0))  # warm-up tie: filled
        cache.handle(req(1.0, 2, 0))  # warm-up tie: filled; disk full
        for t in range(2, 12):
            response = cache.handle(req(float(t), 3, 0))
            assert response.decision is Decision.REDIRECT
        assert (3, 0) not in cache
        assert cache.tracked_chunks == 2  # only the cached chunks

    def test_ghost_factor_zero_at_costly_ingress_never_admits(self):
        """At alpha = 2 even the warm-up fills nothing: first-seen is
        strictly costlier, and with no ghosts everything stays
        first-seen forever."""
        cache = make_cache(disk=2, alpha=2.0, ghost_factor=0.0)
        for t in range(10):
            response = cache.handle(req(float(t), t % 2, 0))
            assert response.decision is Decision.REDIRECT
        assert len(cache) == 0

    def test_ghost_count_bounded(self, small_trace):
        cache = CafeCache(32, cost_model=CostModel(2.0), ghost_factor=2.0)
        for r in small_trace[:1500]:
            cache.handle(r)
            assert cache.ghost_chunks <= 64

    def test_tracked_chunks_cover_cache(self, small_trace):
        cache = CafeCache(32, cost_model=CostModel(1.0))
        for r in small_trace[:1000]:
            cache.handle(r)
        # every cached chunk must have IAT state
        assert cache.tracked_chunks >= len(cache)


class TestCacheAge:
    def test_unbounded_while_not_full(self):
        cache = make_cache(disk=8)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0))
        assert cache.cache_age(50.0) == float("inf")

    def test_finite_when_full(self):
        cache = make_cache(disk=1)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0))
        age = cache.cache_age(10.0)
        assert 0.0 < age < float("inf")


class TestAlphaCompliance:
    def test_ingress_decreases_with_alpha(self, small_trace):
        """The core Figure 5 property: Cafe obeys its cost knob."""
        fills = {}
        for alpha in (0.5, 1.0, 4.0):
            cache = CafeCache(128, cost_model=CostModel(alpha))
            result = replay(cache, small_trace)
            fills[alpha] = result.totals.filled_chunks
        assert fills[4.0] < fills[1.0] <= fills[0.5] * 1.05

    def test_fixed_horizon_override(self, small_trace):
        cache = CafeCache(64, cost_model=CostModel(2.0), horizon=3600.0)
        result = replay(cache, small_trace[:500])
        assert result.totals.num_requests == 500
