"""Tests for cache state snapshots (save / restore a warm cache)."""

import pytest

from repro.core.baselines import LfuAdmissionCache, PullThroughLruCache
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.psychic import PsychicCache
from repro.core.snapshot import (
    SNAPSHOT_KINDS,
    load_snapshot,
    load_state_dict,
    save_snapshot,
    snapshot_kind,
    state_dict,
    supports_snapshot,
)
from repro.core.xlru import XlruCache
from repro.trace.requests import Request

K = 1024


def req(t, video, c0):
    return Request(t, video, c0 * K, (c0 + 1) * K - 1)


def warm(cache, trace):
    for r in trace:
        cache.handle(r)
    return cache


def continue_identically(original, restored, trace):
    """Both caches must make identical decisions on the continuation."""
    for r in trace:
        a = original.handle(r)
        b = restored.handle(r)
        assert a.decision == b.decision, r
        assert a.filled_chunks == b.filled_chunks, r


@pytest.fixture
def warm_trace(small_trace):
    return small_trace[:600]


@pytest.fixture
def continuation(small_trace):
    return small_trace[600:1000]


class TestRegistry:
    def test_registry_covers_hand_written_and_policy_kinds(self):
        from repro.core.policy import POLICY_REGISTRY

        expected = {"xlru", "cafe", "pull-lru", "lfu"} | {
            f"policy:{spec.kind}" for spec in POLICY_REGISTRY.values()
        }
        assert set(SNAPSHOT_KINDS) == expected

    def test_supports_snapshot(self):
        assert supports_snapshot(XlruCache(8, chunk_bytes=K))
        assert supports_snapshot(PullThroughLruCache(8, chunk_bytes=K))
        assert supports_snapshot(LfuAdmissionCache(8, chunk_bytes=K))
        assert not supports_snapshot(PsychicCache(8))

    def test_kind_tags(self):
        assert snapshot_kind(PullThroughLruCache(8, chunk_bytes=K)) == "pull-lru"
        assert snapshot_kind(LfuAdmissionCache(8, chunk_bytes=K)) == "lfu"


class TestUnsupported:
    def test_offline_cache_rejected(self):
        with pytest.raises(TypeError, match="support"):
            state_dict(PsychicCache(8))

    def test_error_names_supported_set_and_requested_type(self):
        """The rejection must say what IS supported and what was asked."""
        with pytest.raises(TypeError) as excinfo:
            snapshot_kind(PsychicCache(8))
        message = str(excinfo.value)
        assert "PsychicCache" in message
        for cls in SNAPSHOT_KINDS.values():
            assert cls.__name__ in message

    def test_load_into_wrong_kind(self):
        state = state_dict(XlruCache(8, chunk_bytes=K))
        with pytest.raises(ValueError, match="kind"):
            load_state_dict(CafeCache(8, chunk_bytes=K), state)

    def test_geometry_mismatch(self):
        state = state_dict(XlruCache(8, chunk_bytes=K))
        with pytest.raises(ValueError, match="geometry"):
            load_state_dict(XlruCache(16, chunk_bytes=K), state)

    def test_version_check(self):
        state = state_dict(XlruCache(8, chunk_bytes=K))
        state["version"] = 99
        with pytest.raises(ValueError, match="version"):
            load_state_dict(XlruCache(8, chunk_bytes=K), state)


class TestXlruRoundtrip:
    def test_contents_restored(self, warm_trace):
        original = warm(XlruCache(64, cost_model=CostModel(2.0)), warm_trace)
        restored = XlruCache(64, cost_model=CostModel(2.0))
        load_state_dict(restored, state_dict(original))
        assert len(restored) == len(original)
        assert restored.tracked_videos == original.tracked_videos
        assert restored.cache_age(warm_trace[-1].t) == original.cache_age(
            warm_trace[-1].t
        )

    def test_decisions_continue_identically(self, warm_trace, continuation):
        original = warm(XlruCache(64, cost_model=CostModel(2.0)), warm_trace)
        restored = XlruCache(64, cost_model=CostModel(2.0))
        load_state_dict(restored, state_dict(original))
        continue_identically(original, restored, continuation)

    def test_json_file_roundtrip(self, tmp_path, warm_trace):
        original = warm(XlruCache(64, cost_model=CostModel(1.0)), warm_trace)
        path = tmp_path / "xlru.json"
        save_snapshot(original, path)
        restored = XlruCache(64, cost_model=CostModel(1.0))
        load_snapshot(restored, path)
        assert len(restored) == len(original)

    def test_oversized_snapshot_rejected(self, warm_trace):
        original = warm(XlruCache(64, cost_model=CostModel(1.0)), warm_trace)
        state = state_dict(original)
        state["disk_chunks"] = 2  # lie about geometry consistently
        with pytest.raises(ValueError):
            load_state_dict(XlruCache(2, chunk_bytes=original.chunk_bytes), state)


class TestCafeRoundtrip:
    def test_contents_and_iats_restored(self, warm_trace):
        original = warm(CafeCache(64, cost_model=CostModel(2.0)), warm_trace)
        restored = CafeCache(64, cost_model=CostModel(2.0))
        load_state_dict(restored, state_dict(original))
        assert len(restored) == len(original)
        assert restored.tracked_chunks == original.tracked_chunks
        assert restored.ghost_chunks == original.ghost_chunks
        now = warm_trace[-1].t
        assert restored.cache_age(now) == pytest.approx(original.cache_age(now))

    def test_iat_values_exact(self):
        original = CafeCache(8, chunk_bytes=K, cost_model=CostModel(1.0))
        for t in (0.0, 3.0, 7.0, 13.0):
            original.handle(req(t, 1, 0))
        restored = CafeCache(8, chunk_bytes=K, cost_model=CostModel(1.0))
        load_state_dict(restored, state_dict(original))
        assert restored.chunk_iat((1, 0), 20.0) == original.chunk_iat((1, 0), 20.0)

    def test_inf_dt_survives_json(self, tmp_path):
        original = CafeCache(8, chunk_bytes=K, cost_model=CostModel(2.0))
        original.handle(req(0.0, 1, 0))  # single sighting: dt = inf ghost
        path = tmp_path / "cafe.json"
        save_snapshot(original, path)
        restored = CafeCache(8, chunk_bytes=K, cost_model=CostModel(2.0))
        load_snapshot(restored, path)
        import math

        assert math.isinf(restored._stats[(1, 0)].dt)

    def test_decisions_continue_identically(self, warm_trace, continuation):
        original = warm(CafeCache(64, cost_model=CostModel(2.0)), warm_trace)
        restored = CafeCache(64, cost_model=CostModel(2.0))
        load_state_dict(restored, state_dict(original))
        continue_identically(original, restored, continuation)

    def test_alpha_retune_on_restore(self, warm_trace):
        """Operators may change alpha across restarts; state loads."""
        original = warm(CafeCache(64, cost_model=CostModel(1.0)), warm_trace)
        restored = CafeCache(64, cost_model=CostModel(4.0))
        load_state_dict(restored, state_dict(original))
        assert restored.cost_model.alpha_f2r == 4.0
        assert len(restored) == len(original)


class TestPullLruRoundtrip:
    def test_contents_restored(self, warm_trace):
        original = warm(PullThroughLruCache(64), warm_trace)
        restored = PullThroughLruCache(64)
        load_state_dict(restored, state_dict(original))
        assert len(restored) == len(original)
        assert list(restored._disk.items()) == list(original._disk.items())

    def test_decisions_continue_identically(self, warm_trace, continuation):
        original = warm(PullThroughLruCache(64), warm_trace)
        restored = PullThroughLruCache(64)
        load_state_dict(restored, state_dict(original))
        continue_identically(original, restored, continuation)

    def test_json_file_roundtrip(self, tmp_path, warm_trace):
        original = warm(PullThroughLruCache(64), warm_trace)
        path = tmp_path / "pull-lru.json"
        save_snapshot(original, path)
        restored = PullThroughLruCache(64)
        load_snapshot(restored, path)
        assert list(restored._disk.items()) == list(original._disk.items())

    def test_oversized_snapshot_rejected(self, warm_trace):
        original = warm(PullThroughLruCache(64), warm_trace)
        state = state_dict(original)
        state["disk_chunks"] = 2
        with pytest.raises(ValueError):
            load_state_dict(
                PullThroughLruCache(2, chunk_bytes=original.chunk_bytes), state
            )


class TestLfuRoundtrip:
    def _cache(self, **kw):
        kw.setdefault("aging_interval", 200)
        return LfuAdmissionCache(64, **kw)

    def test_contents_restored(self, warm_trace):
        original = warm(self._cache(), warm_trace)
        restored = self._cache()
        load_state_dict(restored, state_dict(original))
        assert len(restored) == len(original)
        assert restored._video_hits == original._video_hits
        assert restored._freq == original._freq
        assert restored._handled == original._handled
        assert list(restored._cached.items_ascending()) == list(
            original._cached.items_ascending()
        )

    def test_decisions_continue_identically(self, warm_trace, continuation):
        # aging_interval small enough that the continuation crosses at
        # least one aging boundary on both sides
        original = warm(self._cache(aging_interval=150), warm_trace)
        restored = self._cache(aging_interval=150)
        load_state_dict(restored, state_dict(original))
        continue_identically(original, restored, continuation)
        assert restored._handled == original._handled

    def test_json_file_roundtrip(self, tmp_path, warm_trace):
        original = warm(self._cache(), warm_trace)
        path = tmp_path / "lfu.json"
        save_snapshot(original, path)
        restored = self._cache()
        load_snapshot(restored, path)
        assert restored._freq == original._freq  # dyadic floats: exact

    def test_admission_mismatch_rejected(self, warm_trace):
        original = warm(self._cache(min_video_hits=2), warm_trace)
        state = state_dict(original)
        with pytest.raises(ValueError, match="admission/aging"):
            load_state_dict(self._cache(min_video_hits=3), state)

    def test_aging_mismatch_rejected(self, warm_trace):
        original = warm(self._cache(aging_interval=200), warm_trace)
        state = state_dict(original)
        with pytest.raises(ValueError, match="admission/aging"):
            load_state_dict(self._cache(aging_interval=100), state)
