"""Behavioural tests for xLRU Cache (Section 5, Figure 1, Eq. 5)."""

import pytest

from repro.core.base import Decision
from repro.core.costs import CostModel
from repro.core.xlru import XlruCache
from repro.trace.requests import Request

K = 1024


def req(t, video, c0, c1=None):
    c1 = c0 if c1 is None else c1
    return Request(t, video, c0 * K, (c1 + 1) * K - 1)


def make_cache(disk=4, alpha=1.0, **kwargs):
    return XlruCache(disk, chunk_bytes=K, cost_model=CostModel(alpha), **kwargs)


class TestAdmission:
    def test_first_seen_video_redirected(self):
        cache = make_cache()
        assert cache.handle(req(0.0, 1, 0)).decision is Decision.REDIRECT
        assert len(cache) == 0

    def test_second_request_served_during_warmup(self):
        cache = make_cache()
        cache.handle(req(0.0, 1, 0))
        response = cache.handle(req(1.0, 1, 0))
        assert response.decision is Decision.SERVE
        assert response.filled_chunks == 1
        assert (1, 0) in cache

    def test_any_previously_seen_video_served_while_disk_not_full(self):
        # warm-up: cache age is unbounded, alpha does not matter
        cache = make_cache(disk=10, alpha=4.0)
        cache.handle(req(0.0, 1, 0))
        assert cache.handle(req(1000.0, 1, 0)).decision is Decision.SERVE

    def test_tracker_updated_even_on_redirect(self):
        cache = make_cache()
        cache.handle(req(0.0, 1, 0))
        assert cache.video_last_access(1) == 0.0

    def test_eq5_boundary_alpha1_serves(self):
        cache = make_cache(disk=2, alpha=1.0)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0, 1))  # fills 2 chunks -> disk full
        cache.handle(req(2.0, 2, 0))  # first-seen B: redirect
        # t=3: IAT(B)=1, cache age = 3-1 = 2; 1*1 <= 2 -> serve
        assert cache.handle(req(3.0, 2, 0)).decision is Decision.SERVE

    def test_eq5_boundary_alpha4_redirects(self):
        cache = make_cache(disk=2, alpha=4.0)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0, 1))
        cache.handle(req(2.0, 2, 0))
        # t=3: IAT(B)=1, cache age = 2; 1*4 > 2 -> redirect
        assert cache.handle(req(3.0, 2, 0)).decision is Decision.REDIRECT

    def test_stale_video_redirected_once_disk_full(self):
        cache = make_cache(disk=2, alpha=1.0)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0, 1))  # disk full at t=1
        cache.handle(req(2.0, 2, 0))  # B seen
        # by t=100 the B entry is far older than the cache age (99 > 99?)
        # cache age at t=100 is 99; IAT(B)=98 <= 99 so still served;
        # at alpha=2 it is redirected: 98*2 > 99.
        cache2 = make_cache(disk=2, alpha=2.0)
        cache2.handle(req(0.0, 1, 0))
        cache2.handle(req(1.0, 1, 0, 1))
        cache2.handle(req(2.0, 2, 0))
        assert cache2.handle(req(100.0, 2, 0)).decision is Decision.REDIRECT

    def test_request_bigger_than_disk_redirected(self):
        cache = make_cache(disk=2)
        cache.handle(req(0.0, 1, 0, 5))
        assert cache.handle(req(1.0, 1, 0, 5)).decision is Decision.REDIRECT


class TestFillAndHit:
    def test_fill_then_hit(self):
        cache = make_cache()
        cache.handle(req(0.0, 1, 0, 1))
        first = cache.handle(req(1.0, 1, 0, 1))
        assert first.filled_chunks == 2
        hit = cache.handle(req(2.0, 1, 0, 1))
        assert hit.decision is Decision.SERVE
        assert hit.filled_chunks == 0

    def test_partial_fill_only_missing_chunks(self):
        cache = make_cache()
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0))  # fills chunk 0
        response = cache.handle(req(2.0, 1, 0, 2))  # 0 cached, 1-2 missing
        assert response.filled_chunks == 2
        assert all((1, c) in cache for c in range(3))


class TestEviction:
    def test_lru_chunk_evicted(self):
        cache = make_cache(disk=2)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0))  # (1,0) cached at t=1
        cache.handle(req(2.0, 2, 0))
        cache.handle(req(3.0, 2, 0))  # (2,0) cached at t=3; disk full
        cache.handle(req(4.0, 3, 0))
        response = cache.handle(req(5.0, 3, 0))  # evicts LRU chunk (1,0)
        assert response.evicted_chunks == 1
        assert (1, 0) not in cache
        assert (2, 0) in cache and (3, 0) in cache

    def test_hit_refreshes_recency(self):
        cache = make_cache(disk=2)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0))
        cache.handle(req(2.0, 2, 0))
        cache.handle(req(3.0, 2, 0))  # disk: (1,0)@1, (2,0)@3
        cache.handle(req(4.0, 1, 0))  # hit refreshes (1,0)
        cache.handle(req(5.0, 3, 0))
        cache.handle(req(6.0, 3, 0))  # evicts (2,0), not the refreshed (1,0)
        assert (1, 0) in cache
        assert (2, 0) not in cache

    def test_requested_chunks_never_evicted_by_own_fill(self):
        cache = make_cache(disk=2)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0))  # (1,0) cached
        # request covers cached (1,0) + missing (1,1); eviction must not
        # pick (1,0) even though it is the LRU entry.
        response = cache.handle(req(2.0, 1, 0, 1))
        assert response.decision is Decision.SERVE
        assert (1, 0) in cache and (1, 1) in cache

    def test_disk_never_exceeds_capacity(self):
        cache = make_cache(disk=3)
        for i in range(20):
            video = i % 5
            cache.handle(req(float(2 * i), video, 0))
            cache.handle(req(float(2 * i + 1), video, 0, 1))
            assert len(cache) <= 3


class TestCacheAge:
    def test_infinite_while_not_full(self):
        cache = make_cache(disk=4)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0))
        assert cache.cache_age(100.0) == float("inf")

    def test_age_of_oldest_chunk_when_full(self):
        cache = make_cache(disk=2)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0, 1))
        assert cache.cache_age(10.0) == pytest.approx(9.0)


class TestTrackerCleanup:
    def test_stale_tracker_entries_dropped(self):
        cache = make_cache(disk=2, alpha=1.0, tracker_cleanup_interval=1)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0, 1))  # disk full
        cache.handle(req(2.0, 2, 0))  # B tracked at t=2
        # Churn the disk with fresh videos so the cache age stays small;
        # B's entry then falls past now - cache_age and gets cleaned.
        t = 3.0
        for video in range(10, 40):
            cache.handle(req(t, video, 0))
            cache.handle(req(t + 1.0, video, 0))
            t += 2.0
        assert cache.video_last_access(2) is None

    def test_cleanup_preserves_behaviour(self):
        """With and without cleanup, decisions are identical."""
        trace = []
        for i in range(200):
            video = i % 7
            trace.append(req(float(i), video, i % 3))
        eager = make_cache(disk=4, alpha=2.0, tracker_cleanup_interval=1)
        lazy = make_cache(disk=4, alpha=2.0, tracker_cleanup_interval=10**9)
        for r in trace:
            assert eager.handle(r).decision is lazy.handle(r).decision


class TestTimeOrdering:
    def test_out_of_order_request_rejected(self):
        cache = make_cache()
        cache.handle(req(10.0, 1, 0))
        with pytest.raises(ValueError):
            cache.handle(req(5.0, 2, 0))
