"""Cross-algorithm edge cases the main suites don't isolate."""

import pytest

from repro.core.base import Decision
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.optimal import OptimalCache, solve_optimal
from repro.core.psychic import PsychicCache
from repro.core.xlru import XlruCache
from repro.sim.engine import replay
from repro.trace.requests import Request

K = 1024


def req(t, video, c0, c1=None, k=K):
    c1 = c0 if c1 is None else c1
    return Request(t, video, c0 * k, (c1 + 1) * k - 1)


class TestNonDefaultChunkSize:
    @pytest.mark.parametrize("k", [512, 4096, 2 * 1024 * 1024])
    def test_xlru_respects_chunk_size(self, k):
        cache = XlruCache(4, chunk_bytes=k)
        cache.handle(req(0.0, 1, 0, 1, k=k))
        response = cache.handle(req(1.0, 1, 0, 1, k=k))
        assert response.filled_chunks == 2
        assert (1, 0) in cache and (1, 1) in cache

    def test_mixed_boundary_rounding(self):
        """A one-byte range in the middle of a chunk is one chunk."""
        cache = CafeCache(4, chunk_bytes=K, cost_model=CostModel(0.25))
        response = cache.handle(Request(0.0, 1, 5 * K + 17, 5 * K + 17))
        if response.served:
            assert response.filled_chunks == 1
            assert (1, 5) in cache


class TestAlphaExtremes:
    def test_tiny_alpha_fills_everything_after_warmup(self, small_trace):
        """alpha -> 0: redirecting is maximally costly, fill always."""
        cache = CafeCache(256, cost_model=CostModel(0.01))
        totals = replay(cache, small_trace).totals
        assert totals.redirect_ratio < 0.05

    def test_huge_alpha_slashes_fills(self, small_trace):
        """Warm-up (free disk, unbounded horizon) fills regardless of
        alpha, and even at alpha=100 a chunk >100x more popular than
        the eviction victim is still worth fetching — so the criterion
        is a large *relative* reduction in filled chunks vs alpha=1,
        not zero ingress."""
        fills = {}
        for alpha in (1.0, 100.0):
            cache = CafeCache(64, cost_model=CostModel(alpha))
            fills[alpha] = replay(cache, small_trace).totals.filled_chunks
        assert fills[100.0] < 0.4 * fills[1.0]

    def test_xlru_huge_alpha_still_serves_hits(self, small_trace):
        cache = XlruCache(256, cost_model=CostModel(100.0))
        totals = replay(cache, small_trace).totals
        # admission nearly closed, but whatever got in still serves
        assert totals.num_served >= 0
        assert totals.efficiency >= -1.0


class TestGammaExtremes:
    def test_gamma_one_is_pure_recency(self):
        """gamma = 1: Eq. 8 degenerates to time-since-last-access —
        the history term (1 - gamma) * dt vanishes, i.e. xLRU's model."""
        cache = CafeCache(8, chunk_bytes=K, cost_model=CostModel(1.0), gamma=1.0)
        for t in (0.0, 10.0, 11.0):
            cache.handle(req(t, 1, 0))
        assert cache.chunk_iat((1, 0), 11.0) == pytest.approx(0.0)
        assert cache.chunk_iat((1, 0), 14.5) == pytest.approx(3.5)

    def test_small_gamma_damps_updates(self):
        # alpha=2 so the first sighting redirects without seeding dt;
        # the t=100 gap is then the true first IAT sample
        cache = CafeCache(8, chunk_bytes=K, cost_model=CostModel(2.0), gamma=0.01)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(100.0, 1, 0))  # first sample: dt = 100
        cache.handle(req(100.5, 1, 0))  # tiny gap barely moves dt
        # IAT(t) = gamma*(t - t_x) + (1-gamma)*dt ≈ 0.99 * 99
        assert cache.chunk_iat((1, 0), 100.5) > 90.0


class TestPartialRangeDecisions:
    def test_cafe_mixed_seen_unseen_range(self):
        """A range spanning a cached-and-popular chunk plus an unseen
        one: the video estimate lets the whole range serve."""
        cache = CafeCache(4, chunk_bytes=K, cost_model=CostModel(1.0))
        for t in (0.0, 1.0, 2.0, 3.0):
            cache.handle(req(t, 1, 0))
        response = cache.handle(req(4.0, 1, 0, 1))  # chunk 1 never seen
        assert response.decision is Decision.SERVE
        assert response.filled_chunks == 1

    def test_xlru_partial_hit_counts_only_missing(self):
        cache = XlruCache(8, chunk_bytes=K)
        cache.handle(req(0.0, 1, 0, 2))
        cache.handle(req(1.0, 1, 0, 2))  # fills 3
        response = cache.handle(req(2.0, 1, 1, 4))  # 1,2 hit; 3,4 fill
        assert response.filled_chunks == 2


class TestOptimalFeasibility:
    def test_served_requests_have_chunks_resident(self):
        """Replaying the exact schedule: serve implies residency."""
        trace = []
        t = 0.0
        for i in range(24):
            trace.append(req(t, (i * 5) % 4, i % 3))
            t += 1.0
        cache = OptimalCache(3, chunk_bytes=K, cost_model=CostModel(2.0))
        cache.prepare(trace)
        for r in trace:
            response = cache.handle(r)
            if response.served:
                for chunk in r.chunk_ids(K):
                    assert chunk in cache
            assert len(cache) <= 3

    def test_time_limit_accepted(self):
        trace = [req(float(i), i % 3, 0) for i in range(10)]
        solution = solve_optimal(trace, 2, relaxed=True, time_limit=30.0)
        assert solution.efficiency <= 1.0

    def test_custom_chunk_size(self):
        k = 4096
        trace = [Request(float(i), 1, 0, k - 1) for i in range(4)]
        solution = solve_optimal(trace, 2, chunk_bytes=k, relaxed=False)
        # one fill then three hits
        assert solution.fill_chunks == pytest.approx(1.0)


class TestPsychicLookaheadSemantics:
    def test_short_lookahead_undervalues_far_future(self):
        """N = 1 sees only the next request; a chunk with many future
        requests is valued identically to one with a single one."""
        trace = [req(float(t), 1, 0) for t in range(6)]
        cache = PsychicCache(4, chunk_bytes=K, lookahead=1)
        cache.prepare(trace)
        cache.handle(trace[0])
        assert len(cache.future_times((1, 0))) == 1

    def test_same_timestamp_future_requests(self):
        trace = [req(0.0, 1, 0), req(0.0, 1, 0), req(0.0, 1, 0)]
        cache = PsychicCache(4, chunk_bytes=K)
        results = []
        cache.prepare(trace)
        for r in trace:
            results.append(cache.handle(r))
        # no crash on zero gaps; at least the later ones hit
        assert results[-1].filled_chunks == 0 or results[-1].served


class TestEmptyAndSingle:
    def test_single_request_every_algorithm(self):
        one = [req(0.0, 1, 0)]
        for cls in (XlruCache, CafeCache, PsychicCache):
            cache = cls(4, chunk_bytes=K)
            result = replay(cache, one)
            assert result.num_requests == 1

    def test_disk_of_one_chunk(self, small_trace):
        cache = CafeCache(1, cost_model=CostModel(2.0))
        result = replay(cache, small_trace[:400])
        assert len(cache) <= 1
        assert result.totals.num_requests == 400
