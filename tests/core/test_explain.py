"""Tests for CafeCache.explain(): the decision introspection API."""

import math

import pytest

from repro.core.base import Decision
from repro.core.cafe import CafeCache, DecisionExplanation
from repro.core.costs import CostModel
from repro.trace.requests import Request

K = 1024


def req(t, video, c0, c1=None):
    c1 = c0 if c1 is None else c1
    return Request(t, video, c0 * K, (c1 + 1) * K - 1)


def make_cache(disk=4, alpha=1.0, **kwargs):
    return CafeCache(disk, chunk_bytes=K, cost_model=CostModel(alpha), **kwargs)


class TestExplainIsPure:
    def test_no_state_mutation(self):
        cache = make_cache(alpha=2.0)
        cache.handle(req(0.0, 1, 0))
        before = (len(cache), cache.tracked_chunks, cache.ghost_chunks)
        cache.explain(req(1.0, 2, 0))
        cache.explain(req(1.0, 1, 0))
        assert (len(cache), cache.tracked_chunks, cache.ghost_chunks) == before

    def test_repeated_explains_identical(self):
        cache = make_cache(alpha=2.0)
        for t in range(6):
            cache.handle(req(float(t), t % 2, 0))
        a = cache.explain(req(6.0, 9, 0))
        b = cache.explain(req(6.0, 9, 0))
        assert a.cost_serve == b.cost_serve
        assert a.cost_redirect == b.cost_redirect


class TestExplainPredictsHandle:
    @pytest.mark.parametrize("alpha", [0.5, 1.0, 2.0, 4.0])
    def test_decision_matches_on_trace(self, alpha, small_trace):
        cache = CafeCache(96, cost_model=CostModel(alpha))
        for r in small_trace[:700]:
            predicted = cache.explain(r).decision
            actual = cache.handle(r).decision
            assert predicted is actual, r

    def test_margin_sign_matches_decision(self, small_trace):
        cache = CafeCache(96, cost_model=CostModel(2.0))
        for r in small_trace[:400]:
            explanation = cache.explain(r)
            if explanation.margin < 0:
                assert explanation.decision is Decision.REDIRECT
            cache.handle(r)


class TestExplainFuzzParity:
    """Satellite audit: explain() vs handle() on adversarial fuzz traces.

    For every request the explained verdict must match what ``handle``
    does on a *fresh clone* of the cache, and — because explain is a
    pure dry run — the live cache must then produce the byte-identical
    response the clone did.  The adversarial generator covers the
    awkward corners: b1 chunk boundaries, oversized spans, ghost
    re-admission and exact-tie timestamps.
    """

    @pytest.mark.parametrize("seed,disk,alpha", [
        (301, 2, 0.5),
        (302, 3, 1.0),
        (303, 7, 2.0),
        (304, 5, 4.0),
    ])
    def test_explain_predicts_handle_on_fuzz_trace(self, seed, disk, alpha):
        import copy

        from repro.verify.fuzz import adversarial_trace

        trace = adversarial_trace(seed=seed, num_requests=350, disk_chunks=disk)
        cache = CafeCache(disk, chunk_bytes=K, cost_model=CostModel(alpha))
        oversized = ghosted = 0
        for r in trace:
            clone = copy.deepcopy(cache)
            explanation = cache.explain(r)
            clone_response = clone.handle(r)
            live_response = cache.handle(r)
            assert explanation.decision is live_response.decision, r
            # explain mutated nothing: the live cache replays the clone.
            assert live_response == clone_response, r
            if explanation.margin < 0:
                assert explanation.decision is Decision.REDIRECT
            if math.isinf(explanation.cost_serve):
                oversized += 1
                if not math.isinf(explanation.cost_redirect):
                    assert explanation.decision is Decision.REDIRECT
            ghosted += bool(cache.ghost_chunks)
        # the generator actually exercised the corners this test is for
        assert oversized > 0
        assert ghosted > 0


class TestExplainContents:
    def test_pure_hit(self):
        cache = make_cache()
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0))
        explanation = cache.explain(req(2.0, 1, 0))
        assert explanation.decision is Decision.SERVE
        assert explanation.cost_serve == 0.0
        assert explanation.missing == []

    def test_oversized_request(self):
        cache = make_cache(disk=2)
        explanation = cache.explain(req(0.0, 1, 0, 5))
        assert explanation.decision is Decision.REDIRECT
        assert math.isinf(explanation.cost_serve)

    def test_first_seen_steady_state(self):
        cache = make_cache(disk=2, alpha=2.0)
        for t in range(8):
            cache.handle(req(float(t), 1 + t % 2, 0))
        explanation = cache.explain(req(8.0, 9, 0))
        assert explanation.decision is Decision.REDIRECT
        assert explanation.missing == [(9, 0)]
        # first-seen chunk: no history, no sibling -> infinite IAT
        assert math.isinf(explanation.missing_iats[(9, 0)])
        assert explanation.cost_redirect == pytest.approx(
            cache.cost_model.redirect_cost
        )

    def test_victims_reported_with_iats(self):
        cache = make_cache(disk=2, alpha=1.0)
        for t in range(6):
            cache.handle(req(float(t), 1 + t % 2, 0))  # disk full
        cache.handle(req(6.0, 3, 0))
        explanation = cache.explain(req(7.0, 3, 0))
        assert len(explanation.victims) == 1
        victim = explanation.victims[0]
        assert victim in explanation.victim_iats
        assert explanation.victim_iats[victim] > 0

    def test_horizon_reported(self):
        cache = make_cache(disk=2, alpha=1.0)
        for t in range(6):
            cache.handle(req(float(t), 1 + t % 2, 0))
        explanation = cache.explain(req(6.0, 9, 0))
        assert 0 < explanation.horizon < float("inf")

    def test_fixed_horizon_respected(self):
        cache = make_cache(disk=2, alpha=1.0, horizon=1234.5)
        for t in range(6):
            cache.handle(req(float(t), 1 + t % 2, 0))
        explanation = cache.explain(req(6.0, 9, 0))
        assert explanation.horizon == 1234.5

    def test_dataclass_shape(self):
        explanation = DecisionExplanation(
            decision=Decision.SERVE,
            cost_serve=1.0,
            cost_redirect=2.0,
            horizon=10.0,
        )
        assert explanation.margin == pytest.approx(1.0)
