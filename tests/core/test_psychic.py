"""Behavioural tests for Psychic Cache (Section 8, Eqs. 13-14)."""

import pytest

from repro.core.base import Decision
from repro.core.costs import CostModel
from repro.core.psychic import PsychicCache
from repro.sim.engine import replay
from repro.trace.requests import Request

K = 1024


def req(t, video, c0, c1=None):
    c1 = c0 if c1 is None else c1
    return Request(t, video, c0 * K, (c1 + 1) * K - 1)


def run(cache, trace):
    cache.prepare(trace)
    return [cache.handle(r) for r in trace]


def make_cache(disk=2, alpha=1.0, **kwargs):
    return PsychicCache(disk, chunk_bytes=K, cost_model=CostModel(alpha), **kwargs)


class TestLifecycle:
    def test_handle_before_prepare_raises(self):
        cache = make_cache()
        with pytest.raises(RuntimeError, match="before prepare"):
            cache.handle(req(0.0, 1, 0))

    def test_replay_order_must_match(self):
        cache = make_cache()
        cache.prepare([req(0.0, 1, 0), req(1.0, 2, 0)])
        cache.handle(req(0.0, 1, 0))
        with pytest.raises(RuntimeError, match="order"):
            cache.handle(req(5.0, 9, 0))

    def test_replay_past_end_raises(self):
        cache = make_cache()
        trace = [req(0.0, 1, 0)]
        run(cache, trace)
        with pytest.raises(RuntimeError):
            cache.handle(req(1.0, 1, 0))

    def test_lookahead_validation(self):
        with pytest.raises(ValueError):
            make_cache(lookahead=0)

    def test_is_offline(self):
        assert PsychicCache.offline


class TestFutureIndex:
    def test_future_times_bounded_by_lookahead(self):
        cache = make_cache(lookahead=3)
        trace = [req(float(t), 1, 0) for t in range(10)]
        cache.prepare(trace)
        assert cache.future_times((1, 0)) == [0.0, 1.0, 2.0]

    def test_future_consumed_as_replay_advances(self):
        cache = make_cache(lookahead=10)
        trace = [req(float(t), 1, 0) for t in range(4)]
        cache.prepare(trace)
        cache.handle(trace[0])
        assert cache.future_times((1, 0)) == [1.0, 2.0, 3.0]

    def test_unknown_chunk_has_no_future(self):
        cache = make_cache()
        cache.prepare([req(0.0, 1, 0)])
        assert cache.future_times((9, 9)) == []


class TestDecisions:
    def test_belady_style_eviction(self):
        """Evicts the chunk requested farthest in the future (never-again
        chunks first)."""
        trace = [
            req(0.0, 1, 0),  # A
            req(1.0, 1, 0),
            req(2.0, 2, 0),  # B
            req(3.0, 2, 0),
            req(4.0, 2, 0),
            req(5.0, 3, 0),  # C: must evict B (never again), not A (@10)
            req(6.0, 3, 0),
            req(10.0, 1, 0),
        ]
        cache = make_cache(disk=2)
        responses = run(cache, trace)
        assert (2, 0) not in cache  # B evicted
        assert (1, 0) in cache  # A survived for its t=10 request
        assert responses[-1].filled_chunks == 0  # t=10 was a pure hit

    def test_no_future_no_fill(self):
        """A one-off request never evicts useful content (alpha=2)."""
        trace = [req(float(t), 1, 0) for t in range(10)]  # popular F
        trace.append(req(10.5, 9, 0))  # D: one-off
        trace.append(req(11.0, 1, 0))
        cache = make_cache(disk=1, alpha=2.0)
        responses = run(cache, trace)
        one_off = responses[10]
        assert one_off.decision is Decision.REDIRECT
        assert (1, 0) in cache

    def test_first_sight_admission_with_imminent_future(self):
        """Unlike the online caches, Psychic fills a first-seen chunk
        whose future requests are imminent (the paper's alpha=0.5
        discussion)."""
        trace = [req(float(t), 1, 0) for t in range(11)]  # F popular
        trace += [req(13.0, 5, 0), req(13.5, 5, 0), req(14.0, 5, 0)]
        trace += [req(15.0, 1, 0)]
        cache = make_cache(disk=1, alpha=2.0)
        responses = run(cache, trace)
        first_sight = responses[11]
        assert first_sight.decision is Decision.SERVE
        assert first_sight.filled_chunks == 1

    def test_request_bigger_than_disk_redirected(self):
        trace = [req(0.0, 1, 0, 5), req(1.0, 1, 0, 5)]
        cache = make_cache(disk=2)
        responses = run(cache, trace)
        assert all(r.decision is Decision.REDIRECT for r in responses)

    def test_capacity_never_exceeded(self, small_trace):
        cache = PsychicCache(64, cost_model=CostModel(2.0))
        trace = small_trace[:1000]
        cache.prepare(trace)
        for r in trace:
            cache.handle(r)
            assert len(cache) <= 64


class TestCacheAge:
    def test_before_evictions_elapsed_time(self):
        cache = make_cache(disk=8)
        trace = [req(0.0, 1, 0), req(10.0, 1, 0)]
        run(cache, trace)
        assert cache.cache_age(10.0) == pytest.approx(10.0)

    def test_average_residence_after_evictions(self):
        trace = [
            req(0.0, 1, 0),  # A admitted (tie, alpha=1, warmup)
            req(4.0, 2, 0),  # B: evicts A (A never requested again)
            req(5.0, 2, 0),
        ]
        cache = make_cache(disk=1, alpha=1.0)
        run(cache, trace)
        # A resided from t=0 to t=4
        assert cache.cache_age(99.0) == pytest.approx(4.0)


class TestIntegration:
    def test_alpha_compliance(self, small_trace):
        """Ingress shrinks as alpha grows (Figure 5 property)."""
        fills = {}
        for alpha in (0.5, 2.0, 4.0):
            cache = PsychicCache(128, cost_model=CostModel(alpha))
            fills[alpha] = replay(cache, small_trace).totals.filled_chunks
        assert fills[4.0] <= fills[2.0] <= fills[0.5]

    def test_beats_online_caches_at_alpha2(self, small_trace):
        """The headline ordering: Psychic >= Cafe and xLRU (steady)."""
        from repro.core.cafe import CafeCache
        from repro.core.xlru import XlruCache

        effs = {}
        for cls in (PsychicCache, CafeCache, XlruCache):
            cache = cls(128, cost_model=CostModel(2.0))
            effs[cls.name] = replay(cache, small_trace).steady.efficiency
        assert effs["Psychic"] >= effs["Cafe"] - 0.02
        assert effs["Psychic"] > effs["xLRU"]
