"""Tests for the classic baselines (pull-through LRU, LFU, Belady)."""

import pytest

from repro.core.baselines import BeladyCache, LfuAdmissionCache, PullThroughLruCache
from repro.core.base import Decision
from repro.core.costs import CostModel
from repro.core.cafe import CafeCache
from repro.sim.engine import replay
from repro.trace.requests import Request

K = 1024


def req(t, video, c0, c1=None):
    c1 = c0 if c1 is None else c1
    return Request(t, video, c0 * K, (c1 + 1) * K - 1)


class TestPullThroughLru:
    def test_always_serves(self):
        cache = PullThroughLruCache(4, chunk_bytes=K)
        for i in range(20):
            response = cache.handle(req(float(i), i, 0))
            assert response.decision is Decision.SERVE
            assert response.filled_chunks == 1

    def test_lru_eviction(self):
        cache = PullThroughLruCache(2, chunk_bytes=K)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 2, 0))
        cache.handle(req(2.0, 1, 0))  # refresh 1
        cache.handle(req(3.0, 3, 0))  # evicts 2 (LRU)
        assert (1, 0) in cache
        assert (2, 0) not in cache

    def test_oversize_request_redirected(self):
        cache = PullThroughLruCache(2, chunk_bytes=K)
        assert cache.handle(req(0.0, 1, 0, 5)).decision is Decision.REDIRECT

    def test_unbounded_ingress_hurts_at_high_alpha(self, small_trace):
        """The Section 2 argument: cache-all cannot respect alpha > 1."""
        pull = PullThroughLruCache(128, cost_model=CostModel(4.0))
        cafe = CafeCache(128, cost_model=CostModel(4.0))
        pull_eff = replay(pull, small_trace).steady.efficiency
        cafe_eff = replay(cafe, small_trace).steady.efficiency
        assert cafe_eff > pull_eff + 0.1

    def test_zero_redirects(self, small_trace):
        cache = PullThroughLruCache(128, cost_model=CostModel(1.0))
        totals = replay(cache, small_trace).totals
        assert totals.redirected_bytes == 0


class TestLfuAdmission:
    def test_first_seen_redirected(self):
        cache = LfuAdmissionCache(4, chunk_bytes=K)
        assert cache.handle(req(0.0, 1, 0)).decision is Decision.REDIRECT

    def test_admitted_after_min_hits(self):
        cache = LfuAdmissionCache(4, chunk_bytes=K, min_video_hits=3)
        assert cache.handle(req(0.0, 1, 0)).decision is Decision.REDIRECT
        assert cache.handle(req(1.0, 1, 0)).decision is Decision.REDIRECT
        assert cache.handle(req(2.0, 1, 0)).decision is Decision.SERVE

    def test_parameter_validation(self):
        with pytest.raises(ValueError):
            LfuAdmissionCache(4, min_video_hits=0)
        with pytest.raises(ValueError):
            LfuAdmissionCache(4, aging_interval=0)

    def test_frequency_beats_recency(self):
        """LFU keeps the 5x-requested chunk over the newer 2x one —
        the opposite of what a pure LRU would do."""
        cache = LfuAdmissionCache(2, chunk_bytes=K)
        for t in range(5):
            cache.handle(req(float(t), 1, 0))  # A: freq 5, old
        cache.handle(req(5.0, 2, 0))
        cache.handle(req(6.0, 2, 0))  # B: freq 2, recent; disk full
        cache.handle(req(7.0, 3, 0))
        cache.handle(req(8.0, 3, 0))  # C admitted: evicts B (lowest freq)
        assert (1, 0) in cache
        assert (2, 0) not in cache
        assert (3, 0) in cache

    def test_aging_halves_frequencies(self):
        cache = LfuAdmissionCache(4, chunk_bytes=K, aging_interval=5)
        for t in range(10):
            cache.handle(req(float(t), 1, 0))
        # survives aging without errors and stays consistent
        assert (1, 0) in cache
        assert len(cache) == 1

    def test_oversize_request_redirected(self):
        cache = LfuAdmissionCache(2, chunk_bytes=K)
        cache.handle(req(0.0, 1, 0, 5))
        assert cache.handle(req(1.0, 1, 0, 5)).decision is Decision.REDIRECT

    def test_capacity_never_exceeded(self, small_trace):
        cache = LfuAdmissionCache(32, cost_model=CostModel(1.0), aging_interval=100)
        for r in small_trace[:1000]:
            cache.handle(r)
            assert len(cache) <= 32


class TestBelady:
    def test_requires_prepare(self):
        cache = BeladyCache(2, chunk_bytes=K)
        with pytest.raises(RuntimeError):
            cache.handle(req(0.0, 1, 0))

    def test_order_mismatch_raises(self):
        cache = BeladyCache(2, chunk_bytes=K)
        cache.prepare([req(0.0, 1, 0)])
        with pytest.raises(RuntimeError):
            cache.handle(req(5.0, 9, 9))

    def test_always_serves(self):
        trace = [req(float(i), i, 0) for i in range(10)]
        cache = BeladyCache(2, chunk_bytes=K)
        cache.prepare(trace)
        assert all(cache.handle(r).decision is Decision.SERVE for r in trace)

    def test_farthest_future_evicted(self):
        trace = [
            req(0.0, 1, 0),  # A; next at t=5
            req(1.0, 2, 0),  # B; next at t=2
            req(2.0, 2, 0),
            req(3.0, 3, 0),  # C: evicts A? no — A @5 is nearer than B (never)
            req(5.0, 1, 0),
        ]
        cache = BeladyCache(2, chunk_bytes=K)
        cache.prepare(trace)
        for r in trace[:4]:
            cache.handle(r)
        # at t=3, B is never requested again -> B evicted, A kept
        assert (1, 0) in cache
        assert (2, 0) not in cache
        hit = cache.handle(trace[4])
        assert hit.filled_chunks == 0

    def test_belady_minimizes_fills_vs_lru(self, small_trace):
        """Optimal replacement never fills more than LRU replacement."""
        trace = small_trace[:1500]
        belady = BeladyCache(64, cost_model=CostModel(1.0))
        lru = PullThroughLruCache(64, cost_model=CostModel(1.0))
        belady_fills = replay(belady, trace).totals.filled_chunks
        lru_fills = replay(lru, trace).totals.filled_chunks
        assert belady_fills <= lru_fills
