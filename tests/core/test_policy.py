"""Policy-kernel protocol: the single-file-plugin contract, enforced.

Golden pins:

* the LFU port (``LFU-PK``) is byte-identical to the hand-written
  :class:`~repro.core.baselines.LfuAdmissionCache` on the object lane,
  the hoisted block lane, and the vectorized kernel lane — the
  protocol's proof obligation;
* tunable LRU at ``q = 1`` collapses to PullLRU on oversize-free
  traces (the insertion position degenerates to the most-recent end;
  oversize handling legitimately differs: the pipeline walks chunks
  before the size check, PullLRU checks first);
* retention-aware scoring keeps early chunks over deep chunks under
  eviction pressure (the arXiv:1512.03274 behaviour the policy exists
  for).

Registry sweeps: every registered policy must surface in
``CACHE_FACTORIES``, ``ORACLE_FACTORIES``, ``KERNEL_ALGORITHMS`` and
``SNAPSHOT_KINDS``, pass the differential verifier, and observe
identical totals with probes attached (probes never influence
decisions).
"""

from __future__ import annotations

import pytest

from repro.core.baselines import LfuAdmissionCache
from repro.core.policy import (
    POLICY_REGISTRY,
    KernelCache,
    LfuKernelPolicy,
    PolicySpec,
    RetentionAwarePolicy,
    TunableLruPolicy,
    register_policy,
)
from repro.core.snapshot import SNAPSHOT_KINDS, snapshot_kind, supports_snapshot
from repro.obs.probes import PolicyProbe, probe_for
from repro.sim.runner import CACHE_FACTORIES, build_cache
from repro.trace.columnar import pack_trace
from repro.trace.requests import Request
from repro.verify.differential import KERNEL_ALGORITHMS, verify_algorithm
from repro.verify.fuzz import FuzzScenario, adversarial_trace
from repro.verify.oracles import ORACLE_FACTORIES

from tests.core.test_kernel_lane import replay_kernel, replay_scalar_blocks

K = 1024
POLICY_NAMES = sorted(POLICY_REGISTRY)


def _outcomes(responses):
    return [(r.decision.value, r.filled_chunks, r.evicted_chunks) for r in responses]


# -- golden port: LFU-PK vs the hand-written LfuAdmissionCache -----------------


@pytest.mark.parametrize("seed,disk,aging", [(31, 4, 10_000), (32, 8, 37), (33, 2, 7)])
def test_lfu_port_byte_identical_object_lane(seed, disk, aging):
    trace = adversarial_trace(seed=seed, num_requests=600, disk_chunks=disk)
    hand = LfuAdmissionCache(disk, chunk_bytes=K, aging_interval=aging)
    port = KernelCache(LfuKernelPolicy(aging_interval=aging), disk, chunk_bytes=K)
    for r in trace:
        a = hand.handle(r)
        b = port.handle(r)
        assert _outcomes([a]) == _outcomes([b]), r
        assert len(hand) == len(port)
    assert sorted(hand._cached.items_ascending()) == sorted(
        port._cached.items_ascending()
    )
    assert hand._freq == port.policy._freq
    assert hand._video_hits == port.policy._video_hits


@pytest.mark.parametrize("block", [1, 33, 256])
def test_lfu_port_byte_identical_block_and_kernel_lanes(block):
    trace = adversarial_trace(seed=41, num_requests=600, disk_chunks=6)
    packed = pack_trace(trace, chunk_bytes=K)
    hand = LfuAdmissionCache(6, chunk_bytes=K, aging_interval=53)
    walker = KernelCache(LfuKernelPolicy(aging_interval=53), 6, chunk_bytes=K)
    kernel = KernelCache(LfuKernelPolicy(aging_interval=53), 6, chunk_bytes=K)
    want = replay_scalar_blocks(hand, packed, block)
    got_walk = replay_scalar_blocks(walker, packed, block)
    got_kernel, misses_ok = replay_kernel(kernel, packed, block)
    assert got_walk == want
    assert got_kernel == want
    assert misses_ok
    for port in (walker, kernel):
        assert len(port) == len(hand)
        assert port.policy._freq == hand._freq
        assert port.policy._video_hits == hand._video_hits
        assert port.policy._handled == hand._handled


# -- qLRU degenerates to PullLRU at q = 1 --------------------------------------


def test_qlru_q1_matches_pull_lru_without_oversize():
    trace = adversarial_trace(
        seed=55, num_requests=700, disk_chunks=8, p_oversize=0.0
    )
    lru = build_cache("PullLRU", 8, chunk_bytes=K)
    qlru = KernelCache(TunableLruPolicy(q=1.0), 8, chunk_bytes=K)
    for r in trace:
        assert _outcomes([lru.handle(r)]) == _outcomes([qlru.handle(r)]), r
    assert len(lru) == len(qlru)


def test_qlru_small_q_protects_the_working_set():
    """With q small, a one-shot scan must evict fewer working-set chunks
    than plain LRU does (scanned fills enter near the eviction frontier
    and displace each other, not the re-referenced chunks)."""

    def surviving_working_set(q):
        cache = KernelCache(TunableLruPolicy(q=q), 16, chunk_bytes=K)
        t = 0.0
        # establish and re-reference a 16-chunk working set (video 0)
        for _ in range(3):
            for c in range(16):
                t += 1.0
                cache.handle_span(t, 0, c * K, (c + 1) * K - 1, c, c)
        # one-shot scan: 32 never-repeated chunks (videos 1..32)
        for v in range(1, 33):
            t += 1.0
            cache.handle_span(t, v, 0, K - 1, 0, 0)
        return sum((0, c) in cache for c in range(16))

    assert surviving_working_set(0.1) > surviving_working_set(1.0)


def test_qlru_rejects_bad_q():
    for q in (0.0, -0.5, 1.5):
        with pytest.raises(ValueError):
            TunableLruPolicy(q=q)


# -- retention-aware scoring ---------------------------------------------------


def test_retention_keeps_early_chunks_over_deep_chunks():
    """Under eviction pressure the deep chunks go first.

    Stream one video's 24 chunks through a 12-chunk disk, one chunk
    per request.  The retention boost dominates the slowly advancing
    clock, so every eviction takes the deepest resident chunk: the
    early chunks (positions 0-10) survive the whole sweep while the
    middle positions churn (each deep fill is itself the next victim,
    leaving only the final fill resident among the deep ones)."""
    cache = KernelCache(
        RetentionAwarePolicy(min_video_hits=1, boost=3600.0, halflife=8.0),
        12,
        chunk_bytes=K,
    )
    for c in range(24):
        cache.handle_span(1.0 + c, 7, c * K, (c + 1) * K - 1, c, c)
    assert len(cache) == 12
    resident = {c for (_v, c) in cache._cached.raw_index()}
    assert set(range(11)).issubset(resident)
    assert resident == set(range(11)) | {23}


def test_retention_admission_redirects_unproven_videos():
    cache = KernelCache(RetentionAwarePolicy(min_video_hits=2), 8, chunk_bytes=K)
    first = cache.handle_span(1.0, 3, 0, K - 1, 0, 0)
    second = cache.handle_span(2.0, 3, 0, K - 1, 0, 0)
    assert first.decision.value == "redirect"
    assert second.decision.value == "serve"


def test_retention_rejects_bad_knobs():
    for kwargs in (
        {"min_video_hits": 0},
        {"boost": -1.0},
        {"halflife": 0.0},
    ):
        with pytest.raises(ValueError):
            RetentionAwarePolicy(**kwargs)


# -- registry: one registration, every lane ------------------------------------


def test_registry_reaches_every_matrix():
    for name, spec in POLICY_REGISTRY.items():
        assert name in CACHE_FACTORIES
        assert name in ORACLE_FACTORIES
        assert name in KERNEL_ALGORITHMS
        assert f"policy:{spec.kind}" in SNAPSHOT_KINDS
        factory = CACHE_FACTORIES[name]
        assert factory.offline is False
        assert factory.cost_sensitive == spec.policy_cls.cost_sensitive


def test_registry_rejects_collisions():
    spec = POLICY_REGISTRY["qLRU"]
    with pytest.raises(ValueError):
        register_policy(spec)
    with pytest.raises(ValueError):
        register_policy(
            PolicySpec(name="qLRU-2", kind="qlru", policy_cls=TunableLruPolicy)
        )


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_policy_cache_snapshot_kind_and_support(name):
    cache = build_cache(name, 8, chunk_bytes=K)
    assert supports_snapshot(cache)
    assert snapshot_kind(cache) == f"policy:{cache.policy.kind}"


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_policy_passes_differential_verifier(name):
    scenario = FuzzScenario(
        seed=4096,
        num_requests=500,
        disk_chunks=5,
        chunk_bytes=1000,
        alpha_f2r=2.0,
        cache_kwargs={
            "LFU-PK": {"aging_interval": 61},
            "Retention": {"boost": 11.0, "halflife": 3.0},
            "qLRU": {"q": 0.5},
        },
    )
    result, _minimal = verify_algorithm(name, scenario, shrink=False)
    assert result.ok, str(result.divergence or result.violations[:3])


# -- probes --------------------------------------------------------------------


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_probe_parity_and_policy_gauges(name):
    """Probes observe without influencing: identical decision streams
    with and without a probe, outcome counters consistent with the
    stream, and the policy's gauges surfaced in snapshot_gauges."""
    trace = adversarial_trace(seed=91, num_requests=400, disk_chunks=6)
    plain = build_cache(name, 6, chunk_bytes=K)
    probed = build_cache(name, 6, chunk_bytes=K)
    probe = probe_for(probed)
    assert isinstance(probe, PolicyProbe)
    probed.probe = probe
    want = [plain.handle(r) for r in trace]
    got = [probed.handle(r) for r in trace]
    assert _outcomes(want) == _outcomes(got)
    counters = probe.registry.counters
    assert counters.get("serve", 0) + counters.get("redirect", 0) == len(trace)
    gauges = probe.snapshot_gauges(probed)
    for key in probed.policy.gauges():
        assert f"policy.{key}" in gauges


def test_probe_hooks_fire_on_fill_and_evict():
    cache = build_cache("qLRU", 2, chunk_bytes=K)
    probe = probe_for(cache)
    cache.probe = probe
    for t, c in ((1.0, 0), (2.0, 1), (3.0, 2)):
        cache.handle_span(t, 1, c * K, (c + 1) * K - 1, c, c)
    counters = probe.registry.counters
    assert counters["fill_chunks"] == 3
    assert counters["evict_chunks"] == 1


# -- engine dispatch -----------------------------------------------------------


@pytest.mark.parametrize("name", POLICY_NAMES)
def test_kernel_cache_is_native_on_both_packed_lanes(name):
    from repro.core.base import VideoCache
    from repro.sim.engine import _kernel_native, _span_native

    cache = build_cache(name, 8, chunk_bytes=K)
    assert _span_native(cache)
    assert _kernel_native(cache)
    assert (
        type(cache).handle_span_block_kernel
        is not VideoCache.handle_span_block_kernel
    )


def test_oversized_span_redirects_after_rescore():
    """The pipeline walks (re-scoring hits) before the size check, like
    the LFU baseline — an oversized re-request must refresh residency
    but still redirect."""
    cache = build_cache("qLRU", 2, chunk_bytes=K)
    cache.handle_span(1.0, 1, 0, K - 1, 0, 0)
    response = cache.handle_span(2.0, 1, 0, 3 * K - 1, 0, 2)
    assert response.decision.value == "redirect"
    assert cache._cached.score((1, 0)) == 2.0


def test_requests_helpers_build_usable_traces():
    # tiny sanity pin for Request geometry used throughout this module
    r = Request(1.0, 5, 0, 2 * K - 1)
    assert list(r.chunk_ids(K)) == [(5, 0), (5, 1)]
