"""Property-based snapshot tests: restore-then-continue equivalence.

Hypothesis generates arbitrary warm-up traces; after snapshot/restore
the cache must continue with decisions identical to the original on an
arbitrary continuation — for both supported cache kinds, across alpha
settings, through a real JSON round-trip.
"""

import json

from hypothesis import given, settings, strategies as st

from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.snapshot import load_state_dict, state_dict
from repro.core.xlru import XlruCache
from repro.trace.requests import Request

K = 1024
DISK = 10


@st.composite
def split_trace(draw):
    """A warm-up trace and a continuation, time-ordered end to end."""
    n_warm = draw(st.integers(1, 40))
    n_cont = draw(st.integers(1, 25))
    t = 0.0
    requests = []
    for _ in range(n_warm + n_cont):
        t += draw(st.floats(0.01, 50.0))
        video = draw(st.integers(0, 6))
        c0 = draw(st.integers(0, 7))
        span = draw(st.integers(1, 3))
        requests.append(Request(t, video, c0 * K, (c0 + span) * K - 1))
    return requests[:n_warm], requests[n_warm:]


@settings(max_examples=25, deadline=None)
@given(data=split_trace(), alpha=st.sampled_from([0.5, 1.0, 2.0]))
def test_cafe_snapshot_continuation_identical(data, alpha):
    warmup, continuation = data
    original = CafeCache(DISK, chunk_bytes=K, cost_model=CostModel(alpha))
    for r in warmup:
        original.handle(r)

    # through actual JSON: catches anything non-serializable
    payload = json.loads(json.dumps(state_dict(original)))
    restored = CafeCache(DISK, chunk_bytes=K, cost_model=CostModel(alpha))
    load_state_dict(restored, payload)

    for r in continuation:
        a = original.handle(r)
        b = restored.handle(r)
        assert a.decision == b.decision
        assert a.filled_chunks == b.filled_chunks
        assert len(original) == len(restored)


@settings(max_examples=25, deadline=None)
@given(data=split_trace(), alpha=st.sampled_from([0.5, 1.0, 2.0]))
def test_xlru_snapshot_continuation_identical(data, alpha):
    warmup, continuation = data
    original = XlruCache(DISK, chunk_bytes=K, cost_model=CostModel(alpha))
    for r in warmup:
        original.handle(r)

    payload = json.loads(json.dumps(state_dict(original)))
    restored = XlruCache(DISK, chunk_bytes=K, cost_model=CostModel(alpha))
    load_state_dict(restored, payload)

    for r in continuation:
        a = original.handle(r)
        b = restored.handle(r)
        assert a.decision == b.decision
        assert a.filled_chunks == b.filled_chunks
