"""Property-based snapshot tests: restore-then-continue equivalence.

Hypothesis generates arbitrary warm-up traces; after snapshot/restore
the cache must continue with decisions identical to the original on an
arbitrary continuation — for every snapshot-supported cache kind,
across alpha settings, through a real JSON round-trip (in-memory for
the originals, on-disk via ``save_snapshot``/``load_snapshot`` for the
all-kinds cut-point test).
"""

import json
import os
import tempfile

from hypothesis import given, settings, strategies as st

from repro.core.baselines import LfuAdmissionCache, PullThroughLruCache
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.policy import POLICY_REGISTRY, KernelCache
from repro.core.snapshot import (
    SNAPSHOT_KINDS,
    load_snapshot,
    load_state_dict,
    save_snapshot,
    state_dict,
)
from repro.core.xlru import XlruCache
from repro.trace.requests import Request

K = 1024
DISK = 10

#: kind tag -> fresh cache with a geometry shared by all kinds, so one
#: snapshot file per kind can be compared like-for-like.
_BUILDERS = {
    "xlru": lambda: XlruCache(DISK, chunk_bytes=K, cost_model=CostModel(2.0)),
    "cafe": lambda: CafeCache(DISK, chunk_bytes=K, cost_model=CostModel(2.0)),
    "pull-lru": lambda: PullThroughLruCache(DISK, chunk_bytes=K),
    "lfu": lambda: LfuAdmissionCache(
        DISK, chunk_bytes=K, min_video_hits=2, aging_interval=20
    ),
}

# Every registered policy kernel joins the cut-point property via the
# generic KernelCache snapshot path — a new plugin is covered with no
# edit here.  Stress kwargs keep the housekeeping paths (LFU-PK aging)
# inside hypothesis-sized traces.
_POLICY_KWARGS = {"LFU-PK": {"aging_interval": 20}}
_BUILDERS.update(
    {
        f"policy:{spec.kind}": (
            lambda spec=spec: KernelCache(
                spec.policy_cls(**_POLICY_KWARGS.get(spec.name, {})),
                DISK,
                chunk_bytes=K,
            )
        )
        for spec in POLICY_REGISTRY.values()
    }
)


@st.composite
def split_trace(draw):
    """A warm-up trace and a continuation, time-ordered end to end."""
    n_warm = draw(st.integers(1, 40))
    n_cont = draw(st.integers(1, 25))
    t = 0.0
    requests = []
    for _ in range(n_warm + n_cont):
        t += draw(st.floats(0.01, 50.0))
        video = draw(st.integers(0, 6))
        c0 = draw(st.integers(0, 7))
        span = draw(st.integers(1, 3))
        requests.append(Request(t, video, c0 * K, (c0 + span) * K - 1))
    return requests[:n_warm], requests[n_warm:]


@settings(max_examples=25, deadline=None)
@given(data=split_trace(), alpha=st.sampled_from([0.5, 1.0, 2.0]))
def test_cafe_snapshot_continuation_identical(data, alpha):
    warmup, continuation = data
    original = CafeCache(DISK, chunk_bytes=K, cost_model=CostModel(alpha))
    for r in warmup:
        original.handle(r)

    # through actual JSON: catches anything non-serializable
    payload = json.loads(json.dumps(state_dict(original)))
    restored = CafeCache(DISK, chunk_bytes=K, cost_model=CostModel(alpha))
    load_state_dict(restored, payload)

    for r in continuation:
        a = original.handle(r)
        b = restored.handle(r)
        assert a.decision == b.decision
        assert a.filled_chunks == b.filled_chunks
        assert len(original) == len(restored)


@settings(max_examples=25, deadline=None)
@given(data=split_trace(), alpha=st.sampled_from([0.5, 1.0, 2.0]))
def test_xlru_snapshot_continuation_identical(data, alpha):
    warmup, continuation = data
    original = XlruCache(DISK, chunk_bytes=K, cost_model=CostModel(alpha))
    for r in warmup:
        original.handle(r)

    payload = json.loads(json.dumps(state_dict(original)))
    restored = XlruCache(DISK, chunk_bytes=K, cost_model=CostModel(alpha))
    load_state_dict(restored, payload)

    for r in continuation:
        a = original.handle(r)
        b = restored.handle(r)
        assert a.decision == b.decision
        assert a.filled_chunks == b.filled_chunks


@st.composite
def trace_with_cut(draw):
    """One time-ordered trace plus a randomized snapshot cut point."""
    n = draw(st.integers(2, 60))
    t = 0.0
    requests = []
    for _ in range(n):
        t += draw(st.floats(0.01, 50.0))
        video = draw(st.integers(0, 6))
        c0 = draw(st.integers(0, 7))
        span = draw(st.integers(1, 3))
        requests.append(Request(t, video, c0 * K, (c0 + span) * K - 1))
    cut = draw(st.integers(1, n - 1))
    return requests, cut


@settings(max_examples=20, deadline=None)
@given(data=trace_with_cut(), kind=st.sampled_from(sorted(SNAPSHOT_KINDS)))
def test_every_kind_survives_file_roundtrip_at_any_cut(data, kind):
    """save → load → continue is byte-identical for all supported kinds.

    The cache is snapshotted to a real JSON file at an arbitrary point
    mid-trace; the restored cache must finish the trace with decisions,
    fills and occupancy identical to the uninterrupted original.
    """
    requests, cut = data
    original = _BUILDERS[kind]()
    for r in requests[:cut]:
        original.handle(r)

    fd, path = tempfile.mkstemp(suffix=".json")
    os.close(fd)
    try:
        save_snapshot(original, path)
        restored = _BUILDERS[kind]()
        load_snapshot(restored, path)
    finally:
        os.unlink(path)

    assert len(restored) == len(original)
    for r in requests[cut:]:
        a = original.handle(r)
        b = restored.handle(r)
        assert a.decision == b.decision, (kind, r)
        assert a.filled_chunks == b.filled_chunks, (kind, r)
        assert len(original) == len(restored), (kind, r)
