"""Tests for the related-work LRU variants (LRU-K, GDS)."""

import pytest

from repro.core.base import Decision
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.lru_variants import GreedyDualSizeCache, LruKCache
from repro.sim.engine import replay
from repro.trace.requests import Request

K = 1024


def req(t, video, c0, c1=None):
    c1 = c0 if c1 is None else c1
    return Request(t, video, c0 * K, (c1 + 1) * K - 1)


class TestLruKAdmission:
    def test_k_validation(self):
        with pytest.raises(ValueError):
            LruKCache(4, k=0)
        with pytest.raises(ValueError):
            LruKCache(4, history_factor=0.0)

    def test_below_k_accesses_redirected(self):
        cache = LruKCache(4, chunk_bytes=K, k=3)
        assert cache.handle(req(0.0, 1, 0)).decision is Decision.REDIRECT
        assert cache.handle(req(1.0, 1, 0)).decision is Decision.REDIRECT
        assert cache.handle(req(2.0, 1, 0)).decision is Decision.SERVE

    def test_k2_matches_second_request_admission(self):
        cache = LruKCache(4, chunk_bytes=K, k=2)
        assert cache.handle(req(0.0, 1, 0)).decision is Decision.REDIRECT
        assert cache.handle(req(1.0, 1, 0)).decision is Decision.SERVE

    def test_oversize_request_redirected(self):
        cache = LruKCache(2, chunk_bytes=K, k=1)
        assert cache.handle(req(0.0, 1, 0, 5)).decision is Decision.REDIRECT


class TestLruKReplacement:
    def test_evicts_oldest_kth_access(self):
        """The video whose K-th most recent access is oldest loses."""
        cache = LruKCache(2, chunk_bytes=K, k=2)
        # A: accesses at 0, 1 -> K-distance key 0
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 1, 0))
        # B: accesses at 2, 3 -> key 2; disk now full
        cache.handle(req(2.0, 2, 0))
        cache.handle(req(3.0, 2, 0))
        # A again at 4, 5: its K-distance key becomes 4 > B's 2
        cache.handle(req(4.0, 1, 0))
        cache.handle(req(5.0, 1, 0))
        # C admitted: evicts B (oldest K-th access)
        cache.handle(req(6.0, 3, 0))
        cache.handle(req(7.0, 3, 0))
        assert (1, 0) in cache
        assert (2, 0) not in cache
        assert (3, 0) in cache

    def test_capacity_never_exceeded(self, small_trace):
        cache = LruKCache(32, cost_model=CostModel(1.0))
        for r in small_trace[:800]:
            cache.handle(r)
            assert len(cache) <= 32

    def test_history_bounded(self, small_trace):
        cache = LruKCache(16, cost_model=CostModel(1.0), history_factor=2.0)
        for r in small_trace[:800]:
            cache.handle(r)
        assert len(cache._history) <= max(64, 16 * 2 + 64)


class TestGds:
    def test_always_serves(self):
        cache = GreedyDualSizeCache(4, chunk_bytes=K)
        for i in range(10):
            assert cache.handle(req(float(i), i, 0)).decision is Decision.SERVE

    def test_inflation_advances_on_eviction(self):
        cache = GreedyDualSizeCache(1, chunk_bytes=K)
        cache.handle(req(0.0, 1, 0))
        assert cache.inflation == 0.0
        cache.handle(req(1.0, 2, 0))  # evicts, L rises to victim's H
        assert cache.inflation > 0.0

    def test_recently_refreshed_survives(self):
        cache = GreedyDualSizeCache(2, chunk_bytes=K)
        cache.handle(req(0.0, 1, 0))
        cache.handle(req(1.0, 2, 0))
        cache.handle(req(2.0, 1, 0))  # refresh A's credit
        cache.handle(req(3.0, 3, 0))  # evicts B (stale credit)
        assert (1, 0) in cache
        assert (2, 0) not in cache

    def test_oversize_request_redirected(self):
        cache = GreedyDualSizeCache(2, chunk_bytes=K)
        assert cache.handle(req(0.0, 1, 0, 5)).decision is Decision.REDIRECT

    def test_capacity_never_exceeded(self, small_trace):
        cache = GreedyDualSizeCache(32, cost_model=CostModel(1.0))
        for r in small_trace[:800]:
            cache.handle(r)
            assert len(cache) <= 32


class TestSection3Argument:
    """Classic variants cannot comply with alpha_F2R (Sections 2-3)."""

    def test_gds_ingress_insensitive_to_alpha(self, small_trace):
        fills = {}
        for alpha in (0.5, 4.0):
            cache = GreedyDualSizeCache(128, cost_model=CostModel(alpha))
            fills[alpha] = replay(cache, small_trace).totals.filled_chunks
        assert fills[0.5] == fills[4.0]  # no redirect decision at all

    def test_cafe_beats_variants_at_constrained_ingress(self, medium_trace):
        effs = {}
        for cls in (CafeCache, LruKCache, GreedyDualSizeCache):
            cache = cls(256, cost_model=CostModel(2.0))
            effs[cls.name] = replay(cache, medium_trace).steady.efficiency
        assert effs["Cafe"] > effs["LRU-K"]
        assert effs["Cafe"] > effs["GDS"] + 0.05

    def test_registry_exposes_variants(self):
        from repro.sim.runner import build_cache

        assert build_cache("LRU-K", 16).name == "LRU-K"
        assert build_cache("GDS", 16).name == "GDS"


class TestLruKHistoryTrimRegression:
    """Regression: new videos must survive the history-table trim.

    Found by differential replay against the LRU-K oracle: when the
    bounded history table was full, a first-seen video's (empty) history
    entry was created and then immediately trimmed — an empty history
    keys as -inf, the stalest possible — before its access was recorded.
    New videos could then never accumulate the K accesses admission
    requires and were redirected forever.
    """

    def test_new_video_admissible_with_full_history_table(self):
        # history_factor=1 -> table holds exactly disk_chunks=4 videos
        cache = LruKCache(4, cost_model=CostModel(), history_factor=1.0)
        trace = []
        t = 0.0
        for video in (0, 1, 2):  # admit and cache three videos (k=2)
            trace += [req(t, video, 0), req(t + 1.0, video, 0)]
            t += 2.0
        trace.append(req(t, 3, 0))  # tracked but uncached (one access)
        for request in trace:
            cache.handle(request)

        # the table is now full; a brand-new video must still be able
        # to prove itself across two accesses
        first = cache.handle(req(t + 1.0, 9, 0))
        second = cache.handle(req(t + 2.0, 9, 0))
        assert first.decision is Decision.REDIRECT
        assert second.decision is Decision.SERVE

    def test_new_video_still_trimmable_when_all_others_cached(self):
        # with every tracked video holding cached chunks, the new video
        # is the only trimmable entry and legitimately stays unproven
        cache = LruKCache(2, cost_model=CostModel(), history_factor=1.0)
        for video in (0, 1):
            cache.handle(req(float(video), video, 0))
            cache.handle(req(float(video) + 0.5, video, 0))
        assert cache.handle(req(10.0, 9, 0)).decision is Decision.REDIRECT
        assert cache.handle(req(11.0, 9, 0)).decision is Decision.REDIRECT
