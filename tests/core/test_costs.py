"""Tests for the cost model (Eqs. 1-4)."""

import pytest
from hypothesis import given, strategies as st

from repro.core.costs import CostModel


class TestEq4Normalization:
    def test_alpha_one_gives_unit_costs(self):
        m = CostModel(1.0)
        assert m.fill_cost == pytest.approx(1.0)
        assert m.redirect_cost == pytest.approx(1.0)

    def test_alpha_two(self):
        m = CostModel(2.0)
        assert m.fill_cost == pytest.approx(4.0 / 3.0)
        assert m.redirect_cost == pytest.approx(2.0 / 3.0)

    def test_alpha_half(self):
        m = CostModel(0.5)
        assert m.fill_cost == pytest.approx(2.0 / 3.0)
        assert m.redirect_cost == pytest.approx(4.0 / 3.0)

    def test_alpha_validation(self):
        with pytest.raises(ValueError):
            CostModel(0.0)
        with pytest.raises(ValueError):
            CostModel(-1.0)

    @given(alpha=st.floats(0.01, 100.0))
    def test_property_normalization_eq3(self, alpha):
        m = CostModel(alpha)
        assert m.fill_cost + m.redirect_cost == pytest.approx(2.0)

    @given(alpha=st.floats(0.01, 100.0))
    def test_property_ratio_is_alpha(self, alpha):
        m = CostModel(alpha)
        assert m.fill_cost / m.redirect_cost == pytest.approx(alpha)

    @given(alpha=st.floats(0.01, 100.0))
    def test_property_future_cost_is_min(self, alpha):
        m = CostModel(alpha)
        assert m.future_cost == min(m.fill_cost, m.redirect_cost)


class TestTotalCost:
    def test_eq1(self):
        m = CostModel(2.0)
        assert m.total_cost(300, 600) == pytest.approx(300 * 4 / 3 + 600 * 2 / 3)

    def test_negative_rejected(self):
        with pytest.raises(ValueError):
            CostModel().total_cost(-1, 0)


class TestEfficiency:
    def test_all_hits_is_one(self):
        assert CostModel(1.0).efficiency(1000, 0, 0) == pytest.approx(1.0)

    def test_alpha1_all_redirected_is_zero(self):
        assert CostModel(1.0).efficiency(1000, 0, 1000) == pytest.approx(0.0)

    def test_alpha1_all_filled_is_zero(self):
        assert CostModel(1.0).efficiency(1000, 1000, 0) == pytest.approx(0.0)

    def test_costly_ingress_all_filled_is_negative(self):
        """The paper's footnote 4: filling everything under alpha > 1."""
        eff = CostModel(3.0).efficiency(1000, 1000, 0)
        assert eff < 0.0

    def test_lower_bound_minus_one(self):
        # the worst case: alpha -> inf, everything filled
        eff = CostModel(10_000).efficiency(1000, 1000, 0)
        assert eff >= -1.0
        assert eff == pytest.approx(-1.0, abs=1e-3)

    def test_requires_positive_demand(self):
        with pytest.raises(ValueError):
            CostModel().efficiency(0, 0, 0)

    @given(
        alpha=st.floats(0.05, 20.0),
        fill=st.floats(0, 1),
        redirect=st.floats(0, 1),
    )
    def test_property_efficiency_range(self, alpha, fill, redirect):
        """Eq. 2 lies in [-1, 1] whenever fill+redirect shares <= 1."""
        if fill + redirect > 1.0:
            redirect = 1.0 - fill
        eff = CostModel(alpha).efficiency(1000.0, 1000.0 * fill, 1000.0 * redirect)
        assert -1.0 - 1e-9 <= eff <= 1.0 + 1e-9

    @given(alpha=st.floats(0.05, 20.0), fill=st.floats(0, 500), redirect=st.floats(0, 500))
    def test_property_efficiency_equivalent_to_cost(self, alpha, fill, redirect):
        """Maximizing Eq. 2 == minimizing Eq. 1 (fixed demand)."""
        m = CostModel(alpha)
        eff = m.efficiency(1000.0, fill, redirect)
        assert eff == pytest.approx(1.0 - m.total_cost(fill, redirect) / 1000.0)
