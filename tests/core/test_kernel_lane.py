"""handle_span_block_kernel: vectorized kernels must mirror the scalar walk.

Every online cache overrides
:meth:`~repro.core.base.VideoCache.handle_span_block_kernel` with a
numpy pre-screen (admission, residency) whose residue falls back to the
scalar per-request code.  The contract is observable identity with
:meth:`~repro.core.base.VideoCache.handle_span_block` — same responses,
same end state — plus the miss-index contract: ``misses`` is exactly
the ascending index list of every response that is not the interned
``SERVE_HIT``.  These tests drive kernels over adversarial fuzz traces
(ties, 1-chunk disks, alpha extremes, oversized spans) and over the
no-numpy fallback.

Satellite audit: the xLRU cleanup-cadence sweep pins the hand-inlined
tracker cleanup of the batched walks to ``_maybe_cleanup_tracker``
across degenerate intervals.
"""

from __future__ import annotations

import pytest

from repro.core.base import SERVE_HIT, VideoCache
from repro.sim.runner import build_cache
from repro.trace.columnar import pack_trace
from repro.verify.differential import KERNEL_ALGORITHMS, verify_kernel_lane
from repro.verify.fuzz import FuzzScenario, adversarial_trace

K = 1024


def replay_kernel(cache, packed, block: int):
    """Block-by-block kernel replay; returns (responses, ok_misses)."""
    responses = []
    ok = True
    n = len(packed)
    for lo in range(0, n, block):
        view = packed.block_view(lo, min(lo + block, n))
        got, misses = cache.handle_span_block_kernel(view)
        expected = [i for i, r in enumerate(got) if r is not SERVE_HIT]
        ok = ok and misses == expected
        responses.extend(got)
    return responses, ok


def replay_scalar_blocks(cache, packed, block: int):
    responses = []
    n = len(packed)
    for lo in range(0, n, block):
        view = packed.block_view(lo, min(lo + block, n))
        responses.extend(
            cache.handle_span_block(
                view.ts_l,
                view.videos_l,
                view.b0s_l,
                view.b1s_l,
                view.c0s_l,
                view.c1s_l,
            )
        )
    return responses


@pytest.mark.parametrize("algo", KERNEL_ALGORITHMS)
def test_every_kernel_algorithm_overrides_the_entry_point(algo):
    cache = build_cache(algo, 8, chunk_bytes=K)
    assert (
        type(cache).handle_span_block_kernel
        is not VideoCache.handle_span_block_kernel
    )


@pytest.mark.parametrize("algo", KERNEL_ALGORITHMS)
@pytest.mark.parametrize("seed,disk,alpha", [
    (101, 1, 0.5),
    (102, 2, 4.0),
    (103, 7, 1.0),
    (104, 32, 2.0),
])
@pytest.mark.parametrize("block", [1, 33, 256])
def test_kernel_matches_scalar_block_walk(algo, seed, disk, alpha, block):
    trace = adversarial_trace(seed=seed, num_requests=500, disk_chunks=disk)
    packed = pack_trace(trace, chunk_bytes=K)
    scalar = build_cache(algo, disk, alpha_f2r=alpha, chunk_bytes=K)
    kernel = build_cache(algo, disk, alpha_f2r=alpha, chunk_bytes=K)
    want = replay_scalar_blocks(scalar, packed, block)
    got, misses_ok = replay_kernel(kernel, packed, block)
    assert got == want
    assert misses_ok
    assert len(kernel) == len(scalar)


@pytest.mark.parametrize("algo", KERNEL_ALGORITHMS)
def test_kernel_lane_verifier_passes(algo):
    """The repro-verify kernel-lane check is green on the production caches."""
    scenario = FuzzScenario(
        seed=2024,
        num_requests=600,
        disk_chunks=7,
        chunk_bytes=1000,
        alpha_f2r=2.0,
        cache_kwargs={
            "xLRU": {"tracker_cleanup_interval": 97},
            "LFU": {"aging_interval": 89},
        },
    )
    result = verify_kernel_lane(algo, scenario)
    assert result.ok, str(result.divergence)


@pytest.mark.parametrize("algo", KERNEL_ALGORITHMS)
def test_kernel_state_keeps_evolving_identically(algo):
    """Post-kernel caches behave exactly like post-scalar caches."""
    head = adversarial_trace(seed=7, num_requests=400, disk_chunks=8)
    tail = adversarial_trace(seed=8, num_requests=150, disk_chunks=8)
    shift = head[-1].t
    tail = [type(r)(t=r.t + shift, video=r.video, b0=r.b0, b1=r.b1) for r in tail]
    packed = pack_trace(head, chunk_bytes=K)
    scalar = build_cache(algo, 8, chunk_bytes=K)
    kernel = build_cache(algo, 8, chunk_bytes=K)
    replay_scalar_blocks(scalar, packed, 64)
    replay_kernel(kernel, packed, 64)
    assert [scalar.handle(r) for r in tail] == [kernel.handle(r) for r in tail]


@pytest.mark.parametrize("algo", KERNEL_ALGORITHMS)
def test_kernel_default_fallback_when_probe_attached(algo):
    """With a probe attached the kernel must take the per-request path."""

    class CountingProbe:
        def __init__(self):
            self.events = 0

        def __getattr__(self, name):
            if name.startswith("on_"):
                def hook(*args, **kwargs):
                    self.events += 1
                return hook
            raise AttributeError(name)

    trace = adversarial_trace(seed=21, num_requests=200, disk_chunks=8)
    packed = pack_trace(trace, chunk_bytes=K)
    plain = build_cache(algo, 8, chunk_bytes=K)
    probed = build_cache(algo, 8, chunk_bytes=K)
    probed.probe = CountingProbe()
    want = replay_scalar_blocks(plain, packed, 50)
    got, misses_ok = replay_kernel(probed, packed, 50)
    assert got == want
    assert misses_ok


# -- satellite audit: xLRU inlined tracker cleanup cadence ---------------------


@pytest.mark.parametrize("interval", [1, 2, 1023])
@pytest.mark.parametrize("alpha", [0.5, 2.0])
def test_xlru_cleanup_cadence_parity_across_lanes(interval, alpha):
    """The hand-inlined cleanup in the batched xLRU walks fires at the
    same positions, with the same cutoff and the same strictness, as
    ``_maybe_cleanup_tracker`` — across degenerate intervals (1 = fire
    every request, 2, and one larger than the trace)."""
    trace = adversarial_trace(seed=77, num_requests=700, disk_chunks=6)
    packed = pack_trace(trace, chunk_bytes=K)
    n = len(packed)

    def make():
        return build_cache(
            "xLRU",
            6,
            alpha_f2r=alpha,
            chunk_bytes=K,
            tracker_cleanup_interval=interval,
        )

    scalar = make()
    walker = make()
    kernel = make()
    want = [scalar.handle(r) for r in trace]
    got_walk = replay_scalar_blocks(walker, packed, 97)
    got_kernel, misses_ok = replay_kernel(kernel, packed, 97)
    assert got_walk == want
    assert got_kernel == want
    assert misses_ok
    for other in (walker, kernel):
        assert other._tracker.raw_entries() == scalar._tracker.raw_entries()
        assert other._disk.raw_entries() == scalar._disk.raw_entries()
        assert other._requests_since_cleanup == scalar._requests_since_cleanup
