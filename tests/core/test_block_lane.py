"""handle_span_block: the batched lane must mirror scalar handle_span.

PullLRU, xLRU and LFU override :meth:`VideoCache.handle_span_block`
with hoisted-invariant hot loops for the fleet replay lane; the
contract is *observable identity* with the scalar path — same response
sequence, same end state, request by request.  These tests drive both
lanes over the same randomized time-sorted stream and compare
responses, disk contents and subsequent scalar behaviour.
"""

from __future__ import annotations

import pytest

from repro.sim.runner import build_cache

K = 1024
BLOCK_ALGOS = ["PullLRU", "xLRU", "LFU"]
#: Algorithms relying on the default (scalar-delegating) block method —
#: exercised to pin the base-class contract itself.
DEFAULT_ALGOS = ["Cafe"]


def request_columns(n: int = 400, videos: int = 23, seed: int = 11):
    """Deterministic time-sorted packed columns with reuse and ties."""
    ts, vids, b0s, b1s, c0s, c1s = [], [], [], [], [], []
    t = 0.0
    state = seed
    for _ in range(n):
        state = (state * 48271) % 2147483647
        t += (state % 4) * 0.25  # ties whenever state % 4 == 0
        video = state % videos
        c0 = state % 7
        c1 = c0 + (state >> 8) % 3
        ts.append(t)
        vids.append(video)
        b0s.append(c0 * K)
        b1s.append((c1 + 1) * K - 1)
        c0s.append(c0)
        c1s.append(c1)
    return ts, vids, b0s, b1s, c0s, c1s


def replay_scalar(cache, columns):
    return [cache.handle_span(*row) for row in zip(*columns)]


def replay_blocks(cache, columns, block: int):
    n = len(columns[0])
    responses = []
    for lo in range(0, n, block):
        responses.extend(
            cache.handle_span_block(*(col[lo : lo + block] for col in columns))
        )
    return responses


def occupancy(cache, videos: int = 23, chunks: int = 16):
    return {
        (v, c)
        for v in range(videos)
        for c in range(chunks)
        if (v, c) in cache
    }


@pytest.mark.parametrize("algo", BLOCK_ALGOS + DEFAULT_ALGOS)
@pytest.mark.parametrize("block", [1, 7, 64, 400])
def test_block_lane_matches_scalar_lane(algo, block):
    columns = request_columns()
    scalar = build_cache(algo, 48, chunk_bytes=K)
    batched = build_cache(algo, 48, chunk_bytes=K)
    want = replay_scalar(scalar, columns)
    got = replay_blocks(batched, columns, block)
    assert got == want
    assert len(batched) == len(scalar)
    assert occupancy(batched) == occupancy(scalar)


@pytest.mark.parametrize("algo", BLOCK_ALGOS)
def test_state_after_block_replay_behaves_identically(algo):
    """Post-block caches keep evolving like post-scalar caches."""
    columns = request_columns(300)
    tail = request_columns(120, seed=29)
    last_t = columns[0][-1]
    tail = ([t + last_t for t in tail[0]],) + tail[1:]
    scalar = build_cache(algo, 32, chunk_bytes=K)
    batched = build_cache(algo, 32, chunk_bytes=K)
    replay_scalar(scalar, columns)
    replay_blocks(batched, columns, 50)
    assert replay_scalar(scalar, tail) == replay_scalar(batched, tail)
    assert occupancy(batched) == occupancy(scalar)


@pytest.mark.parametrize("algo", BLOCK_ALGOS + DEFAULT_ALGOS)
def test_empty_block_is_a_noop(algo):
    cache = build_cache(algo, 16, chunk_bytes=K)
    assert cache.handle_span_block([], [], [], [], [], []) == []
    assert len(cache) == 0
