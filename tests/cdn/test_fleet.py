"""Tests for fleet-level alpha assignment (§10 optimization layer)."""

import itertools

import pytest

from repro.cdn.fleet import (
    FleetAssignment,
    OperatingPoint,
    measure_tradeoff_curves,
    optimize_alpha_assignment,
)

GB = 10**9


def point(alpha, ingress_gb, redirected_gb):
    return OperatingPoint(
        alpha=alpha,
        ingress_bytes=int(ingress_gb * GB),
        redirected_bytes=int(redirected_gb * GB),
        egress_bytes=10 * GB,
        efficiency=0.5,
    )


#: two servers with the canonical downward tradeoff curve
CURVES = {
    "a": [point(0.5, 4.0, 1.0), point(2.0, 2.0, 2.0), point(4.0, 0.5, 4.0)],
    "b": [point(0.5, 6.0, 0.5), point(2.0, 3.0, 1.5), point(4.0, 1.0, 3.0)],
}


def brute_force(curves, budget):
    """Reference optimum by exhaustive enumeration."""
    servers = sorted(curves)
    best = None
    for combo in itertools.product(*(curves[s] for s in servers)):
        ingress = sum(p.ingress_bytes for p in combo)
        redirected = sum(p.redirected_bytes for p in combo)
        if ingress <= budget and (best is None or redirected < best[0]):
            best = (redirected, {s: p.alpha for s, p in zip(servers, combo)})
    return best


class TestValidation:
    def test_empty_curves(self):
        with pytest.raises(ValueError):
            optimize_alpha_assignment({}, 10 * GB)

    def test_negative_budget(self):
        with pytest.raises(ValueError):
            optimize_alpha_assignment(CURVES, -1)

    def test_infeasible_budget(self):
        with pytest.raises(ValueError, match="infeasible"):
            optimize_alpha_assignment(CURVES, int(0.5 * GB))

    def test_bins_validation(self):
        with pytest.raises(ValueError):
            optimize_alpha_assignment(CURVES, 10 * GB, budget_bins=0)


class TestOptimality:
    # budgets chosen off the exact achievable sums: the conservative
    # round-up quantization rejects knife-edge fits by design
    @pytest.mark.parametrize("budget_gb", [1.6, 3.2, 5.1, 7.2, 10.1, 20.0])
    def test_matches_brute_force(self, budget_gb):
        budget = int(budget_gb * GB)
        expected = brute_force(CURVES, budget)
        assert expected is not None
        result = optimize_alpha_assignment(CURVES, budget, budget_bins=2000)
        assert result.total_redirected_bytes == expected[0]
        assert result.total_ingress_bytes <= budget

    def test_loose_budget_picks_cheapest_redirects(self):
        result = optimize_alpha_assignment(CURVES, 100 * GB)
        assert result.alphas == {"a": 0.5, "b": 0.5}

    def test_tight_budget_squeezes_ingress(self):
        result = optimize_alpha_assignment(CURVES, int(1.6 * GB))
        assert result.alphas == {"a": 4.0, "b": 4.0}

    def test_asymmetric_budget_splits(self):
        """Mid budget: the optimizer mixes alphas across servers."""
        budget = int(7.2 * GB)
        result = optimize_alpha_assignment(CURVES, budget, budget_bins=2000)
        expected = brute_force(CURVES, budget)
        assert result.alphas == expected[1]
        assert len(set(result.alphas.values())) > 1

    def test_never_worse_than_best_uniform(self):
        budget = 6 * GB
        result = optimize_alpha_assignment(CURVES, budget, budget_bins=2000)
        uniform_best = None
        for alpha in (0.5, 2.0, 4.0):
            ingress = sum(
                next(p for p in CURVES[s] if p.alpha == alpha).ingress_bytes
                for s in CURVES
            )
            redirected = sum(
                next(p for p in CURVES[s] if p.alpha == alpha).redirected_bytes
                for s in CURVES
            )
            if ingress <= budget:
                uniform_best = min(
                    uniform_best if uniform_best is not None else redirected,
                    redirected,
                )
        assert uniform_best is not None
        assert result.total_redirected_bytes <= uniform_best

    def test_budget_monotonicity(self):
        redirects = []
        for budget_gb in (2.0, 4.0, 8.0, 16.0):
            result = optimize_alpha_assignment(
                CURVES, int(budget_gb * GB), budget_bins=2000
            )
            redirects.append(result.total_redirected_bytes)
        assert redirects == sorted(redirects, reverse=True)

    def test_utilization_reported(self):
        result = optimize_alpha_assignment(CURVES, 10 * GB)
        assert 0.0 < result.budget_utilization <= 1.0


class TestMeasuredCurves:
    def test_end_to_end_on_synthetic_traces(self, small_trace):
        traces = {
            "half": small_trace[: len(small_trace) // 2],
            "full": small_trace,
        }
        disks = {"half": 64, "full": 64}
        curves = measure_tradeoff_curves(
            traces, disks, alphas=(1.0, 4.0), algorithm="Cafe"
        )
        assert set(curves) == {"half", "full"}
        for points in curves.values():
            assert len(points) == 2
            # larger alpha, less ingress (Figure 5 compliance)
            by_alpha = {p.alpha: p for p in points}
            assert by_alpha[4.0].ingress_bytes <= by_alpha[1.0].ingress_bytes

        total_min = sum(min(p.ingress_bytes for p in c) for c in curves.values())
        result = optimize_alpha_assignment(curves, 4 * total_min + 1)
        assert isinstance(result, FleetAssignment)
        assert set(result.alphas) == {"half", "full"}

    def test_validation(self, small_trace):
        with pytest.raises(ValueError, match="disk"):
            measure_tradeoff_curves({"x": small_trace}, {})
        with pytest.raises(ValueError):
            measure_tradeoff_curves({}, {})
