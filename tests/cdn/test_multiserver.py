"""Tests for the hierarchical multi-server simulator."""

import pytest

from repro.cdn.multiserver import CdnSimulator, _fill_requests
from repro.cdn.topology import hierarchy, peered_edges
from repro.core.baselines import PullThroughLruCache
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.xlru import XlruCache
from repro.trace.requests import Request

K = 1024


def req(t, video, c0, c1=None):
    c1 = c0 if c1 is None else c1
    return Request(t, video, c0 * K, (c1 + 1) * K - 1)


def small_hierarchy(edge_disk=8, parent_disk=64, alpha=1.0):
    edges = {
        "e1": CafeCache(edge_disk, chunk_bytes=K, cost_model=CostModel(alpha)),
        "e2": CafeCache(edge_disk, chunk_bytes=K, cost_model=CostModel(alpha)),
    }
    parent = CafeCache(parent_disk, chunk_bytes=K, cost_model=CostModel(0.75))
    return hierarchy(edges, parent)


class TestBasicRouting:
    def test_unknown_edge_rejected(self):
        simulator = CdnSimulator(small_hierarchy())
        with pytest.raises(KeyError):
            simulator.run({"nope": [req(0.0, 1, 0)]})

    def test_origin_cannot_receive_user_traffic(self):
        simulator = CdnSimulator(small_hierarchy())
        with pytest.raises(ValueError):
            simulator.run({"origin": [req(0.0, 1, 0)]})

    def test_max_redirects_validation(self):
        with pytest.raises(ValueError):
            CdnSimulator(small_hierarchy(), max_redirects=0)

    def test_all_user_requests_counted(self):
        simulator = CdnSimulator(small_hierarchy())
        traces = {
            "e1": [req(float(i), i % 3, 0) for i in range(10)],
            "e2": [req(float(i) + 0.5, i % 5, 0) for i in range(10)],
        }
        result = simulator.run(traces)
        assert result.num_user_requests == 20
        assert result.per_server["e1"].totals().num_requests >= 10

    def test_per_edge_attribution(self):
        """Requests are recorded at the edge they landed on."""
        simulator = CdnSimulator(small_hierarchy())
        traces = {
            "e1": [req(0.0, 1, 0), req(1.0, 1, 0)],
            "e2": [req(2.0, 2, 0)],
        }
        result = simulator.run(traces)
        assert result.per_server["e1"].totals().num_requests == 2
        assert result.per_server["e2"].totals().num_requests == 3 or (
            result.per_server["e2"].totals().num_requests == 1
        )


class TestRedirectFlow:
    def test_redirects_reach_parent(self):
        """Edge-redirected requests are handled by the parent cache."""
        simulator = CdnSimulator(small_hierarchy(alpha=2.0))
        # first-seen requests are redirected by Cafe edges at alpha=2
        traces = {"e1": [req(float(i), i, 0) for i in range(5)]}
        result = simulator.run(traces)
        parent = result.per_server["parent"].totals()
        assert parent.num_requests > 0

    def test_redirect_hops_recorded(self):
        simulator = CdnSimulator(small_hierarchy())
        traces = {"e1": [req(float(i), i, 0) for i in range(6)]}
        result = simulator.run(traces)
        assert sum(result.redirect_hops.values()) == 6

    def test_origin_backstops_redirect_chain(self):
        """A redirect ring terminates at the origin via the hop limit."""
        edges = {
            "a": XlruCache(4, chunk_bytes=K, cost_model=CostModel(4.0)),
            "b": XlruCache(4, chunk_bytes=K, cost_model=CostModel(4.0)),
        }
        topology = peered_edges(edges)
        simulator = CdnSimulator(topology, max_redirects=2)
        # first-seen at a and at b: both redirect, the hop limit then
        # routes the request to the origin instead of back around
        result = simulator.run({"a": [req(0.0, 1, 0)]})
        assert result.origin_requests == 1
        assert result.origin_redirect_bytes == K

    def test_offload_fraction(self):
        simulator = CdnSimulator(small_hierarchy())
        traces = {"e1": [req(float(i), 1, 0) for i in range(10)]}
        result = simulator.run(traces)
        assert 0.0 <= result.origin_offload <= 1.0


class TestFillFlow:
    def test_edge_fill_becomes_parent_request(self):
        """A cache-filling edge generates upstream fill requests."""
        simulator = CdnSimulator(small_hierarchy())
        # video 1 twice: second request fills at the edge
        traces = {"e1": [req(0.0, 1, 0), req(1.0, 1, 0)]}
        result = simulator.run(traces)
        parent = result.per_server["parent"].totals()
        edge = result.per_server["e1"].totals()
        assert edge.filled_chunks >= 1
        # the parent saw at least the fill request (plus any redirects)
        assert parent.num_requests >= 1

    def test_fill_volume_conserved(self):
        """Bytes filled at the edge appear as requests upstream."""
        simulator = CdnSimulator(small_hierarchy())
        traces = {"e1": [req(0.0, 1, 0, 3), req(1.0, 1, 0, 3)]}
        result = simulator.run(traces)
        edge = result.per_server["e1"].totals()
        parent = result.per_server["parent"].totals()
        assert parent.requested_bytes >= edge.ingress_bytes

    def test_parent_fill_reaches_origin(self):
        """When the parent itself fills, the origin serves the bytes."""
        simulator = CdnSimulator(small_hierarchy())
        traces = {"e1": [req(0.0, 1, 0), req(1.0, 1, 0), req(2.0, 1, 0)]}
        result = simulator.run(traces)
        assert result.origin_bytes > 0

    def test_describe_output(self):
        simulator = CdnSimulator(small_hierarchy())
        result = simulator.run({"e1": [req(0.0, 1, 0), req(1.0, 1, 0)]})
        text = result.describe()
        assert "user requests" in text


class TestTimeMerging:
    def test_interleaved_edges_by_timestamp(self):
        """Caches see time-ordered streams even across edges."""
        simulator = CdnSimulator(small_hierarchy())
        traces = {
            "e1": [req(0.0, 1, 0), req(2.0, 1, 0)],
            "e2": [req(1.0, 1, 0), req(3.0, 1, 0)],
        }
        # would raise inside AccessRecencyList if order were violated
        result = simulator.run(traces)
        assert result.num_user_requests == 4


class TestOriginAccounting:
    """Regression: fill-path traffic must not count as user redirects.

    Before the fix, a cache fill that climbed to the origin (after a
    redirect at an intermediate server) incremented ``origin_requests``
    and ``origin_redirect_bytes``, corrupting ``origin_offload`` even
    when every user request was served at the edge.
    """

    def fill_heavy_simulator(self):
        # PullLRU edge always serves and fills; the xLRU parent
        # redirects every first-seen request, so the edge's fill is
        # pushed from the parent to the origin via the redirect map.
        edges = {"e1": PullThroughLruCache(8, chunk_bytes=K)}
        parent = XlruCache(64, chunk_bytes=K, cost_model=CostModel(1.0))
        return CdnSimulator(hierarchy(edges, parent))

    def test_fill_redirected_to_origin_is_not_a_user_redirect(self):
        simulator = self.fill_heavy_simulator()
        result = simulator.run({"e1": [req(0.0, 1, 0)]})
        # the user request was served at the edge...
        assert result.per_server["e1"].totals().num_served == 1
        # ...so no *user* traffic reached the origin,
        assert result.origin_requests == 0
        assert result.origin_redirect_bytes == 0
        assert result.origin_offload == 1.0
        # even though the fill did (origin load, tracked separately)
        assert result.origin_fill_requests == 1
        assert result.origin_fill_bytes == K
        assert result.origin_bytes == K

    def test_user_redirects_still_counted(self):
        # an xLRU edge redirects first-seen user requests; the parent
        # (also first-seen) redirects too, so the request reaches the
        # origin as pure user traffic
        edges = {"e1": XlruCache(8, chunk_bytes=K)}
        parent = XlruCache(64, chunk_bytes=K)
        simulator = CdnSimulator(hierarchy(edges, parent))
        result = simulator.run({"e1": [req(0.0, 1, 0)]})
        assert result.origin_requests == 1
        assert result.origin_redirect_bytes == K
        assert result.origin_fill_requests == 0
        assert result.origin_fill_bytes == 0
        assert result.origin_bytes == K


class TestFillRequestClamp:
    """Regression: fill requests stay inside the user request's chunks."""

    def test_overreported_fill_clamped(self):
        cache = PullThroughLruCache(16, chunk_bytes=K)
        request = req(0.0, 1, 2, 4)  # chunks 2..4
        fills = _fill_requests(request, cache, filled_chunks=10)
        assert len(fills) == 1
        assert fills[0].chunks(K) == (2, 4)
        assert fills[0].b0 == 2 * K
        assert fills[0].b1 == 5 * K - 1

    def test_exact_fill_unchanged(self):
        cache = PullThroughLruCache(16, chunk_bytes=K)
        fills = _fill_requests(req(0.0, 1, 2, 4), cache, filled_chunks=3)
        assert fills[0].chunks(K) == (2, 4)

    def test_partial_fill_is_a_prefix(self):
        cache = PullThroughLruCache(16, chunk_bytes=K)
        fills = _fill_requests(req(0.0, 1, 2, 4), cache, filled_chunks=1)
        assert fills[0].chunks(K) == (2, 2)

    def test_zero_fill_is_empty(self):
        cache = PullThroughLruCache(16, chunk_bytes=K)
        assert _fill_requests(req(0.0, 1, 0), cache, 0) == []


class TestEdgeTraceValidation:
    """Regression: unsorted per-edge traces fail fast, with context."""

    def test_unsorted_edge_trace_rejected_with_edge_and_index(self):
        simulator = CdnSimulator(small_hierarchy())
        traces = {
            "e1": [req(0.0, 1, 0)],
            "e2": [req(5.0, 2, 0), req(1.0, 2, 0)],
        }
        with pytest.raises(ValueError) as excinfo:
            simulator.run(traces)
        message = str(excinfo.value)
        assert "e2" in message
        assert "index 1" in message

    def test_rejection_fails_fast_inside_the_merge_walk(self):
        """Validation is folded into the merge: no second full pre-pass.

        The disorder is detected the moment the offending request is
        pulled from its stream — requests before it have already been
        replayed (fail-fast, not transactional), which is what lets
        one-shot generator traces replay in a single pass.
        """
        topology = small_hierarchy()
        simulator = CdnSimulator(topology)
        with pytest.raises(ValueError) as excinfo:
            simulator.run({"e1": [req(1.0, 1, 0), req(0.0, 1, 0)]})
        assert "e1" in str(excinfo.value)
        assert "index 1" in str(excinfo.value)
        # the in-order prefix (index 0) was replayed before the failure
        assert len(topology["e1"].cache) > 0

    def test_generator_traces_replay_in_one_pass(self):
        """One-shot iterables work: nothing consumes them before replay."""
        simulator = CdnSimulator(small_hierarchy())
        seen = []
        traces = {
            "e1": iter([req(0.0, 1, 0), req(2.0, 1, 0)]),
            "e2": iter([req(1.0, 2, 0)]),
        }
        result = simulator.run(
            traces,
            progress=lambda done, total, dt: seen.append((done, total)),
            progress_every=1,
        )
        assert result.num_user_requests == 3
        # generator traces have no len(): progress reports total=None
        assert seen and all(total is None for _done, total in seen)
        assert seen[-1][0] == 3

    def test_equal_timestamps_allowed(self):
        simulator = CdnSimulator(small_hierarchy())
        traces = {"e1": [req(1.0, 1, 0), req(1.0, 2, 0), req(1.0, 1, 0)]}
        result = simulator.run(traces)
        assert result.num_user_requests == 3
