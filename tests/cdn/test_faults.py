"""Tests for the fault-injection layer: schedules, routing, accounting."""

import dataclasses
import random

import pytest

from repro.cdn.faults import (
    FaultEvent,
    FaultSchedule,
)
from repro.cdn.multiserver import CdnSimulator
from repro.cdn.topology import CdnServer, CdnTopology, hierarchy
from repro.sim.runner import CACHE_FACTORIES, build_cache
from repro.trace.requests import Request

K = 1024


def req(t, video, c0, c1=None):
    c1 = c0 if c1 is None else c1
    return Request(t, video, c0 * K, (c1 + 1) * K - 1)


def small_hierarchy(algo="Cafe", edge_disk=8, parent_disk=64):
    edges = {
        "e1": build_cache(algo, edge_disk, chunk_bytes=K),
        "e2": build_cache(algo, edge_disk, chunk_bytes=K),
    }
    parent = build_cache(algo, parent_disk, chunk_bytes=K)
    return hierarchy(edges, parent)


def random_traces(seed=7, n=600, videos=40):
    rng = random.Random(seed)
    traces = {"e1": [], "e2": []}
    for i in range(n):
        edge = rng.choice(("e1", "e2"))
        traces[edge].append(
            req(float(i), rng.randrange(videos), 0, rng.randrange(1, 4))
        )
    return traces


def fingerprint(result):
    per = tuple(
        (name, dataclasses.astuple(result.summary(name)))
        for name in sorted(result.per_server)
    )
    return (
        per,
        result.origin_bytes,
        result.origin_requests,
        result.origin_fill_requests,
        result.origin_fill_bytes,
        tuple(sorted(result.redirect_hops.items())),
        result.num_user_requests,
        result.origin_redirect_bytes,
        result.requests_lost,
        result.lost_bytes,
    )


class TestFaultEvent:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError, match="unknown fault kind"):
            FaultEvent("meteor", "e1", 0.0, 10.0)

    def test_nonpositive_duration_rejected(self):
        with pytest.raises(ValueError, match="duration"):
            FaultEvent("outage", "e1", 0.0, 0.0)

    def test_degrade_needs_factor_above_one(self):
        with pytest.raises(ValueError, match="factor"):
            FaultEvent("degrade", "e1", 0.0, 10.0, factor=1.0)

    def test_brownout_drop_fraction_bounds(self):
        with pytest.raises(ValueError, match="drop_fraction"):
            FaultEvent("brownout", "origin", 0.0, 10.0, drop_fraction=0.0)
        with pytest.raises(ValueError, match="drop_fraction"):
            FaultEvent("brownout", "origin", 0.0, 10.0, drop_fraction=1.5)

    def test_describe_mentions_kind_and_window(self):
        text = FaultEvent("degrade", "e1", 5.0, 10.0, factor=3.0).describe()
        assert "degrade" in text and "e1" in text and "x3" in text


class TestFaultSchedule:
    def test_events_sorted_by_time(self):
        schedule = FaultSchedule(
            [
                FaultEvent("outage", "e1", 50.0, 10.0),
                FaultEvent("outage", "e2", 5.0, 10.0),
            ]
        )
        assert [e.t for e in schedule.events] == [5.0, 50.0]

    def test_empty_schedule_is_falsy_and_has_no_runtime(self):
        schedule = FaultSchedule([])
        assert not schedule and len(schedule) == 0
        assert schedule.runtime(small_hierarchy()) is None

    def test_random_is_deterministic(self):
        a = FaultSchedule.random(["e1", "e2"], "origin", 1000.0, seed=9)
        b = FaultSchedule.random(["e1", "e2"], "origin", 1000.0, seed=9)
        assert a.events == b.events
        c = FaultSchedule.random(["e1", "e2"], "origin", 1000.0, seed=10)
        assert a.events != c.events

    def test_runtime_rejects_unknown_server(self):
        schedule = FaultSchedule([FaultEvent("outage", "nope", 0.0, 1.0)])
        with pytest.raises(ValueError, match="unknown server"):
            schedule.runtime(small_hierarchy())

    def test_runtime_rejects_brownout_off_origin(self):
        schedule = FaultSchedule(
            [FaultEvent("brownout", "e1", 0.0, 1.0, drop_fraction=0.5)]
        )
        with pytest.raises(ValueError, match="origin"):
            schedule.runtime(small_hierarchy())

    def test_runtime_rejects_outage_of_origin(self):
        schedule = FaultSchedule([FaultEvent("outage", "origin", 0.0, 1.0)])
        with pytest.raises(ValueError, match="brownout instead"):
            schedule.runtime(small_hierarchy())


class TestGoldenEquivalence:
    """Empty schedule (or none) must be byte-identical for every algorithm."""

    @pytest.mark.parametrize(
        "algo",
        [a for a in sorted(CACHE_FACTORIES)
         if not getattr(CACHE_FACTORIES[a], "offline", False)],
    )
    def test_empty_schedule_is_byte_identical(self, algo):
        traces = random_traces()
        bare = CdnSimulator(small_hierarchy(algo)).run(traces)
        empty = CdnSimulator(
            small_hierarchy(algo), faults=FaultSchedule([])
        ).run(traces)
        assert fingerprint(bare) == fingerprint(empty)
        assert empty.faults is None or not empty.faults

    def test_faulted_replay_is_deterministic(self):
        traces = random_traces()
        schedule = FaultSchedule(
            [
                FaultEvent("outage", "e1", 100.0, 150.0),
                FaultEvent("restart", "e2", 300.0, 50.0),
                FaultEvent("brownout", "origin", 450.0, 100.0, drop_fraction=0.5),
            ],
            seed=3,
        )
        a = CdnSimulator(small_hierarchy(), faults=schedule).run(traces)
        b = CdnSimulator(small_hierarchy(), faults=schedule).run(traces)
        assert fingerprint(a) == fingerprint(b)


class TestFailoverRouting:
    def test_down_edge_fails_over_to_redirect_target(self):
        schedule = FaultSchedule([FaultEvent("outage", "e1", 0.0, 100.0)])
        simulator = CdnSimulator(small_hierarchy(), faults=schedule)
        result = simulator.run({"e1": [req(10.0, 1, 0, 1)]})
        # e1 was down: the parent served as backup, e1 saw nothing.
        assert result.summary("e1").num_requests == 0
        assert result.summary("parent").num_requests == 1
        av = result.availability
        assert av["e1"].down_requests == 1
        assert av["e1"].failover_hops == 1
        assert av["parent"].backup_requests == 1
        assert av["parent"].backup_bytes == 2 * K

    def test_down_server_without_redirect_goes_to_origin(self):
        topology = CdnTopology(
            [
                CdnServer(name="origin", cache=None),
                CdnServer(
                    name="solo",
                    cache=build_cache("Cafe", 8, chunk_bytes=K),
                ),
            ]
        )
        schedule = FaultSchedule([FaultEvent("outage", "solo", 0.0, 100.0)])
        result = CdnSimulator(topology, faults=schedule).run(
            {"solo": [req(1.0, 1, 0)]}
        )
        assert result.origin_requests == 1
        assert result.summary("solo").num_requests == 0

    def test_fill_to_down_parent_retries_next_hop(self):
        # Parent down: the edge's fill must climb to the origin instead,
        # and the parent cache must see no fill traffic.
        schedule = FaultSchedule([FaultEvent("outage", "parent", 0.0, 100.0)])
        simulator = CdnSimulator(small_hierarchy("PullLRU"), faults=schedule)
        result = simulator.run({"e1": [req(1.0, 1, 0, 1)]})
        assert result.summary("e1").num_requests == 1
        assert result.summary("parent").num_requests == 0
        assert result.availability["parent"].down_fills == 1
        assert result.origin_fill_requests >= 1

    def test_server_serves_again_after_recovery(self):
        schedule = FaultSchedule([FaultEvent("outage", "e1", 0.0, 50.0)])
        simulator = CdnSimulator(small_hierarchy(), faults=schedule)
        result = simulator.run(
            {"e1": [req(10.0, 1, 0), req(60.0, 1, 0)]}
        )
        assert result.availability["e1"].down_requests == 1
        assert result.summary("e1").num_requests == 1


class TestColdRestart:
    def test_restart_wipes_cache_and_counts_refill(self):
        traces = {
            "e1": [req(float(i), i % 5, 0, 1) for i in range(50)]
            + [req(200.0 + i, i % 5, 0, 1) for i in range(50)]
        }
        schedule = FaultSchedule([FaultEvent("restart", "e1", 100.0, 50.0)])
        simulator = CdnSimulator(small_hierarchy("PullLRU"), faults=schedule)
        result = simulator.run(traces)
        stats = result.availability["e1"]
        assert stats.restarts == 1
        assert stats.refill_bytes > 0
        assert stats.rewarm_seconds and stats.rewarm_seconds[0] >= 0.0
        wipe_events = [e for e in result.report.events if e.kind == "cache-wipe"]
        assert len(wipe_events) == 1 and "e1" in wipe_events[0].detail

    def test_outage_preserves_cache_state(self):
        # Same window as a restart but kind=outage: state must survive,
        # so the post-recovery request is a hit (no ingress).
        trace = {"e1": [req(1.0, 1, 0), req(200.0, 1, 0)]}
        schedule = FaultSchedule([FaultEvent("outage", "e1", 100.0, 50.0)])
        simulator = CdnSimulator(small_hierarchy("PullLRU"), faults=schedule)
        result = simulator.run(trace)
        summary = result.summary("e1")
        assert summary.num_requests == 2
        assert summary.ingress_bytes == K  # only the first request filled


class TestDegradeAndBrownout:
    def test_degrade_accounts_extra_ingress(self):
        trace = {"e1": [req(10.0, 1, 0, 1)]}
        schedule = FaultSchedule(
            [FaultEvent("degrade", "e1", 0.0, 100.0, factor=3.0)]
        )
        simulator = CdnSimulator(small_hierarchy("PullLRU"), faults=schedule)
        result = simulator.run(trace)
        stats = result.availability["e1"]
        assert stats.degraded_fill_bytes == 2 * K
        assert stats.extra_ingress_bytes == pytest.approx(2.0 * 2 * K)

    def test_full_brownout_drops_all_origin_traffic(self):
        topology = CdnTopology(
            [
                CdnServer(name="origin", cache=None),
                CdnServer(
                    name="solo", cache=build_cache("Cafe", 2, chunk_bytes=K)
                ),
            ]
        )
        # Oversized request redirects straight to the origin, which is
        # fully browned out: the request must be lost end to end.
        schedule = FaultSchedule(
            [FaultEvent("brownout", "origin", 0.0, 100.0, drop_fraction=1.0)]
        )
        result = CdnSimulator(topology, faults=schedule).run(
            {"solo": [req(1.0, 1, 0, 10)]}
        )
        assert result.requests_lost == 1
        assert result.lost_bytes == 11 * K
        assert result.availability["solo"].lost_requests == 1
        assert result.availability_ratio == 0.0

    def test_brownout_seed_changes_which_requests_drop(self):
        traces = random_traces(n=400)
        def run_with_seed(seed):
            schedule = FaultSchedule(
                [FaultEvent("brownout", "origin", 0.0, 1e9, drop_fraction=0.5)],
                seed=seed,
            )
            # Tiny edges force frequent redirects to origin.
            edges = {
                "e1": build_cache("Cafe", 2, chunk_bytes=K),
                "e2": build_cache("Cafe", 2, chunk_bytes=K),
            }
            parent = build_cache("Cafe", 2, chunk_bytes=K)
            return CdnSimulator(
                hierarchy(edges, parent), faults=schedule
            ).run(traces)

        a, b = run_with_seed(1), run_with_seed(2)
        assert a.requests_lost > 0 and b.requests_lost > 0
        assert fingerprint(run_with_seed(1)) == fingerprint(a)  # same seed
        assert fingerprint(a) != fingerprint(b)  # different seed


class TestAuditedWipe:
    def test_wipe_keeps_auditor_and_invariants(self):
        from repro.verify.audit import AuditedCache

        edges = {
            "e1": AuditedCache(build_cache("Cafe", 8, chunk_bytes=K)),
            "e2": AuditedCache(build_cache("Cafe", 8, chunk_bytes=K)),
        }
        parent = AuditedCache(build_cache("Cafe", 64, chunk_bytes=K))
        topology = hierarchy(edges, parent)
        schedule = FaultSchedule([FaultEvent("restart", "e1", 100.0, 50.0)])
        traces = {
            "e1": [req(float(i), i % 4, 0, 1) for i in range(80)]
            + [req(300.0 + i, i % 4, 0, 1) for i in range(80)]
        }
        CdnSimulator(topology, faults=schedule).run(traces)
        assert edges["e1"].wipes == 1
        assert edges["e1"].ok
        assert len(edges["e1"].inner) > 0  # re-warmed after the wipe
