"""Tests for CDN topology wiring and validation."""

import pytest

from repro.cdn.topology import CdnServer, CdnTopology, hierarchy, peered_edges
from repro.core.cafe import CafeCache
from repro.core.psychic import PsychicCache
from repro.core.xlru import XlruCache


def cache(disk=16):
    return CafeCache(disk)


class TestCdnServer:
    def test_origin_is_terminal(self):
        origin = CdnServer(name="origin", cache=None, redirect_to="x", fill_from="y")
        assert origin.is_origin
        assert origin.redirect_to is None
        assert origin.fill_from is None

    def test_offline_cache_rejected(self):
        with pytest.raises(ValueError, match="offline"):
            CdnServer(name="edge", cache=PsychicCache(16))


class TestTopologyValidation:
    def test_needs_origin(self):
        with pytest.raises(ValueError, match="origin"):
            CdnTopology([CdnServer(name="edge", cache=cache(), fill_from=None)])

    def test_duplicate_names_rejected(self):
        with pytest.raises(ValueError, match="duplicate"):
            CdnTopology(
                [
                    CdnServer(name="origin", cache=None),
                    CdnServer(name="a", cache=cache(), fill_from="origin"),
                    CdnServer(name="a", cache=cache(), fill_from="origin"),
                ]
            )

    def test_unknown_target_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            CdnTopology(
                [
                    CdnServer(name="origin", cache=None),
                    CdnServer(name="a", cache=cache(), fill_from="ghost"),
                ]
            )

    def test_self_loop_rejected(self):
        with pytest.raises(ValueError, match="loops to itself"):
            CdnTopology(
                [
                    CdnServer(name="origin", cache=None),
                    CdnServer(name="a", cache=cache(), fill_from="a"),
                ]
            )

    def test_fill_cycle_rejected(self):
        with pytest.raises(ValueError, match="fill_from cycle"):
            CdnTopology(
                [
                    CdnServer(name="origin", cache=None),
                    CdnServer(name="a", cache=cache(), fill_from="b"),
                    CdnServer(name="b", cache=cache(), fill_from="a"),
                ]
            )

    def test_redirect_ring_allowed(self):
        """Peered siblings legitimately redirect to each other."""
        topology = CdnTopology(
            [
                CdnServer(name="origin", cache=None),
                CdnServer(name="a", cache=cache(), redirect_to="b", fill_from="origin"),
                CdnServer(name="b", cache=cache(), redirect_to="a", fill_from="origin"),
            ]
        )
        assert len(topology) == 3

    def test_fill_cycle_error_names_the_path(self):
        with pytest.raises(ValueError) as err:
            CdnTopology(
                [
                    CdnServer(name="origin", cache=None),
                    CdnServer(name="a", cache=cache(), fill_from="b"),
                    CdnServer(name="b", cache=cache(), fill_from="c"),
                    CdnServer(name="c", cache=cache(), fill_from="a"),
                ]
            )
        message = str(err.value)
        assert "fill_from cycle" in message
        # The offending path is spelled out, closing on the repeat node.
        assert "a -> b -> c -> a" in message

    def test_redirect_ring_rejected_when_disallowed(self):
        servers = [
            CdnServer(name="origin", cache=None),
            CdnServer(name="a", cache=cache(), redirect_to="b", fill_from="origin"),
            CdnServer(name="b", cache=cache(), redirect_to="a", fill_from="origin"),
        ]
        with pytest.raises(ValueError, match="redirect_to cycle"):
            CdnTopology(servers, allow_redirect_rings=False)

    def test_long_fill_chain_to_origin_is_fine(self):
        topology = CdnTopology(
            [
                CdnServer(name="origin", cache=None),
                CdnServer(name="a", cache=cache(), fill_from="b"),
                CdnServer(name="b", cache=cache(), fill_from="c"),
                CdnServer(name="c", cache=cache(), fill_from="origin"),
            ]
        )
        assert len(topology) == 4

    def test_hierarchy_builder_is_ring_free(self):
        # hierarchy() opts into strict cycle checking; its own wiring is
        # acyclic, so construction must succeed.
        topology = hierarchy({"e1": cache()}, cache(64))
        assert topology["e1"].redirect_to == "parent"


class TestBuilders:
    def test_hierarchy_wiring(self):
        topology = hierarchy({"e1": cache(), "e2": cache()}, cache(64))
        assert topology["e1"].redirect_to == "parent"
        assert topology["e1"].fill_from == "parent"
        assert topology["parent"].fill_from == "origin"
        assert topology.origin_name == "origin"
        assert sorted(topology.edges()) == ["e1", "e2"]

    def test_peered_ring(self):
        topology = peered_edges({"a": cache(), "b": cache(), "c": cache()})
        assert topology["a"].redirect_to == "b"
        assert topology["b"].redirect_to == "c"
        assert topology["c"].redirect_to == "a"
        assert all(
            topology[n].fill_from == "origin" for n in ("a", "b", "c")
        )

    def test_peered_needs_two(self):
        with pytest.raises(ValueError, match="two"):
            peered_edges({"solo": cache()})

    def test_peered_explicit_pairing(self):
        topology = peered_edges(
            {"a": cache(), "b": cache()},
            peer_of=lambda n: "b" if n == "a" else "a",
        )
        assert topology["a"].redirect_to == "b"
        assert topology["b"].redirect_to == "a"

    def test_peered_unknown_peer_rejected(self):
        with pytest.raises(ValueError, match="unknown"):
            peered_edges({"a": cache(), "b": cache()}, peer_of=lambda n: "zzz")

    def test_mixed_cache_types(self):
        topology = hierarchy({"e1": XlruCache(16)}, CafeCache(64))
        assert topology["e1"].cache.name == "xLRU"
