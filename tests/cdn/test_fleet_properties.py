"""Property-based tests: the fleet DP against brute-force enumeration."""

import itertools

from hypothesis import given, settings, strategies as st

from repro.cdn.fleet import OperatingPoint, optimize_alpha_assignment

GB = 10**9


@st.composite
def random_curves(draw):
    n_servers = draw(st.integers(2, 4))
    curves = {}
    for s in range(n_servers):
        n_options = draw(st.integers(1, 4))
        points = []
        for i in range(n_options):
            points.append(
                OperatingPoint(
                    alpha=float(i),
                    ingress_bytes=draw(st.integers(0, 8)) * GB,
                    redirected_bytes=draw(st.integers(0, 8)) * GB,
                    egress_bytes=10 * GB,
                    efficiency=0.5,
                )
            )
        curves[f"s{s}"] = points
    return curves


def brute_force(curves, budget):
    best = None
    servers = sorted(curves)
    for combo in itertools.product(*(curves[s] for s in servers)):
        ingress = sum(p.ingress_bytes for p in combo)
        redirected = sum(p.redirected_bytes for p in combo)
        if ingress <= budget and (best is None or redirected < best):
            best = redirected
    return best


@settings(max_examples=80, deadline=None)
@given(curves=random_curves(), budget_gb=st.integers(0, 40))
def test_dp_feasible_and_near_optimal(curves, budget_gb):
    budget = budget_gb * GB
    optimum = brute_force(curves, budget)
    n_servers = len(curves)
    bins = 4000
    unit = max(1, -(-budget // bins))

    if optimum is None:
        try:
            optimize_alpha_assignment(curves, budget, budget_bins=bins)
        except ValueError:
            return  # correctly infeasible
        raise AssertionError("DP succeeded on an infeasible instance")

    try:
        result = optimize_alpha_assignment(curves, budget, budget_bins=bins)
    except ValueError:
        # round-up quantization may reject knife-edge instances whose
        # only feasible assignments sit exactly at the budget
        slack = budget - n_servers * unit
        assert brute_force(curves, max(slack, -1)) is None
        return

    # feasibility: never exceeds the budget
    assert result.total_ingress_bytes <= budget
    # never better than the true optimum ...
    assert result.total_redirected_bytes >= optimum
    # ... and no worse than the optimum of a slightly tightened budget
    # (each server loses at most one quantization unit)
    tightened = brute_force(curves, budget - n_servers * unit)
    if tightened is not None:
        assert result.total_redirected_bytes <= tightened
