"""Tests for the proactive-caching extension (Section 10)."""

import pytest

from repro.cdn.proactive import ProactiveFiller
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.psychic import PsychicCache
from repro.trace.requests import Request

K = 1024


def req(t, video, c0=0):
    return Request(t, video, c0 * K, (c0 + 1) * K - 1)


def make_filler(disk=4, **kwargs):
    # a small disk: most of the demanded catalog is missing, so there
    # is always something worth prefetching during off-peak windows
    cache = CafeCache(disk, chunk_bytes=K, cost_model=CostModel(0.5))
    defaults = dict(
        rate_window=100.0,
        offpeak_rate_fraction=0.5,
        budget_chunks_per_window=8,
        top_videos=8,
    )
    defaults.update(kwargs)
    return ProactiveFiller(cache, **defaults)


class TestValidation:
    def test_offline_cache_rejected(self):
        with pytest.raises(ValueError, match="online"):
            ProactiveFiller(PsychicCache(8))

    def test_parameter_validation(self):
        cache = CafeCache(8, chunk_bytes=K)
        with pytest.raises(ValueError):
            ProactiveFiller(cache, prefix_chunks=0)
        with pytest.raises(ValueError):
            ProactiveFiller(cache, offpeak_rate_fraction=1.0)


class TestPassThrough:
    def test_decisions_flow_through(self):
        filler = make_filler()
        response = filler.handle(req(0.0, 1))
        assert response is not None
        assert filler.cache is not None

    def test_demand_tracking(self):
        filler = make_filler()
        for i in range(5):
            filler.handle(req(float(i), 7))
        assert filler._demand[7] == 5


class TestOffPeakDetection:
    def _steady_then_trough(self, filler):
        # steady 1 req/s for 300 s, then a sparse trickle (0.1 req/s);
        # 12 videos against a 4-chunk disk keeps plenty uncached
        t = 0.0
        for i in range(300):
            filler.handle(req(t, i % 12))
            t += 1.0
        for i in range(30):
            filler.handle(req(t, i % 12))
            t += 10.0
        return filler

    def test_prefetch_triggers_in_trough(self):
        filler = self._steady_then_trough(make_filler())
        assert filler.stats.windows >= 1
        assert filler.stats.attempts >= 1

    def test_budget_respected(self):
        filler = self._steady_then_trough(
            make_filler(budget_chunks_per_window=3)
        )
        if filler.stats.windows == 1:
            assert filler.stats.filled_chunks <= 3

    def test_no_prefetch_at_steady_rate(self):
        filler = make_filler()
        t = 0.0
        for i in range(400):
            filler.handle(req(t, i % 6))
            t += 1.0
        assert filler.stats.attempts == 0

    def test_prefetch_targets_leading_chunks(self):
        filler = self._steady_then_trough(make_filler(prefix_chunks=2))
        cache = filler.cache
        # prefetched chunks (if any) are chunk 0/1 of demanded videos
        if filler.stats.accepted:
            prefixes = [
                (v, c) for v in range(12) for c in (0, 1) if (v, c) in cache
            ]
            assert prefixes
