"""Tests for user-network to server mapping (Section 2 substrate)."""

import numpy as np
import pytest

from repro.cdn.networks import (
    NetworkAssignment,
    ServerLocation,
    UserNetwork,
    assign_networks,
    regional_cost,
    split_trace,
)

G = 1e9


def net(name, region="eu", demand=1 * G):
    return UserNetwork(name=name, region=region, demand_bps=demand)


def srv(name, region="eu", capacity=10 * G):
    return ServerLocation(name=name, region=region, capacity_bps=capacity)


class TestValidation:
    def test_positive_demand_and_capacity(self):
        with pytest.raises(ValueError):
            UserNetwork("n", "eu", 0.0)
        with pytest.raises(ValueError):
            ServerLocation("s", "eu", 0.0)

    def test_needs_networks_and_two_servers(self):
        with pytest.raises(ValueError):
            assign_networks([], [srv("a"), srv("b")])
        with pytest.raises(ValueError):
            assign_networks([net("n")], [srv("a")])

    def test_duplicate_server_names(self):
        with pytest.raises(ValueError, match="duplicate"):
            assign_networks([net("n")], [srv("a"), srv("a")])

    def test_total_capacity_check(self):
        with pytest.raises(ValueError, match="exceeds total capacity"):
            assign_networks(
                [net("n", demand=30 * G)], [srv("a"), srv("b")]
            )


class TestRegionalCost:
    def test_same_region_cheaper(self):
        n = net("n", region="eu")
        assert regional_cost(n, srv("local", region="eu")) < regional_cost(
            n, srv("remote", region="us")
        )


class TestAssignment:
    def test_prefers_in_region_server(self):
        networks = [net("eu-net", region="eu")]
        servers = [srv("us-1", region="us"), srv("eu-1", region="eu")]
        result = assign_networks(networks, servers)
        assert result["eu-net"].primary == "eu-1"
        assert result["eu-net"].secondary == "us-1"

    def test_secondary_is_distinct(self):
        networks = [net(f"n{i}") for i in range(5)]
        servers = [srv("a"), srv("b"), srv("c")]
        for assignment in assign_networks(networks, servers).values():
            assert assignment.primary != assignment.secondary

    def test_capacity_respected(self):
        networks = [net(f"n{i}", demand=4 * G) for i in range(4)]  # 16G total
        servers = [srv("a", capacity=9 * G), srv("b", capacity=9 * G)]
        result = assign_networks(networks, servers, secondary_demand_fraction=0.01)
        load = {"a": 0.0, "b": 0.0}
        for network in networks:
            load[result[network.name].primary] += network.demand_bps
        assert all(v <= 9 * G for v in load.values())

    def test_spillover_to_costlier_server(self):
        """When the cheap server fills up, demand spills cross-region."""
        networks = [net(f"n{i}", region="eu", demand=4 * G) for i in range(3)]
        servers = [
            # 8.5G: fits two 4G networks plus secondary headroom
            srv("eu-1", region="eu", capacity=8.5 * G),
            srv("us-1", region="us", capacity=20 * G),
        ]
        result = assign_networks(networks, servers, secondary_demand_fraction=0.01)
        primaries = [result[n.name].primary for n in networks]
        assert primaries.count("eu-1") == 2
        assert primaries.count("us-1") == 1

    def test_infeasible_single_network(self):
        networks = [net("big", demand=8 * G), net("small", demand=5 * G)]
        servers = [srv("a", capacity=7 * G), srv("b", capacity=7 * G)]
        # total fits (13 < 14) but 'big' fits nowhere after... actually
        # big (8G) exceeds both 7G servers individually
        with pytest.raises(ValueError, match="no server"):
            assign_networks(networks, servers)

    def test_secondary_fraction_validation(self):
        with pytest.raises(ValueError):
            assign_networks(
                [net("n")], [srv("a"), srv("b")], secondary_demand_fraction=0.0
            )


class TestSplitTrace:
    @pytest.fixture
    def setup(self):
        networks = [
            net("heavy", demand=9 * G),
            net("light", demand=1 * G),
        ]
        assignment = {
            "heavy": NetworkAssignment("heavy", "edge-a", "edge-b"),
            "light": NetworkAssignment("light", "edge-b", "edge-a"),
        }
        return networks, assignment

    def test_all_requests_distributed(self, setup, small_trace):
        networks, assignment = setup
        split = split_trace(
            small_trace, networks, assignment, np.random.default_rng(0)
        )
        assert sum(len(v) for v in split.values()) == len(small_trace)

    def test_demand_proportional(self, setup, small_trace):
        networks, assignment = setup
        split = split_trace(
            small_trace, networks, assignment, np.random.default_rng(1)
        )
        share = len(split["edge-a"]) / len(small_trace)
        assert 0.8 < share < 0.97  # heavy network carries ~90%

    def test_time_order_preserved(self, setup, small_trace):
        networks, assignment = setup
        split = split_trace(
            small_trace, networks, assignment, np.random.default_rng(2)
        )
        for trace in split.values():
            assert all(a.t <= b.t for a, b in zip(trace, trace[1:]))

    def test_missing_assignment_rejected(self, small_trace):
        with pytest.raises(ValueError, match="without assignment"):
            split_trace(
                small_trace, [net("orphan")], {}, np.random.default_rng(0)
            )
