"""Packed fleet replay equivalence: packed vs object lane, faults on/off.

The acceptance bar for the packed CDN lane is *byte identity*: replaying
the same per-edge traces through ``CdnSimulator`` as materialized
``Request`` lists, as a mapping of packed shards, or as a
:class:`~repro.trace.fleet.FleetTrace` must produce indistinguishable
``CdnSimulationResult``s — per-server metrics, origin counters, redirect
hop histograms, loss accounting — with and without a fault schedule.

The matrix here covers all six paper regions as edges of one hierarchy,
every edge algorithm, and faults on/off.  The third axis of the ISSUE's
matrix, ``REPRO_NO_NUMPY``, comes from CI's numpy on/off job matrix:
this whole file runs in both modes.
"""

from __future__ import annotations

import pytest

from repro.cdn.faults import FaultEvent, FaultSchedule
from repro.cdn.multiserver import CdnSimulator
from repro.cdn.topology import hierarchy, peered_edges
from repro.sim.runner import build_cache
from repro.trace.fleet import FleetTrace
from repro.verify.faultcheck import _fingerprint
from repro.workload.generator import TraceGenerator
from repro.workload.servers import paper_server_profiles

PROFILES = paper_server_profiles()
REGIONS = sorted(PROFILES)
DAYS = 1.5
SPAN = DAYS * 86400.0


@pytest.fixture(scope="module")
def region_traces():
    """Object and packed traces for all six paper regions (tiny scale)."""
    traces, shards = {}, {}
    for name in REGIONS:
        gen = TraceGenerator(PROFILES[name].scaled(0.01))
        traces[name] = gen.generate(days=DAYS)
        shards[name] = gen.generate_packed(days=DAYS)
    return traces, shards


def make_sim(algo: str, peered: bool = False, faults=None) -> CdnSimulator:
    edges = {name: build_cache(algo, 128) for name in REGIONS}
    if peered:
        return CdnSimulator(peered_edges(edges), faults=faults)
    return CdnSimulator(
        hierarchy(edges, build_cache(algo, 1024)), faults=faults
    )


def fault_schedule() -> FaultSchedule:
    return FaultSchedule(
        [
            FaultEvent("outage", "africa", SPAN * 0.15, SPAN * 0.1),
            FaultEvent("restart", "europe", SPAN * 0.4, SPAN * 0.05),
            FaultEvent("degrade", "parent", SPAN * 0.55, SPAN * 0.1, factor=2.5),
            FaultEvent(
                "brownout", "origin", SPAN * 0.7, SPAN * 0.1, drop_fraction=0.3
            ),
        ],
        seed=9,
    )


class TestFleetEquivalenceMatrix:
    @pytest.mark.parametrize("algo", ["Cafe", "PullLRU", "xLRU", "LFU"])
    def test_fault_free_all_regions(self, region_traces, algo):
        traces, shards = region_traces
        obj = make_sim(algo).run(traces)
        packed = make_sim(algo).run(FleetTrace(shards))
        assert _fingerprint(obj) == _fingerprint(packed)
        # The fault-free hierarchy qualifies for the shard-batched lane.
        assert packed.report.extra["trace_format"] == "packed-batched"

    @pytest.mark.parametrize("algo", ["Cafe", "xLRU"])
    def test_faulted_all_regions(self, region_traces, algo):
        traces, shards = region_traces
        obj = make_sim(algo, faults=fault_schedule()).run(traces)
        packed = make_sim(algo, faults=fault_schedule()).run(
            FleetTrace(shards)
        )
        assert _fingerprint(obj) == _fingerprint(packed)
        # Faults require the stepwise merged walk, not the batched lane.
        assert packed.report.extra["trace_format"] == "packed"

    def test_shard_mapping_equals_fleet(self, region_traces):
        """A plain mapping of shards replays like an explicit FleetTrace."""
        _traces, shards = region_traces
        from_mapping = make_sim("Cafe").run(shards)
        from_fleet = make_sim("Cafe").run(FleetTrace(shards))
        assert _fingerprint(from_mapping) == _fingerprint(from_fleet)

    def test_peered_ring_falls_back_to_stepwise(self, region_traces):
        """Redirect rings among traced edges can deliver one edge's
        traffic to another, so the shard-batched lane must refuse them
        — and still match the object lane byte for byte."""
        traces, shards = region_traces
        obj = make_sim("xLRU", peered=True).run(traces)
        packed = make_sim("xLRU", peered=True).run(FleetTrace(shards))
        assert _fingerprint(obj) == _fingerprint(packed)
        assert packed.report.extra["trace_format"] == "packed"


class TestFaultSemanticsPreserved:
    def test_faulted_run_loses_requests(self, region_traces):
        """The fault schedule actually bites at this scale (guards the
        matrix against vacuous equality)."""
        _traces, shards = region_traces
        faulted = make_sim("Cafe", faults=fault_schedule()).run(
            FleetTrace(shards)
        )
        clean = make_sim("Cafe").run(FleetTrace(shards))
        availability = faulted.availability
        assert availability["africa"].failover_hops > 0
        assert availability["europe"].restarts == 1
        assert _fingerprint(faulted) != _fingerprint(clean)
