"""Tests for co-located server sharding (Section 2, footnote 2)."""

import pytest

from repro.cdn.sharding import ShardedServer, bucket_of
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.psychic import PsychicCache
from repro.core.xlru import XlruCache
from repro.sim.engine import replay
from repro.trace.requests import Request

K = 1024


def req(t, video, c0=0):
    return Request(t, video, c0 * K, (c0 + 1) * K - 1)


def make_sharded(n=4, disk_each=32, alpha=1.0):
    shards = [
        XlruCache(disk_each, chunk_bytes=K, cost_model=CostModel(alpha))
        for _ in range(n)
    ]
    return ShardedServer(shards)


class TestBucketOf:
    def test_stable(self):
        assert bucket_of(12345) == bucket_of(12345)

    def test_within_range(self):
        for video in range(200):
            assert 0 <= bucket_of(video, 64) < 64

    def test_spreads_over_buckets(self):
        buckets = {bucket_of(v, 64) for v in range(2000)}
        assert len(buckets) == 64

    def test_num_buckets_validation(self):
        with pytest.raises(ValueError):
            bucket_of(1, 0)


class TestConstruction:
    def test_needs_shards(self):
        with pytest.raises(ValueError):
            ShardedServer([])

    def test_offline_shards_rejected(self):
        with pytest.raises(ValueError, match="online"):
            ShardedServer([PsychicCache(8, chunk_bytes=K)])

    def test_mixed_chunk_sizes_rejected(self):
        with pytest.raises(ValueError, match="chunk size"):
            ShardedServer(
                [XlruCache(8, chunk_bytes=1024), XlruCache(8, chunk_bytes=2048)]
            )

    def test_enough_buckets_required(self):
        shards = [XlruCache(8, chunk_bytes=K) for _ in range(4)]
        with pytest.raises(ValueError, match="buckets"):
            ShardedServer(shards, num_buckets=2)

    def test_aggregate_disk(self):
        assert make_sharded(n=4, disk_each=32).disk_chunks == 128


class TestRouting:
    def test_video_always_same_shard(self):
        server = make_sharded()
        first = server.shard_index(42)
        for _ in range(5):
            assert server.shard_index(42) == first

    def test_no_cross_shard_duplicates(self):
        """A video's chunks live only on its designated shard."""
        server = make_sharded(n=4, disk_each=64)
        trace = [req(float(t), video=t % 20) for t in range(200)]
        for r in trace:
            server.handle(r)
        for video in range(20):
            chunk = (video, 0)
            holders = [i for i, s in enumerate(server.shards) if chunk in s]
            assert len(holders) <= 1
            if holders:
                assert holders[0] == server.shard_index(video)

    def test_contains_and_len_aggregate(self):
        server = make_sharded()
        server.handle(req(0.0, 7))
        server.handle(req(1.0, 7))  # second sighting: cached
        assert (7, 0) in server
        assert len(server) == 1

    def test_load_roughly_balanced(self, small_trace):
        server = make_sharded(n=4, disk_each=64)
        for r in small_trace:
            server.handle(r)
        # popularity skew makes perfect balance impossible; hash-mod
        # should still keep the hottest shard within ~2x of the mean
        assert server.load_balance() < 2.0


class TestEngineIntegration:
    def test_replay_through_engine(self, small_trace):
        server = make_sharded(n=4, disk_each=64, alpha=2.0)
        result = replay(server, small_trace)
        assert result.num_requests == len(small_trace)
        assert -1.0 <= result.steady.efficiency <= 1.0

    def test_sharded_close_to_monolithic(self, medium_trace):
        """Same total disk split 4 ways costs a few points, not many —
        footnote 2's point that bucketization is a feasible practice."""
        cost_model = CostModel(2.0)
        mono = replay(
            CafeCache(256, cost_model=cost_model), medium_trace
        ).steady.efficiency
        shards = [
            CafeCache(64, cost_model=CostModel(2.0)) for _ in range(4)
        ]
        sharded = replay(ShardedServer(shards), medium_trace).steady.efficiency
        assert sharded > mono - 0.15
