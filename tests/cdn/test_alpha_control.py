"""Tests for the alpha_F2R control loop (Section 10 extension)."""

import pytest

from repro.cdn.alpha_control import AlphaController
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.psychic import PsychicCache
from repro.sim.metrics import MetricsCollector


def make_controller(trace_scale_cache=None, **kwargs):
    cache = trace_scale_cache or CafeCache(128, cost_model=CostModel(2.0))
    defaults = dict(
        target_ingress_fraction=0.10,
        interval=6 * 3600.0,
        min_window_egress=1 << 20,
    )
    defaults.update(kwargs)
    return AlphaController(cache, **defaults)


class TestValidation:
    def test_offline_cache_rejected(self):
        with pytest.raises(ValueError, match="online"):
            AlphaController(PsychicCache(16), target_ingress_fraction=0.1)

    def test_target_range(self):
        with pytest.raises(ValueError):
            make_controller(target_ingress_fraction=0.0)
        with pytest.raises(ValueError):
            make_controller(target_ingress_fraction=1.0)

    def test_positive_knobs(self):
        with pytest.raises(ValueError):
            make_controller(interval=0.0)
        with pytest.raises(ValueError):
            make_controller(gain=0.0)
        with pytest.raises(ValueError):
            make_controller(range_factor=0.5)


class TestControlLoop:
    def _drive(self, controller, trace):
        metrics = MetricsCollector(controller.cache.cost_model)
        for request in trace:
            metrics.record(request, controller.handle(request))
        return metrics

    def test_alpha_stays_in_small_range(self, medium_trace):
        controller = make_controller()
        base = controller.alpha
        self._drive(controller, medium_trace)
        assert base / 2.0 - 1e-9 <= controller.alpha <= base * 2.0 + 1e-9
        for step in controller.adjustments:
            assert base / 2.0 - 1e-9 <= step.alpha_after <= base * 2.0 + 1e-9

    def test_adjustments_recorded(self, medium_trace):
        controller = make_controller()
        self._drive(controller, medium_trace)
        assert controller.adjustments  # ten days, 6h windows
        for step in controller.adjustments:
            assert step.measured_ingress_fraction >= 0.0

    def test_high_ingress_raises_alpha(self, medium_trace):
        """Cheap base alpha + tight ingress target -> alpha pushed up."""
        cache = CafeCache(128, cost_model=CostModel(1.0))
        controller = make_controller(cache, target_ingress_fraction=0.02)
        self._drive(controller, medium_trace)
        assert controller.alpha > 1.0

    def test_low_target_reduces_ingress(self, medium_trace):
        """Controlled cache lands nearer the target than uncontrolled."""
        from repro.sim.engine import replay

        plain = CafeCache(128, cost_model=CostModel(1.0))
        uncontrolled = replay(plain, medium_trace).steady.ingress_fraction

        cache = CafeCache(128, cost_model=CostModel(1.0))
        controller = make_controller(cache, target_ingress_fraction=0.03)
        metrics = self._drive(controller, medium_trace)
        controlled = metrics.steady_state().ingress_fraction
        assert controlled < uncontrolled

    def test_loose_target_lowers_alpha(self, medium_trace):
        """A generous ingress target lets alpha fall below base."""
        cache = CafeCache(128, cost_model=CostModel(2.0))
        controller = make_controller(cache, target_ingress_fraction=0.8)
        self._drive(controller, medium_trace)
        assert controller.alpha < 2.0

    def test_quiet_windows_do_not_adjust(self):
        from repro.trace.requests import Request

        controller = make_controller(min_window_egress=1 << 40)
        # a sparse trickle: egress never reaches the guard volume
        for i in range(50):
            controller.handle(Request(i * 3600.0, i % 3, 0, 1024))
        assert all(
            s.alpha_after == s.alpha_before for s in controller.adjustments
        )
        assert controller.alpha == 2.0
