"""End-to-end: network mapping -> trace split -> hierarchy replay.

Exercises the full Section 2 front end: user networks are assigned to
primary servers under cost/capacity, an aggregate trace is partitioned
by network demand, and the resulting per-edge traces replay through a
two-level topology.
"""

import numpy as np
import pytest

from repro.cdn.multiserver import CdnSimulator
from repro.cdn.networks import ServerLocation, UserNetwork, assign_networks, split_trace
from repro.cdn.topology import CdnServer, CdnTopology
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel

G = 1e9


@pytest.fixture(scope="module")
def scenario(small_trace):
    networks = [
        UserNetwork("eu-isp-1", "eu", 6 * G),
        UserNetwork("eu-isp-2", "eu", 3 * G),
        UserNetwork("us-isp-1", "us", 5 * G),
    ]
    servers = [
        ServerLocation("edge-eu", "eu", 12 * G),
        ServerLocation("edge-us", "us", 12 * G),
    ]
    assignment = assign_networks(networks, servers)
    traces = split_trace(
        small_trace, networks, assignment, np.random.default_rng(42)
    )
    return networks, assignment, traces


class TestMappingToTraces:
    def test_primaries_follow_regions(self, scenario):
        _networks, assignment, _traces = scenario
        assert assignment["eu-isp-1"].primary == "edge-eu"
        assert assignment["us-isp-1"].primary == "edge-us"

    def test_both_edges_receive_traffic(self, scenario, small_trace):
        _n, _a, traces = scenario
        assert set(traces) == {"edge-eu", "edge-us"}
        assert sum(len(t) for t in traces.values()) == len(small_trace)
        # eu networks carry 9G of 14G demand
        share = len(traces["edge-eu"]) / len(small_trace)
        assert 0.5 < share < 0.8


class TestHierarchyReplay:
    def test_full_pipeline(self, scenario):
        _n, assignment, traces = scenario
        # secondary map: each edge redirects where its networks'
        # secondary points (here: the other edge), fills from origin
        topology = CdnTopology(
            [
                CdnServer(name="origin", cache=None),
                CdnServer(
                    name="edge-eu",
                    cache=CafeCache(128, cost_model=CostModel(2.0)),
                    redirect_to=assignment["eu-isp-1"].secondary,
                    fill_from="origin",
                ),
                CdnServer(
                    name="edge-us",
                    cache=CafeCache(128, cost_model=CostModel(2.0)),
                    redirect_to=assignment["us-isp-1"].secondary,
                    fill_from="origin",
                ),
            ]
        )
        result = CdnSimulator(topology).run(traces)
        assert result.num_user_requests == sum(len(t) for t in traces.values())
        for name in ("edge-eu", "edge-us"):
            totals = result.summary(name)
            assert totals.num_requests > 0
            assert -1.0 <= totals.efficiency <= 1.0
        # the redirect ring between peers is bounded by the hop limit
        assert max(result.redirect_hops) <= 4
