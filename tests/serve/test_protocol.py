"""Wire-protocol parsing, response shapes, and shared accounting."""

import json

import pytest

from repro.serve.protocol import (
    ERROR_CODES,
    OPS,
    ProtocolError,
    decide_and_account,
    error_response,
    new_totals,
    parse_line,
    shed_response,
)
from repro.sim.runner import build_cache

K = 1024


def _parse_error(line):
    with pytest.raises(ProtocolError) as excinfo:
        parse_line(line)
    return excinfo.value


class TestParseLine:
    def test_valid_request(self):
        parsed = parse_line('{"seq": 3, "t": 1.5, "video": 7, "b0": 0, "b1": 99}')
        assert parsed == {
            "type": "request",
            "seq": 3,
            "t": 1.5,
            "video": 7,
            "b0": 0,
            "b1": 99,
        }

    def test_seq_is_optional(self):
        parsed = parse_line('{"t": 0, "video": 0, "b0": 0, "b1": 0}')
        assert parsed["seq"] is None

    def test_every_known_op_parses(self):
        for op in OPS:
            assert parse_line(json.dumps({"op": op})) == {"type": "op", "op": op}

    def test_unknown_op(self):
        assert _parse_error('{"op": "reboot"}').code == "unsupported"

    @pytest.mark.parametrize(
        "line",
        [
            "",
            "   ",
            "not json at all",
            '{"t": "not-a-number", "video": -3',  # the soak's injected line
            "[1, 2, 3]",
            '"just a string"',
            '{"t": 1.0, "video": 1, "b0": 0}',  # missing b1
            '{"t": true, "video": 1, "b0": 0, "b1": 0}',  # bool is not a number
            '{"t": 1.0, "video": true, "b0": 0, "b1": 0}',
            '{"t": 1.0, "video": 1.5, "b0": 0, "b1": 0}',  # float video
            '{"t": 1.0, "video": -1, "b0": 0, "b1": 0}',
            '{"t": 1.0, "video": 1, "b0": 5, "b1": 4}',  # b1 < b0
            '{"seq": 0, "t": 1.0, "video": 1, "b0": 0, "b1": 0}',  # seq < 1
            '{"seq": "x", "t": 1.0, "video": 1, "b0": 0, "b1": 0}',
        ],
    )
    def test_malformed_lines(self, line):
        assert _parse_error(line).code == "malformed"

    def test_error_codes_are_registered(self):
        assert _parse_error("{").code in ERROR_CODES
        assert _parse_error('{"op": "reboot"}').code in ERROR_CODES


class TestResponses:
    def test_error_response_shape(self):
        out = error_response("timeout", "too slow", seq=9)
        assert out == {
            "ok": False,
            "error": "timeout",
            "detail": "too slow",
            "seq": 9,
        }

    def test_error_response_without_seq(self):
        assert "seq" not in error_response("malformed", "bad line")

    def test_shed_response_has_retry_after(self):
        out = shed_response(0.25)
        assert out["ok"] is False
        assert out["error"] == "overloaded"
        assert out["retry_after"] == 0.25

    def test_shed_response_clamps_negative(self):
        assert shed_response(-3.0)["retry_after"] == 0.0


class TestDecideAndAccount:
    def _cache(self):
        return build_cache("PullLRU", 64, alpha_f2r=1.0, chunk_bytes=K)

    def test_serve_and_hit_accounting(self):
        cache = self._cache()
        totals = new_totals()
        fields, last_t = decide_and_account(cache, totals, 1.0, 5, 0, K - 1, 0.0)
        assert fields["decision"] == "serve"
        assert fields["filled_chunks"] == 1
        # same chunk again: a hit, no fill
        fields, last_t = decide_and_account(cache, totals, 2.0, 5, 0, K - 1, last_t)
        assert fields["filled_chunks"] == 0
        assert totals["requests"] == 2
        assert totals["served"] == 2
        assert totals["hits"] == 1
        assert totals["filled_chunks"] == 1
        assert totals["requested_bytes"] == 2 * K

    def test_stale_timestamp_consumed_but_not_applied(self):
        cache = self._cache()
        totals = new_totals()
        _, last_t = decide_and_account(cache, totals, 10.0, 5, 0, K - 1, 0.0)
        occupancy = len(cache)
        fields, new_last_t = decide_and_account(
            cache, totals, 3.0, 6, 0, K - 1, last_t
        )
        assert fields["decision"] == "rejected"
        assert fields["error"] == "stale-timestamp"
        assert new_last_t == last_t  # the stream clock never goes back
        assert len(cache) == occupancy  # cache untouched
        assert totals["requests"] == 2
        assert totals["rejected_stale"] == 1

    def test_redirect_accounting(self):
        cache = build_cache("xLRU", 64, alpha_f2r=2.0, chunk_bytes=K)
        totals = new_totals()
        fields, _ = decide_and_account(cache, totals, 1.0, 5, 0, K - 1, 0.0)
        # first sight of a video under xLRU: not popular yet -> redirect
        assert fields["decision"] == "redirect"
        assert totals["redirected"] == 1
        assert totals["served"] == 0
