"""End-to-end fault soak: SIGKILL a live daemon subprocess mid-trace
and require byte-identical totals vs the uninterrupted batch replay."""

import random

from repro.serve.daemon import ServeConfig
from repro.serve.soak import batch_totals, kill_schedule, run_soak
from repro.trace.requests import Request

K = 1024


def _trace(n, seed=11):
    rng = random.Random(seed)
    t = 0.0
    out = []
    for _ in range(n):
        t += rng.uniform(0.05, 2.0)
        c0 = rng.randrange(0, 8)
        span = rng.randrange(1, 4)
        out.append(
            Request(t, rng.randrange(0, 40), c0 * K, (c0 + span) * K - 1)
        )
    return out


def test_kill_schedule_is_seeded_and_inside_span():
    trace = _trace(100)
    schedule = kill_schedule(trace, restarts=3, seed=42)
    again = kill_schedule(trace, restarts=3, seed=42)
    times = [e.t for e in schedule.events]
    assert times == [e.t for e in again.events]
    assert len(times) == 3
    span = trace[-1].t - trace[0].t
    for t in times:
        assert trace[0].t + 0.1 * span <= t <= trace[0].t + 0.9 * span


def test_batch_totals_counts_everything():
    trace = _trace(200)
    config = ServeConfig(algorithm="xLRU", disk_chunks=128, chunk_bytes=K)
    totals = batch_totals(config, trace)
    assert totals["requests"] == 200
    assert totals["served"] + totals["redirected"] == 200
    assert totals["requested_bytes"] == sum(r.b1 - r.b0 + 1 for r in trace)


def test_soak_with_kill_is_exact(tmp_path):
    """One SIGKILL mid-run; totals must equal the batch replay exactly
    and the watermark must cover every request exactly once."""
    trace = _trace(1500)
    config = ServeConfig(
        algorithm="xLRU",
        disk_chunks=256,
        chunk_bytes=K,
        snapshot_dir=str(tmp_path / "snaps"),
        snapshot_every=200,
        publish_interval=0.0,
    )
    outcome = run_soak(
        trace,
        config,
        restarts=1,
        fault_seed=20140413,
        malformed_every=100,
        window=128,
        socket_path=str(tmp_path / "serve.sock"),
    )
    assert outcome.restarts >= 1, "the fault schedule never fired"
    assert outcome.malformed_sent > 0
    assert outcome.malformed_acked == outcome.malformed_sent
    assert outcome.watermark == len(trace)
    assert outcome.totals == outcome.batch, outcome.describe()
    assert outcome.ok


def test_shard_plan_per_shard_seqs_are_contiguous():
    from repro.serve.soak import shard_plan

    trace = _trace(300)
    shards, seqs, positions = shard_plan(trace, 4, num_buckets=64)
    assert len(shards) == len(seqs) == 300
    # per-shard seq streams are each 1, 2, 3, ... with no gaps
    streams = {}
    for shard, seq in zip(shards, seqs):
        streams.setdefault(shard, []).append(seq)
    for shard, stream in streams.items():
        assert stream == list(range(1, len(stream) + 1))
        assert positions[shard] == [
            i for i, s in enumerate(shards) if s == shard
        ]
    assert sum(len(p) for p in positions) == 300


def test_sharded_batch_totals_partitions_the_trace():
    from repro.serve.soak import sharded_batch_totals

    trace = _trace(400)
    config = ServeConfig(algorithm="xLRU", disk_chunks=128, chunk_bytes=K)
    totals = sharded_batch_totals(config, trace, 2, num_buckets=64)
    assert totals["requests"] == 400
    assert totals["served"] + totals["redirected"] == 400
    assert totals["requested_bytes"] == sum(r.b1 - r.b0 + 1 for r in trace)
    # deterministic: same routing, same caches, same answer
    assert totals == sharded_batch_totals(config, trace, 2, num_buckets=64)


def test_sharded_soak_with_worker_and_router_kills_is_exact(tmp_path):
    """Multi-worker soak: SIGKILL one worker AND the router mid-trace;
    merged totals must equal the sharded batch replay byte-for-byte and
    the per-shard watermarks must cover every request exactly once (a
    resumed sharded fleet replays nothing twice — duplicates on the
    resume overlap are acked, never re-applied)."""
    from repro.serve.soak import run_sharded_soak

    trace = _trace(600)
    config = ServeConfig(
        algorithm="xLRU",
        disk_chunks=128,
        chunk_bytes=K,
        snapshot_dir=str(tmp_path / "snaps"),
        snapshot_every=50,
        publish_interval=0.0,
    )
    outcome = run_sharded_soak(
        trace,
        config,
        workers=2,
        restarts=2,
        fault_seed=20140413,
        malformed_every=100,
        window=64,
        num_buckets=64,
        socket_path=str(tmp_path / "pub.sock"),
    )
    assert outcome.workers == 2
    assert outcome.worker_kills >= 1, outcome.describe()
    assert outcome.router_kills >= 1, outcome.describe()
    assert outcome.malformed_acked == outcome.malformed_sent > 0
    assert outcome.watermark == len(trace)
    assert outcome.totals == outcome.batch, outcome.describe()
    assert outcome.ok
