"""The synchronous decision core: exactly-once discipline + recovery."""

import random

import pytest

from repro.serve.daemon import DecisionService, ServeConfig, TransientDecisionError
from repro.serve.protocol import new_totals
from repro.serve.soak import batch_totals
from repro.trace.requests import Request

K = 1024


def _config(**kw):
    kw.setdefault("algorithm", "xLRU")
    kw.setdefault("disk_chunks", 64)
    kw.setdefault("chunk_bytes", K)
    return ServeConfig(**kw)


def _request(seq, t, video=1, b0=0, b1=K - 1):
    return {"seq": seq, "t": t, "video": video, "b0": b0, "b1": b1}


def _trace(n, seed=7):
    rng = random.Random(seed)
    t = 0.0
    out = []
    for _ in range(n):
        t += rng.uniform(0.01, 5.0)
        c0 = rng.randrange(0, 6)
        span = rng.randrange(1, 3)
        out.append(Request(t, rng.randrange(0, 12), c0 * K, (c0 + span) * K - 1))
    return out


def _apply_trace(service, requests, start_seq=1):
    for offset, r in enumerate(requests):
        response = service.apply(
            {"seq": start_seq + offset, "t": r.t, "video": r.video,
             "b0": r.b0, "b1": r.b1}
        )
        assert response["ok"], response


class TestSequenceDiscipline:
    def test_contiguous_applies_advance_watermark(self):
        service = DecisionService(_config())
        for seq in (1, 2, 3):
            response = service.apply(_request(seq, float(seq)))
            assert response["ok"] and response["kind"] == "decision"
            assert response["seq"] == seq
        assert service.watermark == 3

    def test_duplicate_is_acked_not_reapplied(self):
        service = DecisionService(_config())
        service.apply(_request(1, 1.0))
        totals_before = dict(service.totals)
        response = service.apply(_request(1, 1.0))
        assert response["kind"] == "duplicate"
        assert response["watermark"] == 1
        assert service.totals == totals_before
        assert service.watermark == 1

    def test_gap_is_an_error_and_not_applied(self):
        service = DecisionService(_config())
        service.apply(_request(1, 1.0))
        totals_before = dict(service.totals)
        response = service.apply(_request(5, 5.0))
        assert response["ok"] is False
        assert response["error"] == "sequence-gap"
        assert "resend from 2" in response["detail"]
        assert service.totals == totals_before
        assert service.watermark == 1

    def test_unsequenced_requests_are_implicitly_next(self):
        service = DecisionService(_config())
        service.apply({"seq": None, "t": 1.0, "video": 1, "b0": 0, "b1": K - 1})
        assert service.watermark == 1

    def test_stale_timestamp_consumes_seq(self):
        service = DecisionService(_config())
        service.apply(_request(1, 10.0))
        response = service.apply(_request(2, 3.0))  # clock went backwards
        assert response["ok"]  # consumed: the ledger moves on
        assert response["decision"] == "rejected"
        assert service.watermark == 2
        assert service.totals["rejected_stale"] == 1


class TestFailureAtomicity:
    def test_armed_crash_fires_before_mutation(self):
        service = DecisionService(_config(test_hooks=True))
        service.apply(_request(1, 1.0))
        service.arm_crash()
        totals_before = dict(service.totals)
        with pytest.raises(RuntimeError, match="injected"):
            service.apply(_request(2, 2.0))
        assert service.watermark == 1
        assert service.totals == totals_before
        # the retry lands exactly once
        response = service.apply(_request(2, 2.0))
        assert response["ok"] and service.watermark == 2

    def test_injected_transient_fault_fires_before_mutation(self):
        service = DecisionService(_config(test_hooks=True, fault_rate=1.0))
        with pytest.raises(TransientDecisionError):
            service.apply(_request(1, 1.0))
        assert service.watermark == 0
        assert service.totals == new_totals()


class TestBatchEquivalence:
    def test_totals_match_batch_replay(self):
        config = _config()
        trace = _trace(300)
        service = DecisionService(config)
        _apply_trace(service, trace)
        assert service.totals == batch_totals(config, trace)
        assert service.watermark == len(trace)


class TestCrashRecovery:
    def test_snapshot_resume_continues_identically(self, tmp_path):
        trace = _trace(400)
        cut = 250
        config = _config(snapshot_dir=str(tmp_path), snapshot_every=0)

        interrupted = DecisionService(config)
        _apply_trace(interrupted, trace[:cut])
        assert interrupted.snapshot_now() is not None

        # "crash": a brand-new service restores from the directory
        resumed = DecisionService(config)
        assert resumed.resumed is True
        assert resumed.watermark == cut
        _apply_trace(resumed, trace[cut:], start_seq=cut + 1)

        assert resumed.totals == batch_totals(config, trace)
        assert resumed.watermark == len(trace)

    def test_resume_replays_nothing_twice(self, tmp_path):
        trace = _trace(100)
        config = _config(snapshot_dir=str(tmp_path), snapshot_every=0)
        service = DecisionService(config)
        _apply_trace(service, trace)
        service.snapshot_now()

        resumed = DecisionService(config)
        totals_before = dict(resumed.totals)
        # the client, unaware of the crash point, resends the tail
        for seq in range(90, 101):
            response = resumed.apply(
                {"seq": seq, "t": trace[seq - 1].t, "video": trace[seq - 1].video,
                 "b0": trace[seq - 1].b0, "b1": trace[seq - 1].b1}
            )
            assert response["kind"] == "duplicate"
        assert resumed.totals == totals_before

    def test_periodic_snapshots_by_applied_count(self, tmp_path):
        config = _config(snapshot_dir=str(tmp_path), snapshot_every=10)
        service = DecisionService(config)
        for seq in range(1, 10):
            service.apply(_request(seq, float(seq)))
            assert not service.snapshot_due()
        service.apply(_request(10, 10.0))
        assert service.snapshot_due()
        service.snapshot_now()
        assert not service.snapshot_due()

    def test_config_change_refuses_to_resume(self, tmp_path):
        config = _config(snapshot_dir=str(tmp_path), snapshot_every=0)
        service = DecisionService(config)
        _apply_trace(service, _trace(50))
        service.snapshot_now()
        with pytest.raises(ValueError, match="refusing to resume"):
            DecisionService(_config(algorithm="Cafe", snapshot_dir=str(tmp_path)))

    def test_cold_start_without_directory(self):
        service = DecisionService(_config())
        assert service.store is None
        assert service.snapshot_now() is None
        assert not service.snapshot_due()
