"""Routing determinism: the video-hash shard map must be identical
across processes, daemon restarts, and the numpy on/off toggle —
otherwise a resumed fleet would route the same video to a different
shard and re-apply (or lose) requests."""

import json
import subprocess
import sys

from repro.cdn.sharding import DEFAULT_NUM_BUCKETS, bucket_of, shard_of

PROBE_VIDEOS = [0, 1, 7, 41, 1023, 65537, 2**31 - 1, 123456789]

_PROBE_SCRIPT = """\
import json, sys
from repro.cdn.sharding import bucket_of, shard_of
videos = json.loads(sys.argv[1])
print(json.dumps({
    "buckets": [bucket_of(v) for v in videos],
    "shards": [shard_of(v, 4, 64) for v in videos],
}))
"""


def _probe(extra_env=None):
    """Compute the shard map in a fresh interpreter (a 'restart')."""
    import os

    env = dict(os.environ)
    env["PYTHONPATH"] = "src"
    if extra_env:
        env.update(extra_env)
    out = subprocess.run(
        [sys.executable, "-c", _PROBE_SCRIPT, json.dumps(PROBE_VIDEOS)],
        capture_output=True,
        text=True,
        env=env,
        check=True,
        timeout=60,
    )
    return json.loads(out.stdout)


def test_shard_of_is_bucket_of_mod_workers():
    for video in PROBE_VIDEOS:
        for workers in (1, 2, 4, 7):
            assert (
                shard_of(video, workers, DEFAULT_NUM_BUCKETS)
                == bucket_of(video, DEFAULT_NUM_BUCKETS) % workers
            )
    # single shard: everything routes to 0 (the --workers 1 wire path)
    assert all(shard_of(v, 1) == 0 for v in PROBE_VIDEOS)


def test_bucket_of_matches_golden_values():
    """Pinned outputs: any change to the hash breaks every snapshot
    lineage in the field, so drift must fail loudly."""
    got = [bucket_of(v, 64) for v in PROBE_VIDEOS]
    assert got == [10, 51, 55, 63, 48, 32, 56, 0], got


def test_shard_map_survives_daemon_restarts():
    first = _probe()
    second = _probe()  # fresh interpreter = restarted daemon
    assert first == second
    assert first["buckets"] == [bucket_of(v) for v in PROBE_VIDEOS]
    assert first["shards"] == [shard_of(v, 4, 64) for v in PROBE_VIDEOS]


def test_shard_map_identical_with_numpy_disabled():
    with_numpy = _probe({"REPRO_NO_NUMPY": "0"})
    without_numpy = _probe({"REPRO_NO_NUMPY": "1"})
    assert with_numpy == without_numpy
