"""In-process asyncio daemon tests: one event loop per test, real
unix-socket connections, no external processes (except the stdin lane,
which by nature needs a subprocess)."""

import asyncio
import json
import subprocess
import sys

from repro.serve.daemon import ServeConfig, ServeDaemon

K = 1024


def _config(tmp_path, **kw):
    kw.setdefault("algorithm", "PullLRU")
    kw.setdefault("disk_chunks", 64)
    kw.setdefault("chunk_bytes", K)
    kw.setdefault("publish_interval", 0.0)  # tests opt in explicitly
    return ServeConfig(**kw)


def run(coro):
    """Drive one test coroutine with a hard safety timeout."""
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


class Harness:
    """One started daemon on a unix socket plus client plumbing."""

    def __init__(self, tmp_path, **kw):
        self.socket_path = str(tmp_path / "serve.sock")
        self.daemon = ServeDaemon(_config(tmp_path, **kw))

    async def __aenter__(self):
        await self.daemon.start(unix_path=self.socket_path)
        return self

    async def __aexit__(self, *exc):
        self.daemon.request_stop()
        await self.daemon.shutdown(drain_timeout=10)

    async def connect(self):
        return await asyncio.open_unix_connection(self.socket_path)

    @staticmethod
    async def send_line(writer, text):
        writer.write(text.encode() + b"\n")
        await writer.drain()

    @staticmethod
    async def read_json(reader):
        line = await reader.readline()
        assert line, "daemon closed the connection"
        return json.loads(line)

    async def rpc(self, reader, writer, obj):
        await self.send_line(writer, json.dumps(obj))
        return await self.read_json(reader)

    async def request(self, reader, writer, seq, t, video=1, b0=0, b1=K - 1):
        return await self.rpc(
            reader, writer,
            {"seq": seq, "t": t, "video": video, "b0": b0, "b1": b1},
        )


def _slow_worker(daemon, delay):
    """Make every dequeued item take ``delay`` seconds to decide."""
    original = daemon._process_item

    async def slowed(item):
        await asyncio.sleep(delay)
        await original(item)

    daemon._process_item = slowed


class TestRequestResponse:
    def test_hello_and_decisions(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path) as h:
                reader, writer = await h.connect()
                hello = await h.rpc(reader, writer, {"op": "hello"})
                assert hello["kind"] == "hello"
                assert hello["watermark"] == 0
                assert hello["algorithm"] == "PullLRU"
                assert hello["resumed"] is False

                for seq in (1, 2, 3):
                    response = await h.request(reader, writer, seq, float(seq))
                    assert response["ok"], response
                    assert response["seq"] == seq
                    assert response["decision"] in ("serve", "redirect")

                stats = await h.rpc(reader, writer, {"op": "stats"})
                assert stats["watermark"] == 3
                assert stats["totals"]["requests"] == 3
                assert stats["slo"]["decisions"] == 3
                writer.close()

        run(scenario())

    def test_duplicate_and_gap_over_the_wire(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path) as h:
                reader, writer = await h.connect()
                await h.request(reader, writer, 1, 1.0)
                dup = await h.request(reader, writer, 1, 1.0)
                assert dup["kind"] == "duplicate" and dup["watermark"] == 1
                gap = await h.request(reader, writer, 9, 9.0)
                assert gap["ok"] is False and gap["error"] == "sequence-gap"
                writer.close()

        run(scenario())


class TestMalformedInput:
    def test_malformed_lines_are_answered_never_fatal(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path) as h:
                reader, writer = await h.connect()
                for bad in ("not json", '{"t": "x", "video": -3', "[]", ""):
                    await h.send_line(writer, bad)
                    response = await h.read_json(reader)
                    assert response["ok"] is False
                    assert response["error"] == "malformed"
                # the daemon is still fully alive afterwards
                response = await h.request(reader, writer, 1, 1.0)
                assert response["ok"]
                stats = await h.rpc(reader, writer, {"op": "stats"})
                assert stats["counters"]["serve.malformed"] == 4
                assert stats["watermark"] == 1
                writer.close()

        run(scenario())

    def test_unknown_op_is_unsupported(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path) as h:
                reader, writer = await h.connect()
                response = await h.rpc(reader, writer, {"op": "reboot"})
                assert response["error"] == "unsupported"
                writer.close()

        run(scenario())


class TestOverload:
    def test_2x_overload_sheds_structured_and_survives(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path, queue_limit=8) as h:
                _slow_worker(h.daemon, 0.02)
                reader, writer = await h.connect()
                # 2x the queue bound, pipelined in one burst, unsequenced
                # so shed requests don't open sequence gaps
                burst = 16
                for i in range(burst):
                    writer.write(
                        (json.dumps(
                            {"t": float(i), "video": i, "b0": 0, "b1": K - 1}
                        ) + "\n").encode()
                    )
                await writer.drain()
                shed, served = 0, 0
                for _ in range(burst):
                    response = await h.read_json(reader)
                    if response.get("ok"):
                        served += 1
                    else:
                        assert response["error"] == "overloaded"
                        assert response["retry_after"] >= 0.0
                        shed += 1
                assert shed >= 1, "2x overload must shed"
                assert served >= 8, "admitted requests must still be served"
                # the daemon never crashed: stats still answers
                stats = await h.rpc(reader, writer, {"op": "stats"})
                assert stats["counters"]["serve.shed"] == shed
                assert stats["watermark"] == served
                writer.close()

        run(scenario())

    def test_rate_limit_sheds_with_retry_after(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path, rate=1.0, burst=1.0) as h:
                reader, writer = await h.connect()
                first = await h.request(reader, writer, None, 1.0)
                assert first["ok"]
                second = await h.rpc(
                    reader, writer,
                    {"t": 2.0, "video": 1, "b0": 0, "b1": K - 1},
                )
                assert second["error"] == "overloaded"
                assert second["retry_after"] > 0.0
                writer.close()

        run(scenario())

    def test_shed_response_echoes_seq(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path, queue_limit=1) as h:
                _slow_worker(h.daemon, 0.05)
                reader, writer = await h.connect()
                for seq in (1, 2, 3):
                    writer.write(
                        (json.dumps(
                            {"seq": seq, "t": float(seq), "video": 1,
                             "b0": 0, "b1": K - 1}
                        ) + "\n").encode()
                    )
                await writer.drain()
                responses = [await h.read_json(reader) for _ in range(3)]
                shed = [r for r in responses if r.get("error") == "overloaded"]
                assert shed and all("seq" in r for r in shed)
                writer.close()

        run(scenario())


class TestTimeouts:
    def test_deadline_covers_queue_wait_and_preserves_seq(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path, request_timeout=0.0) as h:
                reader, writer = await h.connect()
                response = await h.request(reader, writer, 1, 1.0)
                assert response["ok"] is False
                assert response["error"] == "timeout"
                assert response["seq"] == 1
                stats = await h.rpc(reader, writer, {"op": "stats"})
                assert stats["watermark"] == 0  # seq NOT consumed
                assert stats["counters"]["serve.timeouts"] == 1
                writer.close()

        run(scenario())


class TestWorkerSupervision:
    def test_crashed_worker_restarts_and_request_retries(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path, test_hooks=True) as h:
                reader, writer = await h.connect()
                armed = await h.rpc(reader, writer, {"op": "crash-worker"})
                assert armed["kind"] == "crash-armed"
                # the poisoned request dies in the worker (no response);
                # the client-side retry of the SAME seq lands exactly once
                await h.send_line(
                    writer,
                    json.dumps({"seq": 1, "t": 1.0, "video": 1,
                                "b0": 0, "b1": K - 1}),
                )
                response = await h.request(reader, writer, 1, 1.0)
                assert response["ok"] and response["seq"] == 1
                stats = await h.rpc(reader, writer, {"op": "stats"})
                assert stats["worker_restarts"] == 1
                assert stats["watermark"] == 1
                assert stats["totals"]["requests"] == 1
                writer.close()

        run(scenario())

    def test_crash_worker_needs_test_hooks(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path) as h:
                reader, writer = await h.connect()
                response = await h.rpc(reader, writer, {"op": "crash-worker"})
                assert response["error"] == "unsupported"
                writer.close()

        run(scenario())

    def test_transient_faults_retry_to_success(self, tmp_path):
        async def scenario():
            async with Harness(
                tmp_path, test_hooks=True, fault_rate=0.5, fault_seed=13,
                max_retries=10, retry_base_delay=0.001,
            ) as h:
                reader, writer = await h.connect()
                for seq in range(1, 21):
                    response = await h.request(reader, writer, seq, float(seq))
                    assert response["ok"], response
                stats = await h.rpc(reader, writer, {"op": "stats"})
                assert stats["watermark"] == 20
                assert stats["counters"]["serve.retries"] >= 1
                writer.close()

        run(scenario())

    def test_exhausted_retries_fail_structured(self, tmp_path):
        async def scenario():
            async with Harness(
                tmp_path, test_hooks=True, fault_rate=1.0,
                max_retries=2, retry_base_delay=0.001,
            ) as h:
                reader, writer = await h.connect()
                response = await h.request(reader, writer, 1, 1.0)
                assert response["ok"] is False
                assert response["error"] == "decision-failed"
                assert "3 attempts" in response["detail"]
                stats = await h.rpc(reader, writer, {"op": "stats"})
                assert stats["watermark"] == 0  # seq NOT consumed
                assert stats["counters"]["serve.decision_failures"] == 1
                writer.close()

        run(scenario())


class TestSubscribers:
    def test_subscriber_receives_periodic_snapshots(self, tmp_path):
        async def scenario():
            async with Harness(tmp_path, publish_interval=0.02) as h:
                reader, writer = await h.connect()
                sub = await h.rpc(reader, writer, {"op": "subscribe"})
                assert sub["kind"] == "subscribed"
                for _ in range(2):
                    record = await h.read_json(reader)
                    assert record["kind"] == "snapshot"
                    assert record["lane"] == "serve"
                    assert "occupancy" in record and "queue_depth" in record
                writer.close()

        run(scenario())


class TestGracefulDegradation:
    def test_degrades_under_backlog_then_recovers(self, tmp_path):
        async def scenario():
            async with Harness(
                tmp_path, queue_limit=10, degrade_high=0.5, degrade_low=0.2,
            ) as h:
                _slow_worker(h.daemon, 0.03)
                reader, writer = await h.connect()
                burst = 8
                for i in range(burst):
                    writer.write(
                        (json.dumps(
                            {"t": float(i), "video": i, "b0": 0, "b1": K - 1}
                        ) + "\n").encode()
                    )
                await writer.drain()
                # let the daemon ingest the burst; the queue is now deep
                await asyncio.sleep(0.02)
                assert h.daemon.state.degraded is True
                for _ in range(burst):
                    await h.read_json(reader)
                # fully drained: hysteresis low bound re-enables probes
                assert h.daemon.state.degraded is False
                assert h.daemon.slo.counter("serve.degrade_entered") >= 1
                writer.close()

        run(scenario())


class TestShutdownArtifacts:
    def test_shutdown_writes_final_snapshot_and_telemetry(self, tmp_path):
        telemetry = tmp_path / "serve.jsonl"
        snapdir = tmp_path / "snaps"

        async def scenario():
            async with Harness(
                tmp_path,
                snapshot_dir=str(snapdir),
                snapshot_every=0,
                telemetry_path=str(telemetry),
            ) as h:
                reader, writer = await h.connect()
                for seq in (1, 2, 3):
                    await h.request(reader, writer, seq, float(seq))
                stopping = await h.rpc(reader, writer, {"op": "shutdown"})
                assert stopping["kind"] == "stopping"
                writer.close()

        run(scenario())
        assert (snapdir / "MANIFEST.json").exists()
        manifest = json.loads((snapdir / "MANIFEST.json").read_text())
        assert manifest["watermark"] == 3
        # the telemetry export passes the repro-report schema check
        from repro.obs.report import main as report_main

        assert report_main(["--check", str(telemetry)]) == 0


class TestStdioLane:
    def test_stdin_protocol_subprocess(self, tmp_path):
        lines = "\n".join(
            [
                json.dumps({"op": "hello"}),
                json.dumps({"seq": 1, "t": 1.0, "video": 1, "b0": 0,
                            "b1": K - 1}),
                "garbage line",
                json.dumps({"op": "stats"}),
            ]
        ) + "\n"
        proc = subprocess.run(
            [sys.executable, "-m", "repro.serve.cli", "--stdin",
             "--algorithm", "PullLRU", "--disk-chunks", "64",
             "--publish-interval", "0"],
            input=lines, capture_output=True, text=True, timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        responses = [json.loads(l) for l in proc.stdout.splitlines() if l]
        # ops and malformed lines are answered inline while decision
        # requests flow through the queue, so match by kind, not order
        assert len(responses) == 4
        by_kind = {r.get("kind"): r for r in responses if r.get("ok")}
        assert responses[0]["kind"] == "hello"
        decision = by_kind["decision"]
        assert decision["seq"] == 1 and decision["decision"] == "serve"
        assert any(r.get("error") == "malformed" for r in responses)
        assert by_kind["stats"]["counters"]["serve.malformed"] == 1
