"""Atomic watermarked snapshots: durability, corruption, pruning."""

import json

import pytest

from repro.serve.protocol import new_totals
from repro.serve.snapshotter import SnapshotStore
from repro.sim.runner import build_cache

K = 1024
FP = "fp-abcdef"


def _cache():
    return build_cache("PullLRU", 16, alpha_f2r=1.0, chunk_bytes=K)


def _warm(cache, n=5):
    for i in range(n):
        cache.handle_span(float(i), i, 0, K - 1, 0, 0)
    return cache


def _save(store, cache, watermark):
    totals = new_totals()
    totals["requests"] = watermark
    return store.save(cache, watermark, totals, float(watermark), FP)


class TestRoundtrip:
    def test_save_then_load(self, tmp_path):
        store = SnapshotStore(tmp_path)
        original = _warm(_cache())
        _save(store, original, 5)

        restored_cache = _cache()
        restored = SnapshotStore(tmp_path).load(restored_cache, FP)
        assert restored is not None
        assert restored.watermark == 5
        assert restored.totals["requests"] == 5
        assert restored.last_t == 5.0
        assert len(restored_cache) == len(original)

    def test_empty_directory_is_cold_start(self, tmp_path):
        assert SnapshotStore(tmp_path).load(_cache(), FP) is None

    def test_no_temp_files_left_behind(self, tmp_path):
        store = SnapshotStore(tmp_path)
        _save(store, _warm(_cache()), 1)
        assert not list(tmp_path.glob("*.tmp"))


class TestCorruption:
    def test_corrupt_manifest_degrades_to_cold_start(self, tmp_path):
        store = SnapshotStore(tmp_path)
        _save(store, _warm(_cache()), 3)
        store.manifest_path.write_text("{ half a manifest")
        warnings = []
        store = SnapshotStore(tmp_path, on_warning=lambda *a: warnings.append(a))
        assert store.load(_cache(), FP) is None
        assert any("manifest" in tag for tag, _ in warnings)

    def test_corrupt_payload_degrades_to_cold_start(self, tmp_path):
        store = SnapshotStore(tmp_path)
        path = _save(store, _warm(_cache()), 3)
        path.write_text('{"version": 1, "fingerprint": "' + FP + '"}')
        warnings = []
        store = SnapshotStore(tmp_path, on_warning=lambda *a: warnings.append(a))
        assert store.load(_cache(), FP) is None
        assert warnings

    def test_missing_payload_degrades_to_cold_start(self, tmp_path):
        store = SnapshotStore(tmp_path)
        path = _save(store, _warm(_cache()), 3)
        path.unlink()
        warnings = []
        store = SnapshotStore(tmp_path, on_warning=lambda *a: warnings.append(a))
        assert store.load(_cache(), FP) is None
        assert warnings

    def test_fingerprint_mismatch_fails_fast(self, tmp_path):
        """A config mismatch is an operator error, not a crash artifact."""
        store = SnapshotStore(tmp_path)
        _save(store, _warm(_cache()), 3)
        with pytest.raises(ValueError, match="refusing to resume"):
            SnapshotStore(tmp_path).load(_cache(), "other-fingerprint")

    def test_unsupported_manifest_version(self, tmp_path):
        store = SnapshotStore(tmp_path)
        _save(store, _warm(_cache()), 3)
        manifest = json.loads(store.manifest_path.read_text())
        manifest["version"] = 99
        store.manifest_path.write_text(json.dumps(manifest))
        warnings = []
        store = SnapshotStore(tmp_path, on_warning=lambda *a: warnings.append(a))
        assert store.load(_cache(), FP) is None


class TestPruning:
    def test_keeps_only_newest(self, tmp_path):
        store = SnapshotStore(tmp_path, keep=2)
        cache = _warm(_cache())
        for watermark in (10, 20, 30, 40):
            _save(store, cache, watermark)
        names = sorted(p.name for p in tmp_path.glob("state-*.json"))
        assert names == ["state-000000000030.json", "state-000000000040.json"]
        # the manifest still points at a surviving payload
        restored = SnapshotStore(tmp_path).load(_cache(), FP)
        assert restored is not None and restored.watermark == 40

    def test_keep_must_be_positive(self, tmp_path):
        with pytest.raises(ValueError, match="keep"):
            SnapshotStore(tmp_path, keep=0)
