"""Client-side behaviours that never touch a socket: jittered backoff
(no retry herds) and the per-shard sequence discipline."""

import socket

import pytest

from repro.cdn.sharding import shard_of
from repro.serve.client import ServeClient, ShardedSeq

BUCKETS = 64


def _client(jitter_seed=None):
    """A ServeClient over a dead socketpair — backoff needs no wire."""
    a, b = socket.socketpair()
    b.close()
    return ServeClient(a, jitter_seed=jitter_seed)


class TestJitteredBackoff:
    def test_two_clients_with_same_hint_do_not_collide(self):
        """Two clients shed in the same instant with the same
        ``retry_after`` must not retry at the identical instant."""
        one = _client(jitter_seed=1)
        two = _client(jitter_seed=2)
        waits_one = [one.backoff(0.25) for _ in range(20)]
        waits_two = [two.backoff(0.25) for _ in range(20)]
        assert waits_one != waits_two
        assert all(a != b for a, b in zip(waits_one, waits_two))
        one.close()
        two.close()

    def test_backoff_bounds_and_growth(self):
        client = _client(jitter_seed=7)
        for attempt in range(8):
            wait = client.backoff(0.2, attempt)
            assert 0.1 <= wait < 0.2 * 1.5 * (2 ** min(attempt, 6))
        # zero/negative hints are floored, never a busy-loop of 0 waits
        assert client.backoff(0.0) > 0.0
        client.close()

    def test_seeded_backoff_is_reproducible(self):
        a = _client(jitter_seed=99)
        b = _client(jitter_seed=99)
        assert [a.backoff(1.0, i) for i in range(5)] == [
            b.backoff(1.0, i) for i in range(5)
        ]
        a.close()
        b.close()


class TestShardedSeq:
    def test_hands_out_contiguous_per_shard_streams(self):
        seq = ShardedSeq(2, num_buckets=BUCKETS)
        per_shard = {0: 0, 1: 0}
        for video in range(40):
            shard, n = seq.next_seq(video)
            assert shard == shard_of(video, 2, BUCKETS)
            per_shard[shard] += 1
            assert n == per_shard[shard]

    def test_resume_rewinds_each_shard_independently(self):
        seq = ShardedSeq(2, num_buckets=BUCKETS)
        for video in range(40):
            seq.next_seq(video)
        seq.resume(
            {"shards": [
                {"shard": 0, "watermark": 3},
                {"shard": 1, "watermark": 11},
            ]}
        )
        next_by_shard = {}
        video = 0
        while len(next_by_shard) < 2:
            shard = seq.shard(video)
            if shard not in next_by_shard:
                next_by_shard[shard] = seq.next_seq(video)[1]
            video += 1
        assert next_by_shard == {0: 4, 1: 12}

    def test_single_shard_matches_global_seq(self):
        """--workers 1 wire-compat: one shard's stream is the PR 8
        global contiguous seq."""
        seq = ShardedSeq(1, num_buckets=BUCKETS)
        for expect, video in enumerate(range(25), start=1):
            shard, n = seq.next_seq(video)
            assert (shard, n) == (0, expect)

    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError):
            ShardedSeq(0)
        with pytest.raises(ValueError):
            ShardedSeq(8, num_buckets=4)
