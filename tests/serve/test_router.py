"""In-process sharded-router tests: N worker daemons + the router in
one event loop, real unix sockets, no subprocesses.

Covers the §14 contract: video-hash routing coherence, exact SLO merge
across shards, per-worker stats breakdown, fan-out ops, the misrouted
defense inside workers, and structured shedding while a shard is down.
"""

import asyncio
import json

from repro.cdn.sharding import shard_of
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.protocol import PROTOCOL_VERSION
from repro.serve.router import ShardRouter

K = 1024
BUCKETS = 64


def run(coro):
    """Drive one test coroutine with a hard safety timeout."""
    return asyncio.run(asyncio.wait_for(coro, timeout=60))


def videos_for_shard(shard, workers, count=5):
    """The first ``count`` video ids hashing to ``shard``."""
    out = []
    video = 0
    while len(out) < count:
        if shard_of(video, workers, BUCKETS) == shard:
            out.append(video)
        video += 1
    return out


class FleetHarness:
    """N sharded daemons + one router, all in this test's event loop."""

    def __init__(self, tmp_path, workers=2, **kw):
        self.workers = workers
        self.worker_paths = [
            str(tmp_path / f"worker-{shard}.sock") for shard in range(workers)
        ]
        self.daemons = []
        for shard in range(workers):
            kw_shard = dict(kw)
            snapshot_dir = kw_shard.pop("snapshot_root", None)
            if snapshot_dir is not None:
                kw_shard["snapshot_dir"] = str(snapshot_dir / f"shard-{shard}")
            kw_shard.setdefault("algorithm", "PullLRU")
            kw_shard.setdefault("disk_chunks", 64)
            kw_shard.setdefault("chunk_bytes", K)
            kw_shard.setdefault("publish_interval", 0.0)
            self.daemons.append(
                ServeDaemon(
                    ServeConfig(
                        shard_id=shard,
                        num_shards=workers,
                        num_buckets=BUCKETS,
                        **kw_shard,
                    )
                )
            )
        self.router = ShardRouter(
            self.worker_paths,
            num_buckets=BUCKETS,
            op_retry=2.0,
            data_retry=0.2,
        )
        self.router_path = str(tmp_path / "router.sock")

    async def __aenter__(self):
        for daemon, path in zip(self.daemons, self.worker_paths):
            await daemon.start(unix_path=path)
        await self.router.start(unix_path=self.router_path)
        return self

    async def __aexit__(self, *exc):
        await self.router.shutdown()
        for daemon in self.daemons:
            daemon.request_stop()
            await daemon.shutdown(drain_timeout=10)

    async def connect(self):
        return await asyncio.open_unix_connection(self.router_path)

    @staticmethod
    async def send_line(writer, text):
        writer.write(text.encode() + b"\n")
        await writer.drain()

    @staticmethod
    async def read_json(reader):
        line = await reader.readline()
        assert line, "router closed the connection"
        return json.loads(line)

    async def rpc(self, reader, writer, obj):
        await self.send_line(writer, json.dumps(obj))
        return await self.read_json(reader)

    async def request(self, reader, writer, seq, t, video, b0=0, b1=K - 1):
        return await self.rpc(
            reader, writer,
            {"seq": seq, "t": t, "video": video, "b0": b0, "b1": b1},
        )


class TestRoutingCoherence:
    def test_requests_land_on_their_video_shard(self, tmp_path):
        async def scenario():
            async with FleetHarness(tmp_path, workers=2) as h:
                reader, writer = await h.connect()
                next_seq = [1, 1]
                sent_per_shard = [0, 0]
                for video in range(24):
                    shard = shard_of(video, 2, BUCKETS)
                    response = await h.request(
                        reader, writer, next_seq[shard], float(video), video
                    )
                    assert response["ok"], response
                    assert response["seq"] == next_seq[shard]
                    next_seq[shard] += 1
                    sent_per_shard[shard] += 1
                # each worker's ledger saw exactly its own subsequence
                for shard, daemon in enumerate(h.daemons):
                    assert daemon.service.watermark == sent_per_shard[shard]
                    assert (
                        daemon.service.totals["requests"]
                        == sent_per_shard[shard]
                    )
                writer.close()

        run(scenario())

    def test_worker_rejects_misrouted_video(self, tmp_path):
        async def scenario():
            async with FleetHarness(tmp_path, workers=2) as h:
                # talk straight to worker 0, violating the routing
                reader, writer = await asyncio.open_unix_connection(
                    h.worker_paths[0]
                )
                wrong = videos_for_shard(1, 2)[0]
                response = await h.rpc(
                    reader, writer,
                    {"seq": 1, "t": 1.0, "video": wrong, "b0": 0, "b1": K - 1},
                )
                assert response["ok"] is False
                assert response["error"] == "misrouted"
                # the refusal consumed nothing: shard 0's own stream is intact
                mine = videos_for_shard(0, 2)[0]
                response = await h.rpc(
                    reader, writer,
                    {"seq": 1, "t": 2.0, "video": mine, "b0": 0, "b1": K - 1},
                )
                assert response["ok"], response
                assert h.daemons[0].service.watermark == 1
                writer.close()

        run(scenario())


class TestFanoutOps:
    def test_hello_reports_protocol_and_per_shard_watermarks(self, tmp_path):
        async def scenario():
            async with FleetHarness(tmp_path, workers=2) as h:
                reader, writer = await h.connect()
                video = videos_for_shard(1, 2)[0]
                await h.request(reader, writer, 1, 1.0, video)
                hello = await h.rpc(reader, writer, {"op": "hello"})
                assert hello["ok"] and hello["kind"] == "hello"
                assert hello["protocol"] == PROTOCOL_VERSION
                assert hello["workers"] == 2
                assert hello["num_buckets"] == BUCKETS
                assert hello["watermark"] == 1
                by_shard = {s["shard"]: s["watermark"] for s in hello["shards"]}
                assert by_shard == {0: 0, 1: 1}
                writer.close()

        run(scenario())

    def test_stats_fold_merges_slo_exactly(self, tmp_path):
        async def scenario():
            async with FleetHarness(tmp_path, workers=2) as h:
                reader, writer = await h.connect()
                seqs = [1, 1]
                for video in range(30):
                    shard = shard_of(video, 2, BUCKETS)
                    await h.request(
                        reader, writer, seqs[shard], float(video), video
                    )
                    seqs[shard] += 1
                stats = await h.rpc(reader, writer, {"op": "stats"})
                assert stats["ok"] and stats["kind"] == "stats"
                assert stats["workers"] == 2
                assert stats["watermark"] == 30
                assert stats["totals"]["requests"] == 30
                # exact sketch merge: merged decision count is the sum,
                # and the quantiles come from the merged histogram
                assert stats["slo"]["decisions"] == 30
                assert stats["slo"]["latency_ms"]["p99"] is not None
                per_shard = sum(
                    d.slo.summary()["decisions"] for d in h.daemons
                )
                assert per_shard == 30
                qps_sum = sum(d.slo.sustained_qps() for d in h.daemons)
                assert abs(stats["slo"]["sustained_qps"] - qps_sum) < 1e-6
                # per-worker breakdown rides alongside the merged view
                rows = stats["shards"]
                assert [row["shard"] for row in rows] == [0, 1]
                for row in rows:
                    assert "queue_depth" in row
                    assert "watermark" in row
                    assert "shed" in row
                assert sum(row["watermark"] for row in rows) == 30
                assert sum(row["decisions"] for row in rows) == 30
                assert "router" in stats
                writer.close()

        run(scenario())

    def test_snapshot_fans_out_per_shard_paths(self, tmp_path):
        async def scenario():
            async with FleetHarness(
                tmp_path, workers=2, snapshot_root=tmp_path / "snaps"
            ) as h:
                reader, writer = await h.connect()
                seqs = [1, 1]
                for video in range(8):
                    shard = shard_of(video, 2, BUCKETS)
                    await h.request(
                        reader, writer, seqs[shard], float(video), video
                    )
                    seqs[shard] += 1
                response = await h.rpc(reader, writer, {"op": "snapshot"})
                assert response["ok"], response
                assert response["watermark"] == 8
                paths = [row["path"] for row in response["shards"]]
                assert len(paths) == 2 and all(paths)
                assert f"shard-0" in paths[0] and f"shard-1" in paths[1]
                writer.close()

        run(scenario())

    def test_shutdown_scatters_to_every_worker(self, tmp_path):
        async def scenario():
            async with FleetHarness(tmp_path, workers=2) as h:
                reader, writer = await h.connect()
                response = await h.rpc(reader, writer, {"op": "shutdown"})
                assert response["ok"] and response["kind"] == "stopping"
                assert response["workers"] == 2
                for daemon in h.daemons:
                    assert daemon._stop_requested.is_set()
                assert h.router._stop_requested.is_set()
                writer.close()

        run(scenario())

    def test_crash_worker_is_refused_at_the_router(self, tmp_path):
        async def scenario():
            async with FleetHarness(tmp_path, workers=2) as h:
                reader, writer = await h.connect()
                response = await h.rpc(reader, writer, {"op": "crash-worker"})
                assert response["ok"] is False
                assert response["error"] == "unsupported"
                writer.close()

        run(scenario())


class TestFailureHandling:
    def test_dead_shard_sheds_structurally_siblings_serve(self, tmp_path):
        async def scenario():
            async with FleetHarness(tmp_path, workers=2) as h:
                # murder worker 1's endpoint (in-process equivalent of
                # a worker crash: connect refused until a restart)
                h.daemons[1].request_stop()
                await h.daemons[1].shutdown(drain_timeout=5)
                reader, writer = await h.connect()
                dead = videos_for_shard(1, 2)[0]
                response = await h.request(reader, writer, 1, 1.0, dead)
                assert response["ok"] is False
                assert response["error"] == "overloaded"
                assert response["seq"] == 1
                assert response["retry_after"] > 0
                # the sibling shard is untouched
                alive = videos_for_shard(0, 2)[0]
                response = await h.request(reader, writer, 1, 2.0, alive)
                assert response["ok"], response
                writer.close()

        run(scenario())

    def test_malformed_line_answered_at_the_router(self, tmp_path):
        async def scenario():
            async with FleetHarness(tmp_path, workers=2) as h:
                reader, writer = await h.connect()
                await h.send_line(writer, '{"t": "nope", "video":')
                response = await h.read_json(reader)
                assert response["ok"] is False
                assert response["error"] == "malformed"
                # connection survives; counters recorded at the router
                hello = await h.rpc(reader, writer, {"op": "hello"})
                assert hello["ok"]
                assert h.router.counters.get("router.malformed") == 1
                writer.close()

        run(scenario())


class TestSubscribe:
    def test_subscribe_rebroadcasts_shard_tagged_snapshots(self, tmp_path):
        async def scenario():
            async with FleetHarness(
                tmp_path, workers=2, publish_interval=0.05
            ) as h:
                reader, writer = await h.connect()
                ack = await h.rpc(reader, writer, {"op": "subscribe"})
                assert ack["ok"] and ack["kind"] == "subscribed"
                assert ack["workers"] == 2
                record = await asyncio.wait_for(
                    h.read_json(reader), timeout=10
                )
                assert record["kind"] == "snapshot"
                assert record["lane"] == "serve"
                assert record["shard"] in (0, 1)
                writer.close()

        run(scenario())
