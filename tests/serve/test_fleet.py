"""Fleet supervisor tests: config/argv plumbing, snapshot lineage
isolation, telemetry merging, and one live supervisor tree with a
worker SIGKILL and a router SIGKILL."""

import json
import os
import time

import pytest

from repro.cdn.sharding import shard_of
from repro.obs.jsonl import validate_telemetry
from repro.serve.daemon import ServeConfig, ServeDaemon
from repro.serve.fleet import (
    FleetConfig,
    ServeFleet,
    merge_shard_telemetry,
    shard_telemetry_path,
)

K = 1024
BUCKETS = 64


def videos_for_shard(shard, workers, count=5):
    out = []
    video = 0
    while len(out) < count:
        if shard_of(video, workers, BUCKETS) == shard:
            out.append(video)
        video += 1
    return out


class TestFleetConfig:
    def test_rejects_bad_shapes(self):
        with pytest.raises(ValueError, match="workers"):
            FleetConfig(workers=0, socket="/tmp/x.sock")
        with pytest.raises(ValueError, match="buckets"):
            FleetConfig(workers=8, num_buckets=4, socket="/tmp/x.sock")
        with pytest.raises(ValueError, match="endpoint"):
            FleetConfig(workers=2)
        with pytest.raises(ValueError, match="run_dir"):
            FleetConfig(workers=2, tcp=("127.0.0.1", 9999))

    def test_derived_paths(self):
        config = FleetConfig(workers=2, socket="/tmp/pub.sock")
        assert config.effective_run_dir == "/tmp/pub.sock.fleet"
        assert config.effective_pidfile == "/tmp/pub.sock.fleet/fleet.json"


class TestArgvPlumbing:
    def test_worker_argv_carries_shard_coordinates(self, tmp_path):
        fleet = ServeFleet(
            FleetConfig(
                workers=2,
                socket=str(tmp_path / "pub.sock"),
                run_dir=str(tmp_path / "run"),
                num_buckets=BUCKETS,
                snapshot_dir=str(tmp_path / "snaps"),
                telemetry_path=str(tmp_path / "telemetry.jsonl"),
                worker_args=("--algorithm", "PullLRU"),
            )
        )
        argv = fleet.worker_argv(1)
        text = " ".join(argv)
        assert "--shard 1" in text
        assert "--num-shards 2" in text
        assert f"--num-buckets {BUCKETS}" in text
        assert str(tmp_path / "snaps" / "shard-1") in text
        assert (
            shard_telemetry_path(str(tmp_path / "telemetry.jsonl"), 1) in text
        )
        assert "--algorithm PullLRU" in text
        # endpoints are derived, never inherited from the supervisor
        assert str(tmp_path / "pub.sock") not in text

    def test_router_argv_lists_workers_in_shard_order(self, tmp_path):
        fleet = ServeFleet(
            FleetConfig(
                workers=3,
                socket=str(tmp_path / "pub.sock"),
                run_dir=str(tmp_path / "run"),
            )
        )
        argv = fleet.router_argv()
        sockets = [
            argv[i + 1] for i, arg in enumerate(argv) if arg == "--worker"
        ]
        assert sockets == [fleet.worker_socket(k) for k in range(3)]


class TestSnapshotLineage:
    def test_fingerprint_binds_shard_coordinates(self):
        base = dict(algorithm="PullLRU", disk_chunks=64, chunk_bytes=K)
        unsharded = ServeConfig(**base)
        s0 = ServeConfig(shard_id=0, num_shards=4, num_buckets=BUCKETS, **base)
        s1 = ServeConfig(shard_id=1, num_shards=4, num_buckets=BUCKETS, **base)
        s0_of_8 = ServeConfig(
            shard_id=0, num_shards=8, num_buckets=BUCKETS, **base
        )
        s0_rebucketed = ServeConfig(
            shard_id=0, num_shards=4, num_buckets=BUCKETS * 2, **base
        )
        prints = {
            unsharded.fingerprint(),
            s0.fingerprint(),
            s1.fingerprint(),
            s0_of_8.fingerprint(),
            s0_rebucketed.fingerprint(),
        }
        assert len(prints) == 5, "every lineage must be distinct"
        # and the unsharded fingerprint is unchanged by the new fields
        # (PR 8 snapshot directories keep resuming)
        assert unsharded.fingerprint() == ServeConfig(**base).fingerprint()

    def test_resumed_fleet_never_cross_loads_state(self, tmp_path):
        from repro.serve.daemon import DecisionService

        snapdir = str(tmp_path / "shard-snaps")
        base = dict(
            algorithm="PullLRU",
            disk_chunks=64,
            chunk_bytes=K,
            snapshot_dir=snapdir,
            num_shards=2,
            num_buckets=BUCKETS,
        )
        service = DecisionService(ServeConfig(shard_id=0, **base))
        video = videos_for_shard(0, 2)[0]
        service.apply(
            {"seq": 1, "t": 1.0, "video": video, "b0": 0, "b1": K - 1}
        )
        service.snapshot_now()

        # same shard id: resumes warm
        again = DecisionService(ServeConfig(shard_id=0, **base))
        assert again.resumed and again.watermark == 1

        # another shard pointed at this directory: refuses, loudly
        with pytest.raises(ValueError, match="refusing to resume"):
            DecisionService(ServeConfig(shard_id=1, **base))


class TestTelemetryMerge:
    def _daemon_with_traffic(self, tmp_path, shard, workers=2, count=6):
        config = ServeConfig(
            algorithm="PullLRU",
            disk_chunks=64,
            chunk_bytes=K,
            publish_interval=0.0,
            shard_id=shard,
            num_shards=workers,
            num_buckets=BUCKETS,
        )
        daemon = ServeDaemon(config)
        for index, video in enumerate(
            videos_for_shard(shard, workers, count), start=1
        ):
            daemon.service.apply(
                {
                    "seq": index,
                    "t": float(index),
                    "video": video,
                    "b0": 0,
                    "b1": K - 1,
                }
            )
            daemon.slo.observe_decision(0.0001 * index)
        return daemon

    def test_merged_artifact_is_schema_valid_and_exact(self, tmp_path):
        out = str(tmp_path / "telemetry.jsonl")
        paths = []
        decisions = 0
        requests = 0
        for shard in (0, 1):
            daemon = self._daemon_with_traffic(tmp_path, shard, count=4 + shard)
            path = shard_telemetry_path(out, shard)
            daemon.write_telemetry(path)
            paths.append(path)
            decisions += daemon.slo.summary()["decisions"]
            requests += daemon.service.totals["requests"]

        records = merge_shard_telemetry(
            out, paths, workers=2, router_restarts=1, worker_restarts=[2, 0]
        )
        assert records > 0
        assert validate_telemetry(out) == []

        from repro.obs.jsonl import read_telemetry

        merged = read_telemetry(out)
        assert merged.meta["meta"]["source"] == "repro-serve-fleet"
        assert merged.meta["meta"]["workers"] == 2
        assert merged.meta["meta"]["watermark"] == requests
        lane = merged.lanes["serve"]
        assert lane["totals"]["requests"] == requests
        # exact sketch merge: the merged latency histogram holds every
        # decision either shard recorded
        sketch = lane["registry"]["histograms"]["decision_us"]
        assert sketch["count"] == decisions
        report = merged.reports[0]
        assert report["mode"] == "fleet"
        assert report["extra"]["router_restarts"] == 1
        assert report["extra"]["worker_restarts"] == [2, 0]
        assert len(report["extra"]["per_shard"]) == 2

    def test_merge_with_no_inputs_is_a_noop(self, tmp_path):
        out = str(tmp_path / "telemetry.jsonl")
        assert merge_shard_telemetry(out, []) == 0
        assert not os.path.exists(out)


class TestLiveSupervisor:
    def test_fleet_survives_worker_and_router_sigkill(self, tmp_path):
        from repro.serve.soak import FleetProcess, _fleet_op

        telemetry = str(tmp_path / "fleet-telemetry.jsonl")
        config = ServeConfig(
            algorithm="PullLRU",
            disk_chunks=64,
            chunk_bytes=K,
            snapshot_dir=str(tmp_path / "snaps"),
            snapshot_every=2,
            publish_interval=0.0,
        )
        fleet = FleetProcess(
            str(tmp_path / "pub.sock"),
            str(tmp_path / "run"),
            config,
            workers=2,
            num_buckets=BUCKETS,
            telemetry_path=telemetry,
        )
        fleet.start()
        try:
            client = fleet.connect()
            client, hello = _fleet_op(fleet, client, "hello")
            assert hello["workers"] == 2

            # a few sequenced requests so shard 0 has state to resume
            seqs = [1, 1]
            for video in range(10):
                shard = shard_of(video, 2, BUCKETS)
                response = client.request(
                    float(video), video, 0, K - 1, seq=seqs[shard]
                )
                assert response.get("ok"), response
                seqs[shard] += 1

            pid0 = fleet.pidmap()["workers"][0]["pid"]
            assert fleet.kill_worker(0)
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                entry = fleet.pidmap()["workers"][0]
                if entry["pid"] not in (None, pid0) and entry["restarts"] >= 1:
                    break
                time.sleep(0.1)
            else:
                raise AssertionError("supervisor never restarted worker 0")

            # the restarted worker resumed its own lineage: hello again
            client, hello = _fleet_op(fleet, client, "hello")
            by_shard = {s["shard"]: s for s in hello["shards"]}
            assert by_shard[0]["watermark"] == seqs[0] - 1
            assert by_shard[0]["resumed"] is True
            # sibling untouched: same pid, no restarts
            assert fleet.pidmap()["workers"][1]["restarts"] == 0

            router_pid = fleet.pidmap()["router"]["pid"]
            assert fleet.kill_router()
            deadline = time.monotonic() + 30
            while time.monotonic() < deadline:
                entry = fleet.pidmap()["router"]
                if entry["pid"] not in (None, router_pid):
                    break
                time.sleep(0.1)
            else:
                raise AssertionError("supervisor never restarted the router")

            client, stats = _fleet_op(fleet, client, "stats")
            assert stats["watermark"] == 10
            client, _ = _fleet_op(fleet, client, "shutdown")
            client.close()
            assert fleet.wait(timeout=60) == 0
        finally:
            fleet.terminate()

        assert os.path.exists(telemetry)
        assert validate_telemetry(telemetry) == []
        merged = json.loads(open(telemetry).readline())
        assert merged["meta"]["source"] == "repro-serve-fleet"
        assert not os.path.exists(fleet.pidfile)
