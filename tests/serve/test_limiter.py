"""Token-bucket admission with a deterministic fake clock."""

import pytest

from repro.serve.limiter import TokenBucket


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, dt):
        self.now += dt


def test_burst_then_refusal():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=2.0, clock=clock)
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() == 0.0
    wait = bucket.try_acquire()
    assert wait == pytest.approx(0.1)  # 1 token at 10/s


def test_failed_acquire_consumes_nothing():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=1.0, clock=clock)
    assert bucket.try_acquire() == 0.0
    before = bucket.tokens
    assert bucket.try_acquire() > 0.0
    assert bucket.tokens == before


def test_refill_restores_admission():
    clock = FakeClock()
    bucket = TokenBucket(rate=10.0, burst=1.0, clock=clock)
    assert bucket.try_acquire() == 0.0
    assert bucket.try_acquire() > 0.0
    clock.advance(0.1)
    assert bucket.try_acquire() == 0.0


def test_refill_caps_at_burst():
    clock = FakeClock()
    bucket = TokenBucket(rate=100.0, burst=3.0, clock=clock)
    clock.advance(60.0)
    assert bucket.tokens == 3.0


def test_rate_zero_disables_limiting():
    bucket = TokenBucket(rate=0.0, burst=1.0, clock=FakeClock())
    for _ in range(1000):
        assert bucket.try_acquire() == 0.0
    assert bucket.tokens == float("inf")


def test_retry_after_scales_with_deficit():
    clock = FakeClock()
    bucket = TokenBucket(rate=2.0, burst=1.0, clock=clock)
    bucket.try_acquire()
    assert bucket.try_acquire() == pytest.approx(0.5)


def test_sub_token_burst_rejected():
    with pytest.raises(ValueError, match="burst"):
        TokenBucket(rate=1.0, burst=0.5)
