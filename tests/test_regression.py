"""Regression guard: pinned QUICK-scale behaviour bands.

Everything in this repository is seeded, so the QUICK-scale pipeline is
deterministic on a given platform.  These tests pin the end-to-end
numbers inside bands wide enough to survive legitimate numeric
variation (different BLAS, float summation order) but narrow enough to
catch silent behavioural drift — a changed default, an RNG reordering,
an accounting bug.  If a deliberate algorithm change moves these
numbers, update the bands alongside the change and say why in the
commit.
"""

import pytest

from repro.experiments.common import (
    QUICK,
    scaled_disk_chunks,
    server_trace,
    trace_footprint_chunks,
)
from repro.sim.engine import replay
from repro.sim.runner import build_cache


class TestTraceGenerationPinned:
    def test_europe_quick_volume(self):
        trace = server_trace("europe", QUICK)
        assert 900 <= len(trace) <= 1600
        assert 1000 <= trace_footprint_chunks("europe", QUICK) <= 1900

    def test_asia_quick_volume(self):
        trace = server_trace("asia", QUICK)
        assert 750 <= len(trace) <= 1400
        assert 550 <= trace_footprint_chunks("asia", QUICK) <= 1150

    def test_exact_determinism_within_process(self):
        a = server_trace("europe", QUICK)
        from repro.workload.generator import TraceGenerator
        from repro.workload.servers import SERVER_PROFILES

        b = TraceGenerator(
            SERVER_PROFILES["europe"].scaled(QUICK.profile_scale)
        ).generate(days=QUICK.days)
        assert a == b


class TestSteadyStateBands:
    """Pinned around measured values (2026-07): xLRU 0.225, Cafe 0.559,
    Psychic 0.653 on the QUICK Europe trace at alpha = 2."""

    @pytest.fixture(scope="class")
    def steady(self):
        trace = server_trace("europe", QUICK)
        disk = scaled_disk_chunks("europe", QUICK)
        return {
            algo: replay(build_cache(algo, disk, alpha_f2r=2.0), trace).steady
            for algo in ("xLRU", "Cafe", "Psychic")
        }

    def test_xlru_band(self, steady):
        assert steady["xLRU"].efficiency == pytest.approx(0.225, abs=0.08)

    def test_cafe_band(self, steady):
        assert steady["Cafe"].efficiency == pytest.approx(0.559, abs=0.08)

    def test_psychic_band(self, steady):
        assert steady["Psychic"].efficiency == pytest.approx(0.653, abs=0.08)

    def test_cafe_ingress_band(self, steady):
        assert steady["Cafe"].ingress_fraction == pytest.approx(0.157, abs=0.06)

    def test_xlru_ingress_band(self, steady):
        assert steady["xLRU"].ingress_fraction == pytest.approx(0.613, abs=0.12)
