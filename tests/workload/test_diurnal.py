"""Tests for the diurnal arrival process."""

import numpy as np
import pytest

from repro.workload.diurnal import DAY, DiurnalRate


class TestValidation:
    def test_base_rate_positive(self):
        with pytest.raises(ValueError):
            DiurnalRate(base_rate=0.0)

    def test_amplitude_range(self):
        with pytest.raises(ValueError):
            DiurnalRate(base_rate=1.0, amplitude=1.0)
        with pytest.raises(ValueError):
            DiurnalRate(base_rate=1.0, amplitude=-0.1)

    def test_weekend_boost_positive(self):
        with pytest.raises(ValueError):
            DiurnalRate(base_rate=1.0, weekend_boost=0.0)


class TestRateShape:
    def test_peak_at_peak_hour(self):
        d = DiurnalRate(base_rate=1.0, amplitude=0.5, peak_hour=20.0, weekend_boost=1.0)
        peak = d.rate(20.0 * 3600.0)
        trough = d.rate(8.0 * 3600.0)  # 12h away
        assert peak == pytest.approx(1.5)
        assert trough == pytest.approx(0.5)

    def test_amplitude_zero_is_flat(self):
        d = DiurnalRate(base_rate=2.0, amplitude=0.0, weekend_boost=1.0)
        rates = [d.rate(h * 3600.0) for h in range(24)]
        assert all(r == pytest.approx(2.0) for r in rates)

    def test_weekend_boost_applies_on_days_5_and_6(self):
        d = DiurnalRate(base_rate=1.0, amplitude=0.0, weekend_boost=2.0)
        assert d.rate(0.0) == pytest.approx(1.0)  # day 0
        assert d.rate(5 * DAY + 10.0) == pytest.approx(2.0)  # day 5

    def test_periodicity(self):
        d = DiurnalRate(base_rate=1.0, amplitude=0.6, weekend_boost=1.0)
        assert d.rate(3600.0) == pytest.approx(d.rate(3600.0 + DAY))


class TestArrivals:
    def test_sorted_and_in_range(self):
        d = DiurnalRate(base_rate=0.05)
        rng = np.random.default_rng(0)
        times = list(d.arrivals(DAY, rng))
        assert times == sorted(times)
        assert all(0 <= t < DAY for t in times)

    def test_volume_matches_expectation(self):
        d = DiurnalRate(base_rate=0.05)
        rng = np.random.default_rng(1)
        times = list(d.arrivals(7 * DAY, rng))
        expected = d.expected_sessions(7 * DAY)
        assert abs(len(times) - expected) < 5 * np.sqrt(expected)

    def test_busy_hours_busier(self):
        d = DiurnalRate(base_rate=0.05, amplitude=0.8, peak_hour=20.0, weekend_boost=1.0)
        rng = np.random.default_rng(2)
        times = np.fromiter(d.arrivals(10 * DAY, rng), dtype=float)
        hours = ((times / 3600.0) % 24).astype(int)
        peak_count = np.isin(hours, [19, 20, 21]).sum()
        trough_count = np.isin(hours, [7, 8, 9]).sum()
        assert peak_count > 2 * trough_count

    def test_deterministic_given_rng_seed(self):
        d = DiurnalRate(base_rate=0.05)
        a = list(d.arrivals(DAY, np.random.default_rng(3)))
        b = list(d.arrivals(DAY, np.random.default_rng(3)))
        assert a == b

    def test_duration_validation(self):
        d = DiurnalRate(base_rate=1.0)
        with pytest.raises(ValueError):
            list(d.arrivals(0.0, np.random.default_rng(0)))
        with pytest.raises(ValueError):
            list(d.arrivals(10.0, np.random.default_rng(0), step=0.0))
