"""Tests for the dynamic popularity model."""

from collections import Counter

import numpy as np
import pytest

from repro.workload.catalog import Video, VideoCatalog
from repro.workload.popularity import PopularityModel


def static_catalog(n, seed=0):
    return VideoCatalog.generate(n, seed=seed, churn_fraction=0.0)


class TestValidation:
    def test_zipf_s_positive(self):
        with pytest.raises(ValueError):
            PopularityModel(static_catalog(10), zipf_s=0.0)

    def test_time_constants_positive(self):
        with pytest.raises(ValueError):
            PopularityModel(static_catalog(10), epoch=0.0)


class TestStaticZipf:
    def test_rank_zero_most_sampled(self):
        catalog = static_catalog(100)
        model = PopularityModel(catalog, zipf_s=1.0, drift_sigma=0.0, seed=1)
        samples = model.sample(0.0, size=20_000)
        counts = Counter(samples.tolist())
        top_video = counts.most_common(1)[0][0]
        assert catalog[top_video].rank == 0

    def test_sampling_follows_zipf_weights(self):
        catalog = static_catalog(50)
        model = PopularityModel(catalog, zipf_s=1.0, drift_sigma=0.0, seed=2)
        samples = model.sample(0.0, size=50_000)
        counts = Counter(samples.tolist())
        # rank-0 should get roughly sum(1/r)/1 fraction; just check the
        # top rank clearly dominates a deep-tail rank
        by_rank = {catalog[v].rank: c for v, c in counts.items()}
        assert by_rank.get(0, 0) > 10 * by_rank.get(40, 1)

    def test_weights_at_static(self):
        catalog = static_catalog(10)
        model = PopularityModel(catalog, zipf_s=1.0, drift_sigma=0.0)
        w0 = model.weights_at(0.0)
        w1 = model.weights_at(10_000.0)
        assert np.allclose(w0, w1)

    def test_deterministic_given_seed(self):
        catalog = static_catalog(30)
        a = PopularityModel(catalog, seed=7).sample(0.0, 100)
        b = PopularityModel(catalog, seed=7).sample(0.0, 100)
        assert np.array_equal(a, b)


class TestLifecycle:
    def make_model(self, birth):
        videos = [
            Video(0, 100, rank=0, birth=-1.0),
            Video(1, 100, rank=1, birth=birth),
        ]
        return PopularityModel(
            VideoCatalog(videos),
            zipf_s=1.0,
            ramp=100.0,
            decay_tau=1000.0,
            drift_sigma=0.0,
        )

    def test_unborn_video_has_zero_weight(self):
        model = self.make_model(birth=500.0)
        weights = model.weights_at(100.0)
        assert weights[1] == 0.0

    def test_ramp_grows_linearly(self):
        model = self.make_model(birth=0.0)
        w_half = model.weights_at(50.0)[1]
        w_full = model.weights_at(100.0)[1]
        assert w_half == pytest.approx(w_full / 2.0)

    def test_decay_after_peak(self):
        model = self.make_model(birth=0.0)
        w_peak = model.weights_at(100.0)[1]
        w_later = model.weights_at(1100.0)[1]
        assert w_later == pytest.approx(w_peak * np.exp(-1.0), rel=1e-6)

    def test_sampling_never_returns_unborn_video(self):
        videos = [Video(0, 100, rank=1, birth=-1.0), Video(1, 100, rank=0, birth=1e9)]
        model = PopularityModel(VideoCatalog(videos), drift_sigma=0.0)
        samples = model.sample(0.0, size=500)
        assert set(samples.tolist()) == {0}


class TestDrift:
    def test_drift_changes_weights_across_epochs(self):
        catalog = static_catalog(50)
        model = PopularityModel(catalog, drift_sigma=0.3, epoch=10.0, seed=3)
        model.sample(0.0, 10)
        w0 = model.weights_at(0.0).copy()
        model.sample(1000.0, 10)  # advances many epochs
        w1 = model.weights_at(1000.0)
        assert not np.allclose(w0, w1)

    def test_drift_preserves_total_volume_roughly(self):
        catalog = static_catalog(200)
        model = PopularityModel(catalog, drift_sigma=0.2, epoch=10.0, seed=4)
        model.sample(0.0, 1)
        total0 = model.weights_at(0.0).sum()
        model.sample(5000.0, 1)
        total1 = model.weights_at(5000.0).sum()
        assert 0.3 * total0 < total1 < 3.0 * total0
