"""Tests for end-to-end trace generation."""

import pytest

from repro.workload.generator import TraceGenerator
from repro.workload.servers import SERVER_PROFILES, ServerProfile


def tiny_profile(**overrides):
    base = dict(
        name="test",
        region="Test",
        num_videos=200,
        zipf_s=0.9,
        sessions_per_day=120,
        seed=5,
    )
    base.update(overrides)
    return ServerProfile(**base)


class TestGeneration:
    def test_time_sorted(self):
        trace = TraceGenerator(tiny_profile()).generate(days=3.0)
        assert all(a.t <= b.t for a, b in zip(trace, trace[1:]))

    def test_deterministic_for_seed(self):
        a = TraceGenerator(tiny_profile()).generate(days=2.0)
        b = TraceGenerator(tiny_profile()).generate(days=2.0)
        assert a == b

    def test_seed_override_changes_trace(self):
        a = TraceGenerator(tiny_profile()).generate(days=2.0)
        b = TraceGenerator(tiny_profile(), seed=99).generate(days=2.0)
        assert a != b

    def test_volume_tracks_sessions_per_day(self):
        small = TraceGenerator(tiny_profile()).generate(days=3.0)
        big = TraceGenerator(
            tiny_profile(sessions_per_day=480)
        ).generate(days=3.0)
        assert len(big) > 2.5 * len(small)

    def test_timestamps_within_duration(self):
        trace = TraceGenerator(tiny_profile()).generate(days=2.0)
        # sessions starting near the end may run slightly past the
        # nominal duration (playback time), but starts are within range
        assert trace[0].t >= 0.0
        assert trace[-1].t < 2.5 * 86400.0

    def test_videos_come_from_catalog(self):
        generator = TraceGenerator(tiny_profile())
        trace = generator.generate(days=2.0)
        catalog = generator.build_catalog(2.0 * 86400.0)
        assert all(r.video in catalog for r in trace)

    def test_no_requests_for_unborn_videos(self):
        generator = TraceGenerator(tiny_profile(churn_fraction=0.5))
        trace = generator.generate(days=3.0)
        catalog = generator.build_catalog(3.0 * 86400.0)
        for r in trace:
            birth = catalog[r.video].birth
            assert r.t >= birth

    def test_days_validation(self):
        with pytest.raises(ValueError):
            TraceGenerator(tiny_profile()).generate(days=0.0)

    def test_estimate_requests_in_ballpark(self):
        generator = TraceGenerator(tiny_profile())
        trace = generator.generate(days=4.0)
        estimate = generator.estimate_requests(days=4.0)
        assert 0.3 * estimate < len(trace) < 3.0 * estimate


class TestServerDiversityShows:
    """The Figure 7 premise: different profiles, different demand."""

    def test_asia_more_concentrated_than_south_america(self):
        asia = TraceGenerator(SERVER_PROFILES["asia"].scaled(0.05)).generate(days=4.0)
        sa = TraceGenerator(
            SERVER_PROFILES["south_america"].scaled(0.05)
        ).generate(days=4.0)
        asia_videos = len({r.video for r in asia})
        sa_videos = len({r.video for r in sa})
        # South America: busier and more diverse
        assert len(sa) > len(asia)
        assert sa_videos > asia_videos

    def test_profiles_are_decorrelated(self):
        europe = TraceGenerator(SERVER_PROFILES["europe"].scaled(0.05)).generate(
            days=2.0
        )
        africa = TraceGenerator(SERVER_PROFILES["africa"].scaled(0.05)).generate(
            days=2.0
        )
        assert europe != africa


class TestPackedGeneration:
    """generate_packed streams sessions straight into columns; the
    result must be byte-identical to packing the materialized trace."""

    def test_columns_match_packed_object_trace(self):
        from repro.trace.columnar import _COLUMNS, pack_trace

        profile = tiny_profile()
        packed = TraceGenerator(profile).generate_packed(days=3.0)
        objects = TraceGenerator(profile).generate(days=3.0)
        reference = pack_trace(objects, chunk_bytes=packed.chunk_bytes)
        assert len(packed) == len(reference) == len(objects)
        for name, _typecode in _COLUMNS:
            assert list(packed.column(name)) == list(reference.column(name))

    def test_custom_chunk_bytes(self):
        from repro.trace.columnar import pack_trace

        profile = tiny_profile()
        packed = TraceGenerator(profile).generate_packed(
            days=1.0, chunk_bytes=4096
        )
        reference = pack_trace(
            TraceGenerator(profile).generate(days=1.0), chunk_bytes=4096
        )
        assert packed.chunk_bytes == 4096
        assert list(packed.column("c1")) == list(reference.column("c1"))

    def test_deterministic_for_seed(self):
        a = TraceGenerator(tiny_profile()).generate_packed(days=1.0)
        b = TraceGenerator(tiny_profile()).generate_packed(days=1.0)
        assert list(a.column("t")) == list(b.column("t"))
        assert list(a.column("video")) == list(b.column("video"))
