"""Tests for the video catalog generator."""

import pytest

from repro.workload.catalog import Video, VideoCatalog


class TestVideo:
    def test_size_validation(self):
        with pytest.raises(ValueError):
            Video(video_id=1, size_bytes=0, rank=0, birth=-1.0)


class TestCatalogBasics:
    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            VideoCatalog([])

    def test_duplicate_ids_rejected(self):
        v = Video(1, 100, 0, -1.0)
        with pytest.raises(ValueError):
            VideoCatalog([v, Video(1, 200, 1, -1.0)])

    def test_lookup(self):
        catalog = VideoCatalog([Video(7, 100, 0, -1.0)])
        assert catalog[7].size_bytes == 100
        assert 7 in catalog
        assert 8 not in catalog

    def test_subset(self):
        catalog = VideoCatalog.generate(20, seed=1)
        sub = catalog.subset([0, 5, 19])
        assert len(sub) == 3
        with pytest.raises(KeyError):
            catalog.subset([999])


class TestGenerate:
    def test_deterministic_for_seed(self):
        a = VideoCatalog.generate(50, seed=42)
        b = VideoCatalog.generate(50, seed=42)
        assert [v.size_bytes for v in a.videos] == [v.size_bytes for v in b.videos]

    def test_different_seeds_differ(self):
        a = VideoCatalog.generate(50, seed=1)
        b = VideoCatalog.generate(50, seed=2)
        assert [v.size_bytes for v in a.videos] != [v.size_bytes for v in b.videos]

    def test_sizes_within_bounds(self):
        catalog = VideoCatalog.generate(
            200, seed=0, min_size_bytes=1 << 20, max_size_bytes=64 << 20
        )
        sizes = catalog.sizes_array()
        assert sizes.min() >= 1 << 20
        assert sizes.max() <= 64 << 20

    def test_mean_size_roughly_requested(self):
        catalog = VideoCatalog.generate(3000, seed=0, mean_size_bytes=24e6)
        mean = catalog.sizes_array().mean()
        assert 0.6 * 24e6 < mean < 1.4 * 24e6  # clipping shifts it a bit

    def test_ranks_are_permutation(self):
        catalog = VideoCatalog.generate(100, seed=3)
        assert sorted(v.rank for v in catalog.videos) == list(range(100))

    def test_churn_fraction(self):
        catalog = VideoCatalog.generate(
            400, seed=0, churn_fraction=0.25, duration=100.0
        )
        churned = [v for v in catalog.videos if v.birth >= 0]
        assert len(churned) == 100
        assert all(0 <= v.birth < 100.0 for v in churned)

    def test_no_churn(self):
        catalog = VideoCatalog.generate(50, seed=0, churn_fraction=0.0)
        assert all(v.birth < 0 for v in catalog.videos)

    def test_churn_validation(self):
        with pytest.raises(ValueError):
            VideoCatalog.generate(10, churn_fraction=1.0)

    def test_num_videos_validation(self):
        with pytest.raises(ValueError):
            VideoCatalog.generate(0)

    def test_first_id_offset(self):
        catalog = VideoCatalog.generate(10, seed=0, first_id=100)
        assert {v.video_id for v in catalog.videos} == set(range(100, 110))

    def test_describe(self):
        summary = VideoCatalog.generate(100, seed=0).describe()
        assert summary["videos"] == 100
        assert summary["total_gb"] > 0
