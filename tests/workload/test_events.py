"""Tests for flash-crowd and surge injection, and cache robustness."""

import numpy as np
import pytest

from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.sim.engine import replay
from repro.workload.catalog import Video
from repro.workload.events import inject_flash_crowd, inject_rate_surge

MB = 1 << 20

FLASH_VIDEO = Video(video_id=999_999, size_bytes=20 * MB, rank=0, birth=-1.0)


def rng():
    return np.random.default_rng(11)


class TestFlashCrowdInjection:
    def test_validation(self, small_trace):
        with pytest.raises(ValueError):
            inject_flash_crowd(small_trace, FLASH_VIDEO, 0.0, -1.0, 100.0, rng())
        with pytest.raises(ValueError):
            inject_flash_crowd(small_trace, FLASH_VIDEO, 0.0, 10.0, 0.0, rng())
        with pytest.raises(ValueError):
            inject_flash_crowd(
                small_trace, FLASH_VIDEO, 0.0, 10.0, 10.0, rng(), ramp_fraction=1.0
            )

    def test_result_sorted_and_superset(self, small_trace):
        merged = inject_flash_crowd(
            small_trace, FLASH_VIDEO, 86400.0, 6 * 3600.0, 300.0, rng()
        )
        assert all(a.t <= b.t for a, b in zip(merged, merged[1:]))
        assert len(merged) > len(small_trace)

    def test_flash_requests_confined_to_window(self, small_trace):
        t0, duration = 86400.0, 6 * 3600.0
        merged = inject_flash_crowd(
            small_trace, FLASH_VIDEO, t0, duration, 300.0, rng()
        )
        flash = [r for r in merged if r.video == FLASH_VIDEO.video_id]
        assert flash
        # sessions *start* inside the window; playback may spill a bit
        assert min(r.t for r in flash) >= t0
        assert max(r.t for r in flash) < t0 + duration + 3600.0

    def test_intensity_peaks_near_ramp_end(self, small_trace):
        t0, duration = 86400.0, 10 * 3600.0
        merged = inject_flash_crowd(
            small_trace, FLASH_VIDEO, t0, duration, 600.0, rng(), ramp_fraction=0.2
        )
        flash_times = np.array(
            [r.t for r in merged if r.video == FLASH_VIDEO.video_id]
        )
        early = ((flash_times >= t0) & (flash_times < t0 + 0.3 * duration)).sum()
        late = (flash_times >= t0 + 0.7 * duration).sum()
        assert early > late  # triangular shape: front-loaded after ramp

    def test_original_trace_untouched(self, small_trace):
        before = list(small_trace)
        inject_flash_crowd(small_trace, FLASH_VIDEO, 0.0, 3600.0, 100.0, rng())
        assert list(small_trace) == before


class TestRateSurge:
    def test_validation(self, small_trace):
        with pytest.raises(ValueError):
            inject_rate_surge(small_trace, 0.0, 0.0, 2.0, rng())
        with pytest.raises(ValueError):
            inject_rate_surge(small_trace, 0.0, 10.0, 0.5, rng())

    def test_window_volume_multiplied(self, small_trace):
        t0, duration = 86400.0, 12 * 3600.0
        merged = inject_rate_surge(small_trace, t0, duration, 3.0, rng())
        in_window = lambda rs: sum(1 for r in rs if t0 <= r.t < t0 + duration)  # noqa: E731
        original = in_window(small_trace)
        surged = in_window(merged)
        assert original > 0
        assert surged == pytest.approx(3.0 * original, rel=0.25)

    def test_outside_window_unchanged(self, small_trace):
        t0, duration = 86400.0, 3600.0
        merged = inject_rate_surge(small_trace, t0, duration, 4.0, rng())
        outside = [r for r in merged if not t0 <= r.t < t0 + duration]
        original_outside = [
            r for r in small_trace if not t0 <= r.t < t0 + duration
        ]
        assert outside == original_outside

    def test_popularity_mix_preserved(self, small_trace):
        t0, duration = 86400.0, 12 * 3600.0
        merged = inject_rate_surge(small_trace, t0, duration, 3.0, rng())
        extra_videos = {r.video for r in merged if t0 <= r.t < t0 + duration}
        base_videos = {r.video for r in small_trace if t0 <= r.t < t0 + duration}
        assert extra_videos == base_videos  # replays, no new content


class TestCacheRobustness:
    """Caches must absorb a flash crowd and recover afterwards."""

    @pytest.fixture(scope="class")
    def flash_trace(self, medium_trace):
        mid = medium_trace[len(medium_trace) // 2].t
        return inject_flash_crowd(
            medium_trace, FLASH_VIDEO, mid, 8 * 3600.0, 400.0,
            np.random.default_rng(12),
        )

    def test_capacity_invariant_through_event(self, flash_trace):
        cache = CafeCache(128, cost_model=CostModel(2.0))
        for r in flash_trace:
            cache.handle(r)
            assert len(cache) <= 128

    def test_flash_content_gets_admitted(self, flash_trace):
        cache = CafeCache(256, cost_model=CostModel(2.0))
        admitted = False
        for r in flash_trace:
            response = cache.handle(r)
            if r.video == FLASH_VIDEO.video_id and response.served:
                admitted = True
        assert admitted, "a viral video must be cached during its event"

    def test_cache_recovers_after_event(self, medium_trace, flash_trace):
        """Post-event efficiency is not wrecked by leftover pollution."""
        base = replay(
            CafeCache(128, cost_model=CostModel(2.0)), medium_trace
        ).steady.efficiency
        flashed = replay(
            CafeCache(128, cost_model=CostModel(2.0)), flash_trace
        ).steady.efficiency
        assert flashed > base - 0.12
