"""Tests for the six regional server profiles."""

import pytest

from repro.workload.servers import SERVER_PROFILES, ServerProfile, paper_server_profiles


class TestPaperProfiles:
    def test_six_continents(self):
        expected = {
            "africa",
            "asia",
            "australia",
            "europe",
            "north_america",
            "south_america",
        }
        assert set(SERVER_PROFILES) == expected

    def test_distinct_seeds(self):
        """Per-server popularity must be decorrelated [28]."""
        seeds = [p.seed for p in SERVER_PROFILES.values()]
        assert len(set(seeds)) == len(seeds)

    def test_asia_most_concentrated(self):
        asia = SERVER_PROFILES["asia"]
        others = [p for name, p in SERVER_PROFILES.items() if name != "asia"]
        assert all(asia.num_videos <= p.num_videos for p in others)
        assert all(asia.zipf_s >= p.zipf_s for p in others)

    def test_south_america_busiest_and_most_diverse(self):
        sa = SERVER_PROFILES["south_america"]
        others = [p for name, p in SERVER_PROFILES.items() if name != "south_america"]
        assert all(sa.sessions_per_day >= p.sessions_per_day for p in others)
        assert all(sa.num_videos >= p.num_videos for p in others)

    def test_factory_returns_fresh_dict(self):
        profiles = paper_server_profiles()
        profiles["europe"] = None  # type: ignore[assignment]
        assert SERVER_PROFILES["europe"] is not None


class TestScaling:
    def test_scaled_shrinks_volume_and_diversity(self):
        scaled = SERVER_PROFILES["europe"].scaled(0.1)
        assert scaled.num_videos == SERVER_PROFILES["europe"].num_videos // 10
        assert scaled.sessions_per_day == pytest.approx(
            SERVER_PROFILES["europe"].sessions_per_day * 0.1
        )

    def test_scaled_keeps_identity(self):
        scaled = SERVER_PROFILES["asia"].scaled(0.5)
        assert scaled.name == "asia"
        assert scaled.zipf_s == SERVER_PROFILES["asia"].zipf_s
        assert scaled.seed == SERVER_PROFILES["asia"].seed

    def test_scaled_never_empty(self):
        assert SERVER_PROFILES["asia"].scaled(1e-9).num_videos == 1

    def test_scale_validation(self):
        with pytest.raises(ValueError):
            SERVER_PROFILES["asia"].scaled(0.0)


class TestValidation:
    def test_field_validation(self):
        with pytest.raises(ValueError):
            ServerProfile(
                name="x", region="X", num_videos=0, zipf_s=1.0, sessions_per_day=10
            )
        with pytest.raises(ValueError):
            ServerProfile(
                name="x", region="X", num_videos=10, zipf_s=0.0, sessions_per_day=10
            )
        with pytest.raises(ValueError):
            ServerProfile(
                name="x", region="X", num_videos=10, zipf_s=1.0, sessions_per_day=0
            )
