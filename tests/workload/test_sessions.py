"""Tests for the session/byte-range model."""

import numpy as np
import pytest

from repro.workload.catalog import Video
from repro.workload.sessions import SessionModel

MB = 1 << 20


def video(size=40 * MB):
    return Video(video_id=1, size_bytes=size, rank=0, birth=-1.0)


class TestValidation:
    def test_probability_ranges(self):
        with pytest.raises(ValueError):
            SessionModel(full_watch_prob=1.5)
        with pytest.raises(ValueError):
            SessionModel(seek_prob=-0.1)

    def test_positive_parameters(self):
        with pytest.raises(ValueError):
            SessionModel(abandon_alpha=0.0)
        with pytest.raises(ValueError):
            SessionModel(request_span_bytes=0)
        with pytest.raises(ValueError):
            SessionModel(bitrate=0.0)


class TestRequestShape:
    def test_requests_cover_contiguous_range(self):
        model = SessionModel(seek_prob=0.0)
        rng = np.random.default_rng(0)
        requests = model.generate(video(), 100.0, rng)
        assert requests
        assert requests[0].b0 == 0
        for a, b in zip(requests, requests[1:]):
            assert b.b0 == a.b1 + 1  # contiguous spans

    def test_spans_bounded(self):
        model = SessionModel(request_span_bytes=4 * MB, seek_prob=0.0)
        rng = np.random.default_rng(1)
        for _ in range(50):
            for r in model.generate(video(), 0.0, rng):
                assert r.num_bytes <= 4 * MB

    def test_timestamps_follow_playback(self):
        model = SessionModel(
            request_span_bytes=4 * MB,
            bitrate=1 * MB,
            full_watch_prob=1.0,
            seek_prob=0.0,
        )
        rng = np.random.default_rng(2)
        requests = model.generate(video(12 * MB), 10.0, rng)
        assert [r.t for r in requests] == pytest.approx([10.0, 14.0, 18.0])

    def test_full_watch_covers_file(self):
        model = SessionModel(full_watch_prob=1.0, seek_prob=0.0)
        rng = np.random.default_rng(3)
        requests = model.generate(video(10 * MB), 0.0, rng)
        assert requests[-1].b1 == 10 * MB - 1

    def test_never_beyond_file_end(self):
        model = SessionModel()
        rng = np.random.default_rng(4)
        for _ in range(200):
            for r in model.generate(video(8 * MB), 0.0, rng):
                assert r.b1 < 8 * MB
                assert r.b0 >= 0

    def test_minimum_watch(self):
        model = SessionModel(full_watch_prob=0.0, seek_prob=0.0, min_watch_bytes=MB)
        rng = np.random.default_rng(5)
        for _ in range(100):
            requests = model.generate(video(), 0.0, rng)
            watched = sum(r.num_bytes for r in requests)
            assert watched >= MB


class TestBehaviourDistribution:
    def test_early_abandonment_dominates(self):
        """Most sessions watch well under half the file."""
        model = SessionModel(full_watch_prob=0.2, seek_prob=0.0)
        rng = np.random.default_rng(6)
        fractions = []
        for _ in range(500):
            requests = model.generate(video(), 0.0, rng)
            watched = sum(r.num_bytes for r in requests)
            fractions.append(watched / (40 * MB))
        assert np.median(fractions) < 0.5

    def test_seeks_start_midfile(self):
        model = SessionModel(seek_prob=1.0)
        rng = np.random.default_rng(7)
        starts = [model.generate(video(), 0.0, rng)[0].b0 for _ in range(100)]
        assert sum(1 for s in starts if s > 0) > 80

    def test_no_seeks_start_at_zero(self):
        model = SessionModel(seek_prob=0.0)
        rng = np.random.default_rng(8)
        starts = [model.generate(video(), 0.0, rng)[0].b0 for _ in range(50)]
        assert all(s == 0 for s in starts)

    def test_expected_requests_estimate_positive(self):
        model = SessionModel()
        assert model.expected_requests_per_session(40 * MB) >= 1.0
