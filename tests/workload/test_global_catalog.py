"""Tests for the global catalog with per-server views."""

import pytest

from repro.workload.generator import TraceGenerator
from repro.workload.global_catalog import GlobalCatalog
from repro.workload.servers import SERVER_PROFILES, ServerProfile

DURATION = 10 * 86400.0


def profile(name="a", num_videos=200, seed=1, **kwargs):
    defaults = dict(
        name=name,
        region="X",
        num_videos=num_videos,
        zipf_s=0.9,
        sessions_per_day=100,
        seed=seed,
    )
    defaults.update(kwargs)
    return ServerProfile(**defaults)


class TestGeneration:
    def test_master_has_no_churn(self):
        corpus = GlobalCatalog.generate(300, seed=0)
        assert all(v.birth < 0 for v in corpus.master.videos)
        assert len(corpus) == 300

    def test_deterministic(self):
        a = GlobalCatalog.generate(100, seed=5)
        b = GlobalCatalog.generate(100, seed=5)
        assert [v.size_bytes for v in a.master.videos] == [
            v.size_bytes for v in b.master.videos
        ]


class TestServerView:
    @pytest.fixture(scope="class")
    def corpus(self):
        return GlobalCatalog.generate(400, seed=0)

    def test_view_size(self, corpus):
        view = corpus.server_view(profile(num_videos=150), DURATION)
        assert len(view) == 150

    def test_oversized_view_rejected(self, corpus):
        with pytest.raises(ValueError, match="corpus"):
            corpus.server_view(profile(num_videos=9999), DURATION)

    def test_sizes_globally_consistent(self, corpus):
        """The invariant hierarchies need: same ID -> same size."""
        view_a = corpus.server_view(profile(seed=1), DURATION)
        view_b = corpus.server_view(profile(name="b", seed=2), DURATION)
        for video in view_a.videos:
            if video.video_id in view_b:
                assert (
                    view_b[video.video_id].size_bytes == video.size_bytes
                )

    def test_local_ranks_decorrelated(self, corpus):
        """[28]: per-location popularity != global popularity."""
        view_a = corpus.server_view(profile(seed=1), DURATION)
        view_b = corpus.server_view(profile(name="b", seed=2), DURATION)
        shared = [v.video_id for v in view_a.videos if v.video_id in view_b]
        assert len(shared) > 20
        disagreements = sum(
            1
            for vid in shared
            if view_a[vid].rank != view_b[vid].rank
        )
        assert disagreements > len(shared) // 2

    def test_views_overlap(self, corpus):
        view_a = corpus.server_view(profile(num_videos=300, seed=1), DURATION)
        view_b = corpus.server_view(
            profile(name="b", num_videos=300, seed=2), DURATION
        )
        assert corpus.overlap(view_a, view_b) > 0.3

    def test_churn_drawn_per_view(self, corpus):
        view = corpus.server_view(
            profile(churn_fraction=0.3, num_videos=200), DURATION
        )
        churned = [v for v in view.videos if v.birth >= 0]
        assert len(churned) == 60
        assert all(0 <= v.birth < DURATION for v in churned)

    def test_deterministic_per_profile_seed(self, corpus):
        a = corpus.server_view(profile(seed=9), DURATION)
        b = corpus.server_view(profile(seed=9), DURATION)
        assert [v.video_id for v in a.videos] == [v.video_id for v in b.videos]


class TestGeneratorIntegration:
    def test_generator_uses_injected_view(self):
        corpus = GlobalCatalog.generate(500, seed=3)
        p = SERVER_PROFILES["asia"].scaled(0.03)
        view = corpus.server_view(p, 3 * 86400.0)
        generator = TraceGenerator(p, catalog=view)
        trace = generator.generate(days=3.0)
        assert trace
        corpus_ids = {v.video_id for v in corpus.master.videos}
        assert all(r.video in corpus_ids for r in trace)

    def test_two_servers_share_corpus_content(self):
        corpus = GlobalCatalog.generate(300, seed=4)
        duration = 3 * 86400.0
        traces = {}
        for name in ("europe", "africa"):
            p = SERVER_PROFILES[name].scaled(0.02)
            view = corpus.server_view(p, duration)
            traces[name] = TraceGenerator(p, catalog=view).generate(days=3.0)
        videos_a = {r.video for r in traces["europe"]}
        videos_b = {r.video for r in traces["africa"]}
        assert videos_a & videos_b  # real shared demand across edges
