"""Unit and property tests for TreapMap (Cafe Cache's ordered set)."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.structures.treap import TreapMap


class TestBasics:
    def test_empty(self):
        t = TreapMap()
        assert len(t) == 0
        assert "x" not in t
        assert t.score("x") is None
        with pytest.raises(KeyError):
            t.min_item()

    def test_insert_and_score(self):
        t = TreapMap()
        t.insert("a", 3.0)
        t.insert("b", 1.0)
        assert t.score("a") == 3.0
        assert t.score("b") == 1.0
        assert len(t) == 2

    def test_min_item(self):
        t = TreapMap()
        t.insert("a", 3.0)
        t.insert("b", 1.0)
        t.insert("c", 2.0)
        assert t.min_item() == ("b", 1.0)

    def test_pop_min_order(self):
        t = TreapMap()
        for item, score in [("a", 3.0), ("b", 1.0), ("c", 2.0)]:
            t.insert(item, score)
        assert [t.pop_min()[0] for _ in range(3)] == ["b", "c", "a"]
        assert len(t) == 0

    def test_reinsert_replaces_score(self):
        t = TreapMap()
        t.insert("a", 1.0)
        t.insert("b", 2.0)
        t.insert("a", 5.0)  # a moves from least to most popular
        assert len(t) == 2
        assert t.min_item() == ("b", 2.0)
        assert t.score("a") == 5.0

    def test_remove(self):
        t = TreapMap()
        t.insert("a", 1.0)
        assert t.remove("a") == 1.0
        assert "a" not in t
        with pytest.raises(KeyError):
            t.remove("a")

    def test_discard(self):
        t = TreapMap()
        t.insert("a", 1.0)
        assert t.discard("a") is True
        assert t.discard("a") is False

    def test_duplicate_scores_fifo(self):
        t = TreapMap()
        t.insert("a", 1.0)
        t.insert("b", 1.0)
        # equal scores: earlier insertion pops first (sequence tiebreak)
        assert t.pop_min()[0] == "a"
        assert t.pop_min()[0] == "b"

    def test_negative_and_inf_scores(self):
        t = TreapMap()
        t.insert("low", float("-inf"))
        t.insert("mid", 0.0)
        t.insert("hi", float("inf"))
        assert t.min_item()[0] == "low"


class TestNSmallest:
    def setup_method(self):
        self.t = TreapMap()
        for i in range(10):
            self.t.insert(f"item{i}", float(i))

    def test_returns_n_smallest_in_order(self):
        got = self.t.n_smallest(3)
        assert got == [("item0", 0.0), ("item1", 1.0), ("item2", 2.0)]

    def test_does_not_remove(self):
        self.t.n_smallest(5)
        assert len(self.t) == 10

    def test_exclude_skips(self):
        got = self.t.n_smallest(3, exclude={"item0", "item2"})
        assert [item for item, _ in got] == ["item1", "item3", "item4"]

    def test_n_larger_than_size(self):
        assert len(self.t.n_smallest(99)) == 10

    def test_n_zero_or_negative(self):
        assert self.t.n_smallest(0) == []
        assert self.t.n_smallest(-1) == []

    def test_exclude_everything(self):
        assert self.t.n_smallest(3, exclude={f"item{i}" for i in range(10)}) == []


class TestIteration:
    def test_items_ascending(self):
        t = TreapMap()
        import random

        r = random.Random(7)
        scores = {i: r.uniform(-100, 100) for i in range(100)}
        for item, score in scores.items():
            t.insert(item, score)
        got = list(t.items_ascending())
        assert [s for _, s in got] == sorted(scores.values())
        assert len(got) == 100
        t.check_invariants()


@settings(max_examples=60)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(["insert", "remove", "pop_min"]),
            st.integers(0, 15),
            st.floats(-100, 100, allow_nan=False),
        ),
        max_size=150,
    )
)
def test_property_matches_sorted_reference(ops):
    """TreapMap behaves like a dict + sorted-by-(score, seq) reference."""
    t = TreapMap(seed=42)
    model: dict[int, tuple[float, int]] = {}
    seq = 0
    for op, item, score in ops:
        if op == "insert":
            t.insert(item, score)
            model[item] = (score, seq)
            seq += 1
        elif op == "remove":
            if item in model:
                assert t.remove(item) == model.pop(item)[0]
            else:
                assert t.discard(item) is False
        else:  # pop_min
            if model:
                expected = min(model, key=lambda k: model[k])
                got_item, got_score = t.pop_min()
                assert got_item == expected
                assert got_score == model.pop(expected)[0]
            else:
                with pytest.raises(KeyError):
                    t.pop_min()
        assert len(t) == len(model)
    t.check_invariants()
    expected_order = sorted(model, key=lambda k: model[k])
    assert [item for item, _ in t.items_ascending()] == expected_order


@given(st.lists(st.floats(-1e9, 1e9, allow_nan=False), min_size=1, max_size=100))
def test_property_pop_min_drains_sorted(scores):
    t = TreapMap()
    for i, s in enumerate(scores):
        t.insert(i, s)
    drained = [t.pop_min()[1] for _ in range(len(scores))]
    assert drained == sorted(scores)
