"""Tests for EWMA IAT tracking (Eqs. 8-9) including Theorem 1."""

import math

import pytest
from hypothesis import given, strategies as st

from repro.structures.ewma import EwmaIat, IatEstimator, iat_at, virtual_key

GAMMA = 0.25


class TestIatAt:
    def test_eq8_formula(self):
        # IAT(t') = gamma*(t' - t_last) + (1-gamma)*dt
        assert iat_at(dt=100.0, t_last=50.0, now=90.0, gamma=0.25) == pytest.approx(
            0.25 * 40.0 + 0.75 * 100.0
        )

    def test_infinite_dt_gives_infinite_iat(self):
        assert math.isinf(iat_at(float("inf"), 0.0, 100.0, GAMMA))

    def test_iat_grows_with_silence(self):
        # a chunk not requested for longer looks less popular
        early = iat_at(10.0, 0.0, 5.0, GAMMA)
        late = iat_at(10.0, 0.0, 50.0, GAMMA)
        assert late > early


class TestVirtualKey:
    def test_t0_zero_form(self):
        # key = gamma * t_last - (1 - gamma) * dt   (Eq. 9 at T0 = 0)
        assert virtual_key(100.0, 50.0, GAMMA) == pytest.approx(
            0.25 * 50.0 - 0.75 * 100.0
        )

    def test_matches_eq9_at_any_common_reference(self):
        # key(T0) = T0 - IAT(T0) differs from the T0=0 form only by the
        # shared constant (1 - gamma) * T0
        for t0 in (0.0, 123.0, 9999.5):
            eq9 = t0 - iat_at(100.0, 50.0, t0, GAMMA)
            assert eq9 - (1 - GAMMA) * t0 == pytest.approx(
                virtual_key(100.0, 50.0, GAMMA)
            )

    def test_unseen_is_minus_inf(self):
        assert virtual_key(float("inf"), 0.0, GAMMA) == float("-inf")

    def test_more_popular_has_larger_key(self):
        # smaller IAT (more popular) -> larger key -> farther from eviction
        popular = virtual_key(dt=5.0, t_last=99.0, gamma=GAMMA)
        unpopular = virtual_key(dt=500.0, t_last=99.0, gamma=GAMMA)
        assert popular > unpopular


class TestTheorem1:
    """Key order mirrors IAT order at every common timestamp."""

    @given(
        dt_x=st.floats(0.1, 1e5),
        dt_y=st.floats(0.1, 1e5),
        t_x=st.floats(0, 1e5),
        t_y=st.floats(0, 1e5),
        t=st.floats(0, 1e6),
        gamma=st.floats(0.05, 1.0),
    )
    def test_key_order_is_iat_order(self, dt_x, dt_y, t_x, t_y, t, gamma):
        key_x = virtual_key(dt_x, t_x, gamma)
        key_y = virtual_key(dt_y, t_y, gamma)
        iat_x = iat_at(dt_x, t_x, t, gamma)
        iat_y = iat_at(dt_y, t_y, gamma=gamma, now=t)
        # smaller key  <=>  larger IAT (less popular), at ANY time t
        if key_x < key_y:
            assert iat_x >= iat_y or math.isclose(iat_x, iat_y, rel_tol=1e-9)
        if iat_x < iat_y:
            assert key_x >= key_y or math.isclose(
                key_x, key_y, rel_tol=1e-9, abs_tol=1e-9
            )


class TestEwmaIatUpdate:
    def test_first_sample_replaces_inf(self):
        state = EwmaIat(dt=float("inf"), t_last=10.0)
        state.update(30.0, GAMMA)
        assert state.dt == 20.0
        assert state.t_last == 30.0

    def test_ewma_blend(self):
        state = EwmaIat(dt=100.0, t_last=0.0)
        state.update(40.0, GAMMA)
        assert state.dt == pytest.approx(0.25 * 40.0 + 0.75 * 100.0)
        assert state.t_last == 40.0

    def test_convergence_to_periodic_rate(self):
        """Regular arrivals every P seconds drive dt toward P."""
        state = EwmaIat(dt=1000.0, t_last=0.0)
        t = 0.0
        for _ in range(100):
            t += 7.0
            state.update(t, GAMMA)
        assert state.dt == pytest.approx(7.0, rel=1e-3)

    def test_resists_single_burst(self):
        """One rapid re-request only partially drops the IAT (gamma blend)."""
        state = EwmaIat(dt=100.0, t_last=1000.0)
        state.update(1000.5, GAMMA)
        assert state.dt > 70.0  # 0.75 * 100 + small


class TestIatEstimator:
    def test_gamma_validation(self):
        with pytest.raises(ValueError):
            IatEstimator(0.0)
        with pytest.raises(ValueError):
            IatEstimator(1.5)

    def test_unseen_item(self):
        est = IatEstimator(GAMMA)
        assert math.isinf(est.iat("x", 10.0))
        assert est.key("x") == float("-inf")

    def test_record_first_then_second(self):
        est = IatEstimator(GAMMA)
        est.record("x", 10.0)
        assert math.isinf(est.iat("x", 20.0))  # one sighting: no IAT yet
        est.record("x", 25.0)
        assert est.iat("x", 25.0) == pytest.approx(0.75 * 15.0)

    def test_estimator_is_a_dict(self):
        est = IatEstimator(GAMMA)
        est.record("x", 1.0)
        assert "x" in est
        del est["x"]
        assert math.isinf(est.iat("x", 2.0))

    def test_keys_order_popularity(self):
        est = IatEstimator(GAMMA)
        for t in (0.0, 10.0, 20.0, 30.0):
            est.record("frequent", t)
        est.record("rare", 0.0)
        est.record("rare", 30.0)
        assert est.key("frequent") > est.key("rare")
