"""Stateful (model-based) hypothesis tests for the core structures.

Hypothesis drives long interleaved operation sequences against a plain
reference model; every intermediate state must agree.  These catch the
ordering bugs unit tests miss — e.g. keys computed at different times
disagreeing about eviction order (the Theorem 1 pitfall).
"""

from hypothesis import settings
from hypothesis.stateful import (
    RuleBasedStateMachine,
    invariant,
    precondition,
    rule,
)
from hypothesis import strategies as st

from repro.structures.lru import AccessRecencyList
from repro.structures.treap import TreapMap

ITEMS = st.integers(0, 25)
SCORES = st.floats(-1e6, 1e6, allow_nan=False)


class TreapMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.treap = TreapMap(seed=123)
        self.model: dict[int, tuple[float, int]] = {}
        self.seq = 0

    @rule(item=ITEMS, score=SCORES)
    def insert(self, item, score):
        self.treap.insert(item, score)
        self.model[item] = (score, self.seq)
        self.seq += 1

    @rule(item=ITEMS)
    def discard(self, item):
        expected = item in self.model
        assert self.treap.discard(item) is expected
        self.model.pop(item, None)

    @precondition(lambda self: self.model)
    @rule()
    def pop_min(self):
        expected = min(self.model, key=lambda k: self.model[k])
        item, score = self.treap.pop_min()
        assert item == expected
        assert score == self.model.pop(expected)[0]

    @rule(n=st.integers(0, 8))
    def peek_n_smallest(self, n):
        got = self.treap.n_smallest(n)
        expected = sorted(self.model, key=lambda k: self.model[k])[:n]
        assert [item for item, _ in got] == expected

    @invariant()
    def sizes_agree(self):
        assert len(self.treap) == len(self.model)

    @invariant()
    def scores_agree(self):
        for item, (score, _seq) in self.model.items():
            assert self.treap.score(item) == score

    @invariant()
    def tree_is_valid(self):
        self.treap.check_invariants()


class RecencyMachine(RuleBasedStateMachine):
    def __init__(self):
        super().__init__()
        self.lru = AccessRecencyList()
        self.model: dict[int, float] = {}
        self.clock = 0.0

    @rule(item=ITEMS, advance=st.floats(0.0, 100.0, allow_nan=False))
    def touch(self, item, advance):
        self.clock += advance
        self.lru.touch(item, self.clock)
        self.model.pop(item, None)
        self.model[item] = self.clock

    @precondition(lambda self: self.model)
    @rule()
    def pop_oldest(self):
        expected_key = next(iter(self.model))
        key, t = self.lru.pop_oldest()
        assert key == expected_key
        assert t == self.model.pop(expected_key)

    @rule(item=ITEMS)
    def discard(self, item):
        expected = item in self.model
        assert self.lru.discard(item) is expected
        self.model.pop(item, None)

    @precondition(lambda self: self.model)
    @rule(back=st.floats(0.0, 200.0, allow_nan=False))
    def evict_older_than(self, back):
        cutoff = self.clock - back
        evicted = self.lru.evict_older_than(cutoff)
        expected = [(k, t) for k, t in self.model.items() if t < cutoff]
        assert evicted == expected
        for key, _t in evicted:
            del self.model[key]

    @invariant()
    def order_and_lookups_agree(self):
        assert list(self.lru) == list(self.model)
        for key, t in self.model.items():
            assert self.lru.last_access(key) == t


TestTreapStateful = TreapMachine.TestCase
TestTreapStateful.settings = settings(max_examples=40, stateful_step_count=60)

TestRecencyStateful = RecencyMachine.TestCase
TestRecencyStateful.settings = settings(max_examples=40, stateful_step_count=60)
