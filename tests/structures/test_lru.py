"""Unit and property tests for AccessRecencyList (Section 5's structure)."""

import pytest
from hypothesis import given, strategies as st

from repro.structures.lru import AccessRecencyList


class TestBasics:
    def test_empty(self):
        lru = AccessRecencyList()
        assert len(lru) == 0
        assert "x" not in lru
        assert lru.last_access("x") is None
        assert lru.cache_age(100.0) == float("inf")

    def test_oldest_on_empty_raises(self):
        with pytest.raises(KeyError):
            AccessRecencyList().oldest()

    def test_touch_and_lookup(self):
        lru = AccessRecencyList()
        lru.touch("a", 1.0)
        lru.touch("b", 2.0)
        assert lru.last_access("a") == 1.0
        assert lru.last_access("b") == 2.0
        assert "a" in lru and "b" in lru
        assert len(lru) == 2

    def test_oldest_is_least_recent(self):
        lru = AccessRecencyList()
        lru.touch("a", 1.0)
        lru.touch("b", 2.0)
        lru.touch("c", 3.0)
        assert lru.oldest() == ("a", 1.0)

    def test_retouch_moves_to_head(self):
        lru = AccessRecencyList()
        lru.touch("a", 1.0)
        lru.touch("b", 2.0)
        lru.touch("a", 3.0)
        assert lru.oldest() == ("b", 2.0)
        assert lru.last_access("a") == 3.0
        assert len(lru) == 2

    def test_pop_oldest_removes(self):
        lru = AccessRecencyList()
        lru.touch("a", 1.0)
        lru.touch("b", 2.0)
        assert lru.pop_oldest() == ("a", 1.0)
        assert "a" not in lru
        assert lru.oldest() == ("b", 2.0)

    def test_equal_timestamps_allowed(self):
        lru = AccessRecencyList()
        lru.touch("a", 5.0)
        lru.touch("b", 5.0)
        # insertion order breaks the tie: a is older
        assert lru.pop_oldest()[0] == "a"

    def test_non_monotonic_touch_rejected(self):
        lru = AccessRecencyList()
        lru.touch("a", 10.0)
        with pytest.raises(ValueError, match="non-decreasing"):
            lru.touch("b", 9.0)

    def test_remove(self):
        lru = AccessRecencyList()
        lru.touch("a", 1.0)
        assert lru.remove("a") == 1.0
        assert "a" not in lru
        with pytest.raises(KeyError):
            lru.remove("a")

    def test_discard(self):
        lru = AccessRecencyList()
        lru.touch("a", 1.0)
        assert lru.discard("a") is True
        assert lru.discard("a") is False

    def test_cache_age(self):
        lru = AccessRecencyList()
        lru.touch("a", 10.0)
        lru.touch("b", 30.0)
        assert lru.cache_age(40.0) == 30.0

    def test_iteration_order(self):
        lru = AccessRecencyList()
        for i, key in enumerate("dcba"):
            lru.touch(key, float(i))
        assert list(lru) == ["d", "c", "b", "a"]
        assert [k for k, _ in lru.items()] == ["d", "c", "b", "a"]


class TestEvictOlderThan:
    def test_evicts_strictly_older(self):
        lru = AccessRecencyList()
        lru.touch("a", 1.0)
        lru.touch("b", 2.0)
        lru.touch("c", 3.0)
        evicted = lru.evict_older_than(2.0)
        assert evicted == [("a", 1.0)]
        assert "b" in lru and "c" in lru

    def test_evict_everything(self):
        lru = AccessRecencyList()
        lru.touch("a", 1.0)
        lru.touch("b", 2.0)
        assert len(lru.evict_older_than(100.0)) == 2
        assert len(lru) == 0

    def test_evict_nothing(self):
        lru = AccessRecencyList()
        lru.touch("a", 5.0)
        assert lru.evict_older_than(1.0) == []
        assert len(lru) == 1


@given(
    ops=st.lists(
        st.tuples(st.integers(0, 20), st.floats(0, 1000, allow_nan=False)),
        min_size=1,
        max_size=200,
    )
)
def test_property_matches_reference_model(ops):
    """Recency order and lookups always match a brute-force model."""
    lru = AccessRecencyList()
    model: dict[int, float] = {}
    last_t = float("-inf")
    for key, t in ops:
        t = max(t, last_t)  # keep timestamps monotone
        last_t = t
        lru.touch(key, t)
        model.pop(key, None)
        model[key] = t
    assert len(lru) == len(model)
    for key, t in model.items():
        assert lru.last_access(key) == t
    # oldest == first inserted/retouched in the model's insertion order
    expected_order = list(model.keys())
    assert list(lru) == expected_order
    if model:
        assert lru.oldest() == (expected_order[0], model[expected_order[0]])


@given(
    times=st.lists(st.floats(0, 1e6, allow_nan=False), min_size=2, max_size=50),
    cutoff=st.floats(0, 1e6, allow_nan=False),
)
def test_property_evict_older_than_partition(times, cutoff):
    """evict_older_than splits entries exactly at the cutoff."""
    times = sorted(times)
    lru = AccessRecencyList()
    for i, t in enumerate(times):
        lru.touch(i, t)
    evicted = lru.evict_older_than(cutoff)
    assert all(t < cutoff for _, t in evicted)
    for key, t in lru.items():
        assert t >= cutoff
    assert len(evicted) + len(lru) == len(times)
