"""Unit, property and differential tests for ScoreHeap.

ScoreHeap is the lazy-deletion heap that replaced TreapMap under the
decision kernels; its observable contract is *exact* ``(score, seq)``
order parity with the treap, plus two kernel-facing extensions:
``raw_index`` (stable read-only key dict) and ``pop_n_smallest`` (fused
eviction run).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.structures.scoreheap import ScoreHeap
from repro.structures.treap import TreapMap


class TestBasics:
    def test_empty(self):
        h = ScoreHeap()
        assert len(h) == 0
        assert "x" not in h
        assert h.score("x") is None
        with pytest.raises(KeyError):
            h.min_item()

    def test_insert_and_score(self):
        h = ScoreHeap()
        h.insert("a", 3.0)
        h.insert("b", 1.0)
        assert h.score("a") == 3.0
        assert h.score("b") == 1.0
        assert len(h) == 2

    def test_pop_min_order(self):
        h = ScoreHeap()
        for item, score in [("a", 3.0), ("b", 1.0), ("c", 2.0)]:
            h.insert(item, score)
        assert [h.pop_min()[0] for _ in range(3)] == ["b", "c", "a"]
        assert len(h) == 0

    def test_reinsert_replaces_score(self):
        h = ScoreHeap()
        h.insert("a", 1.0)
        h.insert("b", 2.0)
        h.insert("a", 5.0)
        assert len(h) == 2
        assert h.min_item() == ("b", 2.0)
        assert h.score("a") == 5.0

    def test_remove_and_discard(self):
        h = ScoreHeap()
        h.insert("a", 1.0)
        assert h.remove("a") == 1.0
        assert "a" not in h
        with pytest.raises(KeyError):
            h.remove("a")
        h.insert("a", 2.0)
        assert h.discard("a") is True
        assert h.discard("a") is False

    def test_duplicate_scores_fifo(self):
        h = ScoreHeap()
        h.insert("a", 1.0)
        h.insert("b", 1.0)
        assert h.pop_min()[0] == "a"
        assert h.pop_min()[0] == "b"

    def test_compaction_keeps_order(self):
        h = ScoreHeap()
        # churn one item enough to trip repeated compactions
        for i in range(200):
            h.insert("hot", float(i))
            h.insert(i, float(-i))
        h.check_invariants()
        drained = [h.pop_min() for _ in range(len(h))]
        assert drained[0] == (199, -199.0)
        assert drained[-1] == ("hot", 199.0)


class TestRawIndex:
    def test_maps_items_to_score_seq(self):
        h = ScoreHeap()
        h.insert("a", 3.0)
        h.insert("b", 1.0)
        h.insert("a", 5.0)
        assert h.raw_index() == {"a": (5.0, 2), "b": (1.0, 1)}

    def test_reference_is_stable_across_all_mutations(self):
        """A hoisted reference must survive churn and compaction —
        the kernels hoist it once per block."""
        h = ScoreHeap()
        index = h.raw_index()
        for i in range(300):
            h.insert(i % 9, float(i))
            if i % 4 == 3:
                h.pop_min()
            if i % 11 == 10:
                h.pop_n_smallest(2)
        assert h.raw_index() is index
        assert set(index) == {item for item, _ in h.items_ascending()}


class TestPopNSmallest:
    def fresh(self):
        h = ScoreHeap()
        for i in range(10):
            h.insert(f"item{i}", float(i))
        return h

    def test_removes_and_returns_in_order(self):
        h = self.fresh()
        got = h.pop_n_smallest(3)
        assert got == [("item0", 0.0), ("item1", 1.0), ("item2", 2.0)]
        assert len(h) == 7
        assert "item0" not in h
        h.check_invariants()

    def test_exclude_is_kept(self):
        h = self.fresh()
        got = h.pop_n_smallest(3, exclude={"item0", "item2"})
        assert [item for item, _ in got] == ["item1", "item3", "item4"]
        assert "item0" in h and "item2" in h
        assert len(h) == 7
        h.check_invariants()

    def test_n_larger_than_size_drains(self):
        h = self.fresh()
        assert len(h.pop_n_smallest(99)) == 10
        assert len(h) == 0

    def test_n_zero_or_negative(self):
        h = self.fresh()
        assert h.pop_n_smallest(0) == []
        assert h.pop_n_smallest(-1) == []
        assert len(h) == 10

    @settings(max_examples=60)
    @given(
        scores=st.lists(st.floats(-100, 100, allow_nan=False), max_size=40),
        n=st.integers(0, 12),
        exclude=st.sets(st.integers(0, 39), max_size=8),
    )
    def test_equals_n_smallest_then_remove(self, scores, n, exclude):
        """The fused eviction run picks exactly the victims that
        n_smallest + remove would, in the same order."""
        fused, split = ScoreHeap(), ScoreHeap()
        for i, s in enumerate(scores):
            fused.insert(i, s)
            split.insert(i, s)
        want = split.n_smallest(n, exclude=exclude)
        for item, _score in want:
            split.remove(item)
        got = fused.pop_n_smallest(n, exclude=exclude)
        assert got == want
        assert fused.raw_index() == split.raw_index()
        fused.check_invariants()
        split.check_invariants()


@settings(max_examples=60)
@given(
    ops=st.lists(
        st.tuples(
            st.sampled_from(
                ["insert", "remove", "pop_min", "n_smallest", "pop_n"]
            ),
            st.integers(0, 15),
            st.floats(-100, 100, allow_nan=False),
        ),
        max_size=150,
    )
)
def test_property_matches_treap(ops):
    """ScoreHeap is observably TreapMap under interleaved operations —
    same results, same (score, seq) eviction order, drop-in."""
    heap = ScoreHeap(seed=42)
    treap = TreapMap(seed=42)
    for op, item, score in ops:
        if op == "insert":
            heap.insert(item, score)
            treap.insert(item, score)
        elif op == "remove":
            assert heap.discard(item) == treap.discard(item)
        elif op == "pop_min":
            if len(treap):
                assert heap.pop_min() == treap.pop_min()
            else:
                with pytest.raises(KeyError):
                    heap.pop_min()
        elif op == "n_smallest":
            assert heap.n_smallest(item) == treap.n_smallest(item)
        else:  # pop_n: fused on the heap, n_smallest+remove on the treap
            want = treap.n_smallest(item % 4)
            for victim, _score in want:
                treap.remove(victim)
            assert heap.pop_n_smallest(item % 4) == want
        assert len(heap) == len(treap)
    heap.check_invariants()
    assert list(heap.items_ascending()) == list(treap.items_ascending())
