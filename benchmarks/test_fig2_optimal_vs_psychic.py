"""Figure 2 bench: Psychic vs LP-relaxed Optimal (Section 9.1).

Regenerates both panels — per-alpha efficiencies averaged over the six
servers (2a) and the avg/min/max delta between the LP bound and Psychic
(2b) — on down-sampled two-day traces built exactly per the paper (100
representative files, 20 MB size cap, disk = 5% of requested chunks).

Reproduction criteria asserted:
* the LP bound dominates Psychic on every server (it must);
* Psychic lands within ~10% of the bound on average (the paper
  measures 5-6%).
"""

from repro.analysis.tables import format_table
from repro.experiments import fig2

#: The two most load-bearing configurations (the paper's default
#: constrained setting and the common case).  Add 0.5/4.0 for the full
#: sweep at ~2 min extra per alpha.
ALPHAS = (1.0, 2.0)


def test_fig2_psychic_vs_optimal(benchmark, scale, report, strict):
    result = benchmark.pedantic(
        lambda: fig2.run(scale, alphas=ALPHAS),
        rounds=1,
        iterations=1,
    )
    report(
        result.to_text().split("\nper_server:")[0],
        format_table(
            result.extras["per_server"],
            title="Figure 2 per-server detail",
        ),
    )

    if not strict:
        return  # QUICK scale: smoke-run only, shapes asserted at FULL

    for row in result.extras["per_server"]:
        assert row["optimal_eff"] >= row["psychic_eff"] - 1e-9, (
            f"LP bound violated on {row['server']} (alpha={row['alpha']})"
        )
    for row in result.rows:
        assert row["delta_avg"] < 0.10, (
            f"Psychic unexpectedly far from the LP bound at alpha="
            f"{row['alpha']}: delta {row['delta_avg']:.3f}"
        )
        benchmark.extra_info[f"delta_avg_alpha{row['alpha']}"] = row["delta_avg"]
