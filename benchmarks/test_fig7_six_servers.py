"""Figure 7 bench: all six worldwide servers, common disk, alpha = 2.

Regenerates the per-server bar groups.  "The same trend between the
algorithms is observed across all servers"; the efficiency *level*
varies with each server's request volume and diversity against the
shared disk size.

Reproduction criteria asserted:
* Psychic >= Cafe > xLRU on every server;
* the concentrated Asian server tops the busy South American one;
* the xLRU gap is wider on the busiest server than on the lightest
  (the paper: "a wider gap ... for busier servers").
"""

from repro.experiments import fig7


def test_fig7_six_servers(benchmark, scale, report, strict):
    result = benchmark.pedantic(lambda: fig7.run(scale), rounds=1, iterations=1)
    report(result.to_text())

    if not strict:
        return  # QUICK scale: smoke-run only, shapes asserted at FULL

    by_server = {r["server"]: r for r in result.rows}
    for server, row in by_server.items():
        assert row["Psychic"] >= row["Cafe"] - 0.03, server
        assert row["Cafe"] > row["xLRU"], server

    assert by_server["asia"]["Cafe"] > by_server["south_america"]["Cafe"]
    assert by_server["asia"]["xLRU"] > by_server["south_america"]["xLRU"]

    gap = lambda s: by_server[s]["Cafe"] - by_server[s]["xLRU"]  # noqa: E731
    assert gap("south_america") > gap("asia") - 0.05

    for server, row in by_server.items():
        benchmark.extra_info[server] = {
            a: round(row[a], 3) for a in ("xLRU", "Cafe", "Psychic")
        }
