"""Serve SLO bench: decision latency quantiles + sustained QPS + scaling.

Two sections, both writing ``BENCH_serve.json``:

* **direct** — the PR 8 bench: one ``repro-serve`` daemon on a unix
  socket, one pipelined sequenced client, SLOs read from the daemon's
  own ``repro.obs`` sketches;
* **workersN** — the sharded fleet: N workers behind the video-hash
  router, several concurrent client connections, SLOs read from the
  router's ``stats`` fold (sketches merged exactly, QPS summed).

Every section records the host's ``cpu_count`` *honestly*: scaling rows
are only produced on hosts with enough cores (a 1-CPU host skips them
— skipped, never faked), and the ``REPRO_BENCH_REGRESSION=1`` gate only
compares a measured row against a committed row with the **same scale,
same workers and same cpu_count** (latency on a different core count is
a different experiment, not a regression).
"""

import json
import os
import random
import threading
from pathlib import Path

import pytest

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
REGRESSION_ENV = "REPRO_BENCH_REGRESSION"

K = 1024
WINDOW = 512
#: concurrent client connections driving every fleet row (constant
#: across worker counts so the load generator isn't the variable)
FLEET_CLIENTS = 4
#: worker counts the scaling section attempts (capped by cpu_count)
FLEET_WORKERS = (1, 2, 4)


def _trace(n, seed=29, videos=200):
    rng = random.Random(seed)
    t = 0.0
    out = []
    for _ in range(n):
        t += rng.uniform(0.001, 0.2)
        c0 = rng.randrange(0, 16)
        span = rng.randrange(1, 4)
        out.append((t, rng.randrange(0, videos), c0 * K, (c0 + span) * K - 1))
    return out


def _load_payload():
    if BENCH_PATH.exists():
        baseline = json.loads(BENCH_PATH.read_text())
        if "scales" in baseline:
            return baseline, baseline
        return baseline, {"bench": "serve_latency", "scales": {}}
    return None, {"bench": "serve_latency", "scales": {}}


def _write_row(scale_name, row_key, row):
    baseline, payload = _load_payload()
    scales = payload.setdefault("scales", {})
    section = scales.setdefault(scale_name, {})
    if not all(isinstance(v, dict) for v in section.values()):
        # pre-sharding flat layout: rebuild the section from scratch
        section = {}
        scales[scale_name] = section
    section[row_key] = row
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")
    return baseline


def _committed_row(baseline, scale_name, row_key):
    section = (baseline or {}).get("scales", {}).get(scale_name) or {}
    row = section.get(row_key)
    return row if isinstance(row, dict) else None


def _gate(report, committed, latency, qps, label):
    """Same-scale, same-workers, same-cpu_count regression comparison."""
    if not os.environ.get(REGRESSION_ENV, "").strip() or not committed:
        return
    cpus = os.cpu_count() or 1
    committed_cpus = committed.get("cpu_count")
    if committed_cpus != cpus:
        report(
            f"  regression gate skipped for {label}: committed row ran on "
            f"{committed_cpus} CPU(s), this host has {cpus}"
        )
        return
    committed_p99 = committed["latency_ms"]["p99"]
    committed_qps = committed["sustained_qps"]
    assert latency["p99"] <= committed_p99 * 3.0 + 1.0, (
        f"{label} p99 regressed: {latency['p99']:.2f}ms vs committed "
        f"{committed_p99:.2f}ms (>3x)"
    )
    assert qps >= committed_qps / 3.0, (
        f"{label} sustained QPS regressed: {qps:.0f} vs committed "
        f"{committed_qps:.0f} (<1/3)"
    )


def test_serve_decision_latency(report, strict, scale, tmp_path):
    from repro.serve.daemon import ServeConfig
    from repro.serve.soak import DaemonProcess

    n = 20_000 if strict else 2_000
    requests = _trace(n)
    config = ServeConfig(
        algorithm="xLRU",
        disk_chunks=2048,
        chunk_bytes=K,
        publish_interval=0.0,
    )
    daemon = DaemonProcess(str(tmp_path / "bench.sock"), config)
    daemon.start()
    try:
        client = daemon.connect()
        assert client.hello()["watermark"] == 0
        seq = 1
        while seq <= n:
            count = min(WINDOW, n - seq + 1)
            for offset in range(count):
                t, video, b0, b1 = requests[seq - 1 + offset]
                client.send(
                    {"seq": seq + offset, "t": t, "video": video,
                     "b0": b0, "b1": b1}
                )
            client.flush()
            for _ in range(count):
                response = client.read_response()
                assert response.get("ok"), response
            seq += count
        stats = client.stats()
        client.shutdown()
        client.close()
        daemon.wait()
    finally:
        daemon.kill()

    assert stats["watermark"] == n
    slo = stats["slo"]
    latency = slo["latency_ms"]
    qps = slo["sustained_qps"]
    assert slo["decisions"] == n
    assert latency["p50"] is not None and latency["p99"] is not None

    baseline = _write_row(
        scale.name,
        "direct",
        {
            "requests": n,
            "window": WINDOW,
            "workers": 1,
            "algorithm": config.algorithm,
            "disk_chunks": config.disk_chunks,
            "latency_ms": latency,
            "sustained_qps": qps,
            "cpu_count": os.cpu_count() or 1,
        },
    )

    report(
        f"serve decision latency ({n} requests over one unix socket):",
        f"  p50  : {latency['p50']:.3f} ms",
        f"  p99  : {latency['p99']:.3f} ms",
        f"  p999 : {latency['p999']:.3f} ms"
        if latency["p999"] is not None
        else "  p999 : n/a",
        f"  sustained: {qps:,.0f} decisions/s",
        f"  wrote {BENCH_PATH.name}",
    )

    if strict:
        # SLO sanity floors, deliberately loose for shared runners
        assert latency["p99"] < 250.0, f"p99 {latency['p99']:.1f}ms"
        assert qps > 200.0, f"sustained {qps:.0f} qps"

    committed = _committed_row(baseline, scale.name, "direct")
    if committed is None:
        # pre-sharding baselines kept the direct row flat under the scale
        committed = (baseline or {}).get("scales", {}).get(scale.name)
        if not isinstance(committed, dict) or "latency_ms" not in committed:
            committed = None
    _gate(report, committed, latency, qps, "direct")


def _drive_unsequenced(target, requests, window=WINDOW):
    """One connection pushing pipelined unsequenced windows."""
    from repro.serve.client import connect_with_retry

    client = connect_with_retry(target, retry_for=30.0)
    try:
        sent = 0
        n = len(requests)
        while sent < n:
            count = min(window, n - sent)
            for offset in range(count):
                t, video, b0, b1 = requests[sent + offset]
                client.send({"t": t, "video": video, "b0": b0, "b1": b1})
            client.flush()
            for _ in range(count):
                response = client.read_response()
                assert response.get("ok"), response
            sent += count
    finally:
        client.close()


def _run_fleet_row(workers, n, tmp_path):
    from repro.serve.daemon import ServeConfig
    from repro.serve.soak import FleetProcess, _fleet_op

    requests = _trace(n, videos=2000)
    config = ServeConfig(
        algorithm="xLRU",
        disk_chunks=2048,
        chunk_bytes=K,
        publish_interval=0.0,
    )
    workdir = tmp_path / f"fleet-{workers}"
    workdir.mkdir()
    fleet = FleetProcess(
        str(workdir / "pub.sock"), str(workdir / "run"), config, workers
    )
    fleet.start()
    try:
        slices = [requests[i::FLEET_CLIENTS] for i in range(FLEET_CLIENTS)]
        errors = []

        def _worker(slice_):
            try:
                _drive_unsequenced(fleet.socket_path, slice_)
            except BaseException as exc:  # surfaced after join
                errors.append(exc)

        threads = [
            threading.Thread(target=_worker, args=(s,), daemon=True)
            for s in slices
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=600)
        assert not errors, errors[0]
        client = fleet.connect()
        client, stats = _fleet_op(fleet, client, "stats")
        _fleet_op(fleet, client, "shutdown")
        client.close()
        fleet.wait()
    finally:
        fleet.terminate()
    return stats


def test_serve_fleet_scaling(report, strict, scale, tmp_path):
    cpus = os.cpu_count() or 1
    if cpus < 2:
        pytest.skip(
            f"fleet scaling needs >= 2 CPUs (host has {cpus}); "
            f"rows are skipped, never faked"
        )
    n = 20_000 if strict else 2_000
    rows = {}
    baseline = None
    lines = [f"serve fleet scaling ({n} requests, {FLEET_CLIENTS} clients):"]
    for workers in FLEET_WORKERS:
        if workers > cpus:
            lines.append(
                f"  workers={workers}: skipped (host has {cpus} CPU(s))"
            )
            continue
        stats = _run_fleet_row(workers, n, tmp_path)
        slo = stats["slo"]
        assert slo["decisions"] == n
        assert stats["workers"] == workers
        rows[workers] = slo
        baseline = _write_row(
            scale.name,
            f"workers{workers}",
            {
                "requests": n,
                "window": WINDOW,
                "workers": workers,
                "clients": FLEET_CLIENTS,
                "algorithm": "xLRU",
                "disk_chunks": 2048,
                "latency_ms": slo["latency_ms"],
                "sustained_qps": slo["sustained_qps"],
                "cpu_count": cpus,
            },
        )
        lines.append(
            f"  workers={workers}: p99 {slo['latency_ms']['p99']:.3f} ms, "
            f"sustained {slo['sustained_qps']:,.0f} decisions/s"
        )
        _gate(
            report,
            _committed_row(baseline, scale.name, f"workers{workers}"),
            slo["latency_ms"],
            slo["sustained_qps"],
            f"workers{workers}",
        )
    report(*lines, f"  wrote {BENCH_PATH.name}")

    if strict and cpus >= 4 and 1 in rows and 4 in rows:
        qps1 = rows[1]["sustained_qps"]
        qps4 = rows[4]["sustained_qps"]
        assert qps4 >= 2.5 * qps1, (
            f"4-worker merged QPS {qps4:,.0f} < 2.5x 1-worker {qps1:,.0f}"
        )
        p99_1 = rows[1]["latency_ms"]["p99"]
        p99_4 = rows[4]["latency_ms"]["p99"]
        assert p99_4 <= 2.0 * p99_1 + 1.0, (
            f"4-worker p99 {p99_4:.2f}ms > 2x 1-worker {p99_1:.2f}ms"
        )
