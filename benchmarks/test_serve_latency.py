"""Serve-daemon SLO bench: decision latency quantiles + sustained QPS.

Drives a real ``repro-serve`` subprocess over a unix socket with
pipelined windows of sequenced requests, then reads the daemon's own
SLO block (``repro.obs`` histogram sketches — the same numbers the
telemetry export carries) and writes them to ``BENCH_serve.json``.

With ``REPRO_BENCH_REGRESSION=1`` the measured p99 and sustained QPS
are gated against the committed baseline with generous tolerances
(latency on shared CI runners is noisy: 3x on p99, 1/3 on QPS).
"""

import json
import os
import random
from pathlib import Path

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_serve.json"
REGRESSION_ENV = "REPRO_BENCH_REGRESSION"

K = 1024
WINDOW = 512


def _trace(n, seed=29):
    rng = random.Random(seed)
    t = 0.0
    out = []
    for _ in range(n):
        t += rng.uniform(0.001, 0.2)
        c0 = rng.randrange(0, 16)
        span = rng.randrange(1, 4)
        out.append((t, rng.randrange(0, 200), c0 * K, (c0 + span) * K - 1))
    return out


def test_serve_decision_latency(report, strict, scale, tmp_path):
    from repro.serve.daemon import ServeConfig
    from repro.serve.soak import DaemonProcess

    n = 20_000 if strict else 2_000
    requests = _trace(n)
    config = ServeConfig(
        algorithm="xLRU",
        disk_chunks=2048,
        chunk_bytes=K,
        publish_interval=0.0,
    )
    daemon = DaemonProcess(str(tmp_path / "bench.sock"), config)
    daemon.start()
    try:
        client = daemon.connect()
        assert client.hello()["watermark"] == 0
        seq = 1
        while seq <= n:
            count = min(WINDOW, n - seq + 1)
            for offset in range(count):
                t, video, b0, b1 = requests[seq - 1 + offset]
                client.send(
                    {"seq": seq + offset, "t": t, "video": video,
                     "b0": b0, "b1": b1}
                )
            client.flush()
            for _ in range(count):
                response = client.read_response()
                assert response.get("ok"), response
            seq += count
        stats = client.stats()
        client.shutdown()
        client.close()
        daemon.wait()
    finally:
        daemon.kill()

    assert stats["watermark"] == n
    slo = stats["slo"]
    latency = slo["latency_ms"]
    qps = slo["sustained_qps"]
    assert slo["decisions"] == n
    assert latency["p50"] is not None and latency["p99"] is not None

    baseline = None
    if BENCH_PATH.exists():
        baseline = json.loads(BENCH_PATH.read_text())
    if baseline is not None and "scales" in baseline:
        payload = dict(baseline)
    else:
        payload = {"bench": "serve_latency"}
    payload.setdefault("scales", {})[scale.name] = {
        "requests": n,
        "window": WINDOW,
        "algorithm": config.algorithm,
        "disk_chunks": config.disk_chunks,
        "latency_ms": latency,
        "sustained_qps": qps,
        "cpu_count": os.cpu_count() or 1,
    }
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    report(
        f"serve decision latency ({n} requests over one unix socket):",
        f"  p50  : {latency['p50']:.3f} ms",
        f"  p99  : {latency['p99']:.3f} ms",
        f"  p999 : {latency['p999']:.3f} ms"
        if latency["p999"] is not None
        else "  p999 : n/a",
        f"  sustained: {qps:,.0f} decisions/s",
        f"  wrote {BENCH_PATH.name}",
    )

    if strict:
        # SLO sanity floors, deliberately loose for shared runners
        assert latency["p99"] < 250.0, f"p99 {latency['p99']:.1f}ms"
        assert qps > 200.0, f"sustained {qps:.0f} qps"

    committed = (baseline or {}).get("scales", {}).get(scale.name)
    if os.environ.get(REGRESSION_ENV, "").strip() and committed:
        committed_p99 = committed["latency_ms"]["p99"]
        committed_qps = committed["sustained_qps"]
        assert latency["p99"] <= committed_p99 * 3.0 + 1.0, (
            f"p99 regressed: {latency['p99']:.2f}ms vs committed "
            f"{committed_p99:.2f}ms (>3x)"
        )
        assert qps >= committed_qps / 3.0, (
            f"sustained QPS regressed: {qps:.0f} vs committed "
            f"{committed_qps:.0f} (<1/3)"
        )
