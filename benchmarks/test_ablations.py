"""Ablation benches for the design choices the paper calls out.

Each ablation replays the European trace at the session scale with one
knob swept, holding everything else at the paper's values (alpha = 2,
scaled 1 TB disk), and prints the resulting efficiency table.

Covered choices (DESIGN.md §5):

* Cafe's horizon ``T`` — cache age (the paper: "yielded highest
  efficiencies") vs fixed constants;
* EWMA ``gamma`` — the paper uses 0.25;
* Psychic's lookahead ``N`` — the paper: "N = 10 has proven
  sufficient ... no gain with higher values";
* Cafe's unseen-chunk IAT estimate — the Section 6 "further
  optimization";
* Cafe's ghost history budget — the Section 5 "historic data ...
  cleaned up" analogue, not explicitly sized by the paper.
"""

import pytest

from repro.analysis.tables import format_table
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.psychic import PsychicCache
from repro.experiments.common import scaled_disk_chunks, server_trace
from repro.sim.engine import replay

ALPHA = 2.0
SERVER = "europe"


@pytest.fixture(scope="module")
def trace(scale):
    # module-scoped alias of the memoized trace, for readability
    return server_trace(SERVER, scale)


@pytest.fixture(scope="module")
def disk(scale):
    return scaled_disk_chunks(SERVER, scale)


def _steady_eff(cache, trace):
    return replay(cache, trace).steady.efficiency


def test_ablation_cafe_horizon(benchmark, trace, disk, report):
    """T = cache age vs fixed horizons (paper: cache age wins)."""
    horizons = {"cache age (paper)": None, "1 h": 3600.0, "6 h": 6 * 3600.0,
                "24 h": 86400.0, "7 d": 7 * 86400.0}

    def run():
        return {
            label: _steady_eff(
                CafeCache(disk, cost_model=CostModel(ALPHA), horizon=h), trace
            )
            for label, h in horizons.items()
        }

    effs = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        [{"horizon": k, "efficiency": v} for k, v in effs.items()],
        title="Ablation: Cafe horizon T (alpha=2)",
    ))
    best_fixed = max(v for k, v in effs.items() if k != "cache age (paper)")
    assert effs["cache age (paper)"] >= best_fixed - 0.03
    benchmark.extra_info["efficiencies"] = {k: round(v, 3) for k, v in effs.items()}


def test_ablation_cafe_gamma(benchmark, trace, disk, report):
    """EWMA weight sweep around the paper's gamma = 0.25."""
    gammas = (0.1, 0.25, 0.5, 0.9)

    def run():
        return {
            g: _steady_eff(
                CafeCache(disk, cost_model=CostModel(ALPHA), gamma=g), trace
            )
            for g in gammas
        }

    effs = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        [{"gamma": g, "efficiency": v} for g, v in effs.items()],
        title="Ablation: Cafe EWMA gamma (alpha=2)",
    ))
    assert effs[0.25] >= max(effs.values()) - 0.04
    benchmark.extra_info["efficiencies"] = {str(k): round(v, 3) for k, v in effs.items()}


def test_ablation_psychic_lookahead(benchmark, trace, disk, report):
    """Lookahead N sweep (paper: N = 10 suffices)."""
    lookaheads = (1, 3, 10, 30)

    def run():
        return {
            n: _steady_eff(
                PsychicCache(disk, cost_model=CostModel(ALPHA), lookahead=n), trace
            )
            for n in lookaheads
        }

    effs = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        [{"N": n, "efficiency": v} for n, v in effs.items()],
        title="Ablation: Psychic lookahead N (alpha=2)",
    ))
    assert abs(effs[10] - effs[30]) < 0.01, "no gain beyond N=10 (paper)"
    assert effs[10] >= effs[1] - 0.01
    benchmark.extra_info["efficiencies"] = {str(k): round(v, 3) for k, v in effs.items()}


def test_ablation_unseen_chunk_estimate(benchmark, trace, disk, report):
    """Cafe's sibling-IAT estimate for never-seen chunks, on vs off."""

    def run():
        return {
            label: _steady_eff(
                CafeCache(
                    disk,
                    cost_model=CostModel(ALPHA),
                    use_video_iat_estimate=enabled,
                ),
                trace,
            )
            for label, enabled in (("with estimate (paper)", True), ("without", False))
        }

    effs = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        [{"variant": k, "efficiency": v} for k, v in effs.items()],
        title="Ablation: unseen-chunk IAT estimate (alpha=2)",
    ))
    assert effs["with estimate (paper)"] >= effs["without"] - 0.02
    benchmark.extra_info["efficiencies"] = {k: round(v, 3) for k, v in effs.items()}


def test_ablation_chunk_size(benchmark, trace, disk, report):
    """Chunk size K at equal disk *bytes* (the paper picked 2 MB).

    Smaller chunks track intra-file popularity more finely and waste
    less ingress on partially requested chunks; larger chunks cut
    metadata but coarsen both.  The paper's 2 MB should sit on the flat
    part of the curve.
    """
    disk_bytes = disk * (2 * 1024 * 1024)
    sizes = {
        "512 KiB": 512 * 1024,
        "2 MiB (paper)": 2 * 1024 * 1024,
        "8 MiB": 8 * 1024 * 1024,
    }

    def run():
        out = {}
        for label, k in sizes.items():
            cache = CafeCache(
                max(16, disk_bytes // k),
                chunk_bytes=k,
                cost_model=CostModel(ALPHA),
            )
            out[label] = _steady_eff(cache, trace)
        return out

    effs = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        [{"chunk_size": label, "efficiency": v} for label, v in effs.items()],
        title="Ablation: chunk size at equal disk bytes (alpha=2, Cafe)",
    ))
    # 2 MB must not be a bad choice: within a few points of the best
    assert effs["2 MiB (paper)"] >= max(effs.values()) - 0.05
    benchmark.extra_info["efficiencies"] = {k: round(v, 3) for k, v in effs.items()}


def test_ablation_ghost_budget(benchmark, trace, disk, report):
    """Ghost-history budget: 0 disables re-admission entirely."""
    factors = (0.0, 0.5, 2.0, 4.0, 8.0)

    def run():
        return {
            f: _steady_eff(
                CafeCache(disk, cost_model=CostModel(ALPHA), ghost_factor=f), trace
            )
            for f in factors
        }

    effs = benchmark.pedantic(run, rounds=1, iterations=1)
    report(format_table(
        [{"ghost_factor": f, "efficiency": v} for f, v in effs.items()],
        title="Ablation: Cafe ghost budget (alpha=2)",
    ))
    assert effs[4.0] > effs[0.0], "ghost history must matter"
    benchmark.extra_info["efficiencies"] = {str(k): round(v, 3) for k, v in effs.items()}
