"""Replay-throughput bench: seed loop vs object path vs packed lane.

Four measurements of the same 12-cell matrix over one trace slice:

* ``seed_serial`` — the seed's per-cell replay loop (the PR-1 baseline);
* ``object_single_pass`` — single-pass broadcast on Request objects
  (auto-packing disabled);
* ``packed_single_pass`` — the columnar fast lane (the default path for
  materialized traces of this size);
* ``parallel_2_workers`` — the scheduler in auto mode with two workers
  (on a single-CPU host the work-size heuristic collapses this to the
  serial packed path, which is recorded honestly).

All four must produce byte-identical totals; the comparison is written
to ``BENCH_replay.json``.  With ``REPRO_BENCH_REGRESSION=1`` (the CI
replay-bench job) the measured packed speedup is additionally compared
against the committed baseline and a >20% relative drop fails the run.
"""

import gc
import json
import os
import time
from pathlib import Path

import pytest

import repro.sim.engine as engine_module
from repro.sim.runner import RunConfig, run_matrix
from test_perf_caches import _seed_matrix

SLICE = 5_000
ALGOS = ("xLRU", "PullLRU", "LFU")
ALPHAS = (0.5, 1.0, 2.0, 4.0)
ROUNDS = 7

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_replay.json"

#: CI knob: compare the measured packed speedup against the committed
#: BENCH_replay.json and fail on a >20% relative regression.
REGRESSION_ENV = "REPRO_BENCH_REGRESSION"


@pytest.fixture(scope="module")
def trace(scale):
    from repro.experiments.common import server_trace

    full = server_trace("europe", scale)
    return full[: min(SLICE, len(full))]


@pytest.fixture(scope="module")
def disk(scale):
    from repro.experiments.common import scaled_disk_chunks

    return max(64, scaled_disk_chunks("europe", scale) // 4)


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _timed_interleaved(fns, rounds=ROUNDS):
    """Median-of-``rounds`` timings for several thunks, round-robin.

    Each round runs every mode once before any mode runs again, so a
    host whose effective CPU speed drifts over the bench (cgroup
    throttling on shared runners) biases all modes equally instead of
    penalising whichever block happened to run last; medians over the
    paired rounds then cancel the drift that best-of-N amplifies.
    Alternate rounds reverse the within-round order so no mode always
    pays the end-of-round GC/allocator pressure.
    """
    samples = {name: [] for name in fns}
    results = {}
    order = list(fns)
    for round_index in range(rounds):
        names = order if round_index % 2 == 0 else list(reversed(order))
        for name in names:
            # Collect before timing so one mode's garbage doesn't bill
            # its GC pause to whichever mode runs next.
            gc.collect()
            t0 = time.perf_counter()
            results[name] = fns[name]()
            samples[name].append(time.perf_counter() - t0)
    return {name: _median(times) for name, times in samples.items()}, results


def test_replay_throughput(benchmark, report, strict, scale, trace, disk):
    configs = [
        RunConfig(algo, disk, alpha, label=f"a={alpha:g}/{algo}")
        for algo in ALGOS
        for alpha in ALPHAS
    ]

    baseline = None
    if BENCH_PATH.exists():
        baseline = json.loads(BENCH_PATH.read_text())

    def _with_pack_threshold(threshold, fn):
        # Pinning the auto-pack threshold below the slice keeps the
        # packed lane exercised at every REPRO_SCALE (quick traces are
        # shorter than the production threshold); pinning it above
        # forces the object path.  Pack time stays inside the
        # measurement either way.
        original = engine_module.AUTO_PACK_MIN_REQUESTS
        engine_module.AUTO_PACK_MIN_REQUESTS = threshold
        try:
            return fn()
        finally:
            engine_module.AUTO_PACK_MIN_REQUESTS = original

    seconds, mode_results = _timed_interleaved(
        {
            "seed_serial": lambda: _seed_matrix(configs, trace),
            "object_single_pass": lambda: _with_pack_threshold(
                10**9, lambda: run_matrix(configs, trace, mode="serial")
            ),
            "packed_single_pass": lambda: _with_pack_threshold(
                1, lambda: run_matrix(configs, trace, mode="serial")
            ),
            "parallel_2_workers": lambda: _with_pack_threshold(
                1,
                lambda: run_matrix(configs, trace, mode="auto", workers=2),
            ),
        }
    )
    seed_seconds = seconds["seed_serial"]
    object_seconds = seconds["object_single_pass"]
    packed_seconds = seconds["packed_single_pass"]
    parallel_seconds = seconds["parallel_2_workers"]
    seed_results = mode_results["seed_serial"]
    object_results = mode_results["object_single_pass"]
    packed_results = mode_results["packed_single_pass"]
    parallel_results = mode_results["parallel_2_workers"]

    # the packed lane actually ran (the whole point of this bench)
    packed_formats = {
        r.report.extra.get("trace_format")
        for r in packed_results.values()
        if r.report is not None and "trace_format" in r.report.extra
    }
    assert packed_formats == {"packed"}

    # exactness: every mode reproduces the seed's numbers, cell by cell
    for config in configs:
        expected = seed_results[config.key].totals()
        assert object_results[config.key].totals == expected, config.key
        assert packed_results[config.key].totals == expected, config.key
        assert parallel_results[config.key].totals == expected, config.key

    # keep the packed path in the pytest-benchmark table too
    benchmark.pedantic(
        lambda: run_matrix(configs, trace, mode="serial"), rounds=ROUNDS
    )
    benchmark.extra_info["cells"] = len(configs)
    benchmark.extra_info["requests_per_round"] = len(trace)

    cpus = os.cpu_count() or 1
    collapsed = cpus < 2
    speedups = {
        "object_single_pass": seed_seconds / object_seconds,
        "packed_single_pass": seed_seconds / packed_seconds,
        "parallel_2_workers": seed_seconds / parallel_seconds,
    }
    section = {
        "cpu_count": cpus,
        "trace_requests": len(trace),
        "disk_chunks": disk,
        "cells": len(configs),
        "algorithms": list(ALGOS),
        "alphas": list(ALPHAS),
        "rounds": ROUNDS,
        "parallel_collapsed_to_serial": collapsed,
        "modes": {
            "seed_serial": {
                "seconds": seed_seconds,
                "requests_per_second": len(trace) / seed_seconds,
                "speedup_vs_seed": 1.0,
            },
            "object_single_pass": {
                "seconds": object_seconds,
                "requests_per_second": len(trace) / object_seconds,
                "speedup_vs_seed": speedups["object_single_pass"],
            },
            "packed_single_pass": {
                "seconds": packed_seconds,
                "requests_per_second": len(trace) / packed_seconds,
                "speedup_vs_seed": speedups["packed_single_pass"],
            },
            "parallel_2_workers": {
                "seconds": parallel_seconds,
                "requests_per_second": len(trace) / parallel_seconds,
                "speedup_vs_seed": speedups["parallel_2_workers"],
            },
        },
    }
    # One section per REPRO_SCALE (the fleet bench's layout): the CI
    # quick job gates against the committed quick section, full runs
    # against full — never across scales, whose speedups legitimately
    # differ (fixed pack/setup overheads amortize over trace length).
    if baseline is not None and "scales" in baseline:
        payload = dict(baseline)
    else:
        payload = {"bench": "replay_throughput"}
    payload.setdefault("scales", {})[scale.name] = section
    BENCH_PATH.write_text(json.dumps(payload, indent=2) + "\n")

    report(
        f"replay throughput ({len(configs)} cells, {len(trace)} requests, "
        f"{cpus} CPUs):",
        f"  seed per-cell      : {seed_seconds:.3f}s",
        f"  object single-pass : {object_seconds:.3f}s "
        f"({speedups['object_single_pass']:.2f}x)",
        f"  packed single-pass : {packed_seconds:.3f}s "
        f"({speedups['packed_single_pass']:.2f}x)",
        f"  parallel (2w{', collapsed' if collapsed else ''}) : "
        f"{parallel_seconds:.3f}s ({speedups['parallel_2_workers']:.2f}x)",
        f"  wrote {BENCH_PATH.name}",
    )

    assert speedups["packed_single_pass"] > speedups["object_single_pass"] * 0.9
    if strict:
        # floor raised from 3x when the decision kernels landed
        assert speedups["packed_single_pass"] >= 3.5, (
            f"packed lane {speedups['packed_single_pass']:.2f}x vs seed; "
            "expected >= 3.5x"
        )
        # On a multi-CPU host the pool must not lose to the serial pass;
        # on one CPU the heuristic collapses both to the same path, so
        # only timing noise separates them.
        tolerance = 1.1 if collapsed else 1.0
        assert parallel_seconds <= packed_seconds * tolerance, (
            f"parallel sweep {parallel_seconds:.3f}s slower than "
            f"single-pass {packed_seconds:.3f}s"
        )

    committed_scale = (baseline or {}).get("scales", {}).get(scale.name)
    if os.environ.get(REGRESSION_ENV, "").strip() and committed_scale:
        committed = committed_scale["modes"]["packed_single_pass"]["speedup_vs_seed"]
        measured = speedups["packed_single_pass"]
        assert measured >= 0.8 * committed, (
            f"packed speedup regressed: measured {measured:.2f}x vs "
            f"committed {committed:.2f}x baseline (>20% drop)"
        )
