"""Figure 4 bench: efficiency vs alpha_F2R on the European server.

Regenerates the 4x3 bar chart (alpha in {0.5, 1, 2, 4} x
{xLRU, Cafe, Psychic}) plus the Section 9.2 derived headline: the
relative inefficiency reduction Cafe achieves over xLRU at alpha = 2
(the paper computes 29% from 62% -> 73%).

Reproduction criteria asserted:
* alpha <= 1: Cafe and xLRU comparable (paper: Cafe up to ~2% higher);
* alpha = 2: Cafe clearly above xLRU and within reach of Psychic;
* alpha = 4: the gap grows further;
* Psychic tops every column.
"""

from repro.experiments import fig4


def test_fig4_alpha_sweep(benchmark, scale, report, strict):
    result = benchmark.pedantic(lambda: fig4.run(scale), rounds=1, iterations=1)
    report(result.to_text())

    if not strict:
        return  # QUICK scale: smoke-run only, shapes asserted at FULL

    rows = {r["alpha"]: r for r in result.rows}

    # alpha <= 1: comparable
    assert abs(rows[0.5]["Cafe"] - rows[0.5]["xLRU"]) < 0.08
    assert abs(rows[1.0]["Cafe"] - rows[1.0]["xLRU"]) < 0.10

    # constrained ingress: Cafe pulls away and approaches Psychic
    assert rows[2.0]["Cafe"] - rows[2.0]["xLRU"] > 0.05
    assert rows[4.0]["Cafe"] - rows[4.0]["xLRU"] > rows[2.0]["Cafe"] - rows[2.0]["xLRU"] - 0.03
    assert rows[2.0]["Psychic"] - rows[2.0]["Cafe"] < 0.15

    # Psychic upper-bounds both online caches everywhere
    for alpha, row in rows.items():
        assert row["Psychic"] >= row["Cafe"] - 0.02, f"alpha={alpha}"
        assert row["Psychic"] >= row["xLRU"] - 0.02, f"alpha={alpha}"

    reduction = result.extras["relative_inefficiency_reduction_alpha2"]
    assert reduction > 0.10, "Cafe must cut xLRU's inefficiency at alpha=2"
    benchmark.extra_info["relative_inefficiency_reduction"] = reduction
    benchmark.extra_info["cafe_minus_xlru_alpha2"] = (
        rows[2.0]["Cafe"] - rows[2.0]["xLRU"]
    )
