"""Fleet-replay bench: object lane vs packed fleet lane, 6-edge hierarchy.

One hierarchy — the six paper regions as edges, one parent, an origin —
replayed through ``CdnSimulator`` two ways over the same workload:

* ``object_lane`` — materialized per-edge ``Request`` lists, merged by
  ``heapq`` per replay (the PR-5 path);
* ``packed_fleet`` — per-edge :class:`~repro.trace.columnar.PackedTrace`
  shards inside a :class:`~repro.trace.fleet.FleetTrace`, replayed via
  the precomputed merge plan and the shard-batched ``handle_span_block``
  lane.

Both lanes must be byte-identical (fingerprints compared, with and
without a fault schedule); the throughput comparison and the peak-RSS
measurement of streaming a full-scale (10M+ request) fleet straight
into columns are written to ``BENCH_fleet.json``, one section per
scale (the committed file carries both the full-scale numbers and the
quick-scale baseline CI compares against).  With
``REPRO_BENCH_REGRESSION=1`` (the CI fleet-bench job) the measured
packed speedup is additionally compared against the committed
same-scale baseline and a >20% relative drop fails the run.

The timed algorithm is xLRU — the hottest per-request cache with a
block override, replayed warm (long traces, disks well under the trace
footprint), which is the regime the packed lane exists for.  Fill-bound
algorithms (PullLRU) spend their time growing chunk dicts in both lanes
and sit near 1.5x; they are reported, not gated.
"""

import gc
import json
import os
import subprocess
import sys
import time
from pathlib import Path

from repro.cdn.faults import FaultEvent, FaultSchedule
from repro.cdn.multiserver import CdnSimulator
from repro.cdn.topology import hierarchy
from repro.sim.runner import build_cache
from repro.trace.fleet import FleetTrace
from repro.verify.faultcheck import _fingerprint
from repro.workload.generator import TraceGenerator
from repro.workload.servers import paper_server_profiles

BENCH_PATH = Path(__file__).resolve().parent.parent / "BENCH_fleet.json"
REGRESSION_ENV = "REPRO_BENCH_REGRESSION"

ALGO = "xLRU"
ROUNDS = 3
PROFILES = paper_server_profiles()
REGIONS = sorted(PROFILES)

#: Per-scale sizing.  ``full`` targets 10M+ requests (the ISSUE's RSS
#: point) in the warm steady-state regime: per-edge footprints are a
#: small multiple of the edge disks, so replay time is cache hot-path,
#: not cold fill.  ``quick`` is a smoke/equality run for CI.
SIZING = {
    "quick": dict(
        profile_scale=0.5, days=10.0, edge_disk=8192, parent_disk=65536,
        rss_arm=False,
    ),
    "full": dict(
        profile_scale=0.5, days=630.0, edge_disk=262144,
        parent_disk=1_048_576, rss_arm=True,
    ),
}
SIZING["paper"] = SIZING["full"]

#: Strict bound on the streamed-generation footprint: bytes of peak RSS
#: per generated request.  The packed columns themselves are 64 B per
#: request; finalize's stable sort and the fleet merge plan add
#: transient copies.  Materializing Request objects costs several times
#: this before the replay even starts.
RSS_BYTES_PER_REQUEST_MAX = 250

_RSS_SCRIPT = """\
import json, resource, sys
profile_scale, days = float(sys.argv[1]), float(sys.argv[2])
from repro.trace.fleet import FleetTrace
from repro.workload.generator import TraceGenerator
from repro.workload.servers import paper_server_profiles
shards = {
    name: TraceGenerator(profile.scaled(profile_scale)).generate_packed(days=days)
    for name, profile in paper_server_profiles().items()
}
fleet = FleetTrace(shards)
fleet.merge_runs()
peak = resource.getrusage(resource.RUSAGE_SELF).ru_maxrss * 1024
print(json.dumps({"requests": len(fleet), "peak_rss_bytes": peak}))
"""


def _median(values):
    ordered = sorted(values)
    mid = len(ordered) // 2
    if len(ordered) % 2:
        return ordered[mid]
    return (ordered[mid - 1] + ordered[mid]) / 2


def _make_sim(sizing, faults=None):
    edges = {
        name: build_cache(ALGO, sizing["edge_disk"]) for name in REGIONS
    }
    return CdnSimulator(
        hierarchy(edges, build_cache(ALGO, sizing["parent_disk"])),
        faults=faults,
    )


def _fault_schedule(span):
    return FaultSchedule(
        [
            FaultEvent("outage", "africa", span * 0.15, span * 0.1),
            FaultEvent("restart", "europe", span * 0.4, span * 0.05),
            FaultEvent("degrade", "parent", span * 0.55, span * 0.1, factor=2.5),
            FaultEvent(
                "brownout", "origin", span * 0.7, span * 0.1, drop_fraction=0.3
            ),
        ],
        seed=9,
    )


def _measure_stream_rss(sizing):
    """Peak RSS of generating + merge-planning the fleet, in a fresh
    interpreter (the parent's own heap would mask the footprint)."""
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    existing = env.get("PYTHONPATH", "")
    env["PYTHONPATH"] = src + (os.pathsep + existing if existing else "")
    out = subprocess.run(
        [
            sys.executable, "-c", _RSS_SCRIPT,
            str(sizing["profile_scale"]), str(sizing["days"]),
        ],
        env=env, capture_output=True, text=True, check=True,
    )
    return json.loads(out.stdout)


def test_fleet_throughput(report, strict, scale):
    sizing = SIZING[scale.name]
    baseline = json.loads(BENCH_PATH.read_text()) if BENCH_PATH.exists() else None

    # Measure the streamed-generation footprint before this process
    # grows: the child is forked, and a fork of a fat parent taints the
    # child's ru_maxrss high-water mark with the parent's inherited
    # address space.
    rss = _measure_stream_rss(sizing) if sizing["rss_arm"] else None

    profiles = {
        name: PROFILES[name].scaled(sizing["profile_scale"]) for name in REGIONS
    }
    traces = {
        name: TraceGenerator(profile).generate(days=sizing["days"])
        for name, profile in profiles.items()
    }
    shards = {
        name: TraceGenerator(profile).generate_packed(days=sizing["days"])
        for name, profile in profiles.items()
    }
    n = sum(len(trace) for trace in traces.values())
    fleet = FleetTrace(shards)

    # The merge plan is computed once per fleet and amortized over every
    # replay (experiments share one fleet across arms); time it apart so
    # the per-replay medians below measure exactly what repeats.
    t0 = time.perf_counter()
    fleet.merge_runs()
    plan_seconds = time.perf_counter() - t0

    samples = {"object_lane": [], "packed_fleet": []}
    results = {}
    for round_index in range(ROUNDS):
        lanes = [
            ("object_lane", traces), ("packed_fleet", fleet)
        ]
        if round_index % 2:
            lanes.reverse()
        for lane, workload in lanes:
            gc.collect()
            sim = _make_sim(sizing)
            t0 = time.perf_counter()
            results[lane] = sim.run(workload)
            samples[lane].append(time.perf_counter() - t0)
    object_seconds = _median(samples["object_lane"])
    packed_seconds = _median(samples["packed_fleet"])
    speedup = object_seconds / packed_seconds

    # Byte identity, fault-free: same fingerprint, batched lane engaged.
    assert _fingerprint(results["object_lane"]) == _fingerprint(
        results["packed_fleet"]
    )
    assert (
        results["packed_fleet"].report.extra["trace_format"]
        == "packed-batched"
    )

    # Byte identity under faults (stepwise merged walk, one pass each).
    span = max(
        float(shard.column("t")[-1]) for shard in shards.values() if len(shard)
    )
    faulted_object = _make_sim(sizing, faults=_fault_schedule(span)).run(traces)
    faulted_packed = _make_sim(sizing, faults=_fault_schedule(span)).run(fleet)
    assert _fingerprint(faulted_object) == _fingerprint(faulted_packed)
    assert faulted_packed.report.extra["trace_format"] == "packed"
    # The schedule actually bites (guards against vacuous equality).
    assert faulted_packed.availability["africa"].failover_hops > 0
    assert _fingerprint(faulted_packed) != _fingerprint(results["packed_fleet"])

    payload = {
        "cpu_count": os.cpu_count() or 1,
        "algorithm": ALGO,
        "edges": len(REGIONS),
        "trace_requests": n,
        "days": sizing["days"],
        "profile_scale": sizing["profile_scale"],
        "edge_disk_chunks": sizing["edge_disk"],
        "parent_disk_chunks": sizing["parent_disk"],
        "rounds": ROUNDS,
        "merge_plan_seconds": plan_seconds,
        "modes": {
            "object_lane": {
                "seconds": object_seconds,
                "requests_per_second": n / object_seconds,
                "speedup_vs_object": 1.0,
            },
            "packed_fleet": {
                "seconds": packed_seconds,
                "requests_per_second": n / packed_seconds,
                "speedup_vs_object": speedup,
            },
        },
    }
    if rss is not None:
        payload["streamed_generation"] = {
            "requests": rss["requests"],
            "peak_rss_bytes": rss["peak_rss_bytes"],
            "rss_bytes_per_request": rss["peak_rss_bytes"] / rss["requests"],
        }
    # One section per scale: re-running at one scale must not clobber
    # the other's committed numbers (CI gates quick against quick; the
    # full section is the reproduction claim).
    merged = {"bench": "fleet_throughput", "scales": {}}
    if baseline is not None and "scales" in baseline:
        merged["scales"].update(baseline["scales"])
    merged["scales"][scale.name] = payload
    BENCH_PATH.write_text(json.dumps(merged, indent=2) + "\n")

    lines = [
        f"fleet throughput ({len(REGIONS)} edges, {n} requests, {ALGO}):",
        f"  merge plan    : {plan_seconds:.3f}s (once per fleet)",
        f"  object lane   : {object_seconds:.3f}s "
        f"({n / object_seconds / 1e3:.0f}k req/s)",
        f"  packed fleet  : {packed_seconds:.3f}s "
        f"({n / packed_seconds / 1e3:.0f}k req/s, {speedup:.2f}x)",
    ]
    if rss is not None:
        lines.append(
            f"  streamed gen  : {rss['requests']} requests, peak RSS "
            f"{rss['peak_rss_bytes'] / 1e9:.2f} GB "
            f"({rss['peak_rss_bytes'] / rss['requests']:.0f} B/request)"
        )
    lines.append(f"  wrote {BENCH_PATH.name}")
    report(*lines)

    if strict:
        assert speedup >= 3.0, (
            f"packed fleet lane {speedup:.2f}x vs object lane; expected >= 3x"
        )
        assert rss is not None and rss["requests"] >= 10_000_000
        per_request = rss["peak_rss_bytes"] / rss["requests"]
        assert per_request <= RSS_BYTES_PER_REQUEST_MAX, (
            f"streamed generation peaked at {per_request:.0f} B/request; "
            f"bound is {RSS_BYTES_PER_REQUEST_MAX}"
        )

    committed_scale = (baseline or {}).get("scales", {}).get(scale.name)
    if os.environ.get(REGRESSION_ENV, "").strip() and committed_scale:
        committed = committed_scale["modes"]["packed_fleet"]["speedup_vs_object"]
        assert speedup >= 0.8 * committed, (
            f"packed fleet speedup regressed: measured {speedup:.2f}x vs "
            f"committed {committed:.2f}x baseline (>20% drop)"
        )
