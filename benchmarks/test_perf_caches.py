"""Request-throughput benches for the full cache algorithms.

Measures handled requests per second on a slice of the European trace
(the figure in the bench report is seconds per slice; divide the slice
size by it for req/s).  xLRU should be fastest (two O(1) structures),
Cafe and Psychic pay their O(log n) tree and future-index costs.

``test_sweep_throughput`` benches a whole experiment matrix (3
algorithms x 4 alphas) three ways — the seed's per-cell replay, the
single-pass broadcast scheduler and the process-pool path — verifies
they agree exactly, and writes the comparison to ``BENCH_sweep.json``.
"""

import json
import math
import os
import time
from pathlib import Path

import pytest

from repro.core.baselines import PullThroughLruCache
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.psychic import PsychicCache
from repro.core.xlru import XlruCache
from repro.experiments.common import scaled_disk_chunks, server_trace
from repro.sim.metrics import IntervalSample, MetricsCollector, _MutableCounters
from repro.sim.runner import RunConfig, run_matrix

SLICE = 5_000
ALPHA = 2.0


@pytest.fixture(scope="module")
def trace(scale):
    full = server_trace("europe", scale)
    return full[: min(SLICE, len(full))]


@pytest.fixture(scope="module")
def disk(scale):
    return max(64, scaled_disk_chunks("europe", scale) // 4)


def _bench_online(benchmark, cache_cls, trace, disk):
    def setup():
        return (cache_cls(disk, cost_model=CostModel(ALPHA)),), {}

    def run(cache):
        for request in trace:
            cache.handle(request)

    benchmark.pedantic(run, setup=setup, rounds=3)
    benchmark.extra_info["requests_per_round"] = len(trace)


def test_throughput_xlru(benchmark, trace, disk):
    _bench_online(benchmark, XlruCache, trace, disk)


def test_throughput_cafe(benchmark, trace, disk):
    _bench_online(benchmark, CafeCache, trace, disk)


def test_throughput_pull_lru(benchmark, trace, disk):
    _bench_online(benchmark, PullThroughLruCache, trace, disk)


def test_throughput_psychic(benchmark, trace, disk):
    def setup():
        cache = PsychicCache(disk, cost_model=CostModel(ALPHA))
        cache.prepare(trace)
        return (cache,), {}

    def run(cache):
        for request in trace:
            cache.handle(request)

    benchmark.pedantic(run, setup=setup, rounds=3)
    benchmark.extra_info["requests_per_round"] = len(trace)


def test_throughput_psychic_prepare(benchmark, trace, disk):
    """Index-building cost of the offline cache, separately."""
    cache = PsychicCache(disk, cost_model=CostModel(ALPHA))
    benchmark(cache.prepare, trace)


# -- sweep throughput: seed per-cell replay vs the layered scheduler ----------

SWEEP_ALGOS = ("xLRU", "PullLRU", "LFU")
SWEEP_ALPHAS = (0.5, 1.0, 2.0, 4.0)
SWEEP_ROUNDS = 3


class _SeedCollector(MetricsCollector):
    """Faithful replica of the seed collector's per-record cost.

    The seed ``record`` maintained a running-totals counter *and* the
    live bucket (two ``_MutableCounters.add`` calls per request) and
    stepped idle intervals one at a time.  Reproducing that cost keeps
    the "vs seed run_matrix" speedup honest.
    """

    def __init__(self, *args, **kwargs):
        super().__init__(*args, **kwargs)
        self._running_totals = _MutableCounters()

    def record(self, request, response):
        t = request.t
        if self._t_first is None:
            self._t_first = t
        self._t_last = t
        if self._bucket_start is None:
            self._bucket_start = math.floor(t / self.interval) * self.interval
            self._bucket_end = self._bucket_start + self.interval
        while t >= self._bucket_end:
            if self._bucket.num_requests:
                self._samples.append(
                    IntervalSample(
                        self._bucket_start, self._bucket.freeze(self.cost_model)
                    )
                )
                self._bucket = _MutableCounters()
            self._bucket_start += self.interval
            self._bucket_end += self.interval
        for counters in (self._running_totals, self._bucket):
            counters.add(request, response, self.chunk_bytes)

    def totals(self):
        return self._running_totals.freeze(self.cost_model)


def _seed_matrix(configs, trace):
    """The seed ``run_matrix``: one sequential replay loop per cell."""
    results = {}
    for config in configs:
        cache = config.build()
        metrics = _SeedCollector(cache.cost_model, chunk_bytes=cache.chunk_bytes)
        if cache.offline:
            cache.prepare(trace)
        last_t = float("-inf")
        for i, request in enumerate(trace):
            if request.t < last_t:
                raise ValueError(f"trace not time-ordered at index {i}")
            last_t = request.t
            metrics.record(request, cache.handle(request))
        results[config.key] = metrics
    return results


def _best_of(fn, rounds=SWEEP_ROUNDS):
    best, result = math.inf, None
    for _ in range(rounds):
        t0 = time.perf_counter()
        result = fn()
        best = min(best, time.perf_counter() - t0)
    return best, result


def test_sweep_throughput(benchmark, report, strict, scale, trace, disk):
    """Seed vs single-pass vs parallel on a 3-algo x 4-alpha matrix.

    Acceptance: the single-pass scheduler must be at least 2x faster
    than the seed's per-cell ``run_matrix`` (enforced at FULL/PAPER
    scale), with byte-identical results in every mode.
    """
    configs = [
        RunConfig(algo, disk, alpha, label=f"a={alpha:g}/{algo}")
        for algo in SWEEP_ALGOS
        for alpha in SWEEP_ALPHAS
    ]

    seed_seconds, seed_results = _best_of(lambda: _seed_matrix(configs, trace))
    single_seconds, single_results = _best_of(
        lambda: run_matrix(configs, trace, mode="serial")
    )
    parallel_seconds, parallel_results = _best_of(
        lambda: run_matrix(configs, trace, mode="parallel", workers=2)
    )

    # exactness first: every mode must reproduce the seed's numbers
    for config in configs:
        expected = seed_results[config.key].totals()
        assert single_results[config.key].totals == expected, config.key
        assert parallel_results[config.key].totals == expected, config.key

    # keep the broadcast path in the pytest-benchmark table too
    benchmark.pedantic(
        lambda: run_matrix(configs, trace, mode="serial"), rounds=SWEEP_ROUNDS
    )
    benchmark.extra_info["cells"] = len(configs)
    benchmark.extra_info["requests_per_round"] = len(trace)

    speedup_single = seed_seconds / single_seconds
    speedup_parallel = seed_seconds / parallel_seconds
    payload = {
        "bench": "sweep_throughput",
        "scale": scale.name,
        "cpu_count": os.cpu_count(),
        "trace_requests": len(trace),
        "disk_chunks": disk,
        "cells": len(configs),
        "algorithms": list(SWEEP_ALGOS),
        "alphas": list(SWEEP_ALPHAS),
        "rounds": SWEEP_ROUNDS,
        "modes": {
            "seed_serial": {
                "seconds": seed_seconds,
                "requests_per_second": len(trace) / seed_seconds,
                "speedup_vs_seed": 1.0,
            },
            "single_pass": {
                "seconds": single_seconds,
                "requests_per_second": len(trace) / single_seconds,
                "speedup_vs_seed": speedup_single,
            },
            "parallel_2_workers": {
                "seconds": parallel_seconds,
                "requests_per_second": len(trace) / parallel_seconds,
                "speedup_vs_seed": speedup_parallel,
            },
        },
    }
    out_path = Path(__file__).resolve().parent.parent / "BENCH_sweep.json"
    out_path.write_text(json.dumps(payload, indent=2) + "\n")

    report(
        f"sweep throughput ({len(configs)} cells, {len(trace)} requests, "
        f"{os.cpu_count()} CPUs):",
        f"  seed per-cell : {seed_seconds:.3f}s",
        f"  single-pass   : {single_seconds:.3f}s ({speedup_single:.2f}x)",
        f"  parallel (2w) : {parallel_seconds:.3f}s ({speedup_parallel:.2f}x)",
        f"  wrote {out_path.name}",
    )

    assert max(speedup_single, speedup_parallel) > 1.0
    if strict:
        assert max(speedup_single, speedup_parallel) >= 2.0, (
            f"single-pass {speedup_single:.2f}x / parallel "
            f"{speedup_parallel:.2f}x; expected >= 2x over seed run_matrix"
        )
