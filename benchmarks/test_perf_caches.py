"""Request-throughput benches for the full cache algorithms.

Measures handled requests per second on a slice of the European trace
(the figure in the bench report is seconds per slice; divide the slice
size by it for req/s).  xLRU should be fastest (two O(1) structures),
Cafe and Psychic pay their O(log n) tree and future-index costs.
"""

import pytest

from repro.core.baselines import PullThroughLruCache
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.psychic import PsychicCache
from repro.core.xlru import XlruCache
from repro.experiments.common import scaled_disk_chunks, server_trace

SLICE = 5_000
ALPHA = 2.0


@pytest.fixture(scope="module")
def trace(scale):
    full = server_trace("europe", scale)
    return full[: min(SLICE, len(full))]


@pytest.fixture(scope="module")
def disk(scale):
    return max(64, scaled_disk_chunks("europe", scale) // 4)


def _bench_online(benchmark, cache_cls, trace, disk):
    def setup():
        return (cache_cls(disk, cost_model=CostModel(ALPHA)),), {}

    def run(cache):
        for request in trace:
            cache.handle(request)

    benchmark.pedantic(run, setup=setup, rounds=3)
    benchmark.extra_info["requests_per_round"] = len(trace)


def test_throughput_xlru(benchmark, trace, disk):
    _bench_online(benchmark, XlruCache, trace, disk)


def test_throughput_cafe(benchmark, trace, disk):
    _bench_online(benchmark, CafeCache, trace, disk)


def test_throughput_pull_lru(benchmark, trace, disk):
    _bench_online(benchmark, PullThroughLruCache, trace, disk)


def test_throughput_psychic(benchmark, trace, disk):
    def setup():
        cache = PsychicCache(disk, cost_model=CostModel(ALPHA))
        cache.prepare(trace)
        return (cache,), {}

    def run(cache):
        for request in trace:
            cache.handle(request)

    benchmark.pedantic(run, setup=setup, rounds=3)
    benchmark.extra_info["requests_per_round"] = len(trace)


def test_throughput_psychic_prepare(benchmark, trace, disk):
    """Index-building cost of the offline cache, separately."""
    cache = PsychicCache(disk, cost_model=CostModel(ALPHA))
    benchmark(cache.prepare, trace)
