"""LP-tightness bench (§10 future-work: "analysis of the tightness").

Solves exact MILP vs LP relaxation on a grid of small instances.
Empirical results worth recording:

* at micro scales the integrality gap is *substantial* (mean ~0.13,
  max ~0.36 across the grid) — fractional solutions hold fractional
  chunks against the capacity constraint, which integral caches
  cannot; the gap shrinks only when the disk has real slack in
  absolute chunks, not merely as a fraction;
* Psychic sits essentially *on* the exact optimum on these instances
  (``psychic_vs_ip`` ≤ ~0.02) — so Figure 2's Psychic-vs-bound delta
  is dominated by relaxation looseness, not greedy-heuristic loss.
  The paper's "an exact optimal solution is also within a gap of this
  theoretical bound ... a nonzero gap as we have observed" is
  confirmed and quantified.
"""

from repro.experiments import lp_tightness


def test_lp_tightness(benchmark, scale, report, strict):
    result = benchmark.pedantic(
        lambda: lp_tightness.run(scale), rounds=1, iterations=1
    )
    report(result.to_text())

    for row in result.rows:
        # the LP bounds the IP from above (up to solver tolerance)
        assert row["integrality_gap"] >= -1e-6, row
        # and the exact optimum bounds Psychic
        assert row["psychic_vs_ip"] >= -1e-6, row

    if not strict:
        return  # QUICK scale: smoke-run only, shapes asserted at FULL

    # the paper's observed "nonzero gap" — present on these instances
    assert result.extras["gap_max"] > 0.01
    # Psychic is near-optimal where the exact optimum is computable:
    # the greedy-heuristic loss is small compared to the LP looseness
    worst_psychic = max(r["psychic_vs_ip"] for r in result.rows)
    assert worst_psychic < 0.08
    assert worst_psychic < result.extras["gap_max"]

    benchmark.extra_info["gap_mean"] = round(result.extras["gap_mean"], 4)
    benchmark.extra_info["gap_max"] = round(result.extras["gap_max"], 4)
    benchmark.extra_info["worst_psychic_vs_ip"] = round(worst_psychic, 4)
