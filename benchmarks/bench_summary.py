"""Render BENCH_*.json deltas as a GitHub-flavored markdown table.

Usage (from a CI bench job, after the bench pytest run rewrote the
workspace copy of the JSON)::

    python benchmarks/bench_summary.py BENCH_replay.json >> "$GITHUB_STEP_SUMMARY"

For each file the script loads the fresh workspace copy, fetches the
committed baseline with ``git show HEAD:<file>``, flattens both to
dotted numeric leaves (``scales.quick.modes.packed.requests_per_second``)
and prints one table row per metric with the percent delta.  Missing
baselines (a brand-new bench file) degrade to a current-only table
rather than failing the job.
"""

from __future__ import annotations

import json
import subprocess
import sys
from pathlib import Path
from typing import Dict, Iterator, Tuple

#: metadata leaves that are numeric but meaningless to diff
_SKIP_LEAVES = {"timestamp", "pid", "seed"}


def _numeric_leaves(node: object, prefix: str = "") -> Iterator[Tuple[str, float]]:
    if isinstance(node, dict):
        for key in sorted(node):
            path = f"{prefix}.{key}" if prefix else str(key)
            yield from _numeric_leaves(node[key], path)
    elif isinstance(node, bool):
        return
    elif isinstance(node, (int, float)):
        leaf = prefix.rsplit(".", 1)[-1]
        if leaf not in _SKIP_LEAVES:
            yield prefix, float(node)


def _baseline(path: Path) -> Dict[str, float]:
    try:
        blob = subprocess.run(
            ["git", "show", f"HEAD:{path.as_posix()}"],
            capture_output=True,
            text=True,
            check=True,
        ).stdout
        return dict(_numeric_leaves(json.loads(blob)))
    except (subprocess.CalledProcessError, json.JSONDecodeError, OSError):
        return {}


def _fmt(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return f"{value:.4g}"


def summarize(path: Path) -> str:
    current = dict(_numeric_leaves(json.loads(path.read_text())))
    baseline = _baseline(path)
    lines = [
        f"### {path.name}",
        "",
        "| metric | baseline | current | delta |",
        "| --- | ---: | ---: | ---: |",
    ]
    for metric in sorted(current):
        now = current[metric]
        base = baseline.get(metric)
        if base is None:
            delta = "new"
        elif base == 0:
            delta = "—" if now == 0 else "n/a"
        else:
            delta = f"{100.0 * (now - base) / abs(base):+.1f}%"
        lines.append(
            f"| `{metric}` | {'—' if base is None else _fmt(base)}"
            f" | {_fmt(now)} | {delta} |"
        )
    lines.append("")
    return "\n".join(lines)


def main(argv: list) -> int:
    if len(argv) < 2:
        print("usage: bench_summary.py BENCH_file.json [...]", file=sys.stderr)
        return 2
    for name in argv[1:]:
        path = Path(name)
        if not path.exists():
            print(f"### {path.name}\n\n_missing — bench did not produce it_\n")
            continue
        print(summarize(path))
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv))
