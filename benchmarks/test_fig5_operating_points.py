"""Figure 5 bench: operating points in the fill-vs-redirect tradeoff.

Regenerates the scatter data — ingress-to-egress fraction (x) vs
redirection ratio (y), one point per algorithm per alpha in
{4, 2, 1, 0.5} — on the European server with the scaled 1 TB disk.

Reproduction criteria asserted:
* for every algorithm, growing alpha never increases ingress
  (monotone compliance left along the x-axis);
* Cafe and Psychic shrink ingress to a few percent at alpha = 4 while
  xLRU has a high floor (the paper measures ~15% for xLRU; on the
  synthetic traces the floor sits even higher, the *contrast* is the
  criterion);
* redirects rise as ingress is squeezed (the tradeoff itself).
"""

from repro.experiments import fig5


def test_fig5_operating_points(benchmark, scale, report, strict):
    result = benchmark.pedantic(lambda: fig5.run(scale), rounds=1, iterations=1)
    report(result.to_text())

    if not strict:
        return  # QUICK scale: smoke-run only, shapes asserted at FULL

    points = {
        (r["algorithm"], r["alpha"]): r for r in result.rows
    }

    for algo in ("xLRU", "Cafe", "Psychic"):
        ingresses = [points[(algo, a)]["ingress_fraction"] for a in (4.0, 2.0, 1.0, 0.5)]
        # left-to-right: alpha 4 -> 0.5 must not decrease ingress
        for costly, cheaper in zip(ingresses, ingresses[1:]):
            assert costly <= cheaper + 0.03, f"{algo} not compliant"

    # compliance contrast at alpha = 4
    assert points[("Cafe", 4.0)]["ingress_fraction"] < 0.12
    assert points[("Psychic", 4.0)]["ingress_fraction"] < 0.15
    assert (
        points[("xLRU", 4.0)]["ingress_fraction"]
        > 2.0 * points[("Cafe", 4.0)]["ingress_fraction"]
    )

    # squeezing ingress raises redirects (the tradeoff)
    for algo in ("xLRU", "Cafe"):
        assert (
            points[(algo, 4.0)]["redirect_ratio"]
            >= points[(algo, 0.5)]["redirect_ratio"] - 0.02
        )

    benchmark.extra_info["cafe_ingress_alpha4"] = points[("Cafe", 4.0)][
        "ingress_fraction"
    ]
    benchmark.extra_info["xlru_ingress_alpha4"] = points[("xLRU", 4.0)][
        "ingress_fraction"
    ]
