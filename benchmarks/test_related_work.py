"""Related-work comparison: the measurable version of Section 3.

The paper argues (without a table) that classic replacement policies —
pull-through LRU, frequency-based schemes, LRU-K, Greedy-Dual-Size,
even offline-optimal Belady replacement — cannot address the video-CDN
problem because they lack the serve-vs-redirect decision and cannot
comply with ``alpha_F2R``.  This bench runs them all side by side with
the paper's algorithms on the European trace and checks that argument:

* at alpha = 1 the classic policies are merely mediocre;
* at alpha = 2 every always-serve policy (PullLRU, GDS, Belady) falls
  far behind Cafe, Belady's perfect replacement notwithstanding;
* admission-based variants (LFU, LRU-K) do better but still trail the
  cost-aware Cafe.
"""

from repro.analysis.tables import format_table
from repro.experiments.common import scaled_disk_chunks, server_trace
from repro.sim.runner import RunConfig, run_matrix

ALGORITHMS = ("PullLRU", "GDS", "LFU", "LRU-K", "xLRU", "Cafe", "Psychic", "Belady")
SERVER = "europe"


def test_related_work_comparison(benchmark, scale, report, strict):
    trace = server_trace(SERVER, scale)
    disk = scaled_disk_chunks(SERVER, scale)

    def run():
        out = {}
        for alpha in (1.0, 2.0):
            configs = [
                RunConfig(algo, disk, alpha, label=algo) for algo in ALGORITHMS
            ]
            out[alpha] = run_matrix(configs, trace)
        return out

    results = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for algo in ALGORITHMS:
        row = {"algorithm": algo}
        for alpha in (1.0, 2.0):
            steady = results[alpha][algo].steady
            row[f"eff_a{alpha:g}"] = steady.efficiency
            row[f"ingress_a{alpha:g}"] = steady.ingress_fraction
        rows.append(row)
    report(format_table(
        rows,
        title=f"Related-work comparison on {SERVER} (disk={disk} chunks)",
    ))

    if not strict:
        return  # QUICK scale: smoke-run only, shapes asserted at FULL

    eff2 = {algo: results[2.0][algo].steady.efficiency for algo in ALGORITHMS}
    # online always-serve policies collapse under costly ingress
    for classic in ("PullLRU", "GDS"):
        assert eff2["Cafe"] > eff2[classic] + 0.08, classic
    # Belady: even *offline-optimal* replacement without a redirect
    # decision does not beat the online cost-aware cache — knowing the
    # future is worth less than being allowed to say no
    assert eff2["Cafe"] > eff2["Belady"]
    # admission variants help but don't reach cost-aware Cafe
    for variant in ("LFU", "LRU-K"):
        assert eff2["Cafe"] > eff2[variant], variant
    # Psychic stays the practical upper bound
    assert eff2["Psychic"] >= max(
        v for k, v in eff2.items() if k != "Psychic"
    ) - 0.02

    benchmark.extra_info["efficiency_alpha2"] = {
        k: round(v, 3) for k, v in eff2.items()
    }
