"""Fleet-assignment bench: §10's "finer tuning of alpha_F2R".

Measures each regional edge's Figure-5 tradeoff curve at FULL scale,
then solves the backbone-budget assignment and compares it against
every uniform-alpha fleet.  Criterion: under a budget 20% above the
most frugal fleet, the optimized mixed assignment redirects no more
than the best *feasible* uniform fleet — and strictly less whenever
the optimum is genuinely mixed.
"""

from repro.analysis.tables import format_table
from repro.cdn.fleet import measure_tradeoff_curves, optimize_alpha_assignment
from repro.experiments.common import scaled_disk_chunks, server_trace

SERVERS = ("europe", "africa", "asia")
ALPHAS = (0.5, 1.0, 2.0, 4.0)


def test_fleet_alpha_assignment(benchmark, scale, report, strict):
    traces = {name: server_trace(name, scale) for name in SERVERS}
    disks = {name: scaled_disk_chunks(name, scale) for name in SERVERS}

    def run():
        curves = measure_tradeoff_curves(traces, disks, alphas=ALPHAS)
        frugal = sum(min(p.ingress_bytes for p in c) for c in curves.values())
        budget = int(1.2 * frugal)
        assignment = optimize_alpha_assignment(curves, budget)
        return curves, budget, assignment

    curves, budget, assignment = benchmark.pedantic(run, rounds=1, iterations=1)

    def uniform(alpha):
        ingress = sum(
            next(p for p in c if p.alpha == alpha).ingress_bytes
            for c in curves.values()
        )
        redirected = sum(
            next(p for p in c if p.alpha == alpha).redirected_bytes
            for c in curves.values()
        )
        return ingress, redirected

    rows = []
    for alpha in ALPHAS:
        ingress, redirected = uniform(alpha)
        rows.append(
            {
                "fleet": f"uniform alpha={alpha:g}",
                "ingress_gb": ingress / 1e9,
                "redirects_gb": redirected / 1e9,
                "fits_budget": ingress <= budget,
            }
        )
    rows.append(
        {
            "fleet": f"optimized ({assignment.alphas})",
            "ingress_gb": assignment.total_ingress_bytes / 1e9,
            "redirects_gb": assignment.total_redirected_bytes / 1e9,
            "fits_budget": True,
        }
    )
    report(format_table(
        rows,
        title=f"Fleet assignment under backbone budget {budget / 1e9:.2f} GB",
    ))

    if not strict:
        return  # QUICK scale: smoke-run only, shapes asserted at FULL

    assert assignment.total_ingress_bytes <= budget
    feasible_uniforms = [
        uniform(a)[1] for a in ALPHAS if uniform(a)[0] <= budget
    ]
    assert feasible_uniforms, "budget leaves no uniform baseline"
    assert assignment.total_redirected_bytes <= min(feasible_uniforms)

    benchmark.extra_info["assignment"] = {
        k: v for k, v in sorted(assignment.alphas.items())
    }
    benchmark.extra_info["budget_utilization"] = round(
        assignment.budget_utilization, 3
    )
