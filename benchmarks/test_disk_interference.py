"""Disk-interference bench: the physical cost of ingress (Section 2).

Applies the write/read-interference disk model ("for every extra
write-block operation we lose 1.2-1.3 reads") to every algorithm's
replay on the European trace at alpha = 2.  A disk array provisioned
for Cafe's peak load (plus 15% headroom) must never overload under
Cafe, while the eager fillers spill over — the quantified argument for
constrained-ingress caching on disk-bound servers.
"""

from repro.analysis.tables import format_table
from repro.experiments.common import scaled_disk_chunks, server_trace
from repro.sim.diskmodel import DiskModel, analyze_disk_load
from repro.sim.runner import RunConfig, run_matrix

SERVER = "europe"
ALPHA = 2.0
ALGORITHMS = ("PullLRU", "xLRU", "Cafe", "Psychic")


def test_disk_interference(benchmark, scale, report, strict):
    trace = server_trace(SERVER, scale)
    disk = scaled_disk_chunks(SERVER, scale)

    def run():
        configs = [RunConfig(a, disk, ALPHA, label=a) for a in ALGORITHMS]
        results = run_matrix(configs, trace)
        probe = DiskModel(read_blocks_per_second=1.0)
        cafe_peak = max(
            s.read_blocks_per_second
            + probe.write_read_penalty * s.write_blocks_per_second
            for s in analyze_disk_load(results["Cafe"], probe).samples
        )
        model = DiskModel(read_blocks_per_second=1.15 * cafe_peak)
        return {
            algo: analyze_disk_load(results[algo], model)
            for algo in ALGORITHMS
        }

    reports = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = [
        {
            "algorithm": algo,
            "reads_lost_to_writes": r.reads_lost_to_writes,
            "overloaded_buckets": r.overloaded_buckets,
            "overload_fraction": r.overload_fraction,
            "peak_utilization": r.peak_utilization,
        }
        for algo, r in reports.items()
    ]
    report(format_table(
        rows,
        title=f"Disk interference on {SERVER} (alpha={ALPHA}, "
        f"array sized to Cafe peak + 15%)",
    ))

    if not strict:
        return  # QUICK scale: smoke-run only, shapes asserted at FULL

    assert reports["Cafe"].overloaded_buckets == 0
    assert reports["PullLRU"].overloaded_buckets > 0
    assert (
        reports["Cafe"].reads_lost_to_writes
        < 0.5 * reports["PullLRU"].reads_lost_to_writes
    )
    assert (
        reports["Cafe"].reads_lost_to_writes
        < reports["xLRU"].reads_lost_to_writes
    )
    benchmark.extra_info["overloaded_buckets"] = {
        algo: r.overloaded_buckets for algo, r in reports.items()
    }
