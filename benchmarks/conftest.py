"""Shared benchmark fixtures.

Benches run the figure experiments at the scale selected by
``REPRO_SCALE`` (default: ``full`` — month-long traces at quarter
volume) and print the regenerated figure tables straight to the
terminal (bypassing capture) so ``pytest benchmarks/ --benchmark-only``
output doubles as the reproduction report.
"""

import pytest

from repro.experiments import FULL, scale_from_env


@pytest.fixture(scope="session")
def scale():
    return scale_from_env(default=FULL)


@pytest.fixture(scope="session")
def strict(scale):
    """Whether to enforce the reproduction-shape assertions.

    The shape criteria are calibrated for FULL/PAPER scale; QUICK
    traces are too small and noisy to hold them reliably, so at QUICK
    the benches only smoke-run and print their tables.
    """
    return scale.name != "quick"


@pytest.fixture
def report(capsys):
    """Print through the capture so tables land in the bench output."""

    def _print(*parts):
        with capsys.disabled():
            print()
            for part in parts:
                print(part)

    return _print
