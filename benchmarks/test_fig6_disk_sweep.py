"""Figure 6 bench: efficiency vs disk capacity (European server).

Regenerates the disk sweep at alpha_F2R = 2 for xLRU/Cafe/Psychic, plus
the derived "equivalent disk" claim of the Section 9.2 text: at
alpha = 2 xLRU needs 2-3x Cafe's disk for equal efficiency, at
alpha = 1 only up to ~33% more.

Reproduction criteria asserted:
* every algorithm improves (weakly) with more disk;
* the Cafe-over-xLRU gap widens as disk shrinks;
* the equivalent-disk factor at alpha = 2 is >= 2 somewhere in range;
* at alpha = 1 the factor is much smaller than at alpha = 2.
"""

import math

from repro.experiments import fig6


def test_fig6_disk_sweep(benchmark, scale, report, strict):
    result = benchmark.pedantic(lambda: fig6.run(scale), rounds=1, iterations=1)
    report(result.to_text())

    if not strict:
        return  # QUICK scale: smoke-run only, shapes asserted at FULL

    rows = result.rows
    for algo in ("xLRU", "Cafe", "Psychic"):
        effs = [r[algo] for r in rows]
        for small, large in zip(effs, effs[1:]):
            assert large >= small - 0.03, f"{algo} degraded with more disk"

    gaps = [r["Cafe"] - r["xLRU"] for r in rows]
    assert gaps[0] > gaps[-1] - 0.03, "gap must widen for small disks"
    assert gaps[0] > 0.05

    factors2 = [
        f for f in result.extras["xlru_disk_factor_vs_cafe"] if math.isfinite(f)
    ]
    assert factors2, "every factor infinite: xLRU never catches Cafe in range"
    assert max(
        f for f in result.extras["xlru_disk_factor_vs_cafe"][:3]
        if True
    ) >= 2.0 or any(
        math.isinf(f) for f in result.extras["xlru_disk_factor_vs_cafe"][:3]
    ), "paper: xLRU needs 2-3x disk at alpha=2"

    factors1 = result.extras["xlru_disk_factor_vs_cafe_alpha1"]
    finite1 = [f for f in factors1 if math.isfinite(f)]
    if finite1 and factors2:
        assert min(finite1) < max(
            factors2 + [2.0]
        ), "alpha=1 factor should be far below the alpha=2 factor"

    benchmark.extra_info["disk_factors_alpha2"] = [
        round(f, 2) if math.isfinite(f) else "inf"
        for f in result.extras["xlru_disk_factor_vs_cafe"]
    ]
