"""Figure 3 bench: month-long time series on the European server.

Regenerates the three panels (redirect ratio, ingress %, efficiency per
hour) for xLRU/Cafe/Psychic at alpha_F2R = 2 on the scaled "1 TB" disk,
plus the steady-state summary with each cache's gain over xLRU.

Reproduction criteria asserted:
* a diurnal swing is visible in each cache's hourly ingress;
* ingress drops significantly from xLRU to Cafe and Psychic;
* steady-state gains over xLRU are clearly positive (the paper
  measures +10.1% for Cafe and +12.7% for Psychic).
"""

import math

from repro.analysis.tables import format_series
from repro.experiments import fig3


def _series_of(result, algorithm, field):
    return [
        (r["t_hours"], r[field])
        for r in result.extras["series"]
        if r["algorithm"] == algorithm and not math.isnan(r[field])
    ]


def test_fig3_timeseries(benchmark, scale, report, strict):
    result = benchmark.pedantic(lambda: fig3.run(scale), rounds=1, iterations=1)

    tables = [result.to_text().split("\nseries:")[0]]
    for field in ("redirect_ratio", "ingress_fraction", "efficiency"):
        series = {}
        times = None
        for algo in ("xLRU", "Cafe", "Psychic"):
            points = _series_of(result, algo, field)
            algo_times = [t for t, _ in points]
            if times is None or len(algo_times) < len(times):
                times = algo_times
            series[algo] = dict(points)
        rows = {
            algo: [values.get(t, float("nan")) for t in times]
            for algo, values in series.items()
        }
        tables.append(
            format_series(
                [t * 3600.0 for t in times],
                rows,
                title=f"Figure 3 panel: {field} (hourly, downsampled)",
                max_rows=24,
            )
        )
    report(*tables)

    if not strict:
        return  # QUICK scale: smoke-run only, shapes asserted at FULL

    by_algo = {r["algorithm"]: r for r in result.rows}
    assert by_algo["Cafe"]["gain_over_xLRU"] > 0.04
    assert by_algo["Psychic"]["gain_over_xLRU"] > 0.06
    assert (
        by_algo["Cafe"]["ingress_fraction"]
        < 0.6 * by_algo["xLRU"]["ingress_fraction"]
    ), "the ingress drop from xLRU to Cafe is the figure's key feature"

    # diurnal pattern: peak-hour ingress well above trough-hour ingress
    for algo in ("xLRU", "Cafe"):
        hourly = [v for _t, v in _series_of(result, algo, "ingress_fraction")]
        hourly = hourly[len(hourly) // 2 :]  # steady half
        if len(hourly) >= 48:
            top = sorted(hourly)[-len(hourly) // 10]
            bottom = sorted(hourly)[len(hourly) // 10]
            assert top > bottom, f"no diurnal swing in {algo} ingress"

    benchmark.extra_info["cafe_gain"] = by_algo["Cafe"]["gain_over_xLRU"]
    benchmark.extra_info["psychic_gain"] = by_algo["Psychic"]["gain_over_xLRU"]
