"""Throughput benches for the low-level data structures.

These are real pytest-benchmark measurements (multiple rounds): the
paper's structures promise O(1) recency-list operations and O(log n)
treap operations, and the caches' request rates bottleneck on them.
"""

import random

from repro.structures.ewma import IatEstimator
from repro.structures.lru import AccessRecencyList
from repro.structures.treap import TreapMap

N = 10_000


def test_lru_touch_churn(benchmark):
    """touch() over a working set with constant churn."""
    keys = list(range(N))

    def run():
        lru = AccessRecencyList()
        t = 0.0
        for key in keys:
            lru.touch(key % 2048, t)
            t += 1.0
        return lru

    lru = benchmark(run)
    assert len(lru) <= 2048


def test_lru_pop_oldest(benchmark):
    def setup():
        lru = AccessRecencyList()
        for i in range(N):
            lru.touch(i, float(i))
        return (lru,), {}

    def run(lru):
        while lru:
            lru.pop_oldest()

    benchmark.pedantic(run, setup=setup, rounds=10)


def test_treap_insert_remove_mixed(benchmark):
    """The Cafe access pattern: re-key hot items, evict cold ones."""
    rng = random.Random(7)
    ops = [(rng.randrange(4096), rng.random()) for _ in range(N)]

    def run():
        treap = TreapMap(seed=1)
        for item, score in ops:
            treap.insert(item, score)
            if len(treap) > 2048:
                treap.pop_min()
        return treap

    treap = benchmark(run)
    assert len(treap) <= 2048


def test_treap_n_smallest(benchmark):
    treap = TreapMap(seed=2)
    rng = random.Random(8)
    for i in range(N):
        treap.insert(i, rng.random())

    result = benchmark(treap.n_smallest, 16)
    assert len(result) == 16


def test_ewma_record_and_key(benchmark):
    """Per-request stats updates: one record + key per chunk."""
    items = [(i % 4096) for i in range(N)]

    def run():
        est = IatEstimator(0.25)
        t = 0.0
        for item in items:
            est.record(item, t)
            est.key(item)
            t += 0.5
        return est

    est = benchmark(run)
    assert len(est) == 4096
