"""CDN-wide bench: Cafe as the hierarchy's building block (§10).

Not a paper figure — the paper leaves CDN-wide experiments as future
work ("We are currently working on CDN-wide experiments with Cafe
Cache") — but the single-server results predict the outcome, which this
bench checks: with everything else fixed, Cafe edges pull less backbone
(ingress) traffic than xLRU edges at better efficiency, and classic
pull-through LRU edges flood the backbone.
"""

from repro.experiments import cdnwide


def test_cdnwide_hierarchy(benchmark, scale, report, strict):
    result = benchmark.pedantic(lambda: cdnwide.run(scale), rounds=1, iterations=1)
    report(result.to_text())

    if not strict:
        return  # QUICK scale: smoke-run only, shapes asserted at FULL

    rows = {r["edge_algo"]: r for r in result.rows}
    cafe, xlru, pull = rows["Cafe"], rows["xLRU"], rows["PullLRU"]

    # the constrained tier's backbone traffic: Cafe < xLRU < PullLRU
    assert cafe["edge_ingress_gb"] < xlru["edge_ingress_gb"]
    assert xlru["edge_ingress_gb"] < pull["edge_ingress_gb"]

    # and Cafe pays for it with *better*, not worse, edge efficiency
    assert cafe["edge_eff_mean"] > xlru["edge_eff_mean"]
    assert cafe["edge_eff_mean"] > pull["edge_eff_mean"]

    # every variant keeps most user traffic off the origin
    for row in result.rows:
        assert row["origin_share_of_user_bytes"] < 0.6, row["edge_algo"]

    benchmark.extra_info["origin_gb"] = {
        algo: round(rows[algo]["origin_gb"], 2) for algo in rows
    }
    benchmark.extra_info["edge_ingress_gb"] = {
        algo: round(rows[algo]["edge_ingress_gb"], 2) for algo in rows
    }
