"""Benches for the Section 10 extension experiments.

Not paper figures — these regenerate the future-work directions this
repository implements beyond the paper's evaluation: flash-crowd
robustness and off-peak proactive caching.  They complement
``test_cdnwide.py`` (the third extension).
"""

from repro.experiments import proactive, robustness


def test_robustness_flash_crowd(benchmark, scale, report, strict):
    result = benchmark.pedantic(lambda: robustness.run(scale), rounds=1, iterations=1)
    report(result.to_text())

    if not strict:
        return  # QUICK scale: smoke-run only, shapes asserted at FULL

    rows = {r["algorithm"]: r for r in result.rows}
    for algo, row in rows.items():
        # every algorithm must absorb most of the flash demand locally
        # (a flash video is the most cacheable content there is)...
        assert row["flash_local_serve_ratio"] > 0.8, algo
        # ...and recover to near its no-event baseline afterwards
        assert row["recovery_delta"] > -0.08, algo

    # the cost-aware caches absorb at least as well as xLRU
    assert (
        rows["Cafe"]["flash_local_serve_ratio"]
        >= rows["xLRU"]["flash_local_serve_ratio"] - 0.05
    )
    benchmark.extra_info["recovery_delta"] = {
        algo: round(rows[algo]["recovery_delta"], 3) for algo in rows
    }


def test_proactive_prefetching(benchmark, scale, report, strict):
    result = benchmark.pedantic(lambda: proactive.run(scale), rounds=1, iterations=1)
    report(result.to_text())

    if not strict:
        return  # QUICK scale: smoke-run only, shapes asserted at FULL

    rows = {r["prefetch_budget"]: r for r in result.rows}
    budgets = sorted(rows)
    base = rows[0]

    # prefetching actually happened at nonzero budgets
    for budget in budgets[1:]:
        assert rows[budget]["prefetched_chunks"] > 0

    # the paper frames this as an open direction, not a guaranteed win;
    # the criterion is spare ingress is used without *hurting* the
    # demand-side efficiency materially
    for budget in budgets[1:]:
        assert rows[budget]["efficiency"] > base["efficiency"] - 0.03, budget
        assert rows[budget]["ingress_fraction"] >= base["ingress_fraction"] - 0.02

    best_gap = min(r["gap_to_psychic"] for r in result.rows)
    benchmark.extra_info["best_gap_to_psychic"] = round(best_gap, 3)
    benchmark.extra_info["baseline_gap_to_psychic"] = round(
        base["gap_to_psychic"], 3
    )
