#!/usr/bin/env python3
"""Holding a server at a target ingress with the alpha_F2R control loop.

An operator knows what a server's uplink can take — say, ingress at no
more than 5% of egress — but the right alpha_F2R to get there depends
on the workload and drifts with it.  The paper's Section 10 suggests
"dynamic adjustment of alpha_F2R ... in a small range through a control
loop"; this example runs that loop (repro.cdn.AlphaController) around a
Cafe cache and compares it against fixed settings.

Run:  python examples/alpha_autotune.py
"""

from repro import CafeCache, CostModel, SERVER_PROFILES, TraceGenerator
from repro.cdn import AlphaController
from repro.sim.engine import replay
from repro.sim.metrics import MetricsCollector

TARGET_INGRESS = 0.05


def main() -> None:
    profile = SERVER_PROFILES["europe"].scaled(0.08)
    trace = TraceGenerator(profile).generate(days=14.0)
    print(f"{len(trace)} requests over 14 days; target ingress: "
          f"{TARGET_INGRESS:.0%} of egress\n")

    print(f"{'configuration':<28} {'ingress':>8} {'redirect':>9} {'eff':>7}")
    for alpha in (1.0, 2.0, 4.0):
        cache = CafeCache(768, cost_model=CostModel(alpha))
        steady = replay(cache, trace).steady
        print(f"fixed alpha = {alpha:<14g} {steady.ingress_fraction:>8.3f} "
              f"{steady.redirect_ratio:>9.3f} {steady.efficiency:>7.3f}")

    cache = CafeCache(768, cost_model=CostModel(2.0))
    controller = AlphaController(
        cache,
        target_ingress_fraction=TARGET_INGRESS,
        interval=6 * 3600.0,
        min_window_egress=32 << 20,
    )
    metrics = MetricsCollector(cache.cost_model)
    for request in trace:
        metrics.record(request, controller.handle(request))
    steady = metrics.steady_state()
    print(f"{'controlled (start alpha=2)':<28} {steady.ingress_fraction:>8.3f} "
          f"{steady.redirect_ratio:>9.3f} {steady.efficiency:>7.3f}")

    print(f"\nfinal alpha: {controller.alpha:.2f} "
          f"after {len(controller.adjustments)} adjustments")
    print("trajectory (time, measured ingress, alpha):")
    for step in controller.adjustments[:: max(1, len(controller.adjustments) // 8)]:
        print(f"  day {step.t / 86400.0:5.1f}   "
              f"ingress {step.measured_ingress_fraction:.3f}   "
              f"alpha {step.alpha_before:.2f} -> {step.alpha_after:.2f}")


if __name__ == "__main__":
    main()
