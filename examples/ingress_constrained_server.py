#!/usr/bin/env python3
"""Choosing a server's operating point with alpha_F2R (paper Section 4.1).

A CDN operator has different kinds of server locations:

* a disk-constrained rack whose writes hurt reads  -> limit ingress
  (alpha_F2R = 2 or 4);
* a remote rack inside the user's ISP where fill and redirect cost the
  same                                             -> alpha_F2R = 1;
* an underutilized server with spare uplink        -> cheap ingress
  (alpha_F2R = 0.5).

This example sweeps alpha_F2R for xLRU and Cafe on the same trace and
prints each cache's operating point (ingress fraction vs redirect
ratio) — Figure 5 of the paper.  The takeaway: Cafe *complies* with the
requested tradeoff (its ingress shrinks to a few percent when asked),
while xLRU's ingress barely moves.

Run:  python examples/ingress_constrained_server.py
"""

from repro import SERVER_PROFILES, TraceGenerator
from repro.analysis import format_table
from repro.sim.runner import sweep_alpha


def main() -> None:
    profile = SERVER_PROFILES["europe"].scaled(0.08)
    trace = TraceGenerator(profile).generate(days=10.0)
    print(f"{len(trace)} requests over 10 days\n")

    alphas = (4.0, 2.0, 1.0, 0.5)  # costly ingress -> cheap ingress
    sweep = sweep_alpha(trace, disk_chunks=768, alphas=alphas,
                        algorithms=("xLRU", "Cafe"))

    rows = []
    for alpha in alphas:
        for algo, result in sweep[alpha].items():
            s = result.steady
            rows.append({
                "alpha_F2R": alpha,
                "cache": algo,
                "ingress_fraction": s.ingress_fraction,
                "redirect_ratio": s.redirect_ratio,
                "efficiency": s.efficiency,
            })
    print(format_table(rows, title="Operating points (steady state)"))

    xlru_ingress = [r["ingress_fraction"] for r in rows
                    if r["cache"] == "xLRU" and r["alpha_F2R"] >= 2.0]
    cafe_ingress = [r["ingress_fraction"] for r in rows
                    if r["cache"] == "Cafe" and r["alpha_F2R"] >= 2.0]
    print(
        f"\nWith costly ingress (alpha >= 2): xLRU still ingresses "
        f"{min(xlru_ingress):.0%}+ of egress, Cafe shrinks to "
        f"{min(cafe_ingress):.0%} — it respects the server's constraint."
    )


if __name__ == "__main__":
    main()
