#!/usr/bin/env python3
"""Fleet-level alpha_F2R assignment under a backbone ingress budget.

Section 10 of the paper: Cafe's defined, alpha-controlled behaviour
(Figure 5) makes it "the underlying building block to adjust traffic
between any group of constrained/non-constrained servers".  This
example does exactly that for three regional edge servers whose
cache-fill traffic shares one backbone link:

1. measure each server's alpha -> (ingress, redirects) tradeoff curve;
2. solve the multiple-choice knapsack: one alpha per server, minimum
   total redirects, total ingress within the backbone budget;
3. compare against naive uniform-alpha fleets.

Run:  python examples/fleet_optimization.py
"""

from repro import SERVER_PROFILES, TraceGenerator
from repro.cdn import measure_tradeoff_curves, optimize_alpha_assignment

ALPHAS = (0.5, 1.0, 2.0, 4.0)


def main() -> None:
    traces = {}
    disks = {}
    for name in ("europe", "africa", "asia"):
        profile = SERVER_PROFILES[name].scaled(0.05)
        traces[name] = TraceGenerator(profile).generate(days=8.0)
        disks[name] = 512
        print(f"edge {name}: {len(traces[name])} requests")

    print("\nmeasuring tradeoff curves (Figure 5, per server)...")
    curves = measure_tradeoff_curves(traces, disks, alphas=ALPHAS)
    for name, points in curves.items():
        row = "  ".join(
            f"a={p.alpha:g}: in={p.ingress_bytes / 1e9:.2f}GB/re={p.redirected_bytes / 1e9:.2f}GB"
            for p in points
        )
        print(f"  {name:>7}: {row}")

    # uniform fleets for reference
    def uniform(alpha):
        ingress = sum(
            next(p for p in c if p.alpha == alpha).ingress_bytes
            for c in curves.values()
        )
        redirected = sum(
            next(p for p in c if p.alpha == alpha).redirected_bytes
            for c in curves.values()
        )
        return ingress, redirected

    print(f"\n{'fleet':<26} {'ingress GB':>11} {'redirects GB':>13}")
    for alpha in ALPHAS:
        ingress, redirected = uniform(alpha)
        print(f"uniform alpha = {alpha:<10g} {ingress / 1e9:>11.2f} {redirected / 1e9:>13.2f}")

    # budget: 20% above the most frugal possible fleet
    frugal = sum(min(p.ingress_bytes for p in c) for c in curves.values())
    budget = int(1.2 * frugal)
    assignment = optimize_alpha_assignment(curves, budget)
    print(
        f"{'optimized (budget bound)':<26} "
        f"{assignment.total_ingress_bytes / 1e9:>11.2f} "
        f"{assignment.total_redirected_bytes / 1e9:>13.2f}"
    )
    print(f"\nbackbone budget: {budget / 1e9:.2f} GB "
          f"({assignment.budget_utilization:.0%} used)")
    print("per-server assignment:", assignment.alphas)
    print("Under the same budget, the mixed assignment redirects less "
          "than any uniform fleet that fits: the optimizer relaxes alpha "
          "exactly where a unit of ingress removes the most redirects.")


if __name__ == "__main__":
    main()
