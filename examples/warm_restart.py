#!/usr/bin/env python3
"""Warm restart: checkpoint a cache, 'restart', continue the replay.

Production cache servers restart without losing their disks — and a
long simulation should be able to do the same.  This example warms a
Cafe cache on the first half of a trace, snapshots it to JSON,
restores into a fresh process-equivalent instance, and shows that (a)
the restored cache continues with byte-identical decisions and (b) a
cold restart instead would pay the whole warm-up again.

Run:  python examples/warm_restart.py
"""

import tempfile
from pathlib import Path

from repro import CafeCache, CostModel, SERVER_PROFILES, TraceGenerator
from repro.core.snapshot import load_snapshot, save_snapshot
from repro.sim.metrics import MetricsCollector


def drive(cache, trace):
    metrics = MetricsCollector(cache.cost_model)
    for request in trace:
        metrics.record(request, cache.handle(request))
    return metrics.totals()


def main() -> None:
    profile = SERVER_PROFILES["europe"].scaled(0.06)
    trace = TraceGenerator(profile).generate(days=10.0)
    half = len(trace) // 2
    warmup, continuation = trace[:half], trace[half:]
    print(f"{len(trace)} requests; checkpoint after {half}\n")

    cost_model = CostModel(alpha_f2r=2.0)
    original = CafeCache(512, cost_model=cost_model)
    drive(original, warmup)
    print(f"warmed cache: {len(original)} chunks resident, "
          f"{original.tracked_chunks} chunks with IAT history")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "cafe-checkpoint.json"
        save_snapshot(original, path)
        print(f"snapshot: {path.stat().st_size / 1024:.0f} KiB of JSON")

        restored = CafeCache(512, cost_model=CostModel(alpha_f2r=2.0))
        load_snapshot(restored, path)

    warm_totals = drive(restored, continuation)
    reference = drive(original, continuation)
    cold = CafeCache(512, cost_model=CostModel(alpha_f2r=2.0))
    cold_totals = drive(cold, continuation)

    print(f"\n{'continuation (2nd half)':<26} {'efficiency':>10} {'ingress GB':>11}")
    print(f"{'original (never stopped)':<26} {reference.efficiency:>10.3f} "
          f"{reference.ingress_bytes / 1e9:>11.2f}")
    print(f"{'restored from snapshot':<26} {warm_totals.efficiency:>10.3f} "
          f"{warm_totals.ingress_bytes / 1e9:>11.2f}")
    print(f"{'cold restart':<26} {cold_totals.efficiency:>10.3f} "
          f"{cold_totals.ingress_bytes / 1e9:>11.2f}")
    identical = (
        warm_totals.efficiency == reference.efficiency
        and warm_totals.ingress_bytes == reference.ingress_bytes
    )
    print(f"\nrestored == never-stopped: {identical}")


if __name__ == "__main__":
    main()
