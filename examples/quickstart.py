#!/usr/bin/env python3
"""Quickstart: simulate one video CDN cache server.

Generates a synthetic week of requests for the European server profile,
replays it through Cafe Cache with an ingress-constrained configuration
(alpha_F2R = 2), and prints the metrics the paper reports: cache
efficiency (Eq. 2), redirection ratio and ingress-to-egress fraction.

Run:  python examples/quickstart.py
"""

from repro import (
    CafeCache,
    CostModel,
    SERVER_PROFILES,
    TraceGenerator,
    XlruCache,
    replay,
)


def main() -> None:
    # A scaled-down European server: ~5% of the full synthetic volume
    # keeps this example under a few seconds.
    profile = SERVER_PROFILES["europe"].scaled(0.05)
    print(f"generating 7-day trace for {profile.region} "
          f"({profile.num_videos} videos, {profile.sessions_per_day:.0f} sessions/day)")
    trace = TraceGenerator(profile).generate(days=7.0)
    print(f"  {len(trace)} requests")

    # An ingress-constrained server: cache-filling a byte is twice as
    # costly as redirecting one (the paper's default for constrained
    # locations). The disk holds 512 chunks of 2 MB = 1 GiB.
    cost_model = CostModel(alpha_f2r=2.0)
    for cache_cls in (XlruCache, CafeCache):
        cache = cache_cls(disk_chunks=512, cost_model=cost_model)
        result = replay(cache, trace)
        steady = result.steady  # second half of the trace, warmed up
        print(
            f"{cache.name:>5}: efficiency={steady.efficiency:.3f}  "
            f"redirect_ratio={steady.redirect_ratio:.3f}  "
            f"ingress_fraction={steady.ingress_fraction:.3f}"
        )
    print("Cafe should beat xLRU clearly at alpha_F2R=2 — that is the "
          "paper's headline result.")


if __name__ == "__main__":
    main()
