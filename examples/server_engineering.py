#!/usr/bin/env python3
"""Operational models behind alpha_F2R: disks, egress, co-location.

Section 2 of the paper grounds the ingress-vs-redirect preference in
three operational realities.  This example makes each one measurable:

1. **Disk write interference** — "for every extra write-block operation
   we lose 1.2-1.3 reads": compare the read capacity destroyed by an
   eager cache-all policy vs Cafe at alpha = 2.
2. **Saturated egress** — a server at its serving capacity gains
   nothing from ingress: gate the same trace at a fixed egress rate and
   compare what different alpha settings ingress for identical egress.
3. **Co-located sharding** — "dividing the file ID space over
   co-located servers to balance load and minimize co-located
   duplicates": split one location's disk across four shards.

Run:  python examples/server_engineering.py
"""

from repro import CafeCache, CostModel, PullThroughLruCache, SERVER_PROFILES, TraceGenerator, replay
from repro.cdn import ShardedServer
from repro.sim import DiskModel, EgressCapacityGate, analyze_disk_load
from repro.sim.metrics import MetricsCollector


def main() -> None:
    profile = SERVER_PROFILES["europe"].scaled(0.06)
    trace = TraceGenerator(profile).generate(days=10.0)
    print(f"{len(trace)} requests over 10 days\n")

    # -- 1. disk write interference ------------------------------------------
    print("1. Disk write interference (alpha = 2):")
    results = {
        cache_cls.name: replay(cache_cls(512, cost_model=CostModel(2.0)), trace)
        for cache_cls in (PullThroughLruCache, CafeCache)
    }
    # provision the disk array for Cafe's peak load + 15% headroom
    probe = DiskModel(read_blocks_per_second=1.0)
    cafe_peak = max(
        s.read_blocks_per_second + probe.write_read_penalty * s.write_blocks_per_second
        for s in analyze_disk_load(results["Cafe"], probe).samples
    )
    model = DiskModel(read_blocks_per_second=1.15 * cafe_peak)
    print(f"   (disk array provisioned at {model.read_blocks_per_second:.1f} "
          f"read blocks/s = Cafe's peak + 15%)")
    for name, result in results.items():
        report = analyze_disk_load(result, model)
        print(
            f"   {name:>8}: reads lost to writes = "
            f"{report.reads_lost_to_writes:,.0f} blocks, "
            f"overloaded hours = {report.overloaded_buckets}/{len(report.samples)}, "
            f"peak util = {report.peak_utilization:.2f}"
        )

    # -- 2. saturated egress ---------------------------------------------------
    demand = sum(r.num_bytes for r in trace)
    duration = trace[-1].t - trace[0].t
    rate = 0.35 * demand / duration
    print(f"\n2. Egress gated at {rate / 1e3:.0f} KB/s "
          f"(~35% of mean demand): alpha only changes *ingress*:")
    for alpha in (1.0, 2.0):
        cache = CafeCache(512, cost_model=CostModel(alpha))
        gate = EgressCapacityGate(
            cache, egress_bytes_per_second=rate,
            burst_seconds=(16 << 20) / rate,
        )
        metrics = MetricsCollector(cache.cost_model)
        for r in trace:
            metrics.record(r, gate.handle(r))
        totals = metrics.totals()
        print(
            f"   alpha={alpha:g}: egress={totals.egress_bytes / 1e9:6.2f} GB  "
            f"ingress={totals.ingress_bytes / 1e9:5.2f} GB  "
            f"(overload redirects: {gate.overload_redirects})"
        )
    print("   -> same served volume; the alpha=1 server paid extra "
          "ingress for nothing (the paper's 'wasted ingress').")

    # -- 3. co-located sharding -----------------------------------------------
    print("\n3. One 512-chunk location vs 4 x 128-chunk shards (alpha = 2):")
    mono = replay(CafeCache(512, cost_model=CostModel(2.0)), trace).steady
    shards = ShardedServer(
        [CafeCache(128, cost_model=CostModel(2.0)) for _ in range(4)]
    )
    sharded_result = replay(shards, trace)
    sharded = sharded_result.steady
    print(f"   monolithic: eff={mono.efficiency:.3f}")
    print(f"   4 shards:   eff={sharded.efficiency:.3f} "
          f"(load balance max/mean = {shards.load_balance():.2f}, "
          f"no cross-shard duplicates by construction)")


if __name__ == "__main__":
    main()
