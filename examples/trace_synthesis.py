#!/usr/bin/env python3
"""Trace synthesis and validation: what the workload generator produces.

The paper's traces are proprietary; this repository substitutes a
synthetic generator (see DESIGN.md).  This example generates a trace,
validates that it exhibits the statistical properties the paper's
algorithms rely on, writes it to disk in the CSV format the CLI tools
consume, and shows the Section 9.1 down-sampling used by the Optimal
Cache experiment.

Run:  python examples/trace_synthesis.py
"""

import tempfile
from pathlib import Path

from repro import SERVER_PROFILES, TraceGenerator, TraceStats, downsample_trace
from repro.trace import read_trace_csv, write_trace_csv
from repro.trace.sampling import disk_chunks_for_fraction


def main() -> None:
    profile = SERVER_PROFILES["south_america"].scaled(0.06)
    trace = TraceGenerator(profile).generate(days=14.0)
    stats = TraceStats.from_requests(trace)

    print(f"trace for {profile.region}: {len(trace)} requests / 14 days")
    print(f"  distinct videos:        {stats.num_videos}")
    print(f"  unique chunks:          {stats.num_unique_chunks} "
          f"({stats.footprint_bytes / 1e9:.1f} GB footprint)")
    print(f"  Zipf exponent (fit):    {stats.zipf_exponent():.2f}")
    print(f"  top-10% video share:    {stats.head_concentration(0.1):.1%}")
    print(f"  single-hit videos:      {stats.single_hit_fraction():.1%} "
          f"(the long tail)")
    print(f"  early-chunk bias:       {stats.early_chunk_bias():.1f}x "
          f"(first chunks vs the rest)")
    print(f"  diurnal peak/trough:    {stats.diurnal_peak_to_trough():.1f}x")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "south_america.csv.gz"
        count = write_trace_csv(path, trace)
        read_back = sum(1 for _ in read_trace_csv(path))
        print(f"\nwrote {count} requests to {path.name}, "
              f"read back {read_back} (round-trip ok: {count == read_back})")

    # Section 9.1 down-sampling for the Optimal Cache experiment.
    sample = downsample_trace(
        trace,
        num_files=100,
        max_file_bytes=20 * 1024 * 1024,
        window=(trace[0].t, trace[0].t + 2 * 86400.0),
    )
    disk = disk_chunks_for_fraction(sample, 0.05)
    print(f"\ndown-sampled (2 days, 100 files, 20 MB cap): "
          f"{len(sample)} requests; Optimal-Cache disk = {disk} chunks "
          f"(5% of requested chunks)")


if __name__ == "__main__":
    main()
