#!/usr/bin/env python3
"""Capacity planning: how much disk does each algorithm need?

Figure 6 of the paper shows that at alpha_F2R = 2, xLRU needs 2-3x the
disk of Cafe Cache to reach the same efficiency.  For an operator, that
is the difference between doubling every rack's storage and shipping a
software change.

This example sweeps disk sizes on one server's trace, prints the
efficiency curves, and interpolates the "equivalent disk" factor: the
disk multiple xLRU needs to match Cafe at each measured point.

Run:  python examples/capacity_planning.py
"""

from repro import SERVER_PROFILES, TraceGenerator, TraceStats
from repro.analysis import equivalent_disk_factor, format_table
from repro.sim.runner import sweep_disk


def main() -> None:
    profile = SERVER_PROFILES["europe"].scaled(0.08)
    trace = TraceGenerator(profile).generate(days=10.0)
    stats = TraceStats.from_requests(trace)
    footprint = stats.num_unique_chunks
    print(f"{len(trace)} requests; unique footprint = {footprint} chunks "
          f"({stats.footprint_bytes / 1e9:.1f} GB)\n")

    disks = sorted({max(16, int(footprint * f))
                    for f in (0.05, 0.10, 0.20, 0.40)})
    sweep = sweep_disk(trace, disks, alpha_f2r=2.0,
                       algorithms=("xLRU", "Cafe", "Psychic"))

    rows = []
    for disk in disks:
        row = {"disk_chunks": disk, "disk_pct_of_footprint": disk / footprint}
        for algo, result in sweep[disk].items():
            row[algo] = result.steady.efficiency
        rows.append(row)
    print(format_table(rows, title="Efficiency vs disk size (alpha_F2R = 2)"))

    cafe = [r["Cafe"] for r in rows]
    xlru = [r["xLRU"] for r in rows]
    factors = equivalent_disk_factor(disks, cafe, xlru)
    print("\nDisk xLRU needs to match Cafe's efficiency, per point:")
    for disk, factor in zip(disks, factors):
        shown = f"{factor:.1f}x" if factor != float("inf") else ">measured range"
        print(f"  at {disk} chunks: {shown}")


if __name__ == "__main__":
    main()
