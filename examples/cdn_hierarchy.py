#!/usr/bin/env python3
"""A two-level CDN: three edge servers, a parent cache, an origin.

The paper's system model (Section 2): user requests land on edge
servers; redirected requests go to "a higher level, larger serving site
in a cache hierarchy"; cache-fill traffic flows upstream as requests of
its own.  Edges are ingress-constrained (alpha_F2R = 2, their fills
cross the backbone); the parent has a deeper cache and cheap ingress
(alpha_F2R = 0.75).

The example replays three regional edge traces through the hierarchy
and reports per-server efficiency plus the CDN-wide origin offload —
how much of the user demand the "lines of defense" absorbed.  It also
demonstrates the Section 10 proactive-caching extension on one edge.

Run:  python examples/cdn_hierarchy.py
"""

from repro import CafeCache, CostModel, SERVER_PROFILES, TraceGenerator, replay
from repro.cdn import CdnSimulator, ProactiveFiller, hierarchy


def main() -> None:
    edges = ("europe", "africa", "asia")
    traces = {}
    for name in edges:
        profile = SERVER_PROFILES[name].scaled(0.04)
        traces[name] = TraceGenerator(profile).generate(days=7.0)
        print(f"edge {name}: {len(traces[name])} requests")

    edge_caches = {
        name: CafeCache(disk_chunks=384, cost_model=CostModel(alpha_f2r=2.0))
        for name in edges
    }
    parent_cache = CafeCache(disk_chunks=4096, cost_model=CostModel(alpha_f2r=0.75))

    topology = hierarchy(edge_caches, parent_cache)
    simulator = CdnSimulator(topology)
    result = simulator.run(traces)

    print()
    print(result.describe())
    print(f"origin offload (user bytes absorbed by caches): "
          f"{result.origin_offload:.1%}")
    print(f"redirect hop distribution: {dict(sorted(result.redirect_hops.items()))}")

    # --- proactive caching on a single edge (Section 10 extension) ---------
    print("\nProactive caching on the Europe edge (standalone):")
    trace = traces["europe"]
    plain = CafeCache(disk_chunks=384, cost_model=CostModel(alpha_f2r=0.5))
    base = replay(plain, trace).steady

    wrapped = ProactiveFiller(
        CafeCache(disk_chunks=384, cost_model=CostModel(alpha_f2r=0.5)),
        budget_chunks_per_window=32,
    )
    # The wrapper exposes handle(); drive it manually.
    from repro.sim.metrics import MetricsCollector

    metrics = MetricsCollector(wrapped.cache.cost_model)
    for request in trace:
        metrics.record(request, wrapped.handle(request))
    pro = metrics.steady_state()

    print(f"  plain Cafe:     efficiency={base.efficiency:.3f}")
    print(f"  with prefetch:  efficiency={pro.efficiency:.3f} "
          f"({wrapped.stats.filled_chunks} chunks prefetched in "
          f"{wrapped.stats.windows} off-peak windows)")


if __name__ == "__main__":
    main()
