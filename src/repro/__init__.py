"""repro — reproduction of "Caching in Video CDNs: Building Strong
Lines of Defense" (Mokhtarian & Jacobsen, EuroSys 2014).

Quickstart::

    from repro import CafeCache, CostModel, TraceGenerator, SERVER_PROFILES, replay

    trace = TraceGenerator(SERVER_PROFILES["europe"]).generate(days=7)
    cache = CafeCache(disk_chunks=2048, cost_model=CostModel(alpha_f2r=2.0))
    result = replay(cache, trace)
    print(result.describe())

Package layout:

* :mod:`repro.core` — the four caching algorithms (xLRU, Cafe, Psychic,
  Optimal) plus classic baselines and the cost model;
* :mod:`repro.trace` — request/chunk model, trace I/O, statistics and
  the Section 9.1 down-sampler;
* :mod:`repro.workload` — synthetic trace generation (six regional
  server profiles);
* :mod:`repro.sim` — replay engine, metrics, parameter sweeps;
* :mod:`repro.cdn` — multi-server topology, redirection maps,
  hierarchical simulation, proactive caching;
* :mod:`repro.experiments` — one module per paper figure;
* :mod:`repro.analysis` — table/series formatting helpers.
"""

from repro.core import (
    BeladyCache,
    CacheResponse,
    CafeCache,
    CostModel,
    Decision,
    LfuAdmissionCache,
    OptimalCache,
    OptimalSolution,
    PsychicCache,
    PullThroughLruCache,
    VideoCache,
    XlruCache,
    solve_optimal,
)
from repro.sim import MetricsCollector, SimulationResult, replay
from repro.trace import (
    DEFAULT_CHUNK_BYTES,
    ChunkId,
    Request,
    TraceStats,
    downsample_trace,
)
from repro.workload import SERVER_PROFILES, ServerProfile, TraceGenerator

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "VideoCache",
    "CacheResponse",
    "Decision",
    "CostModel",
    "XlruCache",
    "CafeCache",
    "PsychicCache",
    "OptimalCache",
    "OptimalSolution",
    "solve_optimal",
    "PullThroughLruCache",
    "LfuAdmissionCache",
    "BeladyCache",
    # trace
    "Request",
    "ChunkId",
    "DEFAULT_CHUNK_BYTES",
    "TraceStats",
    "downsample_trace",
    # workload
    "TraceGenerator",
    "ServerProfile",
    "SERVER_PROFILES",
    # sim
    "replay",
    "SimulationResult",
    "MetricsCollector",
]
