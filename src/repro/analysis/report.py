"""Markdown report generation from experiment results.

Turns :class:`~repro.experiments.common.ExperimentResult` objects into
a self-contained Markdown document — the machine-written counterpart of
EXPERIMENTS.md — so a full reproduction run can be archived or diffed:

    repro-experiment all --markdown report.md
"""

from __future__ import annotations

import math
from typing import Iterable, Mapping, Optional, Sequence

__all__ = ["markdown_table", "experiment_to_markdown", "render_report"]


def _cell(value, floatfmt: str) -> str:
    if value is None:
        return "—"
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        if math.isinf(value):
            return "inf" if value > 0 else "-inf"
        return format(value, floatfmt)
    return str(value).replace("|", "\\|")


def markdown_table(
    rows: Sequence[Mapping],
    columns: Optional[Sequence[str]] = None,
    floatfmt: str = ".3f",
) -> str:
    """Render dict rows as a GitHub-flavoured Markdown table."""
    if not rows:
        return "*(no rows)*"
    if columns is None:
        columns = list(rows[0].keys())
    header = "| " + " | ".join(str(c) for c in columns) + " |"
    rule = "|" + "|".join("---" for _ in columns) + "|"
    body = [
        "| " + " | ".join(_cell(row.get(c), floatfmt) for c in columns) + " |"
        for row in rows
    ]
    return "\n".join([header, rule, *body])


def experiment_to_markdown(result, floatfmt: str = ".3f") -> str:
    """One experiment as a Markdown section (table + scalar extras).

    Non-scalar extras (per-server detail lists, series) are summarized
    by length rather than dumped — the rows are the figure's content.
    """
    lines = [f"## {result.name}", "", result.description, ""]
    lines.append(markdown_table(result.rows, columns=result.columns, floatfmt=floatfmt))
    scalars = {
        k: v
        for k, v in result.extras.items()
        if isinstance(v, (int, float, str, bool))
    }
    collections = {
        k: v for k, v in result.extras.items() if isinstance(v, (list, dict))
    }
    if scalars or collections:
        lines.append("")
        for key, value in scalars.items():
            lines.append(f"- **{key}**: {_cell(value, floatfmt)}")
        for key, value in collections.items():
            if isinstance(value, list) and value and isinstance(value[0], dict):
                lines.append(f"- **{key}**: {len(value)} rows (omitted)")
            else:
                lines.append(f"- **{key}**: `{value}`")
    lines.append("")
    return "\n".join(lines)


def render_report(
    results: Iterable,
    title: str = "Reproduction report",
    preamble: str = "",
    floatfmt: str = ".3f",
) -> str:
    """A complete Markdown document for a set of experiment results."""
    parts = [f"# {title}", ""]
    if preamble:
        parts.extend([preamble, ""])
    for result in results:
        parts.append(experiment_to_markdown(result, floatfmt=floatfmt))
    return "\n".join(parts)
