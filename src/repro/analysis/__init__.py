"""Result formatting and headline-number extraction.

Pure presentation/derivation helpers: turning experiment outputs into
the rows and series the paper's figures show, plus the derived claims
quoted in the Section 9 text (relative inefficiency reduction,
equivalent-disk factors).
"""

from repro.analysis.headline import (
    equivalent_disk_factor,
    interpolate_disk_for_efficiency,
    relative_inefficiency_reduction,
)
from repro.analysis.report import experiment_to_markdown, markdown_table, render_report
from repro.analysis.tables import format_series, format_table

__all__ = [
    "format_table",
    "format_series",
    "markdown_table",
    "experiment_to_markdown",
    "render_report",
    "relative_inefficiency_reduction",
    "equivalent_disk_factor",
    "interpolate_disk_for_efficiency",
]
