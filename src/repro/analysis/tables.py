"""Plain-text tables for experiment output.

No third-party table library: the benches print through these so their
output is stable and dependency-free.
"""

from __future__ import annotations

import math
from typing import Iterable, List, Mapping, Optional, Sequence

__all__ = ["format_table", "format_series"]


def _fmt(value, floatfmt: str) -> str:
    if value is None:
        return "-"
    if isinstance(value, bool):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "nan"
        return format(value, floatfmt)
    return str(value)


def format_table(
    rows: Sequence[Mapping],
    columns: Optional[Sequence[str]] = None,
    floatfmt: str = ".3f",
    title: Optional[str] = None,
) -> str:
    """Render dict rows as an aligned text table.

    Column order follows ``columns`` when given, else the key order of
    the first row.  Missing cells render as ``-``.
    """
    if not rows:
        return (title + "\n" if title else "") + "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    rendered = [
        [_fmt(row.get(col), floatfmt) for col in columns] for row in rows
    ]
    widths = [
        max(len(str(col)), *(len(r[i]) for r in rendered))
        for i, col in enumerate(columns)
    ]
    lines: List[str] = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[i]) for i, col in enumerate(columns))
    lines.append(header)
    lines.append("  ".join("-" * w for w in widths))
    for r in rendered:
        lines.append("  ".join(r[i].ljust(widths[i]) for i in range(len(columns))))
    return "\n".join(lines)


def format_series(
    times: Iterable[float],
    series: Mapping[str, Sequence[float]],
    t_unit: float = 86400.0,
    t_label: str = "day",
    floatfmt: str = ".3f",
    title: Optional[str] = None,
    max_rows: Optional[int] = None,
) -> str:
    """Render aligned time series (Figure 3-style) as a text table.

    ``times`` are seconds; they render divided by ``t_unit``.  With
    ``max_rows``, the series is down-sampled by striding (first and last
    rows always kept).
    """
    times = list(times)
    names = list(series)
    for name in names:
        if len(series[name]) != len(times):
            raise ValueError(
                f"series {name!r} has {len(series[name])} points, "
                f"expected {len(times)}"
            )
    indices = range(len(times))
    if max_rows is not None and len(times) > max_rows > 1:
        stride = (len(times) - 1) / (max_rows - 1)
        indices = sorted({round(i * stride) for i in range(max_rows)})
    rows = [
        {t_label: times[i] / t_unit, **{name: series[name][i] for name in names}}
        for i in indices
    ]
    return format_table(rows, columns=[t_label, *names], floatfmt=floatfmt, title=title)
