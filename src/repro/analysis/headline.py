"""Derived headline numbers quoted in the Section 9 text.

Three claims in the paper are derived quantities rather than raw
measurements; these helpers compute them from experiment output:

* "compared to xLRU, Cafe reduces the inefficiency (which translates
  into cost) from 38% to 27%, which is a relative 29% reduction"
  — :func:`relative_inefficiency_reduction`;
* "to achieve the same efficiency xLRU requires 2 to 3 times larger
  disk space than Cafe Cache" (Figure 6) —
  :func:`equivalent_disk_factor` via log-space interpolation of the
  efficiency-vs-disk curve.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

__all__ = [
    "relative_inefficiency_reduction",
    "interpolate_disk_for_efficiency",
    "equivalent_disk_factor",
]


def relative_inefficiency_reduction(eff_from: float, eff_to: float) -> float:
    """Relative reduction of (1 - efficiency) going from -> to.

    ``relative_inefficiency_reduction(0.62, 0.73) ≈ 0.289`` — the
    paper's "relative 29% reduction".
    """
    inefficiency_from = 1.0 - eff_from
    inefficiency_to = 1.0 - eff_to
    if inefficiency_from <= 0:
        raise ValueError("source efficiency must be below 1")
    return (inefficiency_from - inefficiency_to) / inefficiency_from


def interpolate_disk_for_efficiency(
    disk_sizes: Sequence[float],
    efficiencies: Sequence[float],
    target_efficiency: float,
) -> float:
    """Disk size at which a (monotone) efficiency curve hits a target.

    Interpolates linearly in log(disk) between bracketing points, the
    natural scale for cache-size/hit-rate curves.  Returns ``inf`` when
    the target exceeds the curve's reach, and the smallest measured disk
    when the target is below the curve's start.
    """
    if len(disk_sizes) != len(efficiencies):
        raise ValueError("disk_sizes and efficiencies must align")
    if len(disk_sizes) < 2:
        raise ValueError("need at least two points to interpolate")
    pairs = sorted(zip(disk_sizes, efficiencies))
    disks = [p[0] for p in pairs]
    effs = [p[1] for p in pairs]
    if any(b <= a for a, b in zip(effs, effs[1:])) and effs[-1] < target_efficiency:
        # Non-monotone tails can occur from noise; fall through to scan.
        pass
    if target_efficiency <= effs[0]:
        return float(disks[0])
    for i in range(1, len(disks)):
        if effs[i] >= target_efficiency:
            lo_d, hi_d = math.log(disks[i - 1]), math.log(disks[i])
            lo_e, hi_e = effs[i - 1], effs[i]
            if hi_e == lo_e:
                return float(disks[i])
            frac = (target_efficiency - lo_e) / (hi_e - lo_e)
            return math.exp(lo_d + frac * (hi_d - lo_d))
    return float("inf")


def equivalent_disk_factor(
    disk_sizes: Sequence[float],
    eff_better: Mapping[float, float] | Sequence[float],
    eff_worse: Mapping[float, float] | Sequence[float],
) -> list[float]:
    """How much more disk the worse algorithm needs per measured point.

    For each disk size ``d``: the factor ``d' / d`` where ``d'`` is the
    (interpolated) disk at which the worse algorithm matches the better
    algorithm's efficiency at ``d``.  ``inf`` entries mean the worse
    algorithm never catches up within the measured range.
    """
    if isinstance(eff_better, Mapping):
        eff_better = [eff_better[d] for d in disk_sizes]
    if isinstance(eff_worse, Mapping):
        eff_worse = [eff_worse[d] for d in disk_sizes]
    factors = []
    for d, target in zip(disk_sizes, eff_better):
        needed = interpolate_disk_for_efficiency(disk_sizes, list(eff_worse), target)
        factors.append(needed / d if math.isfinite(needed) else float("inf"))
    return factors
