"""Byte accounting and the paper's evaluation metrics (Sections 4.2, 9).

Accounting rules:

* **egress** (served traffic) — the requested bytes of served requests;
* **ingress** (cache-fill) — ``filled_chunks * chunk_bytes``: a chunk is
  fetched in full even when requested partially (Section 4.2's "note
  the different use of R.b and R.c");
* **redirected** — the requested bytes of redirected requests.

Reported metrics:

* *redirection ratio* — redirected bytes / total requested bytes;
* *ingress %* — ingress bytes / egress bytes, "the fraction of served
  traffic that incurred cache-fill" (Figure 3);
* *cache efficiency* — Eq. 2, in [-1, 1].

A chunk-normalized efficiency (fills and redirects counted in chunks,
as the Section 7 IP does) is also provided so online results can be
compared against Optimal-Cache bounds in the same units (Figure 2).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace
from typing import List, Optional

from repro.core.base import REDIRECT, CacheResponse
from repro.core.costs import CostModel
from repro.trace.columnar import _np
from repro.trace.requests import DEFAULT_CHUNK_BYTES, Request

__all__ = ["TrafficSummary", "IntervalSample", "MetricsCollector"]


@dataclass(frozen=True, slots=True)
class TrafficSummary:
    """Aggregated traffic counters over some time span."""

    cost_model: CostModel
    num_requests: int = 0
    num_served: int = 0
    requested_bytes: int = 0
    requested_chunks: int = 0
    egress_bytes: int = 0
    ingress_bytes: int = 0
    redirected_bytes: int = 0
    filled_chunks: int = 0
    redirected_chunks: int = 0
    #: requests lost to faults (origin brownouts) — tracked separately
    #: from ``num_requests`` so efficiency/redirect metrics are
    #: unchanged; always 0 in fault-free replays
    num_lost: int = 0
    lost_bytes: int = 0

    @property
    def num_redirected(self) -> int:
        return self.num_requests - self.num_served

    @property
    def availability(self) -> float:
        """Fraction of demand that was served by someone (NaN when idle).

        Lost requests are those no server — origin included — answered;
        a fault-free replay reports exactly 1.0.
        """
        demand = self.num_requests + self.num_lost
        if demand == 0:
            return math.nan
        return 1.0 - self.num_lost / demand

    @property
    def redirect_ratio(self) -> float:
        """Redirected bytes over requested bytes (NaN when idle)."""
        if self.requested_bytes == 0:
            return math.nan
        return self.redirected_bytes / self.requested_bytes

    @property
    def ingress_fraction(self) -> float:
        """Ingress over egress — Figure 3's "Ingress %" (NaN when idle)."""
        if self.egress_bytes == 0:
            return math.nan
        return self.ingress_bytes / self.egress_bytes

    @property
    def efficiency(self) -> float:
        """Eq. 2 cache efficiency (NaN when idle)."""
        if self.requested_bytes == 0:
            return math.nan
        return self.cost_model.efficiency(
            self.requested_bytes, self.ingress_bytes, self.redirected_bytes
        )

    @property
    def efficiency_chunks(self) -> float:
        """Eq. 2 with fills and redirects in chunk units (Section 7)."""
        if self.requested_chunks == 0:
            return math.nan
        cost = (
            self.filled_chunks * self.cost_model.fill_cost
            + self.redirected_chunks * self.cost_model.redirect_cost
        )
        return 1.0 - cost / self.requested_chunks

    @property
    def hit_bytes(self) -> int:
        """Served bytes that required no cache-fill."""
        return self.egress_bytes - min(self.ingress_bytes, self.egress_bytes)

    def to_dict(self) -> dict:
        """JSON-safe form: raw counters plus the derived ratios.

        NaN ratios (idle windows) serialize as ``None`` so the output
        is valid strict JSON.  Used by the telemetry JSONL export.
        """

        def _finite(value: float):
            return value if math.isfinite(value) else None

        return {
            "num_requests": self.num_requests,
            "num_served": self.num_served,
            "requested_bytes": self.requested_bytes,
            "requested_chunks": self.requested_chunks,
            "egress_bytes": self.egress_bytes,
            "ingress_bytes": self.ingress_bytes,
            "redirected_bytes": self.redirected_bytes,
            "filled_chunks": self.filled_chunks,
            "redirected_chunks": self.redirected_chunks,
            "num_lost": self.num_lost,
            "lost_bytes": self.lost_bytes,
            "efficiency": _finite(self.efficiency),
            "redirect_ratio": _finite(self.redirect_ratio),
            "ingress_fraction": _finite(self.ingress_fraction),
            "availability": _finite(self.availability),
        }


@dataclass(frozen=True, slots=True)
class IntervalSample:
    """One time-series bucket (e.g. one hour of Figure 3)."""

    t_start: float
    summary: TrafficSummary


class MetricsCollector:
    """Accumulates per-request outcomes into totals and a time series.

    Only the live interval bucket is touched per request; whole-trace
    totals are the (exact, integer) merge of the completed buckets, so
    the hot :meth:`record_raw` path does a single counter update.
    """

    def __init__(
        self,
        cost_model: CostModel,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        interval: float = 3600.0,
    ) -> None:
        if interval <= 0:
            raise ValueError(f"interval must be positive, got {interval}")
        self.cost_model = cost_model
        self.chunk_bytes = chunk_bytes
        self.interval = interval
        self._bucket = _MutableCounters()
        self._bucket_start: Optional[float] = None
        self._bucket_end: Optional[float] = None
        self._samples: List[IntervalSample] = []
        self._t_first: Optional[float] = None
        self._t_last: Optional[float] = None

    def record(self, request: Request, response: CacheResponse) -> None:
        """Fold one handled request into the metrics."""
        self.record_raw(
            request.t,
            request.num_bytes,
            request.num_chunks(self.chunk_bytes),
            response,
        )

    def record_raw(
        self, t: float, nbytes: int, nchunks: int, response: CacheResponse
    ) -> None:
        """Hot-path record with request-derived values precomputed.

        Broadcast replay computes ``nbytes``/``nchunks`` once per
        request and shares them across every collector in the pass.
        """
        if self._t_first is None:
            self._t_first = t
        self._t_last = t

        end = self._bucket_end
        if end is None:
            start = math.floor(t / self.interval) * self.interval
            self._bucket_start = start
            self._bucket_end = start + self.interval
        elif t >= end:
            self._advance_to(t)
        elif t < self._bucket_start:
            # A sample before the live bucket cannot be re-bucketed (its
            # interval was already frozen or never opened); silently
            # folding it into the current bucket would skew the series.
            raise ValueError(
                f"timestamp {t} precedes the live bucket start "
                f"{self._bucket_start}; trace must be time-ordered"
            )

        bucket = self._bucket
        bucket.num_requests += 1
        bucket.requested_bytes += nbytes
        bucket.requested_chunks += nchunks
        if response.served:
            bucket.num_served += 1
            bucket.egress_bytes += nbytes
            filled = response.filled_chunks
            if filled:
                bucket.ingress_bytes += filled * self.chunk_bytes
                bucket.filled_chunks += filled
        else:
            bucket.redirected_bytes += nbytes
            bucket.redirected_chunks += nchunks

    def record_packed(self, ts, nbytes, nchunks, responses) -> None:
        """Batched hot-path record over one block of packed columns.

        Exactly equivalent to calling :meth:`record_raw` element-wise,
        minus the per-call out-of-order guard: callers must guarantee
        ``ts`` is non-decreasing and no earlier than anything recorded
        so far.  Pack-time validation establishes this for
        :class:`~repro.trace.columnar.PackedTrace` replays, which is
        why the engine's packed lane may use it.
        """
        if len(ts) == 0:
            return
        if self._t_first is None:
            self._t_first = ts[0]
        if self._bucket_end is None:
            start = math.floor(ts[0] / self.interval) * self.interval
            self._bucket_start = start
            self._bucket_end = start + self.interval
        bucket = self._bucket
        end = self._bucket_end
        chunk_bytes = self.chunk_bytes
        advance = self._advance_to
        for t, nb, nc, response in zip(ts, nbytes, nchunks, responses):
            if t >= end:
                advance(t)
                bucket = self._bucket
                end = self._bucket_end
            bucket.num_requests += 1
            bucket.requested_bytes += nb
            bucket.requested_chunks += nc
            if response.served:
                bucket.num_served += 1
                bucket.egress_bytes += nb
                filled = response.filled_chunks
                if filled:
                    bucket.ingress_bytes += filled * chunk_bytes
                    bucket.filled_chunks += filled
            else:
                bucket.redirected_bytes += nb
                bucket.redirected_chunks += nc
        self._t_last = ts[-1]

    def record_packed_block(self, ts, nbytes, nchunks, responses, misses) -> None:
        """Columnar whole-block record: vectorized bucket accounting.

        Equivalent to :meth:`record_packed` but built for the fleet
        lane's shard-sized blocks: ``ts``/``nbytes``/``nchunks`` are
        numpy columns, and ``misses`` is the ascending index list of
        every response that is not the interned hit (the caller already
        computes it to drive the hop walk).  Per-bucket sums come from
        one ``reduceat`` per column under the all-hits assumption; the
        few non-hit responses are then patched in individually.  Falls
        back to :meth:`record_packed` when numpy is unavailable.
        """
        n = len(ts)
        if n == 0:
            return
        if _np is None or not isinstance(ts, _np.ndarray):
            self.record_packed(
                list(ts), list(nbytes), list(nchunks), responses
            )
            return
        interval = self.interval
        if self._t_first is None:
            self._t_first = float(ts[0])
        # Segment the block by interval bucket; empty buckets between
        # segments are skipped, exactly as _advance_to would.
        bucket_ids = (ts // interval).astype(_np.int64)
        cuts = _np.flatnonzero(bucket_ids[1:] != bucket_ids[:-1]) + 1
        starts = _np.concatenate(([0], cuts))
        nb_sums = _np.add.reduceat(nbytes, starts)
        nc_sums = _np.add.reduceat(nchunks, starts)
        bounds = starts.tolist()
        bounds.append(n)
        chunk_bytes = self.chunk_bytes
        # Interned redirects — the bulk of the misses on redirect-heavy
        # lanes — are patched per segment from prefix sums; only serves
        # with fills and non-interned responses walk the scalar loop.
        if misses:
            red_mask = _np.fromiter(
                (responses[j] is REDIRECT for j in misses),
                dtype=bool,
                count=len(misses),
            )
            midx = _np.fromiter(misses, dtype=_np.int64, count=len(misses))
            ridx = midx[red_mask]
            red_nb = _np.concatenate(([0], _np.cumsum(nbytes[ridx])))
            red_nc = _np.concatenate(([0], _np.cumsum(nchunks[ridx])))
            seg_lo = _np.searchsorted(ridx, starts).tolist()
            seg_hi = seg_lo[1:]
            seg_hi.append(len(ridx))
            slow = midx[~red_mask].tolist()
        else:
            seg_lo = seg_hi = ()
            slow = []
        num_misses = len(slow)
        misses = slow
        mi = 0
        for k in range(len(bounds) - 1):
            start_i = bounds[k]
            stop_i = bounds[k + 1]
            t0 = float(ts[start_i])
            end = self._bucket_end
            if end is None:
                bucket_start = math.floor(t0 / interval) * interval
                self._bucket_start = bucket_start
                self._bucket_end = bucket_start + interval
            elif t0 >= end:
                self._advance_to(t0)
            bucket = self._bucket
            seg_requests = stop_i - start_i
            seg_bytes = int(nb_sums[k])
            bucket.num_requests += seg_requests
            bucket.requested_bytes += seg_bytes
            bucket.requested_chunks += int(nc_sums[k])
            # All-hits assumption, patched below per non-hit response.
            bucket.num_served += seg_requests
            bucket.egress_bytes += seg_bytes
            if seg_lo:
                lo = seg_lo[k]
                hi = seg_hi[k]
                if hi > lo:
                    rb = int(red_nb[hi] - red_nb[lo])
                    bucket.num_served -= hi - lo
                    bucket.egress_bytes -= rb
                    bucket.redirected_bytes += rb
                    bucket.redirected_chunks += int(red_nc[hi] - red_nc[lo])
            while mi < num_misses and misses[mi] < stop_i:
                j = misses[mi]
                mi += 1
                response = responses[j]
                if response.served:
                    filled = response.filled_chunks
                    if filled:
                        bucket.ingress_bytes += filled * chunk_bytes
                        bucket.filled_chunks += filled
                else:
                    nb = int(nbytes[j])
                    bucket.num_served -= 1
                    bucket.egress_bytes -= nb
                    bucket.redirected_bytes += nb
                    bucket.redirected_chunks += int(nchunks[j])
        self._t_last = float(ts[-1])

    def record_lost(self, t: float, nbytes: int) -> None:
        """Fold one *lost* request (dropped by a faulted origin) in.

        Lost requests live in their own counters: they never touch
        ``num_requests`` or the byte totals that efficiency and
        redirect metrics are computed from, so a fault-free replay and
        a faulted replay agree on every classic metric and differ only
        in the loss columns.  Note a lost request may *also* appear as
        a redirect in ``num_requests`` when this server handled (and
        redirected) it before the origin dropped it downstream.
        """
        # Cold path: duplicates record_raw's bucket advance rather than
        # slowing the hot path with a shared helper call.
        if self._t_first is None:
            self._t_first = t
        self._t_last = t
        end = self._bucket_end
        if end is None:
            start = math.floor(t / self.interval) * self.interval
            self._bucket_start = start
            self._bucket_end = start + self.interval
        elif t >= end:
            self._advance_to(t)
        elif t < self._bucket_start:
            raise ValueError(
                f"timestamp {t} precedes the live bucket start "
                f"{self._bucket_start}; trace must be time-ordered"
            )
        self._bucket.num_lost += 1
        self._bucket.lost_bytes += nbytes

    # -- results -------------------------------------------------------------

    def totals(self) -> TrafficSummary:
        """Summary over everything recorded so far."""
        agg = _MutableCounters()
        for sample in self._samples:
            agg.merge(sample.summary)
        agg.merge_counters(self._bucket)
        return agg.freeze(self.cost_model)

    def series(self) -> List[IntervalSample]:
        """Completed + current interval buckets, in time order."""
        out = list(self._samples)
        if self._bucket_start is not None and (
            self._bucket.num_requests or self._bucket.num_lost
        ):
            out.append(
                IntervalSample(self._bucket_start, self._bucket.freeze(self.cost_model))
            )
        return out

    def window(self, t0: float, t1: float = math.inf) -> TrafficSummary:
        """Aggregate over buckets whose start lies in ``[t0, t1)``.

        Granularity is the bucket interval; the paper's steady-state
        averages ("the average over the second half of the month") are
        computed this way via :meth:`steady_state`.
        """
        agg = _MutableCounters()
        for sample in self.series():
            if t0 <= sample.t_start < t1:
                agg.merge(sample.summary)
        return agg.freeze(self.cost_model)

    def steady_state(self, fraction: float = 0.5) -> TrafficSummary:
        """Summary over the trailing ``fraction`` of the trace span.

        ``fraction=0.5`` reproduces the paper's warm-up exclusion.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        if self._t_first is None or self._t_last is None:
            return _MutableCounters().freeze(self.cost_model)
        cut = self._t_last - (self._t_last - self._t_first) * fraction
        return self.window(cut)

    def with_cost_model(self, cost_model: CostModel) -> "MetricsCollector":
        """A copy of this collector reinterpreted under ``cost_model``.

        The traffic counters are cost-independent — only the derived
        efficiency changes — so a cache whose *decisions* ignore the
        cost model can be replayed once and re-read at any ``alpha``.
        The scheduler uses this to collapse alpha-duplicate sweep cells.
        """
        clone = MetricsCollector(cost_model, self.chunk_bytes, self.interval)
        clone._samples = [
            IntervalSample(s.t_start, replace(s.summary, cost_model=cost_model))
            for s in self._samples
        ]
        clone._bucket = self._bucket.copy()
        clone._bucket_start = self._bucket_start
        clone._bucket_end = self._bucket_end
        clone._t_first = self._t_first
        clone._t_last = self._t_last
        return clone

    # -- internals -----------------------------------------------------------

    def _advance_to(self, t: float) -> None:
        """Close the live bucket and open the aligned one containing ``t``."""
        assert self._bucket_start is not None
        if self._bucket.num_requests or self._bucket.num_lost:
            self._samples.append(
                IntervalSample(self._bucket_start, self._bucket.freeze(self.cost_model))
            )
            self._bucket = _MutableCounters()
        start = math.floor(t / self.interval) * self.interval
        self._bucket_start = start
        self._bucket_end = start + self.interval


class _MutableCounters:
    """Mutable mirror of :class:`TrafficSummary` used while accumulating."""

    __slots__ = (
        "num_requests",
        "num_served",
        "requested_bytes",
        "requested_chunks",
        "egress_bytes",
        "ingress_bytes",
        "redirected_bytes",
        "filled_chunks",
        "redirected_chunks",
        "num_lost",
        "lost_bytes",
    )

    def __init__(self) -> None:
        self.num_requests = 0
        self.num_served = 0
        self.requested_bytes = 0
        self.requested_chunks = 0
        self.egress_bytes = 0
        self.ingress_bytes = 0
        self.redirected_bytes = 0
        self.filled_chunks = 0
        self.redirected_chunks = 0
        self.num_lost = 0
        self.lost_bytes = 0

    def add(self, request: Request, response: CacheResponse, chunk_bytes: int) -> None:
        nbytes = request.num_bytes
        nchunks = request.num_chunks(chunk_bytes)
        self.num_requests += 1
        self.requested_bytes += nbytes
        self.requested_chunks += nchunks
        if response.served:
            self.num_served += 1
            self.egress_bytes += nbytes
            self.ingress_bytes += response.filled_chunks * chunk_bytes
            self.filled_chunks += response.filled_chunks
        else:
            self.redirected_bytes += nbytes
            self.redirected_chunks += nchunks

    def merge(self, other: TrafficSummary) -> None:
        self.num_requests += other.num_requests
        self.num_served += other.num_served
        self.requested_bytes += other.requested_bytes
        self.requested_chunks += other.requested_chunks
        self.egress_bytes += other.egress_bytes
        self.ingress_bytes += other.ingress_bytes
        self.redirected_bytes += other.redirected_bytes
        self.filled_chunks += other.filled_chunks
        self.redirected_chunks += other.redirected_chunks
        self.num_lost += other.num_lost
        self.lost_bytes += other.lost_bytes

    def merge_counters(self, other: "_MutableCounters") -> None:
        self.num_requests += other.num_requests
        self.num_served += other.num_served
        self.requested_bytes += other.requested_bytes
        self.requested_chunks += other.requested_chunks
        self.egress_bytes += other.egress_bytes
        self.ingress_bytes += other.ingress_bytes
        self.redirected_bytes += other.redirected_bytes
        self.filled_chunks += other.filled_chunks
        self.redirected_chunks += other.redirected_chunks
        self.num_lost += other.num_lost
        self.lost_bytes += other.lost_bytes

    def copy(self) -> "_MutableCounters":
        dup = _MutableCounters()
        dup.merge_counters(self)
        return dup

    def freeze(self, cost_model: CostModel) -> TrafficSummary:
        return TrafficSummary(
            cost_model=cost_model,
            num_requests=self.num_requests,
            num_served=self.num_served,
            requested_bytes=self.requested_bytes,
            requested_chunks=self.requested_chunks,
            egress_bytes=self.egress_bytes,
            ingress_bytes=self.ingress_bytes,
            redirected_bytes=self.redirected_bytes,
            filled_chunks=self.filled_chunks,
            redirected_chunks=self.redirected_chunks,
            num_lost=self.num_lost,
            lost_bytes=self.lost_bytes,
        )
