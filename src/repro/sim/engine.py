"""The replay engine: drive caches with a trace, collect metrics.

This is the experimental loop of Section 9: "We replay the logs of each
server to the different algorithms and measure the resultant ingress
traffic, redirection ratio and the overall cache efficiency."

Two entry points share one streaming core:

* :func:`replay` — one cache, one pass (the original API);
* :class:`MultiReplay` — N caches, **one** pass: every request is
  handled by every cache, each with its own
  :class:`~repro.sim.metrics.MetricsCollector`.  A sweep of online
  configurations costs O(trace) iteration instead of
  O(configs x trace), and request-derived values (bytes, chunk count,
  time-order checks) are computed once and shared across the lanes.

Offline caches need the materialized sequence for ``prepare``; a
generator trace is spilled to a list once (and only then).  Online-only
broadcasts stream straight through.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, Iterable, Mapping, Optional, Sequence

from repro.core.base import VideoCache
from repro.sim.instrumentation import ProgressCallback, RunReport, StageTiming
from repro.sim.metrics import MetricsCollector, TrafficSummary
from repro.trace.columnar import PackedTrace, pack_trace
from repro.trace.requests import Request

if TYPE_CHECKING:  # pragma: no cover - type-only import, no runtime dep
    from repro.obs.telemetry import LaneTelemetry, Telemetry

__all__ = ["SimulationResult", "replay", "MultiReplay", "AUTO_PACK_MIN_REQUESTS"]

#: Materialized traces at least this long are packed automatically when
#: every lane supports the packed path; shorter traces are not worth the
#: packing pass.  Module-level (read at call time) so tests and callers
#: can tune it.
AUTO_PACK_MIN_REQUESTS = 2048

#: Requests per packed block: small enough to keep the column slices in
#: cache and progress callbacks frequent, large enough to amortize the
#: per-block dispatch.
PACKED_BLOCK = 16384


def _span_native(cache: VideoCache) -> bool:
    """Whether ``cache`` implements its own batched ``handle_span``.

    Caches on the default (Request-materializing) ``handle_span`` gain
    nothing from auto-packing — and wrappers/offline caches that only
    override ``handle`` must keep receiving Request objects there.
    Duck-typed caches outside the VideoCache hierarchy (e.g. the CDN
    layer's sharded server) count as non-native and use the object path.
    """
    return (
        getattr(type(cache), "handle_span", None) is not VideoCache.handle_span
        and getattr(cache, "handle_span", None) is not None
    )


#: Environment knob disabling the vectorized decision kernels: the
#: packed lane then drives every cache through its scalar
#: ``handle_span_block`` walk (the reference implementation).  CI's
#: equivalence matrix and A/B benchmarking use it; the knob is read per
#: run so tests can flip it.
NO_KERNELS_ENV = "REPRO_NO_KERNELS"


def _kernels_enabled() -> bool:
    return os.environ.get(NO_KERNELS_ENV, "").strip() in ("", "0")


def _kernel_native(cache: VideoCache) -> bool:
    """Whether ``cache`` overrides the block decision kernel.

    The base-class kernel is the scalar walk plus a Python miss scan;
    routing non-kernel caches through it would cost more than the
    per-request accounting it saves, so the engine only dispatches
    kernels that caches actually implement.
    """
    return (
        getattr(type(cache), "handle_span_block_kernel", None)
        is not VideoCache.handle_span_block_kernel
    )


def _block_collector_ok(collector: MetricsCollector) -> bool:
    """Whether whole-block accounting preserves ``collector`` semantics.

    ``record_packed_block``'s vectorized path bypasses ``record_packed``
    /``record_raw``; a subclass overriding any record entry point
    without also owning ``record_packed_block`` must keep the
    per-request path.
    """
    cls = type(collector)
    if cls.record_packed_block is not MetricsCollector.record_packed_block:
        return True
    return (
        cls.record_packed is MetricsCollector.record_packed
        and cls.record_raw is MetricsCollector.record_raw
        and cls.record is MetricsCollector.record
    )


def _packed_collector_ok(collector: MetricsCollector) -> bool:
    """Whether the packed lane preserves ``collector``'s semantics.

    A subclass that overrides ``record``/``record_raw`` without
    overriding ``record_packed`` would be silently bypassed by the
    batched entry point; fall back to the object path for those.
    """
    cls = type(collector)
    if cls.record_packed is not MetricsCollector.record_packed:
        return True
    return (
        cls.record_raw is MetricsCollector.record_raw
        and cls.record is MetricsCollector.record
    )


@dataclass
class SimulationResult:
    """Outcome of replaying one trace against one cache."""

    cache: VideoCache
    metrics: MetricsCollector
    num_requests: int
    #: Observability record of the pass that produced this result.  In a
    #: broadcast run the report (and its wall time) is shared by every
    #: cache of the pass — ``report.num_caches`` says how many.
    report: Optional[RunReport] = None
    #: Per-lane telemetry (snapshots, probe counters/histograms) when
    #: the replay ran with a :class:`~repro.obs.telemetry.Telemetry`
    #: attached; None otherwise.  Riding on the result is what lets
    #: sweep workers ship lane telemetry back to the parent.
    telemetry: "Optional[LaneTelemetry]" = None

    @property
    def totals(self) -> TrafficSummary:
        """Whole-trace traffic summary."""
        return self.metrics.totals()

    @property
    def steady(self) -> TrafficSummary:
        """Second-half-of-trace summary, the paper's headline number."""
        return self.metrics.steady_state()

    def describe(self) -> str:
        """One-line summary of the steady-state metrics."""
        s = self.steady
        return (
            f"{self.cache.describe()}: eff={s.efficiency:.3f} "
            f"redirect={s.redirect_ratio:.3f} ingress={s.ingress_fraction:.3f} "
            f"({self.num_requests} requests)"
        )


class MultiReplay:
    """Drive N caches through a single pass of a request stream.

    ``caches`` maps result keys to caches; the keys are preserved in the
    returned mapping, in insertion order.  Broadcast replay is exactly
    equivalent to replaying each cache separately — caches never
    interact — but the trace is iterated (and validated, and reduced to
    per-request byte/chunk counts) once instead of N times.
    """

    def __init__(
        self,
        caches: Mapping[str, VideoCache],
        interval: float = 3600.0,
        collectors: Optional[Mapping[str, MetricsCollector]] = None,
        telemetry: "Optional[Telemetry]" = None,
    ) -> None:
        if not caches:
            raise ValueError("MultiReplay needs at least one cache")
        self.caches: Dict[str, VideoCache] = dict(caches)
        self.interval = interval
        self.collectors: Dict[str, MetricsCollector] = {}
        for key, cache in self.caches.items():
            if collectors is not None and key in collectors:
                self.collectors[key] = collectors[key]
            else:
                self.collectors[key] = MetricsCollector(
                    cache.cost_model, chunk_bytes=cache.chunk_bytes, interval=interval
                )
        #: Run-level telemetry; when set, each cache gets a lane (with
        #: a probe attached, if enabled) and the replay samples periodic
        #: snapshots.  When None — the default — the hot paths are the
        #: exact pre-telemetry code: no lanes, no sampling, no probes.
        self.telemetry = telemetry
        self._tel_lanes: "Optional[Dict[str, LaneTelemetry]]" = None
        if telemetry is not None:
            self._tel_lanes = {
                key: telemetry.lane(key, cache)
                for key, cache in self.caches.items()
            }

    def run(
        self,
        requests: Iterable[Request],
        on_request: Optional[Callable[[int, Request], None]] = None,
        progress: Optional[ProgressCallback] = None,
        progress_every: int = 8192,
    ) -> Dict[str, SimulationResult]:
        """Replay ``requests`` (time-ordered) through every cache.

        ``on_request(i, request)`` is called once per request (not per
        cache), before the lanes handle it.  ``progress(done, total,
        elapsed)`` fires every ``progress_every`` requests.

        A :class:`~repro.trace.columnar.PackedTrace` input always takes
        the packed fast lane; a plain materialized trace of at least
        ``AUTO_PACK_MIN_REQUESTS`` requests is packed automatically when
        every cache is span-native and no ``on_request`` hook or
        record-overriding collector needs per-request objects.
        Generator traces (and everything else) stream through the
        object path unchanged.
        """
        t_start = time.perf_counter()
        keys = list(self.caches)
        sequence: Sequence[Request] | Iterable[Request] = requests

        prepare_seconds = 0.0
        offline = [c for c in self.caches.values() if c.offline]
        if offline:
            # Spill-to-list tee: offline caches need the whole future.
            if not isinstance(sequence, Sequence):
                sequence = list(sequence)
            t0 = time.perf_counter()
            for cache in offline:
                cache.prepare(sequence)
            prepare_seconds = time.perf_counter() - t0

        packed_ok = (
            on_request is None
            and all(_packed_collector_ok(self.collectors[key]) for key in keys)
            and all(
                hasattr(cache, "handle_span") for cache in self.caches.values()
            )
        )
        packed: Optional[PackedTrace] = (
            sequence if isinstance(sequence, PackedTrace) and packed_ok else None
        )
        pack_seconds = 0.0
        if (
            packed is None
            and packed_ok
            and isinstance(sequence, Sequence)
            and len(sequence) >= AUTO_PACK_MIN_REQUESTS
            and all(_span_native(cache) for cache in self.caches.values())
        ):
            t0 = time.perf_counter()
            packed = pack_trace(
                sequence, chunk_bytes=self.caches[keys[0]].chunk_bytes
            )
            pack_seconds = time.perf_counter() - t0

        total = len(sequence) if isinstance(sequence, Sequence) else None

        if packed is not None:
            count, replay_seconds = self._run_packed(packed, keys, progress)
            self._finish_lanes(count)
            report = RunReport(
                engine="multireplay",
                mode="broadcast",
                wall_seconds=time.perf_counter() - t_start,
                num_requests=count,
                num_caches=len(keys),
            )
            report.extra["trace_format"] = "packed"
            if prepare_seconds:
                report.stages.append(
                    StageTiming("prepare", prepare_seconds, len(offline))
                )
            if pack_seconds:
                report.stages.append(StageTiming("pack", pack_seconds, count))
            report.stages.append(StageTiming("replay", replay_seconds, count))
            tel = self._tel_lanes
            return {
                key: SimulationResult(
                    cache=self.caches[key],
                    metrics=self.collectors[key],
                    num_requests=count,
                    report=report,
                    telemetry=tel[key] if tel is not None else None,
                )
                for key in keys
            }

        # Hot loop: prebound (handle, record) lanes, request-derived
        # values computed once per request.  Lanes are grouped by chunk
        # size so the chunk count is shared whenever possible.
        lanes = [
            (self.caches[key].handle, self.collectors[key].record_raw)
            for key in keys
        ]
        # The collector's chunk size governs the byte accounting (it may
        # legitimately differ from the cache's — e.g. external metrics).
        chunk_sizes = [self.collectors[key].chunk_bytes for key in keys]
        uniform_k = chunk_sizes[0] if len(set(chunk_sizes)) == 1 else None

        # Telemetry sampling cadence: 0 (one falsy check per request)
        # when telemetry is disabled or sampling is turned off.
        snap_every = 0
        if self._tel_lanes is not None and self.telemetry is not None:
            snap_every = self.telemetry.options.snapshot_every

        count = 0
        last_t = float("-inf")
        t_replay0 = time.perf_counter()
        if uniform_k is not None:
            k = uniform_k
            for request in sequence:
                t = request.t
                if t < last_t:
                    raise ValueError(
                        f"trace not time-ordered at index {count}: {t} < {last_t}"
                    )
                last_t = t
                if on_request is not None:
                    on_request(count, request)
                # Inline num_bytes / num_chunks (see Request): this pair
                # of expressions runs once per request for all N lanes.
                nbytes = request.b1 - request.b0 + 1
                nchunks = request.b1 // k - request.b0 // k + 1
                for handle, record in lanes:
                    record(t, nbytes, nchunks, handle(request))
                count += 1
                if snap_every and count % snap_every == 0:
                    self._sample_lanes(t, count)
                if progress is not None and count % progress_every == 0:
                    progress(count, total, time.perf_counter() - t_replay0)
        else:
            per_lane_k = list(zip(lanes, chunk_sizes))
            for request in sequence:
                t = request.t
                if t < last_t:
                    raise ValueError(
                        f"trace not time-ordered at index {count}: {t} < {last_t}"
                    )
                last_t = t
                if on_request is not None:
                    on_request(count, request)
                nbytes = request.b1 - request.b0 + 1
                for (handle, record), k in per_lane_k:
                    nchunks = request.b1 // k - request.b0 // k + 1
                    record(t, nbytes, nchunks, handle(request))
                count += 1
                if snap_every and count % snap_every == 0:
                    self._sample_lanes(t, count)
                if progress is not None and count % progress_every == 0:
                    progress(count, total, time.perf_counter() - t_replay0)
        replay_seconds = time.perf_counter() - t_replay0
        if progress is not None:
            progress(count, total, replay_seconds)
        self._finish_lanes(count)

        report = RunReport(
            engine="multireplay",
            mode="broadcast",
            wall_seconds=time.perf_counter() - t_start,
            num_requests=count,
            num_caches=len(keys),
        )
        report.extra["trace_format"] = "objects"
        if prepare_seconds:
            report.stages.append(
                StageTiming("prepare", prepare_seconds, len(offline))
            )
        report.stages.append(StageTiming("replay", replay_seconds, count))

        tel = self._tel_lanes
        return {
            key: SimulationResult(
                cache=self.caches[key],
                metrics=self.collectors[key],
                num_requests=count,
                report=report,
                telemetry=tel[key] if tel is not None else None,
            )
            for key in keys
        }

    # -- telemetry hooks ----------------------------------------------------

    def _sample_lanes(self, t: float, done: int) -> None:
        """Record one occupancy/gauge snapshot per telemetry lane."""
        lanes = self._tel_lanes
        if lanes is None:
            return
        for key, lane in lanes.items():
            lane.sample(t, self.caches[key], done)

    def _finish_lanes(self, count: int) -> None:
        """Seal every telemetry lane with final gauges and summaries."""
        lanes = self._tel_lanes
        if lanes is None:
            return
        for key, lane in lanes.items():
            collector = self.collectors[key]
            lane.finish(
                self.caches[key],
                collector.totals().to_dict(),
                collector.steady_state().to_dict(),
                count,
            )

    def _run_packed(
        self,
        packed: PackedTrace,
        keys: list,
        progress: Optional[ProgressCallback],
    ) -> "tuple[int, float]":
        """The packed fast lane: block-at-a-time, cache-major dispatch.

        Caches are independent, so handling a whole block through one
        cache before the next is exactly equivalent to the per-request
        interleaving of the object path — but lets each lane run as a
        single C-level ``map`` over column slices.  Time order and byte
        ranges were validated at pack time, so no per-request checks
        run here.
        """
        ts, videos, b0s, b1s, c0s, c1s, num_bytes, num_chunks = packed.hot_columns()
        n = len(ts)
        pk = packed.chunk_bytes
        kernels_on = _kernels_enabled()

        # Per-lane column adaptation: chunk columns follow the cache's
        # chunk size, the byte-accounting column follows the collector's
        # (they may legitimately differ from the packed trace's).  A
        # lane whose chunk sizes all match the trace's — the common
        # case — dispatches through the cache's decision kernel
        # (handle_span_block_kernel + record_packed_block); mismatched
        # lanes and record-overriding collectors take the scalar block
        # walk with per-request accounting.
        lanes = []
        for key in keys:
            cache = self.caches[key]
            collector = self.collectors[key]
            ck = cache.chunk_bytes
            if ck == pk:
                lane_c0, lane_c1 = c0s, c1s
            else:
                lane_c0 = [b // ck for b in b0s]
                lane_c1 = [b // ck for b in b1s]
            mk = collector.chunk_bytes
            if mk == pk:
                lane_nc = num_chunks
            elif mk == ck:
                lane_nc = [hi - lo + 1 for lo, hi in zip(lane_c0, lane_c1)]
            else:
                lane_nc = [b1 // mk - b0 // mk + 1 for b0, b1 in zip(b0s, b1s)]
            kernel = None
            if (
                kernels_on
                and ck == pk
                and mk == pk
                and _kernel_native(cache)
                and _block_collector_ok(collector)
            ):
                kernel = cache.handle_span_block_kernel
            lanes.append(
                (
                    kernel,
                    cache.handle_span_block,
                    collector.record_packed_block,
                    collector.record_packed,
                    lane_c0,
                    lane_c1,
                    lane_nc,
                )
            )

        # Telemetry snapshots land on block boundaries: the packed lane
        # never pays a per-request check, and a disabled run (the
        # default) pays one falsy test per 16k-request block.
        snap_every = 0
        if self._tel_lanes is not None and self.telemetry is not None:
            snap_every = self.telemetry.options.snapshot_every
        last_snap = 0

        t0 = time.perf_counter()
        block = PACKED_BLOCK
        for start in range(0, n, block):
            stop = min(start + block, n)
            view = packed.block_view(start, stop)
            block_t = view.ts_l
            block_nb = num_bytes[start:stop]
            for (
                kernel,
                handle_block,
                record_block,
                record_packed,
                lane_c0,
                lane_c1,
                lane_nc,
            ) in lanes:
                if kernel is not None and view.vectorized:
                    responses, misses = kernel(view)
                    record_block(
                        view.ts, view.num_bytes, view.num_chunks, responses, misses
                    )
                else:
                    responses = handle_block(
                        block_t,
                        view.videos_l,
                        view.b0s_l,
                        view.b1s_l,
                        lane_c0[start:stop],
                        lane_c1[start:stop],
                    )
                    record_packed(
                        block_t, block_nb, lane_nc[start:stop], responses
                    )
            if snap_every and stop - last_snap >= snap_every:
                # float() lifts numpy scalars so snapshots stay
                # JSON-serializable regardless of the column backing.
                self._sample_lanes(float(block_t[-1]), stop)
                last_snap = stop
            if progress is not None:
                progress(stop, n, time.perf_counter() - t0)
        replay_seconds = time.perf_counter() - t0
        if n == 0 and progress is not None:
            progress(0, 0, replay_seconds)
        return n, replay_seconds


def replay(
    cache: VideoCache,
    requests: Iterable[Request],
    interval: float = 3600.0,
    metrics: Optional[MetricsCollector] = None,
    on_request: Optional[Callable[[int, Request], None]] = None,
    progress: Optional[ProgressCallback] = None,
    telemetry: "Optional[Telemetry]" = None,
    label: Optional[str] = None,
) -> SimulationResult:
    """Replay ``requests`` (time-ordered) through ``cache``.

    Offline caches (``cache.offline``) receive the materialized sequence
    via ``prepare`` first, so passing a generator is fine — it is
    drained once either way.  ``on_request(i, request)`` is an optional
    progress hook called before each request; ``progress`` receives
    periodic ``(done, total, elapsed)`` callbacks.  The result carries a
    :class:`~repro.sim.instrumentation.RunReport`.

    With ``telemetry`` set, the single lane is registered under
    ``label`` (default: the cache's algorithm name) and the result's
    ``telemetry`` field holds its :class:`~repro.obs.telemetry.LaneTelemetry`.
    """
    key = label if label is not None else cache.name
    engine = MultiReplay(
        {key: cache},
        interval=interval,
        collectors={key: metrics} if metrics is not None else None,
        telemetry=telemetry,
    )
    result = engine.run(requests, on_request=on_request, progress=progress)[key]
    assert result.report is not None
    result.report.engine = "replay"
    result.report.mode = "serial"
    return result
