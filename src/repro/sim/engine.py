"""The replay engine: drive a cache with a trace, collect metrics.

This is the experimental loop of Section 9: "We replay the logs of each
server to the different algorithms and measure the resultant ingress
traffic, redirection ratio and the overall cache efficiency."
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Iterable, Optional, Sequence

from repro.core.base import VideoCache
from repro.sim.metrics import MetricsCollector, TrafficSummary
from repro.trace.requests import Request

__all__ = ["SimulationResult", "replay"]


@dataclass
class SimulationResult:
    """Outcome of replaying one trace against one cache."""

    cache: VideoCache
    metrics: MetricsCollector
    num_requests: int

    @property
    def totals(self) -> TrafficSummary:
        """Whole-trace traffic summary."""
        return self.metrics.totals()

    @property
    def steady(self) -> TrafficSummary:
        """Second-half-of-trace summary, the paper's headline number."""
        return self.metrics.steady_state()

    def describe(self) -> str:
        """One-line summary of the steady-state metrics."""
        s = self.steady
        return (
            f"{self.cache.describe()}: eff={s.efficiency:.3f} "
            f"redirect={s.redirect_ratio:.3f} ingress={s.ingress_fraction:.3f} "
            f"({self.num_requests} requests)"
        )


def replay(
    cache: VideoCache,
    requests: Iterable[Request],
    interval: float = 3600.0,
    metrics: Optional[MetricsCollector] = None,
    on_request: Optional[Callable[[int, Request], None]] = None,
) -> SimulationResult:
    """Replay ``requests`` (time-ordered) through ``cache``.

    Offline caches (``cache.offline``) receive the materialized sequence
    via ``prepare`` first, so passing a generator is fine — it is
    drained once either way.  ``on_request(i, request)`` is an optional
    progress hook called before each request.
    """
    if metrics is None:
        metrics = MetricsCollector(
            cache.cost_model, chunk_bytes=cache.chunk_bytes, interval=interval
        )
    sequence: Sequence[Request] | Iterable[Request] = requests
    if cache.offline:
        sequence = requests if isinstance(requests, Sequence) else list(requests)
        cache.prepare(sequence)

    count = 0
    last_t = float("-inf")
    for i, request in enumerate(sequence):
        if request.t < last_t:
            raise ValueError(
                f"trace not time-ordered at index {i}: {request.t} < {last_t}"
            )
        last_t = request.t
        if on_request is not None:
            on_request(i, request)
        response = cache.handle(request)
        metrics.record(request, response)
        count += 1
    return SimulationResult(cache=cache, metrics=metrics, num_requests=count)
