"""Engine observability: stage timers, throughput counters, run reports.

The simulation layers (``replay``, ``MultiReplay``, ``SweepScheduler``,
``CdnSimulator``) attach a :class:`RunReport` to their results: a
JSON-serializable record of where wall-time went (per-stage timings),
how fast the engine ran (requests/s) and how the work was executed
(serial, broadcast or parallel).  Reports are deliberately cheap to
produce — a handful of ``perf_counter`` calls per run, never per
request — so they stay on in production-scale sweeps.

:class:`ProgressTicker` provides the periodic progress callbacks: it
invokes a user callback every ``every`` requests with the running count,
the total (when known) and the elapsed seconds.
"""

from __future__ import annotations

import json
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterator, List, Optional, Union

__all__ = [
    "EngineEvent",
    "StageTiming",
    "StageTimer",
    "ProgressTicker",
    "RunReport",
]

#: Signature of a progress callback: ``(done, total, elapsed_seconds)``.
#: ``total`` is None when the request stream is not sized.
ProgressCallback = Callable[[int, Optional[int], float], None]


@dataclass(frozen=True, slots=True)
class EngineEvent:
    """One notable engine occurrence: a fault applied, a worker retry.

    ``t`` is producer-defined: simulation time for replay-level events
    (cache wipes), wall-clock seconds since run start for executor
    events (group crashes, retries, checkpoint resumes).  ``kind`` is a
    short machine-friendly tag; ``detail`` is free-form context;
    ``level`` grades severity with the telemetry event-log levels
    (``debug``/``info``/``warning``/``error``).
    """

    t: float
    kind: str
    detail: str = ""
    level: str = "info"

    def to_dict(self) -> dict:
        return {
            "t": self.t,
            "kind": self.kind,
            "detail": self.detail,
            "level": self.level,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "EngineEvent":
        return cls(
            t=data["t"],
            kind=data["kind"],
            detail=data.get("detail", ""),
            level=data.get("level", "info"),
        )

    def __str__(self) -> str:
        suffix = f": {self.detail}" if self.detail else ""
        tag = f" {self.level.upper()}" if self.level != "info" else ""
        return f"[{self.t:g}]{tag} {self.kind}{suffix}"


@dataclass
class StageTiming:
    """Wall-time (and optional item count) of one named engine stage."""

    name: str
    seconds: float
    items: int = 0

    @property
    def rate(self) -> float:
        """Items per second (0 when the stage timed nothing)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.items / self.seconds

    def to_dict(self) -> dict:
        return {
            "name": self.name,
            "seconds": self.seconds,
            "items": self.items,
            "rate": self.rate,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "StageTiming":
        return cls(
            name=data["name"],
            seconds=data["seconds"],
            items=data.get("items", 0),
        )


class StageTimer:
    """Accumulates per-stage wall time.

    Usage::

        timer = StageTimer()
        with timer.stage("prepare"):
            cache.prepare(trace)
        with timer.stage("replay", items=len(trace)):
            ...
    """

    def __init__(self) -> None:
        self._stages: Dict[str, List[float]] = {}
        self._order: List[str] = []

    @contextmanager
    def stage(self, name: str, items: int = 0) -> Iterator[None]:
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.add(name, time.perf_counter() - t0, items)

    def add(self, name: str, seconds: float, items: int = 0) -> None:
        """Fold ``seconds`` (and ``items``) into stage ``name``."""
        if name not in self._stages:
            self._stages[name] = [0.0, 0]
            self._order.append(name)
        acc = self._stages[name]
        acc[0] += seconds
        acc[1] += items

    def seconds(self, name: str) -> float:
        """Accumulated wall time of one stage (0 if never entered)."""
        acc = self._stages.get(name)
        return acc[0] if acc else 0.0

    def timings(self) -> List[StageTiming]:
        """All stages, in first-entered order."""
        return [
            StageTiming(name, self._stages[name][0], int(self._stages[name][1]))
            for name in self._order
        ]


class ProgressTicker:
    """Invokes a callback every ``every`` processed items.

    The tick itself is one modulo and one comparison; the callback (and
    a ``perf_counter`` call) only fire on the cadence, so a ticker can
    sit in a per-request loop without measurable cost.
    """

    def __init__(
        self,
        callback: Optional[ProgressCallback],
        every: int = 8192,
        total: Optional[int] = None,
    ) -> None:
        if every < 1:
            raise ValueError(f"every must be >= 1, got {every}")
        if total is not None and total < 0:
            raise ValueError(f"total must be >= 0 or None, got {total}")
        self.callback = callback
        self.every = every
        #: None when the trace length is unknown up front (streaming or
        #: generator traces) — callbacks receive ``total=None`` and must
        #: render count-only progress.
        self.total = total
        self._t0 = time.perf_counter()
        self._next = every

    def tick(self, done: int) -> None:
        """Report progress if ``done`` sits on the cadence."""
        if self.callback is not None and done % self.every == 0:
            self.callback(done, self.total, time.perf_counter() - self._t0)

    def tick_batch(self, done: int) -> None:
        """Report progress after a batch advance of arbitrary size.

        Batched replay loops move the counter by whole blocks, so
        ``done`` may never sit exactly on the cadence; this variant
        fires whenever at least one cadence boundary was crossed since
        the last report.
        """
        if self.callback is not None and done >= self._next:
            self._next = done - done % self.every + self.every
            self.callback(done, self.total, time.perf_counter() - self._t0)

    def finish(self, done: int) -> None:
        """Report final progress (always fires when a callback is set)."""
        if self.callback is not None:
            self.callback(done, self.total, time.perf_counter() - self._t0)


@dataclass
class RunReport:
    """JSON-serializable record of one engine run.

    ``num_requests`` counts trace requests driven through the engine;
    ``num_caches`` is how many caches shared that pass (broadcast runs
    amortize one pass over many caches).  ``requests_per_second`` is
    trace-requests over wall time; multiply by ``num_caches`` for
    cache-handle operations per second.
    """

    engine: str
    mode: str = "serial"
    wall_seconds: float = 0.0
    num_requests: int = 0
    num_caches: int = 1
    workers: int = 1
    stages: List[StageTiming] = field(default_factory=list)
    extra: Dict[str, Union[int, float, str]] = field(default_factory=dict)
    #: notable occurrences (faults applied, worker retries, checkpoint
    #: resumes); empty for ordinary runs
    events: List[EngineEvent] = field(default_factory=list)

    @property
    def requests_per_second(self) -> float:
        """Trace requests per wall-clock second (0 when nothing ran)."""
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.num_requests / self.wall_seconds

    @property
    def handles_per_second(self) -> float:
        """Cache-handle operations per second (requests x caches)."""
        return self.requests_per_second * self.num_caches

    def to_dict(self) -> dict:
        """Plain-dict form, safe for ``json.dumps``."""
        return {
            "engine": self.engine,
            "mode": self.mode,
            "wall_seconds": self.wall_seconds,
            "num_requests": self.num_requests,
            "num_caches": self.num_caches,
            "workers": self.workers,
            "requests_per_second": self.requests_per_second,
            "stages": [s.to_dict() for s in self.stages],
            "extra": dict(self.extra),
            "events": [e.to_dict() for e in self.events],
        }

    def to_json(self, **kwargs) -> str:
        return json.dumps(self.to_dict(), **kwargs)

    @classmethod
    def from_dict(cls, data: dict) -> "RunReport":
        return cls(
            engine=data["engine"],
            mode=data.get("mode", "serial"),
            wall_seconds=data.get("wall_seconds", 0.0),
            num_requests=data.get("num_requests", 0),
            num_caches=data.get("num_caches", 1),
            workers=data.get("workers", 1),
            stages=[StageTiming.from_dict(s) for s in data.get("stages", [])],
            extra=dict(data.get("extra", {})),
            events=[EngineEvent.from_dict(e) for e in data.get("events", [])],
        )

    def describe(self) -> str:
        """One-line human-readable summary."""
        parts = [
            f"{self.engine}[{self.mode}]",
            f"{self.num_requests} requests",
        ]
        if self.num_caches != 1:
            parts.append(f"x {self.num_caches} caches")
        if self.workers != 1:
            parts.append(f"({self.workers} workers)")
        parts.append(f"in {self.wall_seconds:.3f}s")
        parts.append(f"= {self.requests_per_second:,.0f} req/s")
        return " ".join(parts)
