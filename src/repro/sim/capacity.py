"""Egress-capacity gating: the "saturated egress" server of Section 2.

"An important parameter for the willingness of a server to cache-fill
is the utilization of its egress (serving) capacity.  For a server at
which the current contents suffice to serve as many of the requests as
can fully utilize the egress capacity, there is no point to bring in
new content upon cache misses."

:class:`EgressCapacityGate` wraps any online cache with a token-bucket
egress limit: requests that would push served traffic beyond the
configured rate are redirected *before* reaching the cache (the
overload path — the CDN's mapping would send that demand elsewhere).
Replaying the same trace with and without the gate shows why a
saturated server should run with ``alpha_F2R > 1``: its gated egress is
the same whether it cache-fills eagerly or not, so eager ingress is
"wasted (and possibly harmful)".
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.core.base import CacheResponse, Decision, VideoCache
from repro.trace.requests import Request

__all__ = ["EgressCapacityGate"]


@dataclass
class EgressCapacityGate:
    """Token-bucket egress limiter in front of an online cache.

    ``egress_bytes_per_second`` is the sustained serving rate;
    ``burst_seconds`` sizes the bucket (how long the server can serve
    above the sustained rate before saturating).  Use :meth:`handle` in
    place of ``cache.handle``.
    """

    cache: VideoCache
    egress_bytes_per_second: float
    burst_seconds: float = 60.0

    def __post_init__(self) -> None:
        if self.cache.offline:
            raise ValueError("capacity gating requires an online cache")
        if self.egress_bytes_per_second <= 0:
            raise ValueError("egress_bytes_per_second must be positive")
        if self.burst_seconds <= 0:
            raise ValueError("burst_seconds must be positive")
        self._capacity = self.egress_bytes_per_second * self.burst_seconds
        self._tokens = self._capacity
        self._last_t: float | None = None
        self.overload_redirects = 0
        self.overload_bytes = 0

    def handle(self, request: Request) -> CacheResponse:
        self._refill(request.t)
        if request.num_bytes > self._tokens:
            # saturated: this demand goes to the alternative location
            self.overload_redirects += 1
            self.overload_bytes += request.num_bytes
            return CacheResponse(Decision.REDIRECT)
        response = self.cache.handle(request)
        if response.served:
            self._tokens -= request.num_bytes
        return response

    @property
    def utilization(self) -> float:
        """Instantaneous bucket fullness complement in [0, 1]."""
        return 1.0 - self._tokens / self._capacity

    def _refill(self, now: float) -> None:
        if self._last_t is None:
            self._last_t = now
            return
        if now < self._last_t:
            raise ValueError(
                f"requests must be time-ordered: {now} < {self._last_t}"
            )
        elapsed = now - self._last_t
        self._last_t = now
        self._tokens = min(
            self._capacity,
            self._tokens + elapsed * self.egress_bytes_per_second,
        )
