"""Trace-replay simulation: engine, metrics and sweep runner (Section 9).

The engine replays a request trace against any
:class:`~repro.core.VideoCache` and the metrics collector produces the
three quantities the paper reports — redirection ratio, ingress-to-
egress percentage, and cache efficiency (Eq. 2) — both as time series
(Figure 3) and as steady-state averages over the second half of the
trace ("to exclude the initial cache warmup phase").
"""

from repro.sim.capacity import EgressCapacityGate
from repro.sim.compare import BootstrapCi, compare_runs, efficiency_ci, paired_gap_ci
from repro.sim.diskmodel import (
    DiskInterferenceReport,
    DiskLoadSample,
    DiskModel,
    analyze_disk_load,
)
from repro.sim.engine import MultiReplay, SimulationResult, replay
from repro.sim.instrumentation import (
    ProgressTicker,
    RunReport,
    StageTimer,
    StageTiming,
)
from repro.sim.metrics import IntervalSample, MetricsCollector, TrafficSummary
from repro.sim.runner import (
    CACHE_FACTORIES,
    PAPER_ALGORITHMS,
    RunConfig,
    build_cache,
    results_table,
    run_matrix,
    sweep_alpha,
    sweep_disk,
)
from repro.sim.schedule import SweepPlan, SweepScheduler, resolve_workers

__all__ = [
    "EgressCapacityGate",
    "DiskModel",
    "DiskLoadSample",
    "DiskInterferenceReport",
    "analyze_disk_load",
    "BootstrapCi",
    "efficiency_ci",
    "paired_gap_ci",
    "compare_runs",
    "replay",
    "MultiReplay",
    "SimulationResult",
    "MetricsCollector",
    "TrafficSummary",
    "IntervalSample",
    "RunReport",
    "StageTimer",
    "StageTiming",
    "ProgressTicker",
    "CACHE_FACTORIES",
    "PAPER_ALGORITHMS",
    "RunConfig",
    "build_cache",
    "run_matrix",
    "sweep_alpha",
    "sweep_disk",
    "results_table",
    "SweepPlan",
    "SweepScheduler",
    "resolve_workers",
]
