"""Parameter-sweep runner: the experiment matrices of Section 9.

The paper's figures sweep three axes — algorithm, ``alpha_F2R`` and disk
size — over per-server traces.  :func:`run_matrix` runs any cross
product of cache factories and configurations;
:func:`sweep_alpha` / :func:`sweep_disk` are the two named sweeps
(Figures 4–6).

Execution is delegated to :class:`~repro.sim.schedule.SweepScheduler`:
online cells share a single broadcast pass of the trace, offline cells
run as independent tasks, and a worker count > 1 (argument or
``REPRO_WORKERS``) distributes the work over a process pool.  The
results are identical to per-cell sequential replay — the
golden-equivalence suite in ``tests/sim/test_equivalence.py`` holds the
scheduler to that.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence

from repro.core.base import VideoCache
from repro.core.baselines import BeladyCache, LfuAdmissionCache, PullThroughLruCache
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.lru_variants import GreedyDualSizeCache, LruKCache
from repro.core.psychic import PsychicCache
from repro.core.xlru import XlruCache
from repro.sim.engine import SimulationResult
from repro.sim.instrumentation import ProgressCallback
from repro.trace.requests import DEFAULT_CHUNK_BYTES, Request

__all__ = [
    "CACHE_FACTORIES",
    "PAPER_ALGORITHMS",
    "build_cache",
    "RunConfig",
    "run_matrix",
    "sweep_alpha",
    "sweep_disk",
    "results_table",
]

#: Registry of algorithm name -> cache class, for config-driven runs.
CACHE_FACTORIES: Dict[str, Callable[..., VideoCache]] = {
    "xLRU": XlruCache,
    "Cafe": CafeCache,
    "Psychic": PsychicCache,
    "PullLRU": PullThroughLruCache,
    "LFU": LfuAdmissionCache,
    "Belady": BeladyCache,
    "LRU-K": LruKCache,
    "GDS": GreedyDualSizeCache,
}

#: The paper's trio, in figure order (left-to-right bars of Figs. 4, 7).
PAPER_ALGORITHMS = ("xLRU", "Cafe", "Psychic")

# Registered policy kernels ride in through the registry: each entry is
# a KernelCache factory carrying the offline/cost_sensitive attributes
# the scheduler and equivalence suite read off factory values.
from repro.core.policy import cache_factories as _policy_cache_factories  # noqa: E402

CACHE_FACTORIES.update(_policy_cache_factories())


def build_cache(
    algorithm: str,
    disk_chunks: int,
    alpha_f2r: float = 1.0,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    **kwargs,
) -> VideoCache:
    """Instantiate a registered algorithm with the standard knobs."""
    try:
        factory = CACHE_FACTORIES[algorithm]
    except KeyError:
        known = ", ".join(sorted(CACHE_FACTORIES))
        raise ValueError(f"unknown algorithm {algorithm!r}; known: {known}") from None
    return factory(
        disk_chunks,
        chunk_bytes=chunk_bytes,
        cost_model=CostModel(alpha_f2r),
        **kwargs,
    )


@dataclass(frozen=True, slots=True)
class RunConfig:
    """One cell of an experiment matrix."""

    algorithm: str
    disk_chunks: int
    alpha_f2r: float = 1.0
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    label: str = ""

    def build(self, **kwargs) -> VideoCache:
        return build_cache(
            self.algorithm,
            self.disk_chunks,
            alpha_f2r=self.alpha_f2r,
            chunk_bytes=self.chunk_bytes,
            **kwargs,
        )

    @property
    def key(self) -> str:
        return self.label or (
            f"{self.algorithm}/disk={self.disk_chunks}/alpha={self.alpha_f2r}"
        )


def run_matrix(
    configs: Iterable[RunConfig],
    requests: Iterable[Request],
    interval: float = 3600.0,
    *,
    workers: Optional[int] = None,
    mode: str = "auto",
    collapse: bool = True,
    progress: Optional[ProgressCallback] = None,
) -> Dict[str, SimulationResult]:
    """Replay ``requests`` against every configuration.

    Online cells share one broadcast pass; offline cells spill the
    trace to a list and run independently.  ``workers`` > 1 (or the
    ``REPRO_WORKERS`` environment variable) executes the plan on a
    process pool; ``mode`` selects the execution strategy (see
    :class:`~repro.sim.schedule.SweepScheduler`).

    Raises :class:`ValueError` when two configs share a ``key`` (e.g. a
    duplicate ``label``) — previously the later cell silently
    overwrote the earlier one.
    """
    from repro.sim.schedule import SweepScheduler

    scheduler = SweepScheduler(
        workers=workers,
        mode=mode,
        interval=interval,
        collapse=collapse,
        progress=progress,
    )
    return scheduler.run(list(configs), requests)


def sweep_alpha(
    requests: Sequence[Request],
    disk_chunks: int,
    alphas: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    interval: float = 3600.0,
    *,
    workers: Optional[int] = None,
    mode: str = "auto",
) -> Mapping[float, Dict[str, SimulationResult]]:
    """The Figure 4/5 sweep: every algorithm at every ``alpha_F2R``.

    The whole alpha x algorithm matrix is scheduled as ONE plan, so all
    online cells — across every alpha — share a single pass of the
    trace instead of one pass per alpha.
    """
    alphas = list(dict.fromkeys(alphas))
    algorithms = list(dict.fromkeys(algorithms))
    configs = [
        RunConfig(
            algo, disk_chunks, alpha, chunk_bytes, label=f"alpha={alpha:g}/{algo}"
        )
        for alpha in alphas
        for algo in algorithms
    ]
    results = run_matrix(
        configs, requests, interval=interval, workers=workers, mode=mode
    )
    return {
        alpha: {
            algo: results[f"alpha={alpha:g}/{algo}"] for algo in algorithms
        }
        for alpha in alphas
    }


def sweep_disk(
    requests: Sequence[Request],
    disk_sizes: Sequence[int],
    alpha_f2r: float = 2.0,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    interval: float = 3600.0,
    *,
    workers: Optional[int] = None,
    mode: str = "auto",
) -> Mapping[int, Dict[str, SimulationResult]]:
    """The Figure 6 sweep: every algorithm at every disk size (chunks).

    Like :func:`sweep_alpha`, the whole disk x algorithm matrix is one
    scheduler plan — online cells at every disk size share one pass.
    """
    disk_sizes = list(dict.fromkeys(disk_sizes))
    algorithms = list(dict.fromkeys(algorithms))
    configs = [
        RunConfig(
            algo, disk, alpha_f2r, chunk_bytes, label=f"disk={disk}/{algo}"
        )
        for disk in disk_sizes
        for algo in algorithms
    ]
    results = run_matrix(
        configs, requests, interval=interval, workers=workers, mode=mode
    )
    return {
        disk: {algo: results[f"disk={disk}/{algo}"] for algo in algorithms}
        for disk in disk_sizes
    }


def results_table(
    results: Mapping[str, SimulationResult], steady: bool = True
) -> List[dict]:
    """Flatten results into printable row dicts (used by the CLI)."""
    rows = []
    for key, result in results.items():
        summary = result.steady if steady else result.totals
        rows.append(
            {
                "config": key,
                "efficiency": summary.efficiency,
                "redirect_ratio": summary.redirect_ratio,
                "ingress_fraction": summary.ingress_fraction,
                "requests": summary.num_requests,
            }
        )
    return rows
