"""Disk read/write interference: the Section 2 cost of ingress.

"Sometimes the server's ingress traffic and the consequent disk writes
can overload the disks and harm the read operations for cache-hit
requests.  We have observed that in this case, for every extra
write-block operation we lose 1.2-1.3 reads."

This model converts a replay's traffic time series into disk-block
operations and quantifies that harm: every cache-fill byte becomes
write blocks, every served byte read blocks (ingress-filled bytes are
also read back out when served, but the fill's write is the extra
cost), and each write displaces ``write_read_penalty`` reads from the
disk's budget.  The output — per-bucket utilization and the hours in
which demand exceeded the effective read capacity — turns the paper's
qualitative warning into a measurable consequence of each algorithm's
ingress behaviour, and is the physical argument for ``alpha_F2R > 1``
on disk-constrained servers.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from repro.sim.engine import SimulationResult

__all__ = ["DiskModel", "DiskLoadSample", "DiskInterferenceReport", "analyze_disk_load"]


@dataclass(frozen=True, slots=True)
class DiskModel:
    """Throughput model of a cache server's disk array."""

    #: sustained read block operations per second with no write load
    read_blocks_per_second: float
    #: reads lost per write-block operation (paper: 1.2-1.3)
    write_read_penalty: float = 1.25
    #: disk block size; reads/writes are counted in these units
    block_bytes: int = 256 * 1024

    def __post_init__(self) -> None:
        if self.read_blocks_per_second <= 0:
            raise ValueError("read_blocks_per_second must be positive")
        if self.write_read_penalty < 0:
            raise ValueError("write_read_penalty must be non-negative")
        if self.block_bytes <= 0:
            raise ValueError("block_bytes must be positive")

    def effective_read_capacity(self, write_blocks_per_second: float) -> float:
        """Read budget left after write interference (never below 0)."""
        return max(
            0.0,
            self.read_blocks_per_second
            - self.write_read_penalty * write_blocks_per_second,
        )


@dataclass(frozen=True, slots=True)
class DiskLoadSample:
    """Disk load of one metrics bucket."""

    t_start: float
    read_blocks_per_second: float
    write_blocks_per_second: float
    #: required reads / effective capacity; > 1 means overload
    utilization: float


@dataclass
class DiskInterferenceReport:
    """Aggregate disk-load analysis of one replay."""

    model: DiskModel
    samples: List[DiskLoadSample]
    #: read-block capacity destroyed by write interference, summed
    reads_lost_to_writes: float = 0.0

    @property
    def overloaded_buckets(self) -> int:
        return sum(1 for s in self.samples if s.utilization > 1.0)

    @property
    def overload_fraction(self) -> float:
        if not self.samples:
            return 0.0
        return self.overloaded_buckets / len(self.samples)

    @property
    def peak_utilization(self) -> float:
        if not self.samples:
            return 0.0
        return max(s.utilization for s in self.samples)

    def summary(self) -> dict:
        return {
            "buckets": len(self.samples),
            "overloaded_buckets": self.overloaded_buckets,
            "overload_fraction": self.overload_fraction,
            "peak_utilization": self.peak_utilization,
            "reads_lost_to_writes": self.reads_lost_to_writes,
        }


def analyze_disk_load(
    result: SimulationResult, model: DiskModel
) -> DiskInterferenceReport:
    """Evaluate a replay's traffic against a disk model, per bucket.

    Served bytes become read blocks, ingress bytes write blocks, both
    averaged over each metrics bucket of the replay.
    """
    interval = result.metrics.interval
    samples: List[DiskLoadSample] = []
    lost = 0.0
    for bucket in result.metrics.series():
        summary = bucket.summary
        reads = summary.egress_bytes / model.block_bytes / interval
        writes = summary.ingress_bytes / model.block_bytes / interval
        capacity = model.effective_read_capacity(writes)
        utilization = reads / capacity if capacity > 0 else float("inf")
        samples.append(
            DiskLoadSample(
                t_start=bucket.t_start,
                read_blocks_per_second=reads,
                write_blocks_per_second=writes,
                utilization=utilization,
            )
        )
        lost += min(
            model.write_read_penalty * writes, model.read_blocks_per_second
        ) * interval
    return DiskInterferenceReport(model=model, samples=samples, reads_lost_to_writes=lost)
