"""Sweep scheduling: partition matrix cells, execute groups, in parallel.

The paper's experiments (Figures 4–7) are matrices — algorithm x
``alpha_F2R`` x disk size — replayed over a month-long trace.  The
:class:`SweepScheduler` turns such a matrix into an execution plan:

* **Broadcast groups** — online caches share a single streaming pass of
  the trace (:class:`~repro.sim.engine.MultiReplay`), so the matrix
  costs O(trace) iteration instead of O(cells x trace).
* **Single tasks** — offline caches (Psychic, Belady) need the
  materialized future via ``prepare`` and run as independent cells.
* **Alpha-collapsing** — caches whose *decisions* never consult the
  cost model (``cost_sensitive = False``: PullLRU, LFU, Belady, LRU-K)
  produce byte-identical traffic counters at every ``alpha``; the
  scheduler simulates one representative cell and derives the others by
  reinterpreting its counters under each cell's cost model.  This is
  exact, not approximate — efficiency is a property computed from the
  counters at read time.
* **Supervised parallel execution** — groups run via
  ``concurrent.futures.ProcessPoolExecutor`` when a worker count > 1 is
  requested (argument or ``REPRO_WORKERS``).  The executor is
  supervised: a crashed or timed-out group is retried on a fresh pool
  with capped exponential backoff, results of groups that *did* finish
  are salvaged (never re-simulated), and only groups that exhaust their
  retries fall back to in-process execution.
* **Checkpointing** — an opt-in append-only journal
  (:class:`SweepCheckpoint`, ``checkpoint=`` or ``REPRO_CHECKPOINT``)
  persists each finished group as it completes, so a sweep killed
  mid-run resumes from its last completed group instead of starting
  over.  Records are bound to a fingerprint of the plan, interval and
  trace, so a stale journal from a different sweep is ignored, not
  misapplied.

Result keys and ordering are deterministic: the returned mapping is
keyed by ``RunConfig.key`` in input order, whatever the execution
strategy.  Duplicate keys are a hard error (they would silently
overwrite results).
"""

from __future__ import annotations

import hashlib
import os
import pickle
import signal
import threading
import time
from contextlib import contextmanager
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from dataclasses import dataclass, field
from typing import (
    TYPE_CHECKING,
    Callable,
    Dict,
    Iterable,
    List,
    Optional,
    Sequence,
    Tuple,
)

from repro.core.costs import CostModel
from repro.obs.events import EventLog
from repro.sim.engine import MultiReplay, SimulationResult, replay
from repro.sim.instrumentation import (
    EngineEvent,
    ProgressCallback,
    RunReport,
    StageTiming,
)
from repro.trace.columnar import PackedTrace, SharedTraceHandle, pack_trace
from repro.trace.requests import Request

if TYPE_CHECKING:  # pragma: no cover - type-only import
    from repro.obs.telemetry import Telemetry, TelemetryOptions

__all__ = [
    "CHECKPOINT_ENV",
    "PARALLEL_MIN_WORK_ENV",
    "WORKERS_ENV",
    "CellGroup",
    "SweepCheckpoint",
    "SweepPlan",
    "SweepScheduler",
    "resolve_workers",
]

#: Environment knob for the default worker count ("repro-experiment
#: --workers N" sets it; 0/1/unset mean in-process execution).
WORKERS_ENV = "REPRO_WORKERS"

#: Environment knob for the default checkpoint path ("repro-experiment
#: --checkpoint PATH" sets it; unset/empty means no checkpointing).
CHECKPOINT_ENV = "REPRO_CHECKPOINT"

#: Environment knob for the auto-mode parallel threshold (see
#: ``SweepScheduler.parallel_min_work``).
PARALLEL_MIN_WORK_ENV = "REPRO_PARALLEL_MIN_WORK"

#: Below this many simulated-cell-requests (cells x trace length), pool
#: startup + result pickling costs more than the parallel speedup is
#: worth; auto mode runs such sweeps serially.  The default corresponds
#: to roughly a second of single-pass replay work.
DEFAULT_PARALLEL_MIN_WORK = 200_000

_MODES = ("auto", "serial", "parallel", "cells")


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit argument, else ``REPRO_WORKERS``."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV}={raw!r} is not an integer"
                ) from None
    if workers is None:
        return 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


def _resolve_min_work(parallel_min_work: Optional[int]) -> int:
    """Effective auto-parallel threshold: argument, env, else default."""
    if parallel_min_work is None:
        raw = os.environ.get(PARALLEL_MIN_WORK_ENV, "").strip()
        if raw:
            try:
                parallel_min_work = int(raw)
            except ValueError:
                raise ValueError(
                    f"{PARALLEL_MIN_WORK_ENV}={raw!r} is not an integer"
                ) from None
    if parallel_min_work is None:
        return DEFAULT_PARALLEL_MIN_WORK
    if parallel_min_work < 0:
        raise ValueError(
            f"parallel_min_work must be >= 0, got {parallel_min_work}"
        )
    return parallel_min_work


@dataclass(frozen=True)
class CellGroup:
    """One executable unit of a sweep plan."""

    #: "broadcast" — online caches sharing one trace pass;
    #: "single" — an offline cache running its own prepare + replay.
    kind: str
    configs: Tuple["RunConfig", ...]  # noqa: F821 - see repro.sim.runner

    @property
    def keys(self) -> Tuple[str, ...]:
        return tuple(config.key for config in self.configs)


def _group_id(group: CellGroup) -> str:
    """Stable identity of a group inside one plan (checkpoint key)."""
    return group.kind + ":" + "\x1f".join(group.keys)


class SweepCheckpoint:
    """Append-only journal of completed sweep groups.

    Each record is one pickled ``(version, fingerprint, group_id,
    results)`` tuple, appended (and fsync'd) the moment a group
    finishes — so the file only ever contains *fully completed* groups,
    plus possibly one truncated tail record if the writer was killed
    mid-append.  :meth:`load` tolerates that tail: it keeps every
    intact record before it and discards the rest.

    The fingerprint binds records to one specific sweep — the plan's
    group structure, the metrics interval and a cheap trace signature
    (length plus first/last request) — so resuming with a different
    matrix, worker split or trace silently starts fresh instead of
    grafting foreign results.
    """

    # Version 2: pickled results may carry telemetry lanes and
    # level-tagged EngineEvents; version-1 journals (whose records
    # predate those fields) are ignored rather than half-unpickled.
    VERSION = 2

    def __init__(self, path: "os.PathLike | str") -> None:
        self.path = os.fspath(path)

    @staticmethod
    def fingerprint(
        plan: "SweepPlan", interval: float, requests: Sequence[Request]
    ) -> str:
        """Hex digest identifying (plan structure, interval, trace)."""
        h = hashlib.sha256()
        h.update(
            f"sweep-checkpoint-v{SweepCheckpoint.VERSION}|"
            f"interval={interval!r}".encode()
        )
        for group in plan.groups:
            h.update(("|" + _group_id(group)).encode())
        n = len(requests)
        sig: Tuple = (n,)
        if n:
            first, last = requests[0], requests[-1]
            sig = (
                n,
                first.t, first.video, first.b0, first.b1,
                last.t, last.video, last.b0, last.b1,
            )
        h.update(f"|trace={sig!r}".encode())
        return h.hexdigest()

    def load(
        self, fingerprint: str, log: Optional[EventLog] = None
    ) -> Dict[str, Dict[str, SimulationResult]]:
        """Completed groups matching ``fingerprint``: id -> results.

        Missing file means a fresh run (empty dict).  A corrupt or
        truncated tail — the normal aftermath of a killed sweep — stops
        the scan; every record before it is returned.  ``log`` (an
        :class:`~repro.obs.events.EventLog`) receives structured notes
        about skipped records and corrupt tails.
        """
        try:
            stream = open(self.path, "rb")
        except (FileNotFoundError, IsADirectoryError, PermissionError):
            return {}
        records: Dict[str, Dict[str, SimulationResult]] = {}
        with stream:
            while True:
                try:
                    record = pickle.load(stream)
                except EOFError:
                    break
                except Exception as exc:
                    # truncated/corrupt tail: keep what is intact
                    if log is not None:
                        log.info(
                            "checkpoint-corrupt-tail",
                            f"{self.path}: discarding corrupt tail after "
                            f"{len(records)} intact record(s) ({exc!r})",
                        )
                    break
                try:
                    version, fp, group_id, results = record
                except (TypeError, ValueError):
                    if log is not None:
                        log.info(
                            "checkpoint-corrupt-tail",
                            f"{self.path}: malformed record after "
                            f"{len(records)} intact record(s)",
                        )
                    break
                if version != self.VERSION or fp != fingerprint:
                    if log is not None:
                        log.debug(
                            "checkpoint-foreign-record",
                            f"{self.path}: skipping record for "
                            f"version={version!r} fingerprint={str(fp)[:12]}...",
                        )
                    continue
                records[group_id] = results
        return records

    def append(
        self,
        fingerprint: str,
        group_id: str,
        results: Dict[str, SimulationResult],
    ) -> None:
        """Persist one completed group (flushed to disk before return)."""
        with open(self.path, "ab") as stream:
            pickle.dump(
                (self.VERSION, fingerprint, group_id, results),
                stream,
                protocol=pickle.HIGHEST_PROTOCOL,
            )
            stream.flush()
            os.fsync(stream.fileno())

    def sync(self) -> None:
        """Force the journal and its directory entry to stable storage.

        :meth:`append` already fsyncs each record into the file; this
        additionally fsyncs the *containing directory*, so a freshly
        created journal survives a crash that happens right after the
        first append.  Signal handlers call it before killing the
        process.  A missing journal is not an error.
        """
        try:
            fd = os.open(self.path, os.O_RDONLY)
        except OSError:
            return
        try:
            os.fsync(fd)
        finally:
            os.close(fd)
        try:
            dfd = os.open(os.path.dirname(self.path) or ".", os.O_RDONLY)
        except OSError:  # pragma: no cover - unreadable parent dir
            return
        try:
            os.fsync(dfd)
        except OSError:  # pragma: no cover - fs without dir fsync
            pass
        finally:
            os.close(dfd)


@contextmanager
def _terminal_signal_cleanup(shared, checkpoint, log):
    """SIGTERM/SIGINT handlers that release sweep resources first.

    SIGTERM's default disposition kills the process without unwinding
    ``finally`` blocks, which would leak the parent-owned ``/dev/shm``
    trace segment and leave a just-created checkpoint journal's
    directory entry unsynced.  While a parallel sweep is running, the
    installed handler unlinks the segment, syncs the journal, then
    exits with the conventional ``128 + signum`` status (``os._exit``,
    so it never blocks on process-pool teardown).  SIGINT performs the
    same cleanup but raises :class:`KeyboardInterrupt`, preserving the
    existing Ctrl-C semantics; ``SharedTraceHandle.unlink`` is
    idempotent, so the outer ``finally`` unlinking again is harmless.
    Signal handlers can only be installed from the main thread —
    elsewhere this is a no-op.
    """
    if threading.current_thread() is not threading.main_thread():
        yield
        return

    # Forked pool workers inherit these handlers; only the installing
    # process owns the segment, so a signalled worker must fall back to
    # the default disposition instead of unlinking it out from under
    # its siblings.
    owner_pid = os.getpid()

    def _cleanup(signum: int) -> None:
        if shared is not None:
            try:
                shared.unlink()
            except Exception:  # pragma: no cover - nothing left to do
                pass
        if checkpoint is not None:
            try:
                checkpoint.sync()
            except Exception:  # pragma: no cover
                pass
        if log is not None:
            try:
                log.info(
                    "signal-cleanup",
                    f"signal {signum}: shared trace released, "
                    f"checkpoint journal synced",
                )
            except Exception:  # pragma: no cover
                pass

    def _on_term(signum, frame):
        if os.getpid() != owner_pid:
            signal.signal(signum, signal.SIG_DFL)
            os.kill(os.getpid(), signum)
            return
        _cleanup(signum)
        os._exit(128 + signum)

    def _on_int(signum, frame):
        if os.getpid() == owner_pid:
            _cleanup(signum)
        raise KeyboardInterrupt

    previous = {}
    try:
        previous[signal.SIGTERM] = signal.signal(signal.SIGTERM, _on_term)
        previous[signal.SIGINT] = signal.signal(signal.SIGINT, _on_int)
    except (ValueError, OSError):  # pragma: no cover - exotic runtime
        for signum, handler in previous.items():
            signal.signal(signum, handler)
        yield
        return
    try:
        yield
    finally:
        for signum, handler in previous.items():
            signal.signal(signum, handler)


@dataclass
class SweepPlan:
    """How a config matrix will be executed."""

    groups: List[CellGroup]
    #: clone key -> primary key for alpha-collapsed cells
    clones: Dict[str, str] = field(default_factory=dict)
    #: every cell key, in input order (the result-dict ordering)
    keys: Tuple[str, ...] = ()
    configs_by_key: Dict[str, "RunConfig"] = field(default_factory=dict)  # noqa: F821

    @property
    def num_cells(self) -> int:
        return len(self.keys)

    @property
    def num_simulated(self) -> int:
        """Cells that actually replay (the rest are exact clones)."""
        return sum(len(group.configs) for group in self.groups)

    def describe(self) -> str:
        broadcast = [g for g in self.groups if g.kind == "broadcast"]
        singles = [g for g in self.groups if g.kind == "single"]
        return (
            f"{self.num_cells} cells -> {self.num_simulated} simulations "
            f"({len(broadcast)} broadcast groups, {len(singles)} offline "
            f"tasks, {len(self.clones)} collapsed clones)"
        )


class SweepScheduler:
    """Plans and executes experiment matrices over one trace.

    Modes:

    * ``auto`` (default) — ``parallel`` when the effective worker count
      is > 1 *and* the sweep is big enough to amortize pool startup
      (``parallel_min_work``, see :meth:`run`) on a multi-core host,
      else ``serial``;
    * ``serial`` — broadcast groups and offline tasks, in-process;
    * ``parallel`` — groups distributed over a process pool (the online
      broadcast group is split into ~``workers`` balanced sub-groups);
    * ``cells`` — strict per-cell sequential replay with no grouping or
      collapsing.  This is the seed ``run_matrix`` behaviour, kept as a
      baseline for benchmarking and for the golden-equivalence suite.

    Robustness knobs (parallel mode): a group whose worker crashes or
    exceeds ``group_timeout`` seconds is retried up to ``max_retries``
    times on a fresh pool, sleeping ``backoff_seconds * 2**attempt``
    (capped at ``backoff_cap``) between rounds; groups that exhaust
    their retries run in-process.  Completed groups are never re-run.
    ``checkpoint`` (a path, a :class:`SweepCheckpoint`, or the
    ``REPRO_CHECKPOINT`` environment variable) persists each finished
    group so a killed sweep resumes where it stopped.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        mode: str = "auto",
        interval: float = 3600.0,
        collapse: bool = True,
        progress: Optional[ProgressCallback] = None,
        checkpoint: "SweepCheckpoint | str | os.PathLike | None" = None,
        max_retries: int = 2,
        backoff_seconds: float = 0.25,
        backoff_cap: float = 4.0,
        group_timeout: Optional[float] = None,
        parallel_min_work: Optional[int] = None,
        telemetry: "Optional[Telemetry]" = None,
        event_log: Optional[EventLog] = None,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        if max_retries < 0:
            raise ValueError(f"max_retries must be >= 0, got {max_retries}")
        if backoff_seconds < 0:
            raise ValueError(
                f"backoff_seconds must be >= 0, got {backoff_seconds}"
            )
        if backoff_cap < 0:
            raise ValueError(f"backoff_cap must be >= 0, got {backoff_cap}")
        if group_timeout is not None and group_timeout <= 0:
            raise ValueError(
                f"group_timeout must be positive, got {group_timeout}"
            )
        self.workers = resolve_workers(workers)
        self.mode = mode
        self.interval = interval
        self.collapse = collapse
        self.progress = progress
        if checkpoint is None:
            env_path = os.environ.get(CHECKPOINT_ENV, "").strip()
            if env_path:
                checkpoint = env_path
        if checkpoint is not None and not isinstance(checkpoint, SweepCheckpoint):
            checkpoint = SweepCheckpoint(checkpoint)
        self.checkpoint: Optional[SweepCheckpoint] = checkpoint
        self.max_retries = max_retries
        self.backoff_seconds = backoff_seconds
        self.backoff_cap = backoff_cap
        self.group_timeout = group_timeout
        #: Auto-mode work-size threshold: a sweep whose total work
        #: (simulated cells x trace length) falls below this runs
        #: serially even when workers > 1, because pool startup and
        #: per-group pickling would dominate.  Explicit
        #: ``mode="parallel"`` bypasses the heuristic.
        self.parallel_min_work = _resolve_min_work(parallel_min_work)
        #: Run-level telemetry: when set, every simulated cell gets a
        #: probe-instrumented lane (built inside the executing process,
        #: shipped back on the result) and the scheduler folds the lanes
        #: into ``telemetry.lanes`` after each :meth:`run`.
        self.telemetry = telemetry
        #: Structured operational log (checkpoint journal activity,
        #: shared-memory lifecycle, worker crashes/fallbacks).  Defaults
        #: to the telemetry's event log so one JSONL export captures
        #: both; a bare scheduler gets a private log — its ``warning``
        #: records still surface through :mod:`warnings` as before.
        if event_log is not None:
            self.events = event_log
        elif telemetry is not None:
            self.events = telemetry.events
        else:
            self.events = EventLog()
        #: Observability record of the last :meth:`run` (None before).
        self.last_report: Optional[RunReport] = None

    # -- observability -------------------------------------------------------

    def _note(
        self,
        events: List[EngineEvent],
        t: float,
        kind: str,
        detail: str,
        level: str = "info",
    ) -> None:
        """Record one occurrence in the run report *and* the event log."""
        events.append(EngineEvent(t, kind, detail, level))
        self.events.emit(level, kind, detail)

    def _tel_options(self) -> "Optional[TelemetryOptions]":
        return self.telemetry.options if self.telemetry is not None else None

    # -- planning ------------------------------------------------------------

    def effective_mode(self) -> str:
        if self.mode == "auto":
            return "parallel" if self.workers > 1 else "serial"
        return self.mode

    def plan(
        self,
        configs: Sequence["RunConfig"],  # noqa: F821
        mode: Optional[str] = None,
    ) -> SweepPlan:
        """Partition ``configs`` into groups, clones and key order.

        ``mode`` overrides the execution mode planned for (default: the
        scheduler's :meth:`effective_mode`); :meth:`run` passes the
        heuristic-decided mode so a work-size-collapsed sweep is planned
        as one broadcast group rather than a split plan run serially.
        """
        from repro.sim.runner import CACHE_FACTORIES

        configs = list(configs)
        keys = [config.key for config in configs]
        seen: Dict[str, int] = {}
        duplicates = []
        for key in keys:
            seen[key] = seen.get(key, 0) + 1
            if seen[key] == 2:
                duplicates.append(key)
        if duplicates:
            raise ValueError(
                "duplicate RunConfig keys (results would overwrite each "
                f"other): {duplicates!r}; give the configs distinct labels"
            )

        if mode is None:
            mode = self.effective_mode()
        clones: Dict[str, str] = {}
        primaries: List["RunConfig"] = []  # noqa: F821
        if self.collapse and mode != "cells":
            # Cells that differ only in alpha are byte-identical for
            # cost-insensitive algorithms: simulate the first, clone the
            # rest by reinterpreting its counters under each cost model.
            rep_by_shape: Dict[tuple, str] = {}
            for config in configs:
                factory = CACHE_FACTORIES.get(config.algorithm)
                insensitive = (
                    factory is not None
                    and getattr(factory, "cost_sensitive", True) is False
                )
                if not insensitive:
                    primaries.append(config)
                    continue
                shape = (config.algorithm, config.disk_chunks, config.chunk_bytes)
                primary_key = rep_by_shape.get(shape)
                if primary_key is None:
                    rep_by_shape[shape] = config.key
                    primaries.append(config)
                else:
                    clones[config.key] = primary_key
        else:
            primaries = configs

        def is_offline(config) -> bool:
            factory = CACHE_FACTORIES.get(config.algorithm)
            return factory is not None and getattr(factory, "offline", False)

        online = [c for c in primaries if not is_offline(c)]
        offline = [c for c in primaries if is_offline(c)]

        groups: List[CellGroup] = []
        if mode == "cells":
            groups = [CellGroup("single", (c,)) for c in primaries]
        else:
            if online:
                if mode == "parallel":
                    n_groups = max(1, min(self.workers, len(online)))
                else:
                    n_groups = 1
                # Round-robin keeps heterogeneous algorithms balanced
                # across the sub-groups.
                for i in range(n_groups):
                    part = tuple(online[i::n_groups])
                    if part:
                        groups.append(CellGroup("broadcast", part))
            groups.extend(CellGroup("single", (c,)) for c in offline)

        return SweepPlan(
            groups=groups,
            clones=clones,
            keys=tuple(keys),
            configs_by_key={c.key: c for c in configs},
        )

    # -- execution -----------------------------------------------------------

    def run(
        self,
        configs: Sequence["RunConfig"],  # noqa: F821
        requests: Iterable[Request],
    ) -> Dict[str, SimulationResult]:
        """Execute the plan for ``configs`` over ``requests``.

        Returns ``{config.key: SimulationResult}`` in input-config
        order.  ``requests`` may be a generator when the plan is a
        single in-process broadcast group (all-online, serial, no
        checkpoint); any other shape needs — and gets — a one-time
        spill to a list.

        In ``auto`` mode a work-size heuristic decides serial vs
        parallel: pools are only worth starting when the host has more
        than one CPU and ``len(configs) * len(trace)`` is at least
        ``parallel_min_work`` (``REPRO_PARALLEL_MIN_WORK``).  Explicit
        ``mode="parallel"`` always uses pools.
        """
        t_start = time.perf_counter()
        configs = list(configs)
        events: List[EngineEvent] = []

        mode = self.effective_mode()
        if mode == "parallel" and self.mode == "auto":
            if not isinstance(requests, Sequence):
                requests = list(requests)
            work = len(configs) * len(requests)
            cpus = os.cpu_count() or 1
            if cpus < 2 or work < self.parallel_min_work:
                mode = "serial"
                self._note(
                    events,
                    0.0,
                    "parallel-collapsed",
                    f"work={work} (cells x requests) below threshold "
                    f"{self.parallel_min_work} or cpus={cpus} < 2; "
                    "running serially",
                )

        plan = self.plan(configs, mode)
        checkpoint = self.checkpoint

        needs_list = (
            mode == "parallel"
            or len(plan.groups) > 1
            or any(group.kind == "single" for group in plan.groups)
            # The checkpoint fingerprint needs a sized, indexable trace.
            or checkpoint is not None
        )
        if needs_list and not isinstance(requests, Sequence):
            requests = list(requests)

        results: Dict[str, SimulationResult] = {}
        run_groups: List[CellGroup] = list(plan.groups)
        on_group: Optional[Callable[[CellGroup, Dict[str, SimulationResult]], None]]
        on_group = None
        resumed = 0
        if checkpoint is not None:
            fp = checkpoint.fingerprint(plan, self.interval, requests)
            loaded = checkpoint.load(fp, log=self.events)
            remaining: List[CellGroup] = []
            for group in plan.groups:
                cached = loaded.get(_group_id(group))
                if cached is not None:
                    results.update(cached)
                    resumed += 1
                else:
                    remaining.append(group)
            run_groups = remaining
            if resumed:
                self._note(
                    events,
                    0.0,
                    "checkpoint-resume",
                    f"{resumed}/{len(plan.groups)} group(s) restored "
                    f"from {checkpoint.path}",
                )

            def on_group(group, group_results, _fp=fp, _ckpt=checkpoint):
                _ckpt.append(_fp, _group_id(group), group_results)

        parallel_used = False
        exec_stats: Dict[str, float] = {}
        pack_seconds = 0.0
        if mode == "parallel" and len(run_groups) > 1:
            # Ship the trace to workers as one shared-memory segment
            # instead of pickling a copy per group.  The parent owns the
            # segment: the ``finally`` guarantees it is unlinked even
            # when a group crashes, retries, or the sweep itself dies —
            # no leaked ``/dev/shm`` entries.
            shared: Optional[SharedTraceHandle] = None
            payload: "Sequence[Request] | SharedTraceHandle" = requests
            try:
                if len(requests):
                    try:
                        t_pack = time.perf_counter()
                        packed = (
                            requests
                            if isinstance(requests, PackedTrace)
                            else pack_trace(requests)
                        )
                        shared = packed.to_shared()
                        pack_seconds = time.perf_counter() - t_pack
                        payload = shared
                        self._note(
                            events,
                            time.perf_counter() - t_start,
                            "shared-trace",
                            f"{len(packed)} requests -> "
                            f"{shared.nbytes >> 10} KiB shared segment "
                            f"{shared.name}",
                            level="debug",
                        )
                    except Exception as exc:
                        # Packing or shm unavailable (exotic platform,
                        # exhausted /dev/shm): fall back to pickling the
                        # request objects per group, as before.
                        shared = None
                        payload = requests
                        self._note(
                            events,
                            time.perf_counter() - t_start,
                            "shared-trace-unavailable",
                            repr(exc),
                            level="warning",
                        )
                pool_results, parallel_used, pool_events, exec_stats = (
                    self._run_parallel(run_groups, payload, on_group)
                )
            finally:
                if shared is not None:
                    try:
                        shared.unlink()
                        self.events.debug(
                            "shm-unlink", f"released shared segment {shared.name}"
                        )
                    except Exception as exc:
                        # A failed unlink must not mask the sweep's
                        # outcome; the leak is reported (stderr + log),
                        # not raised.
                        detail = f"segment {shared.name}: {exc!r}"
                        events.append(
                            EngineEvent(
                                time.perf_counter() - t_start,
                                "shm-unlink-failed",
                                detail,
                                "error",
                            )
                        )
                        self.events.error("shm-unlink-failed", detail)
            results.update(pool_results)
            events.extend(pool_events)
        else:
            results.update(self._run_groups(run_groups, requests, on_group))

        self._apply_clones(plan, results, requests)

        wall = time.perf_counter() - t_start
        num_requests = next(iter(results.values())).num_requests if results else 0
        extra: Dict = {
            "cells": plan.num_cells,
            "simulated": plan.num_simulated,
            "clones": len(plan.clones),
            "groups": len(plan.groups),
        }
        if resumed:
            extra["resumed_groups"] = resumed
        extra.update(exec_stats)
        stages = [StageTiming("sweep", wall, plan.num_simulated)]
        if pack_seconds:
            stages.insert(0, StageTiming("pack", pack_seconds, num_requests))
        self.last_report = RunReport(
            engine="scheduler",
            mode="parallel" if parallel_used else mode,
            wall_seconds=wall,
            num_requests=num_requests,
            num_caches=plan.num_cells,
            workers=self.workers if parallel_used else 1,
            stages=stages,
            extra=extra,
            events=events,
        )
        for result in results.values():
            if result.report is not None:
                result.report.extra.setdefault("scheduler_mode", self.last_report.mode)
                result.report.extra.setdefault(
                    "scheduler_workers", self.last_report.workers
                )

        if self.telemetry is not None:
            # Lanes were built inside the executing process (worker or
            # parent) and shipped back on the results; fold them into
            # the run-level container so one export sees every cell.
            adopted = self.telemetry.adopt(results)
            if adopted:
                self.events.debug(
                    "telemetry-adopt", f"{adopted} lane(s) merged from results"
                )

        # Deterministic output order: the input-config order.
        return {key: results[key] for key in plan.keys}

    # -- internals -----------------------------------------------------------

    def _run_groups(
        self,
        groups: Sequence[CellGroup],
        requests: Iterable[Request],
        on_group: Optional[
            Callable[[CellGroup, Dict[str, SimulationResult]], None]
        ] = None,
    ) -> Dict[str, SimulationResult]:
        results: Dict[str, SimulationResult] = {}
        for group in groups:
            group_results = _execute_group(
                group.kind, group.configs, requests, self.interval,
                self.progress, self._tel_options(),
            )
            results.update(group_results)
            if on_group is not None:
                on_group(group, group_results)
        return results

    def _run_parallel(
        self,
        groups: Sequence[CellGroup],
        requests: "Sequence[Request] | SharedTraceHandle",
        on_group: Optional[
            Callable[[CellGroup, Dict[str, SimulationResult]], None]
        ] = None,
    ) -> Tuple[Dict[str, SimulationResult], bool, List[EngineEvent], Dict[str, int]]:
        """Distribute groups over a supervised process pool.

        Rounds of execution: every still-pending group is submitted to
        a fresh pool; groups whose futures complete are harvested (and
        checkpointed) immediately, groups that crash or time out are
        re-queued for the next round after a capped exponential
        backoff.  A crash therefore costs only the crashed group's work
        — completed siblings are salvaged, never re-simulated.  Groups
        that exhaust ``max_retries`` run in-process at the end, which
        doubles as the fallback when process pools are unavailable
        altogether.

        While the pool runs, SIGTERM/SIGINT are intercepted so an
        external kill still releases the shared trace segment and syncs
        the checkpoint journal (see :func:`_terminal_signal_cleanup`).
        """
        shared = requests if isinstance(requests, SharedTraceHandle) else None
        with _terminal_signal_cleanup(shared, self.checkpoint, self.events):
            return self._run_parallel_pool(groups, requests, on_group)

    def _run_parallel_pool(
        self,
        groups: Sequence[CellGroup],
        requests: "Sequence[Request] | SharedTraceHandle",
        on_group: Optional[
            Callable[[CellGroup, Dict[str, SimulationResult]], None]
        ] = None,
    ) -> Tuple[Dict[str, SimulationResult], bool, List[EngineEvent], Dict[str, int]]:
        t0 = time.perf_counter()
        results: Dict[str, SimulationResult] = {}
        events: List[EngineEvent] = []
        pending: List[Tuple[int, CellGroup]] = list(enumerate(groups))
        attempts: Dict[int, int] = {i: 0 for i, _ in pending}
        fallback: List[Tuple[int, CellGroup]] = []
        retries = 0
        pool_ran = False

        def elapsed() -> float:
            return time.perf_counter() - t0

        while pending:
            max_workers = min(self.workers, len(pending))
            try:
                pool = ProcessPoolExecutor(max_workers=max_workers)
                future_group = {
                    pool.submit(
                        _execute_group, group.kind, group.configs, requests,
                        self.interval, None, self._tel_options(),
                    ): (index, group)
                    for index, group in pending
                }
            except (OSError, ValueError, RuntimeError, ImportError) as exc:
                # The pool cannot even start (sandbox, missing fork
                # support, ...): nothing parallel will work — route all
                # remaining groups to the in-process fallback.
                self._note(
                    events, elapsed(), "pool-unavailable", repr(exc),
                    level="warning",
                )
                fallback.extend(pending)
                pending = []
                break
            pool_ran = True
            crashed: List[Tuple[int, CellGroup, str]] = []
            deadline = (
                time.monotonic() + self.group_timeout
                if self.group_timeout is not None
                else None
            )
            not_done = set(future_group)
            timed_out = False
            while not_done:
                timeout = None
                if deadline is not None:
                    timeout = deadline - time.monotonic()
                    if timeout <= 0:
                        timed_out = True
                        break
                done, not_done = wait(
                    not_done, timeout=timeout, return_when=FIRST_COMPLETED
                )
                if not done:
                    timed_out = True
                    break
                for future in done:
                    index, group = future_group[future]
                    try:
                        group_results = future.result()
                    except Exception as exc:
                        # Includes BrokenProcessPool: a dead worker
                        # fails every unfinished future, and each lands
                        # here to be retried; finished siblings were
                        # already harvested above.
                        crashed.append((index, group, repr(exc)))
                    else:
                        results.update(group_results)
                        if on_group is not None:
                            on_group(group, group_results)
            if timed_out:
                for future in not_done:
                    index, group = future_group[future]
                    future.cancel()
                    crashed.append(
                        (index, group, f"timed out after {self.group_timeout}s")
                    )
            # A timed-out worker may be wedged: don't block shutdown on
            # it (the abandoned process dies with the interpreter).
            pool.shutdown(wait=not timed_out, cancel_futures=True)

            pending = []
            max_attempt = 0
            for index, group, why in crashed:
                attempts[index] += 1
                self._note(
                    events,
                    elapsed(),
                    "group-crash",
                    f"group {index} ({group.kind} x{len(group.configs)}) "
                    f"attempt {attempts[index]}: {why}",
                    level="warning",
                )
                if attempts[index] > self.max_retries:
                    fallback.append((index, group))
                else:
                    pending.append((index, group))
                    retries += 1
                    max_attempt = max(max_attempt, attempts[index])
            if pending:
                delay = min(
                    self.backoff_cap,
                    self.backoff_seconds * (2 ** (max_attempt - 1)),
                )
                self._note(
                    events,
                    elapsed(),
                    "retry-backoff",
                    f"retrying {len(pending)} group(s) after {delay:g}s",
                )
                if delay > 0:
                    time.sleep(delay)

        if fallback:
            # Still a real RuntimeWarning (callers and tests filter on
            # it), but recorded in the structured log as well.
            self.events.warning(
                "parallel-fallback",
                f"parallel sweep execution failed for {len(fallback)} "
                "group(s); falling back to in-process execution for those "
                f"(salvaged {len(groups) - len(fallback)} completed)",
                stacklevel=4,
            )
            for index, group in sorted(fallback):
                self._note(
                    events,
                    elapsed(),
                    "group-fallback",
                    f"group {index} in-process",
                    level="warning",
                )
                group_results = _execute_group(
                    group.kind, group.configs, requests, self.interval,
                    self.progress, self._tel_options(),
                )
                results.update(group_results)
                if on_group is not None:
                    on_group(group, group_results)

        stats: Dict[str, int] = {}
        if retries:
            stats["group_retries"] = retries
        if fallback:
            stats["fallback_groups"] = len(fallback)
            stats["salvaged_groups"] = len(groups) - len(fallback)
        return results, pool_ran, events, stats

    def _apply_clones(
        self,
        plan: SweepPlan,
        results: Dict[str, SimulationResult],
        requests: Iterable[Request],
    ) -> None:
        """Materialize alpha-collapsed cells from their primaries.

        The clone's cache state is byte-identical to the primary's (its
        decisions never consulted the cost model), so a copy with the
        clone's cost model swapped in is exactly what a dedicated replay
        would have produced.  Copying goes through pickle — serialize
        each primary once, deserialize per clone — which is several
        times faster than ``copy.deepcopy`` on treap-heavy cache state.

        A primary whose cache refuses to pickle (e.g. an instrumented
        wrapper holding a live file handle) degrades to a dedicated
        replay of each clone — exact, just slower — or raises a clear
        error when the trace was a one-shot generator that is already
        spent.
        """
        blobs: Dict[str, Optional[bytes]] = {}
        for clone_key, primary_key in plan.clones.items():
            config = plan.configs_by_key[clone_key]
            primary = results[primary_key]
            cost_model = CostModel(config.alpha_f2r)
            if primary_key not in blobs:
                try:
                    blobs[primary_key] = pickle.dumps(
                        primary.cache, protocol=pickle.HIGHEST_PROTOCOL
                    )
                except (pickle.PicklingError, TypeError, AttributeError) as exc:
                    blobs[primary_key] = None
                    self.events.warning(
                        "clone-unpicklable",
                        f"cache state of {primary_key!r} is not picklable "
                        f"({exc!r}); materializing its alpha-collapsed "
                        "clones by dedicated replay",
                        stacklevel=4,
                    )
            blob = blobs[primary_key]
            if blob is None:
                if not isinstance(requests, Sequence):
                    raise RuntimeError(
                        f"cannot materialize clone {clone_key!r}: the "
                        f"primary {primary_key!r} cache is unpicklable and "
                        "the request stream was a one-shot generator that "
                        "is already consumed; pass a materialized sequence "
                        "or construct the scheduler with collapse=False"
                    )
                results[clone_key] = replay(
                    config.build(), requests, interval=self.interval
                )
                continue
            cache = pickle.loads(blob)
            cache.cost_model = cost_model
            results[clone_key] = SimulationResult(
                cache=cache,
                metrics=primary.metrics.with_cost_model(cost_model),
                num_requests=primary.num_requests,
                report=primary.report,
            )


def _execute_group(
    kind: str,
    configs: Tuple["RunConfig", ...],  # noqa: F821
    requests: "Iterable[Request] | SharedTraceHandle",
    interval: float,
    progress: Optional[ProgressCallback],
    telemetry_options: "Optional[TelemetryOptions]" = None,
) -> Dict[str, SimulationResult]:
    """Run one cell group (module-level so process pools can pickle it).

    ``requests`` may be a :class:`SharedTraceHandle`; the group then
    attaches the parent's shared-memory segment (zero-copy) and releases
    its mapping when done — the parent keeps segment ownership and does
    the unlink.

    ``telemetry_options`` (picklable) asks the group to build a local
    :class:`~repro.obs.telemetry.Telemetry` whose lanes ride back to the
    parent on each result's ``telemetry`` field — how probe data crosses
    the process boundary.
    """
    telemetry = None
    if telemetry_options is not None:
        from repro.obs.telemetry import Telemetry

        telemetry = Telemetry(telemetry_options)
    attached: Optional[PackedTrace] = None
    if isinstance(requests, SharedTraceHandle):
        attached = requests.attach()
        requests = attached
    try:
        if kind == "single":
            (config,) = configs
            return {
                config.key: replay(
                    config.build(), requests, interval=interval,
                    progress=progress, telemetry=telemetry, label=config.key,
                )
            }
        caches = {config.key: config.build() for config in configs}
        return MultiReplay(caches, interval=interval, telemetry=telemetry).run(
            requests, progress=progress
        )
    finally:
        # Broadcast groups never retain the trace, so the mapping can be
        # released eagerly.  Offline ("single") caches keep the prepared
        # sequence alive inside the returned cache state — it is pickled
        # back with the result, so the mapping must stay open here and
        # is released when the worker exits.
        if attached is not None and kind == "broadcast":
            attached.close()
