"""Sweep scheduling: partition matrix cells, execute groups, in parallel.

The paper's experiments (Figures 4–7) are matrices — algorithm x
``alpha_F2R`` x disk size — replayed over a month-long trace.  The
:class:`SweepScheduler` turns such a matrix into an execution plan:

* **Broadcast groups** — online caches share a single streaming pass of
  the trace (:class:`~repro.sim.engine.MultiReplay`), so the matrix
  costs O(trace) iteration instead of O(cells x trace).
* **Single tasks** — offline caches (Psychic, Belady) need the
  materialized future via ``prepare`` and run as independent cells.
* **Alpha-collapsing** — caches whose *decisions* never consult the
  cost model (``cost_sensitive = False``: PullLRU, LFU, Belady, LRU-K)
  produce byte-identical traffic counters at every ``alpha``; the
  scheduler simulates one representative cell and derives the others by
  reinterpreting its counters under each cell's cost model.  This is
  exact, not approximate — efficiency is a property computed from the
  counters at read time.
* **Parallel execution** — groups run via
  ``concurrent.futures.ProcessPoolExecutor`` when a worker count > 1 is
  requested (argument or ``REPRO_WORKERS``), with a graceful in-process
  fallback when process pools are unavailable or fail.

Result keys and ordering are deterministic: the returned mapping is
keyed by ``RunConfig.key`` in input order, whatever the execution
strategy.  Duplicate keys are a hard error (they would silently
overwrite results).
"""

from __future__ import annotations

import os
import pickle
import time
import warnings
from concurrent.futures import ProcessPoolExecutor, as_completed
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.costs import CostModel
from repro.sim.engine import MultiReplay, SimulationResult, replay
from repro.sim.instrumentation import ProgressCallback, RunReport, StageTiming
from repro.trace.requests import Request

__all__ = [
    "WORKERS_ENV",
    "CellGroup",
    "SweepPlan",
    "SweepScheduler",
    "resolve_workers",
]

#: Environment knob for the default worker count ("repro-experiment
#: --workers N" sets it; 0/1/unset mean in-process execution).
WORKERS_ENV = "REPRO_WORKERS"

_MODES = ("auto", "serial", "parallel", "cells")


def resolve_workers(workers: Optional[int] = None) -> int:
    """Effective worker count: explicit argument, else ``REPRO_WORKERS``."""
    if workers is None:
        raw = os.environ.get(WORKERS_ENV, "").strip()
        if raw:
            try:
                workers = int(raw)
            except ValueError:
                raise ValueError(
                    f"{WORKERS_ENV}={raw!r} is not an integer"
                ) from None
    if workers is None:
        return 1
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    return workers


@dataclass(frozen=True)
class CellGroup:
    """One executable unit of a sweep plan."""

    #: "broadcast" — online caches sharing one trace pass;
    #: "single" — an offline cache running its own prepare + replay.
    kind: str
    configs: Tuple["RunConfig", ...]  # noqa: F821 - see repro.sim.runner

    @property
    def keys(self) -> Tuple[str, ...]:
        return tuple(config.key for config in self.configs)


@dataclass
class SweepPlan:
    """How a config matrix will be executed."""

    groups: List[CellGroup]
    #: clone key -> primary key for alpha-collapsed cells
    clones: Dict[str, str] = field(default_factory=dict)
    #: every cell key, in input order (the result-dict ordering)
    keys: Tuple[str, ...] = ()
    configs_by_key: Dict[str, "RunConfig"] = field(default_factory=dict)  # noqa: F821

    @property
    def num_cells(self) -> int:
        return len(self.keys)

    @property
    def num_simulated(self) -> int:
        """Cells that actually replay (the rest are exact clones)."""
        return sum(len(group.configs) for group in self.groups)

    def describe(self) -> str:
        broadcast = [g for g in self.groups if g.kind == "broadcast"]
        singles = [g for g in self.groups if g.kind == "single"]
        return (
            f"{self.num_cells} cells -> {self.num_simulated} simulations "
            f"({len(broadcast)} broadcast groups, {len(singles)} offline "
            f"tasks, {len(self.clones)} collapsed clones)"
        )


class SweepScheduler:
    """Plans and executes experiment matrices over one trace.

    Modes:

    * ``auto`` (default) — ``parallel`` when the effective worker count
      is > 1, else ``serial``;
    * ``serial`` — broadcast groups and offline tasks, in-process;
    * ``parallel`` — groups distributed over a process pool (the online
      broadcast group is split into ~``workers`` balanced sub-groups);
    * ``cells`` — strict per-cell sequential replay with no grouping or
      collapsing.  This is the seed ``run_matrix`` behaviour, kept as a
      baseline for benchmarking and for the golden-equivalence suite.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        mode: str = "auto",
        interval: float = 3600.0,
        collapse: bool = True,
        progress: Optional[ProgressCallback] = None,
    ) -> None:
        if mode not in _MODES:
            raise ValueError(f"mode must be one of {_MODES}, got {mode!r}")
        self.workers = resolve_workers(workers)
        self.mode = mode
        self.interval = interval
        self.collapse = collapse
        self.progress = progress
        #: Observability record of the last :meth:`run` (None before).
        self.last_report: Optional[RunReport] = None

    # -- planning ------------------------------------------------------------

    def effective_mode(self) -> str:
        if self.mode == "auto":
            return "parallel" if self.workers > 1 else "serial"
        return self.mode

    def plan(self, configs: Sequence["RunConfig"]) -> SweepPlan:  # noqa: F821
        """Partition ``configs`` into groups, clones and key order."""
        from repro.sim.runner import CACHE_FACTORIES

        configs = list(configs)
        keys = [config.key for config in configs]
        seen: Dict[str, int] = {}
        duplicates = []
        for key in keys:
            seen[key] = seen.get(key, 0) + 1
            if seen[key] == 2:
                duplicates.append(key)
        if duplicates:
            raise ValueError(
                "duplicate RunConfig keys (results would overwrite each "
                f"other): {duplicates!r}; give the configs distinct labels"
            )

        mode = self.effective_mode()
        clones: Dict[str, str] = {}
        primaries: List["RunConfig"] = []  # noqa: F821
        if self.collapse and mode != "cells":
            # Cells that differ only in alpha are byte-identical for
            # cost-insensitive algorithms: simulate the first, clone the
            # rest by reinterpreting its counters under each cost model.
            rep_by_shape: Dict[tuple, str] = {}
            for config in configs:
                factory = CACHE_FACTORIES.get(config.algorithm)
                insensitive = (
                    factory is not None
                    and getattr(factory, "cost_sensitive", True) is False
                )
                if not insensitive:
                    primaries.append(config)
                    continue
                shape = (config.algorithm, config.disk_chunks, config.chunk_bytes)
                primary_key = rep_by_shape.get(shape)
                if primary_key is None:
                    rep_by_shape[shape] = config.key
                    primaries.append(config)
                else:
                    clones[config.key] = primary_key
        else:
            primaries = configs

        def is_offline(config) -> bool:
            factory = CACHE_FACTORIES.get(config.algorithm)
            return factory is not None and getattr(factory, "offline", False)

        online = [c for c in primaries if not is_offline(c)]
        offline = [c for c in primaries if is_offline(c)]

        groups: List[CellGroup] = []
        if mode == "cells":
            groups = [CellGroup("single", (c,)) for c in primaries]
        else:
            if online:
                if mode == "parallel":
                    n_groups = max(1, min(self.workers, len(online)))
                else:
                    n_groups = 1
                # Round-robin keeps heterogeneous algorithms balanced
                # across the sub-groups.
                for i in range(n_groups):
                    part = tuple(online[i::n_groups])
                    if part:
                        groups.append(CellGroup("broadcast", part))
            groups.extend(CellGroup("single", (c,)) for c in offline)

        return SweepPlan(
            groups=groups,
            clones=clones,
            keys=tuple(keys),
            configs_by_key={c.key: c for c in configs},
        )

    # -- execution -----------------------------------------------------------

    def run(
        self,
        configs: Sequence["RunConfig"],  # noqa: F821
        requests: Iterable[Request],
    ) -> Dict[str, SimulationResult]:
        """Execute the plan for ``configs`` over ``requests``.

        Returns ``{config.key: SimulationResult}`` in input-config
        order.  ``requests`` may be a generator when the plan is a
        single in-process broadcast group (all-online, serial); any
        other shape needs — and gets — a one-time spill to a list.
        """
        t_start = time.perf_counter()
        plan = self.plan(configs)
        mode = self.effective_mode()

        needs_list = (
            mode == "parallel"
            or len(plan.groups) > 1
            or any(group.kind == "single" for group in plan.groups)
        )
        if needs_list and not isinstance(requests, Sequence):
            requests = list(requests)

        parallel_used = False
        if mode == "parallel" and len(plan.groups) > 1:
            results, parallel_used = self._run_parallel(plan, requests)
        else:
            results = self._run_groups(plan.groups, requests)

        self._apply_clones(plan, results)

        wall = time.perf_counter() - t_start
        num_requests = next(iter(results.values())).num_requests if results else 0
        self.last_report = RunReport(
            engine="scheduler",
            mode="parallel" if parallel_used else mode,
            wall_seconds=wall,
            num_requests=num_requests,
            num_caches=plan.num_cells,
            workers=self.workers if parallel_used else 1,
            stages=[StageTiming("sweep", wall, plan.num_simulated)],
            extra={
                "cells": plan.num_cells,
                "simulated": plan.num_simulated,
                "clones": len(plan.clones),
                "groups": len(plan.groups),
            },
        )
        for result in results.values():
            if result.report is not None:
                result.report.extra.setdefault("scheduler_mode", self.last_report.mode)
                result.report.extra.setdefault(
                    "scheduler_workers", self.last_report.workers
                )

        # Deterministic output order: the input-config order.
        return {key: results[key] for key in plan.keys}

    # -- internals -----------------------------------------------------------

    def _run_groups(
        self, groups: Sequence[CellGroup], requests: Iterable[Request]
    ) -> Dict[str, SimulationResult]:
        results: Dict[str, SimulationResult] = {}
        for group in groups:
            results.update(
                _execute_group(
                    group.kind, group.configs, requests, self.interval, self.progress
                )
            )
        return results

    def _run_parallel(
        self, plan: SweepPlan, requests: Sequence[Request]
    ) -> Tuple[Dict[str, SimulationResult], bool]:
        """Distribute groups over a process pool; fall back serially."""
        max_workers = min(self.workers, len(plan.groups))
        try:
            with ProcessPoolExecutor(max_workers=max_workers) as pool:
                futures = [
                    pool.submit(
                        _execute_group, group.kind, group.configs, requests,
                        self.interval, None,
                    )
                    for group in plan.groups
                ]
                results: Dict[str, SimulationResult] = {}
                for future in as_completed(futures):
                    results.update(future.result())
            return results, True
        except (OSError, ValueError, RuntimeError, ImportError) as exc:
            warnings.warn(
                f"parallel sweep execution failed ({exc!r}); "
                "falling back to in-process execution",
                RuntimeWarning,
                stacklevel=3,
            )
            return self._run_groups(plan.groups, requests), False

    def _apply_clones(
        self, plan: SweepPlan, results: Dict[str, SimulationResult]
    ) -> None:
        """Materialize alpha-collapsed cells from their primaries.

        The clone's cache state is byte-identical to the primary's (its
        decisions never consulted the cost model), so a copy with the
        clone's cost model swapped in is exactly what a dedicated replay
        would have produced.  Copying goes through pickle — serialize
        each primary once, deserialize per clone — which is several
        times faster than ``copy.deepcopy`` on treap-heavy cache state.
        """
        blobs: Dict[str, bytes] = {}
        for clone_key, primary_key in plan.clones.items():
            config = plan.configs_by_key[clone_key]
            primary = results[primary_key]
            cost_model = CostModel(config.alpha_f2r)
            blob = blobs.get(primary_key)
            if blob is None:
                blob = blobs[primary_key] = pickle.dumps(
                    primary.cache, protocol=pickle.HIGHEST_PROTOCOL
                )
            cache = pickle.loads(blob)
            cache.cost_model = cost_model
            results[clone_key] = SimulationResult(
                cache=cache,
                metrics=primary.metrics.with_cost_model(cost_model),
                num_requests=primary.num_requests,
                report=primary.report,
            )


def _execute_group(
    kind: str,
    configs: Tuple["RunConfig", ...],  # noqa: F821
    requests: Iterable[Request],
    interval: float,
    progress: Optional[ProgressCallback],
) -> Dict[str, SimulationResult]:
    """Run one cell group (module-level so process pools can pickle it)."""
    if kind == "single":
        (config,) = configs
        return {
            config.key: replay(
                config.build(), requests, interval=interval, progress=progress
            )
        }
    caches = {config.key: config.build() for config in configs}
    return MultiReplay(caches, interval=interval).run(requests, progress=progress)
