"""Statistical comparison of cache runs.

A single steady-state number ("Cafe 0.738 vs xLRU 0.575") hides how
noisy the underlying time series is.  The paper reports second-half
averages; this module adds the error bars: block-bootstrap confidence
intervals over the hourly buckets of a run, and a pairwise comparison
that resamples *matched* hours of two runs on the same trace, so a
claimed gap can be checked against its uncertainty.

Hourly cache metrics are strongly autocorrelated (diurnal cycle, cache
state), so plain bootstrap over hours would understate variance; the
block bootstrap resamples contiguous day-long blocks by default.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Tuple

import numpy as np

from repro.sim.engine import SimulationResult
from repro.sim.metrics import TrafficSummary

__all__ = ["BootstrapCi", "efficiency_ci", "compare_runs", "paired_gap_ci"]


@dataclass(frozen=True, slots=True)
class BootstrapCi:
    """A point estimate with a bootstrap confidence interval."""

    estimate: float
    low: float
    high: float
    confidence: float

    @property
    def width(self) -> float:
        return self.high - self.low

    def excludes_zero(self) -> bool:
        """Whether the interval lies strictly on one side of zero."""
        return self.low > 0.0 or self.high < 0.0


def _steady_samples(
    result: SimulationResult,
    metric: Callable[[TrafficSummary], float],
    steady_fraction: float = 0.5,
) -> Tuple[List[float], List[float]]:
    """(times, metric values) of the steady-state buckets of a run."""
    samples = result.metrics.series()
    if not samples:
        return [], []
    t_first = samples[0].t_start
    t_last = samples[-1].t_start
    cut = t_last - (t_last - t_first) * steady_fraction
    times, values = [], []
    for sample in samples:
        if sample.t_start >= cut:
            value = metric(sample.summary)
            if not np.isnan(value):
                times.append(sample.t_start)
                values.append(value)
    return times, values


def _block_bootstrap(
    values: np.ndarray,
    block: int,
    num_resamples: int,
    rng: np.random.Generator,
) -> np.ndarray:
    """Means of circular block-bootstrap resamples."""
    n = len(values)
    block = max(1, min(block, n))
    blocks_needed = int(np.ceil(n / block))
    means = np.empty(num_resamples)
    for i in range(num_resamples):
        starts = rng.integers(0, n, size=blocks_needed)
        idx = (starts[:, None] + np.arange(block)[None, :]) % n
        means[i] = values[idx].ravel()[:n].mean()
    return means


def efficiency_ci(
    result: SimulationResult,
    confidence: float = 0.95,
    block_hours: int = 24,
    num_resamples: int = 1000,
    seed: int = 0,
    metric: Callable[[TrafficSummary], float] = lambda s: s.efficiency,
) -> BootstrapCi:
    """Block-bootstrap CI of a per-bucket metric's steady-state mean.

    Note the estimate is the mean of *bucket* metrics (each hour
    weighted equally), which tracks but does not exactly equal the
    byte-weighted steady-state summary.
    """
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    _, values = _steady_samples(result, metric)
    if len(values) < 2:
        raise ValueError("need at least 2 steady-state buckets for a CI")
    array = np.asarray(values)
    rng = np.random.default_rng(seed)
    means = _block_bootstrap(array, block_hours, num_resamples, rng)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCi(
        estimate=float(array.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def paired_gap_ci(
    result_a: SimulationResult,
    result_b: SimulationResult,
    confidence: float = 0.95,
    block_hours: int = 24,
    num_resamples: int = 1000,
    seed: int = 0,
    metric: Callable[[TrafficSummary], float] = lambda s: s.efficiency,
) -> BootstrapCi:
    """CI of the mean per-bucket gap ``metric(a) - metric(b)``.

    Both runs must come from the same trace and bucket interval; the
    gap is computed on matched buckets, which removes the workload's
    shared hour-to-hour noise before bootstrapping.
    """
    times_a, values_a = _steady_samples(result_a, metric)
    times_b, values_b = _steady_samples(result_b, metric)
    matched = {t: v for t, v in zip(times_b, values_b)}
    gaps = [va - matched[t] for t, va in zip(times_a, values_a) if t in matched]
    if len(gaps) < 2:
        raise ValueError("runs share fewer than 2 steady-state buckets")
    array = np.asarray(gaps)
    rng = np.random.default_rng(seed)
    means = _block_bootstrap(array, block_hours, num_resamples, rng)
    alpha = (1.0 - confidence) / 2.0
    return BootstrapCi(
        estimate=float(array.mean()),
        low=float(np.quantile(means, alpha)),
        high=float(np.quantile(means, 1.0 - alpha)),
        confidence=confidence,
    )


def compare_runs(
    results: dict[str, SimulationResult],
    baseline: str,
    confidence: float = 0.95,
    **kwargs,
) -> List[dict]:
    """Gap-vs-baseline rows for a set of runs on one trace.

    Returns one row per non-baseline run with the paired efficiency gap
    and its CI — ready for :func:`repro.analysis.format_table`.
    """
    if baseline not in results:
        raise KeyError(f"baseline {baseline!r} not among results")
    rows = []
    for name, result in results.items():
        if name == baseline:
            continue
        ci = paired_gap_ci(result, results[baseline], confidence=confidence, **kwargs)
        rows.append(
            {
                "run": name,
                "vs": baseline,
                "gap": ci.estimate,
                "ci_low": ci.low,
                "ci_high": ci.high,
                "significant": ci.excludes_zero(),
            }
        )
    return rows
