"""Reference oracles: slow, transparent re-derivations of each algorithm.

Each oracle restates its algorithm directly from the paper's equations
with the simplest possible state — plain dicts and linear min-scans —
and none of the production data structures (no
:class:`~repro.structures.treap.TreapMap`, no
:class:`~repro.structures.lru.AccessRecencyList`, no precomputed Eq. 9
virtual keys).  The differential harness replays fast implementation
and oracle side by side and requires their decision/fill/evict streams
to agree exactly, so the oracles pin down the *full* observable
semantics, including the parts that are easy to get subtly wrong:

* **eviction order ties** — the production ordered structures break
  score ties by insertion sequence (the ``(score, seq)`` composite key
  of ``TreapMap``); that tie-break is part of the replayable spec, so
  every oracle carries the same monotone insertion counter and orders
  candidates by ``(popularity, insertion sequence)`` with a plain sort;
* **popularity order without virtual keys** — Cafe's production code
  orders chunks by the Eq. 9 virtual timestamp so stale keys stay
  comparable (Theorem 1); the oracle instead evaluates Eq. 8 IATs
  directly at the current time and orders by "largest IAT = least
  popular", which Theorem 1 proves equivalent.  A divergence between
  the two orderings is exactly the kind of bug this module exists to
  catch;
* **history cleanup** — tracker cleanup (xLRU), frequency aging (LFU),
  history trimming (LRU-K) and ghost collection (Cafe) all affect
  admission decisions and are mirrored operation for operation.

Oracles are real :class:`~repro.core.base.VideoCache` instances, so
they run under the ordinary replay engine and metrics collectors.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Set, Tuple

from repro.core.base import REDIRECT, SERVE_HIT, CacheResponse, Decision, VideoCache
from repro.core.costs import CostModel
from repro.core.policy import oracle_factories as _policy_oracle_factories
from repro.trace.requests import DEFAULT_CHUNK_BYTES, ChunkId, Request

__all__ = [
    "OraclePullLru",
    "OracleXlru",
    "OracleLfu",
    "OracleLruK",
    "OracleGds",
    "OracleCafe",
    "ORACLE_FACTORIES",
    "build_oracle",
]

_INF = float("inf")


def _oldest(store: Dict, seq_index: int = 1):
    """Linear min-scan for the entry with the smallest sequence number.

    ``store`` maps items to tuples whose ``seq_index`` element is the
    monotone insertion counter; the smallest counter is the least
    recently (re-)inserted item — the LRU end.
    """
    return min(store, key=lambda item: store[item][seq_index])


def _n_least(
    scored: List[Tuple[Tuple, ChunkId]], n: int, exclude: Set[ChunkId]
) -> List[ChunkId]:
    """The ``n`` least-popular chunks by ascending ``(score, seq)``,
    skipping ``exclude`` — a transparent sort-and-take."""
    if n <= 0:
        return []
    out = []
    for _key, chunk in sorted(scored):
        if chunk in exclude:
            continue
        out.append(chunk)
        if len(out) == n:
            break
    return out


class OraclePullLru(VideoCache):
    """Reference fetch-on-miss LRU: serve everything, evict least recent."""

    name = "oracle:PullLRU"
    cost_sensitive = False

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        #: chunk -> recency sequence number (larger = more recent)
        self._disk: Dict[ChunkId, int] = {}
        self._seq = 0

    def _touch(self, chunk: ChunkId) -> None:
        self._seq += 1
        self._disk[chunk] = self._seq

    def handle(self, request: Request) -> CacheResponse:
        chunks = list(request.chunk_ids(self.chunk_bytes))
        if len(chunks) > self.disk_chunks:
            return REDIRECT
        missing = []
        for chunk in chunks:
            if chunk in self._disk:
                self._touch(chunk)
            else:
                missing.append(chunk)
        evicted = 0
        free = self.disk_chunks - len(self._disk)
        for _ in range(len(missing) - free):
            del self._disk[min(self._disk, key=self._disk.get)]
            evicted += 1
        for chunk in missing:
            self._touch(chunk)
        if not missing:
            return SERVE_HIT
        return CacheResponse(
            Decision.SERVE, filled_chunks=len(missing), evicted_chunks=evicted
        )

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._disk

    def __len__(self) -> int:
        return len(self._disk)


class OracleXlru(VideoCache):
    """Reference xLRU (Section 5, Eq. 5).

    Admission: redirect a video's request iff it was never seen before
    or ``(t_now - t_last) * alpha_F2R > CacheAge()``; a non-full disk
    has unbounded cache age (warm-up).  Replacement: plain LRU over
    chunks.  The tracker is periodically cleaned with the same cutoff
    and cadence as the production implementation, because cleanup is
    observable (an entry dropped early changes a later admission when
    ``alpha < 1``, where the admission window widens over time).
    """

    name = "oracle:xLRU"

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        tracker_cleanup_interval: int = 1024,
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        #: video -> last access time, in access order (dict order = time order)
        self._tracker: Dict[int, float] = {}
        #: chunk -> (last access time, recency sequence number)
        self._disk: Dict[ChunkId, Tuple[float, int]] = {}
        self._seq = 0
        self._cleanup_interval = tracker_cleanup_interval
        self._since_cleanup = 0

    def cache_age(self, now: float) -> float:
        if len(self._disk) < self.disk_chunks:
            return _INF
        if not self._disk:
            return _INF
        t_oldest, _seq = self._disk[_oldest(self._disk)]
        return now - t_oldest

    def handle(self, request: Request) -> CacheResponse:
        now = request.t
        last = self._tracker.get(request.video)
        # touch: move the video to the most recent end
        self._tracker.pop(request.video, None)
        self._tracker[request.video] = now
        self._cleanup(now)

        if last is None:
            return REDIRECT
        if (now - last) * self.cost_model.alpha_f2r > self.cache_age(now):
            return REDIRECT

        chunks = list(request.chunk_ids(self.chunk_bytes))
        if len(chunks) > self.disk_chunks:
            return REDIRECT

        missing = []
        for chunk in chunks:
            if chunk in self._disk:
                self._seq += 1
                self._disk[chunk] = (now, self._seq)
            else:
                missing.append(chunk)
        evicted = 0
        free = self.disk_chunks - len(self._disk)
        for _ in range(len(missing) - free):
            del self._disk[_oldest(self._disk)]
            evicted += 1
        for chunk in missing:
            self._seq += 1
            self._disk[chunk] = (now, self._seq)
        return CacheResponse(
            Decision.SERVE, filled_chunks=len(missing), evicted_chunks=evicted
        )

    def _cleanup(self, now: float) -> None:
        self._since_cleanup += 1
        if self._since_cleanup < self._cleanup_interval:
            return
        self._since_cleanup = 0
        age = self.cache_age(now)
        if age == _INF:
            return
        cutoff = now - age / self.cost_model.alpha_f2r
        # drop oldest-first while strictly below the cutoff
        for video in list(self._tracker):
            if self._tracker[video] >= cutoff:
                break
            del self._tracker[video]

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._disk

    def __len__(self) -> int:
        return len(self._disk)


class OracleLfu(VideoCache):
    """Reference LFU with hit-count admission and periodic aging.

    Replacement evicts the minimum ``(frequency, insertion sequence)``
    chunk; aging halves every frequency (and re-sequences every cached
    chunk, in admission order) every ``aging_interval`` requests.
    """

    name = "oracle:LFU"
    cost_sensitive = False

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        min_video_hits: int = 2,
        aging_interval: int = 10_000,
        treap_seed: int = 0,  # accepted for signature parity; unused
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        self.min_video_hits = min_video_hits
        self.aging_interval = aging_interval
        self._video_hits: Dict[int, int] = {}
        #: chunk -> frequency, in admission order (mirrors the production
        #: ``_freq`` dict, whose iteration order the aging pass uses)
        self._freq: Dict[ChunkId, float] = {}
        #: chunk -> (frequency at last re-insert, insertion sequence)
        self._cached: Dict[ChunkId, Tuple[float, int]] = {}
        self._seq = 0
        self._handled = 0

    def _insert(self, chunk: ChunkId, score: float) -> None:
        self._seq += 1
        self._cached[chunk] = (score, self._seq)

    def handle(self, request: Request) -> CacheResponse:
        self._handled += 1
        if self._handled % self.aging_interval == 0:
            self._age()
        self._video_hits[request.video] = self._video_hits.get(request.video, 0) + 1
        chunks = list(request.chunk_ids(self.chunk_bytes))
        for chunk in chunks:
            if chunk in self._cached:
                self._freq[chunk] = self._freq.get(chunk, 0.0) + 1.0
                self._insert(chunk, self._freq[chunk])

        if len(chunks) > self.disk_chunks:
            return REDIRECT
        if self._video_hits[request.video] < self.min_video_hits:
            return REDIRECT

        missing = [c for c in chunks if c not in self._cached]
        if not missing:
            return SERVE_HIT
        evicted = 0
        need = len(missing) - (self.disk_chunks - len(self._cached))
        if need > 0:
            scored = [(key, chunk) for chunk, key in self._cached.items()]
            for chunk in _n_least(scored, need, set(chunks)):
                del self._cached[chunk]
                self._freq.pop(chunk, None)
                evicted += 1
        for chunk in missing:
            self._freq[chunk] = self._freq.get(chunk, 0.0) + 1.0
            self._insert(chunk, self._freq[chunk])
        return CacheResponse(
            Decision.SERVE, filled_chunks=len(missing), evicted_chunks=evicted
        )

    def _age(self) -> None:
        for chunk in list(self._freq):
            self._freq[chunk] /= 2.0
            if chunk in self._cached:
                self._insert(chunk, self._freq[chunk])
        for video in list(self._video_hits):
            self._video_hits[video] //= 2
            if self._video_hits[video] == 0:
                del self._video_hits[video]

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def __len__(self) -> int:
        return len(self._cached)


class OracleLruK(VideoCache):
    """Reference LRU-K: K-th most recent access per video (§3, [17]).

    A video below K recorded accesses is redirected; chunk replacement
    evicts the chunk whose video has the oldest K-th access.  The
    bounded history table drops the video with the stalest last access,
    never one that still has cached chunks, and never the video whose
    access is being recorded.
    """

    name = "oracle:LRU-K"
    cost_sensitive = False

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        k: int = 2,
        history_factor: float = 4.0,
        treap_seed: int = 0,  # accepted for signature parity; unused
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        self.k = k
        self._history: Dict[int, List[float]] = {}
        self._max_history = max(1, int(history_factor * disk_chunks))
        self._cached: Dict[ChunkId, Tuple[float, int]] = {}
        self._seq = 0
        self._video_chunks: Dict[int, Set[int]] = {}

    def _insert(self, chunk: ChunkId, score: float) -> None:
        self._seq += 1
        self._cached[chunk] = (score, self._seq)

    def handle(self, request: Request) -> CacheResponse:
        now = request.t
        history = self._history.get(request.video)
        created = history is None
        if created:
            history = []
            self._history[request.video] = history
        history.append(now)
        if len(history) > self.k:
            del history[0]
        if created:
            self._trim_history()

        chunks = list(request.chunk_ids(self.chunk_bytes))
        score = self._kth_access(request.video)
        for chunk_number in self._video_chunks.get(request.video, ()):
            self._insert((request.video, chunk_number), score)

        if len(chunks) > self.disk_chunks:
            return REDIRECT
        history = self._history.get(request.video)
        if history is None or len(history) < self.k:
            return REDIRECT

        missing = [c for c in chunks if c not in self._cached]
        if not missing:
            return SERVE_HIT

        evicted = 0
        need = len(missing) - (self.disk_chunks - len(self._cached))
        if need > 0:
            scored = [(key, chunk) for chunk, key in self._cached.items()]
            for chunk in _n_least(scored, need, set(chunks)):
                del self._cached[chunk]
                siblings = self._video_chunks.get(chunk[0])
                if siblings is not None:
                    siblings.discard(chunk[1])
                    if not siblings:
                        del self._video_chunks[chunk[0]]
                evicted += 1
        for chunk in missing:
            self._insert(chunk, score)
            self._video_chunks.setdefault(chunk[0], set()).add(chunk[1])
        return CacheResponse(
            Decision.SERVE, filled_chunks=len(missing), evicted_chunks=evicted
        )

    def _kth_access(self, video: int) -> float:
        history = self._history.get(video)
        if history is None or len(history) < self.k:
            return -_INF
        return history[0]

    def _trim_history(self) -> None:
        while len(self._history) > self._max_history:
            victim = min(
                self._history,
                key=lambda v: self._history[v][-1] if self._history[v] else -_INF,
            )
            if victim in self._video_chunks:
                uncached = [v for v in self._history if v not in self._video_chunks]
                if not uncached:
                    break
                victim = min(uncached, key=lambda v: self._history[v][-1])
            del self._history[victim]

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def __len__(self) -> int:
        return len(self._cached)


class OracleGds(VideoCache):
    """Reference Greedy-Dual-Size on fixed-size chunks (§3, [7]).

    Credit on (re)access is ``H = L + C_F``; eviction takes the minimum
    ``(H, insertion sequence)`` chunk and raises the inflation ``L``.
    """

    name = "oracle:GDS"

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        treap_seed: int = 0,  # accepted for signature parity; unused
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        self._cached: Dict[ChunkId, Tuple[float, int]] = {}
        self._seq = 0
        self._inflation = 0.0

    def _insert(self, chunk: ChunkId, score: float) -> None:
        self._seq += 1
        self._cached[chunk] = (score, self._seq)

    def handle(self, request: Request) -> CacheResponse:
        chunks = list(request.chunk_ids(self.chunk_bytes))
        if len(chunks) > self.disk_chunks:
            return REDIRECT

        credit = self._inflation + self.cost_model.fill_cost
        missing = []
        for chunk in chunks:
            if chunk in self._cached:
                self._insert(chunk, credit)
            else:
                missing.append(chunk)
        if not missing:
            return SERVE_HIT

        evicted = 0
        need = len(missing) - (self.disk_chunks - len(self._cached))
        if need > 0:
            scored = [(key, chunk) for chunk, key in self._cached.items()]
            for chunk in _n_least(scored, need, set(chunks)):
                h_value = self._cached[chunk][0]
                del self._cached[chunk]
                self._inflation = max(self._inflation, h_value)
                evicted += 1
            credit = self._inflation + self.cost_model.fill_cost
        for chunk in missing:
            self._insert(chunk, credit)
        return CacheResponse(
            Decision.SERVE, filled_chunks=len(missing), evicted_chunks=evicted
        )

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def __len__(self) -> int:
        return len(self._cached)


class OracleCafe(VideoCache):
    """Reference Cafe Cache straight from Eqs. 6–9 (Section 6).

    Per-chunk popularity is the raw EWMA pair ``(dt, t_last)``; the
    Eq. 8 IAT is evaluated at the current time wherever a popularity is
    needed — there are no precomputed Eq. 9 virtual keys and no ordered
    structure.  "Least popular" is "largest current IAT" (Theorem 1's
    semantic order), ties broken by insertion sequence like the
    production treap.  For request ``R`` with chunk set ``S``, missing
    subset ``S'`` and eviction candidates ``S''`` (the ``|S'|`` least
    popular cached chunks outside ``S``), the decision compares::

        E[serve]    = |S'| * C_F + sum_{x in S''} T / IAT_x * min(C_F, C_R)
        E[redirect] = |S|  * C_R + sum_{x in S'}  T / IAT_x * min(C_F, C_R)

    serving on ties, with ``T`` the cache age (the IAT of the least
    popular cached chunk; unbounded during warm-up).  Ghost history for
    uncached chunks is retained up to ``ghost_factor * disk_chunks``
    records and recycled least-recently-seen-first.
    """

    name = "oracle:Cafe"

    def __init__(
        self,
        disk_chunks: int,
        chunk_bytes: int = DEFAULT_CHUNK_BYTES,
        cost_model: CostModel | None = None,
        gamma: float = 0.25,
        horizon: Optional[float] = None,
        ghost_factor: float = 4.0,
        use_video_iat_estimate: bool = True,
        treap_seed: int = 0,  # accepted for signature parity; unused
    ) -> None:
        super().__init__(disk_chunks, chunk_bytes, cost_model)
        self.gamma = gamma
        #: chunk -> [dt, t_last] EWMA state (Section 6); dt=inf means
        #: "seen once, no inter-arrival sample yet"
        self._stats: Dict[ChunkId, List[float]] = {}
        #: cached chunk -> insertion sequence (tie-break order)
        self._cached: Dict[ChunkId, int] = {}
        #: ghost chunk -> recency sequence (least recently seen = min)
        self._ghosts: Dict[ChunkId, int] = {}
        self._video_chunks: Dict[int, Set[int]] = {}
        self._seq = 0
        self._ghost_seq = 0
        self._horizon = horizon
        self._max_ghosts = int(ghost_factor * disk_chunks)
        self._use_video_estimate = use_video_iat_estimate

    # -- Eq. 8 popularity ------------------------------------------------

    def _record(self, chunk: ChunkId, now: float) -> None:
        state = self._stats.get(chunk)
        if state is None:
            self._stats[chunk] = [_INF, now]
            return
        sample = now - state[1]
        if math.isinf(state[0]):
            state[0] = sample
        else:
            state[0] = self.gamma * sample + (1.0 - self.gamma) * state[0]
        state[1] = now

    def _iat(self, chunk: ChunkId, now: float) -> float:
        state = self._stats.get(chunk)
        if state is None or math.isinf(state[0]):
            return _INF
        return self.gamma * (now - state[1]) + (1.0 - self.gamma) * state[0]

    def _popularity_order(self, now: float) -> List[Tuple[Tuple[float, int], ChunkId]]:
        """Cached chunks keyed for an ascending "evict first" sort:
        ``(-IAT, seq)`` — largest IAT (least popular) first, insertion
        order among equals."""
        return [
            ((-self._iat(chunk, now), seq), chunk)
            for chunk, seq in self._cached.items()
        ]

    def cache_age(self, now: float) -> float:
        """The IAT of the least popular cached chunk; inf in warm-up."""
        if len(self._cached) < self.disk_chunks:
            return _INF
        order = self._popularity_order(now)
        (_neg_iat, _seq), chunk = min(order)
        return self._iat(chunk, now)

    # -- VideoCache interface ----------------------------------------------

    def handle(self, request: Request) -> CacheResponse:
        now = request.t
        chunks = list(request.chunk_ids(self.chunk_bytes))

        # Track popularity regardless of the decision; refresh the
        # insertion sequence of cached chunks (the production treap
        # re-inserts them) and the recency of ghost chunks.
        for chunk in chunks:
            self._record(chunk, now)
            if chunk in self._cached:
                self._seq += 1
                self._cached[chunk] = self._seq
            elif chunk in self._ghosts:
                self._ghost_seq += 1
                self._ghosts[chunk] = self._ghost_seq

        if len(chunks) > self.disk_chunks:
            self._note_ghosts(chunks)
            return REDIRECT

        missing = [c for c in chunks if c not in self._cached]
        if not missing:
            return SERVE_HIT

        horizon = self._horizon if self._horizon is not None else self.cache_age(now)
        future_unit = self.cost_model.future_cost

        free = self.disk_chunks - len(self._cached)
        n_evict = max(0, len(missing) - free)
        victims = _n_least(self._popularity_order(now), n_evict, set(chunks))

        cost_serve = len(missing) * self.cost_model.fill_cost
        for chunk in victims:
            cost_serve += _future_term(self._iat(chunk, now), horizon) * future_unit

        cost_redirect = len(chunks) * self.cost_model.redirect_cost
        for chunk in missing:
            cost_redirect += (
                _future_term(self._estimate_iat(chunk, now), horizon) * future_unit
            )

        if cost_serve > cost_redirect:
            self._note_ghosts(chunks)
            return REDIRECT

        for chunk in victims:
            self._evict(chunk)
        for chunk in missing:
            self._admit(chunk, now)
        self._collect_ghosts()
        return CacheResponse(
            Decision.SERVE, filled_chunks=len(missing), evicted_chunks=len(victims)
        )

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self._cached

    def __len__(self) -> int:
        return len(self._cached)

    # -- internals -----------------------------------------------------------

    def _estimate_iat(self, chunk: ChunkId, now: float) -> float:
        """IAT of a missing chunk: its own history, else "the largest
        recorded IAT among the existing chunks" of its video."""
        own = self._iat(chunk, now)
        if not math.isinf(own):
            return own
        if not self._use_video_estimate:
            return _INF
        siblings = self._video_chunks.get(chunk[0])
        if not siblings:
            return _INF
        return max(self._iat((chunk[0], c), now) for c in siblings)

    def _admit(self, chunk: ChunkId, now: float) -> None:
        state = self._stats[chunk]
        if math.isinf(state[0]):
            # First fill with no IAT sample: seed with the estimate the
            # admission decision used, falling back to the cache age.
            seed = self._estimate_iat(chunk, now)
            if math.isinf(seed):
                seed = self.cache_age(now)
            if math.isinf(seed):
                seed = 1.0
            state[0] = seed
        self._seq += 1
        self._cached[chunk] = self._seq
        self._ghosts.pop(chunk, None)
        self._video_chunks.setdefault(chunk[0], set()).add(chunk[1])

    def _evict(self, chunk: ChunkId) -> None:
        del self._cached[chunk]
        siblings = self._video_chunks.get(chunk[0])
        if siblings is not None:
            siblings.discard(chunk[1])
            if not siblings:
                del self._video_chunks[chunk[0]]
        if self._max_ghosts > 0:
            self._ghost_seq += 1
            self._ghosts[chunk] = self._ghost_seq
        else:
            del self._stats[chunk]

    def _note_ghosts(self, chunks: List[ChunkId]) -> None:
        if self._max_ghosts <= 0:
            for chunk in chunks:
                if chunk not in self._cached:
                    self._stats.pop(chunk, None)
            return
        for chunk in chunks:
            if chunk not in self._cached and chunk not in self._ghosts:
                self._ghost_seq += 1
                self._ghosts[chunk] = self._ghost_seq
        self._collect_ghosts()

    def _collect_ghosts(self) -> None:
        while len(self._ghosts) > self._max_ghosts:
            chunk = min(self._ghosts, key=self._ghosts.get)
            del self._ghosts[chunk]
            self._stats.pop(chunk, None)


def _future_term(iat: float, horizon: float) -> float:
    """Expected future requests within the horizon: ``T / IAT``."""
    if math.isinf(iat):
        return 0.0
    if math.isinf(horizon):
        return _INF
    return horizon / max(iat, 1e-9)


#: Oracle counterpart of each *online* entry in
#: :data:`repro.sim.runner.CACHE_FACTORIES` (offline algorithms —
#: Psychic, Belady — are their own executable specifications).
ORACLE_FACTORIES = {
    "xLRU": OracleXlru,
    "Cafe": OracleCafe,
    "PullLRU": OraclePullLru,
    "LFU": OracleLfu,
    "LRU-K": OracleLruK,
    "GDS": OracleGds,
}

# Registered policy kernels bring their own oracles: an explicit
# hand-written reference (the LFU-PK port pins itself against the
# production LfuAdmissionCache) or the auto-derived OracleKernelCache —
# the same policy object replayed on plain dicts and linear min-scans.
ORACLE_FACTORIES.update(_policy_oracle_factories())


def build_oracle(
    algorithm: str,
    disk_chunks: int,
    alpha_f2r: float = 1.0,
    chunk_bytes: int = DEFAULT_CHUNK_BYTES,
    **kwargs,
) -> VideoCache:
    """Instantiate the oracle for ``algorithm`` with the standard knobs."""
    try:
        factory = ORACLE_FACTORIES[algorithm]
    except KeyError:
        known = ", ".join(sorted(ORACLE_FACTORIES))
        raise ValueError(
            f"no oracle for algorithm {algorithm!r}; known: {known}"
        ) from None
    return factory(
        disk_chunks,
        chunk_bytes=chunk_bytes,
        cost_model=CostModel(alpha_f2r),
        **kwargs,
    )
