"""Per-request invariant auditing for any :class:`VideoCache`.

:class:`AuditedCache` wraps a cache and checks, on every ``handle``
call, the conservation laws that every algorithm in this repository
must obey regardless of its policy:

* **time order** — request timestamps are non-decreasing (the replay
  contract every cache relies on);
* **capacity** — occupancy never exceeds ``disk_chunks``;
* **serve completeness** — after a SERVE, every requested chunk is on
  disk (the paper's model: a request is *fully* served or redirected);
* **fill accounting** — ``filled_chunks`` equals the number of
  requested chunks that were missing before the request (chunks are
  fetched in full, exactly once, only when absent);
* **eviction accounting** — ``evicted_chunks`` equals
  ``occupancy_before + filled_chunks - occupancy_after`` (chunks never
  appear or vanish off the books);
* **redirect purity** — a REDIRECT leaves occupancy and the cached
  state of every requested chunk untouched (policy state like
  popularity trackers may advance; disk contents may not).

Violations are raised as :class:`InvariantViolation` (``strict=True``,
the default) or collected on ``violations`` for post-hoc inspection.
The wrapper is itself a :class:`VideoCache`, so it drops into the
replay engine, the CDN simulator and the differential harness
unchanged; ``repro-sim --audit`` is the CLI surface.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

from repro.core.base import CacheResponse, Decision, VideoCache
from repro.trace.requests import ChunkId, Request

__all__ = ["AuditedCache", "InvariantViolation", "Violation"]


class InvariantViolation(AssertionError):
    """A cache broke one of the per-request invariants."""


@dataclass(frozen=True, slots=True)
class Violation:
    """One recorded invariant violation.

    ``request`` is None for lifecycle violations (e.g. a cache wipe
    that left chunks behind) that are not tied to a single request.
    """

    index: int
    invariant: str
    detail: str
    request: Optional[Request]

    def __str__(self) -> str:
        return f"request #{self.index} [{self.invariant}]: {self.detail}"


class AuditedCache(VideoCache):
    """A :class:`VideoCache` proxy that audits every request it relays."""

    def __init__(self, inner: VideoCache, strict: bool = True) -> None:
        super().__init__(inner.disk_chunks, inner.chunk_bytes, inner.cost_model)
        self.inner = inner
        self.strict = strict
        self.name = f"audited:{inner.name}"
        self.offline = inner.offline
        self.cost_sensitive = inner.cost_sensitive
        self.violations: List[Violation] = []
        self.requests_audited = 0
        self.wipes = 0
        self._last_t = float("-inf")

    # -- auditing ------------------------------------------------------------

    def handle(self, request: Request) -> CacheResponse:
        index = self.requests_audited
        inner = self.inner
        if request.t < self._last_t:
            self._flag(
                index,
                "time-order",
                f"timestamp {request.t} precedes previous request at {self._last_t}",
                request,
            )
        self._last_t = max(self._last_t, request.t)

        chunks = list(request.chunk_ids(self.chunk_bytes))
        occupancy_before = len(inner)
        cached_before = [chunk in inner for chunk in chunks]

        response = inner.handle(request)
        self.requests_audited += 1

        occupancy_after = len(inner)
        if occupancy_after > self.disk_chunks:
            self._flag(
                index,
                "capacity",
                f"occupancy {occupancy_after} exceeds disk_chunks {self.disk_chunks}",
                request,
            )

        if response.decision is Decision.SERVE:
            self._audit_serve(
                index, request, response, chunks, cached_before,
                occupancy_before, occupancy_after,
            )
        else:
            self._audit_redirect(
                index, request, chunks, cached_before,
                occupancy_before, occupancy_after,
            )
        return response

    def _audit_serve(
        self,
        index: int,
        request: Request,
        response: CacheResponse,
        chunks: List[ChunkId],
        cached_before: List[bool],
        occupancy_before: int,
        occupancy_after: int,
    ) -> None:
        inner = self.inner
        absent = [c for c in chunks if c not in inner]
        if absent:
            self._flag(
                index,
                "serve-completeness",
                f"served but {len(absent)} requested chunk(s) not on disk "
                f"afterwards, e.g. {absent[0]}",
                request,
            )
        missing_before = sum(1 for was in cached_before if not was)
        if response.filled_chunks != missing_before:
            self._flag(
                index,
                "fill-accounting",
                f"filled_chunks={response.filled_chunks} but {missing_before} "
                f"requested chunk(s) were missing before the request",
                request,
            )
        expected_evicted = occupancy_before + response.filled_chunks - occupancy_after
        if response.evicted_chunks != expected_evicted:
            self._flag(
                index,
                "eviction-accounting",
                f"evicted_chunks={response.evicted_chunks} but occupancy went "
                f"{occupancy_before} -> {occupancy_after} with "
                f"{response.filled_chunks} fill(s) (expected {expected_evicted})",
                request,
            )

    def _audit_redirect(
        self,
        index: int,
        request: Request,
        chunks: List[ChunkId],
        cached_before: List[bool],
        occupancy_before: int,
        occupancy_after: int,
    ) -> None:
        inner = self.inner
        if occupancy_after != occupancy_before:
            self._flag(
                index,
                "redirect-purity",
                f"redirect changed occupancy {occupancy_before} -> {occupancy_after}",
                request,
            )
        for chunk, was_cached in zip(chunks, cached_before):
            if (chunk in inner) != was_cached:
                self._flag(
                    index,
                    "redirect-purity",
                    f"redirect changed cached state of requested chunk {chunk} "
                    f"({was_cached} -> {not was_cached})",
                    request,
                )
                break

    def note_wipe(self) -> None:
        """Audit a cold-restart cache wipe (fault-injection replays).

        A wipe must leave occupancy exactly 0 — a restart that carries
        chunks over is not a cold restart, and any fill/eviction
        bookkeeping that survived it would silently corrupt the
        capacity and accounting invariants that keep holding afterwards
        (the auditor itself persists across the wipe, so post-wipe
        fills are still checked against ``disk_chunks``).
        """
        self.wipes += 1
        occupancy = len(self.inner)
        if occupancy != 0:
            self._flag(
                self.requests_audited,
                "wipe-emptiness",
                f"cache wipe left occupancy {occupancy} (expected exactly 0)",
                None,
            )

    def _flag(
        self, index: int, invariant: str, detail: str, request: Optional[Request]
    ) -> None:
        violation = Violation(index, invariant, detail, request)
        self.violations.append(violation)
        if self.strict:
            raise InvariantViolation(str(violation))

    @property
    def ok(self) -> bool:
        """Whether every audited request satisfied all invariants."""
        return not self.violations

    def summary(self) -> str:
        """One-line audit outcome for reports."""
        status = "OK" if self.ok else f"{len(self.violations)} violation(s)"
        return (
            f"audit[{self.inner.name}]: {self.requests_audited} requests, {status}"
        )

    # -- delegation ----------------------------------------------------------

    def prepare(self, requests: Sequence[Request]) -> None:
        self.inner.prepare(requests)

    def __contains__(self, chunk: ChunkId) -> bool:
        return chunk in self.inner

    def __len__(self) -> int:
        return len(self.inner)

    def describe(self) -> str:
        return f"audited({self.inner.describe()})"
