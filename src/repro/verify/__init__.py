"""Correctness line of defense: oracles, invariant audits, differential replay.

The paper frames cache servers as "strong lines of defense" against
origin traffic; this package is the analogous defense for the
*reproduction itself*.  Every optimization in the simulation core
(broadcast replay, alpha-collapsing, process pools, treap-ordered
eviction, EWMA virtual keys) is a way to be silently wrong, so each
online algorithm gets:

* an **oracle** (:mod:`repro.verify.oracles`) — a deliberately slow,
  transparent reference implementation derived straight from the
  paper's equations, using plain dicts and linear min-scans;
* an **invariant audit** (:mod:`repro.verify.audit`) — a wrapper
  enforcing per-request conservation laws on any
  :class:`~repro.core.base.VideoCache`;
* **differential replay** (:mod:`repro.verify.differential`) — fast
  implementation and oracle driven through the same trace, their
  decision/fill/evict streams and metric totals compared byte for
  byte, with greedy delta-debugging down to a minimal counterexample
  on divergence;
* **adversarial fuzzing** (:mod:`repro.verify.fuzz`) — seeded trace
  generators aimed at the historically bug-prone corners: timestamp
  ties, zero-gap bursts, oversized requests, 1-chunk disks, odd chunk
  sizes and alpha extremes;
* **fault fuzzing** (:mod:`repro.verify.faultcheck`) — seeded random
  fault schedules (outages, cold restarts, degraded links, brownouts)
  replayed over 1–3 server topologies with audited caches, checking
  the invariants hold under failover and that an empty schedule is
  byte-identical to no schedule at all.

The ``repro-verify`` CLI entry point wires these together.
"""

from repro.verify.audit import AuditedCache, InvariantViolation
from repro.verify.differential import (
    DifferentialResult,
    Divergence,
    diff_replay,
    dump_counterexample,
    load_counterexample,
    replay_counterexample,
    shrink_trace,
    verify_algorithm,
)
from repro.verify.faultcheck import (
    FaultCheckResult,
    FaultScenario,
    fault_scenarios,
    run_fault_fuzz,
    run_fault_scenario,
)
from repro.verify.fuzz import FuzzScenario, adversarial_trace, scenario_matrix
from repro.verify.oracles import ORACLE_FACTORIES, build_oracle

__all__ = [
    "AuditedCache",
    "InvariantViolation",
    "DifferentialResult",
    "Divergence",
    "diff_replay",
    "dump_counterexample",
    "load_counterexample",
    "replay_counterexample",
    "shrink_trace",
    "verify_algorithm",
    "FaultCheckResult",
    "FaultScenario",
    "fault_scenarios",
    "run_fault_fuzz",
    "run_fault_scenario",
    "FuzzScenario",
    "adversarial_trace",
    "scenario_matrix",
    "ORACLE_FACTORIES",
    "build_oracle",
]
