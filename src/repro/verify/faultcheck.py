"""Fault-schedule fuzzing over small CDN topologies.

The fault layer (:mod:`repro.cdn.faults`) threads failover routing,
cache wipes and brownout drops through the multi-server replay — each
a fresh way to corrupt cache state or double-count traffic.  This
module drives seeded random fault schedules through 1–3 server
topologies with every cache wrapped in an
:class:`~repro.verify.audit.AuditedCache` and checks, per scenario:

* **invariants under faults** — capacity, fill/eviction accounting,
  redirect purity and wipe-emptiness all hold while servers go down,
  restart cold and fail over onto each other;
* **zero-cost disablement** — a replay with ``faults=None`` and one
  with an *empty* :class:`~repro.cdn.faults.FaultSchedule` are
  byte-identical (the "exactly free" contract of the fault layer);
* **determinism** — replaying the same schedule twice on fresh
  topologies produces byte-identical results;
* **loss conservation** — CDN-wide lost counters equal the sum of the
  per-edge attributions, and availability stays in ``[0, 1]``.

``repro-verify --fault-seeds N`` is the CLI surface.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Sequence, Tuple

from repro.cdn.faults import FaultSchedule
from repro.cdn.multiserver import CdnSimulationResult, CdnSimulator
from repro.cdn.topology import ORIGIN, CdnServer, CdnTopology, hierarchy
from repro.sim.runner import build_cache
from repro.trace.requests import Request
from repro.verify.audit import AuditedCache, Violation
from repro.verify.fuzz import adversarial_trace

__all__ = [
    "FaultScenario",
    "FaultCheckResult",
    "fault_scenarios",
    "run_fault_scenario",
    "run_fault_fuzz",
]

#: Algorithms exercised by default: the paper's online pair plus the
#: pull-through baseline (cheap, and its treap-free state pickles fast).
DEFAULT_ALGORITHMS = ("PullLRU", "xLRU", "Cafe")


@dataclass(frozen=True)
class FaultScenario:
    """One fault-fuzz case: a topology shape, an algorithm, a schedule seed."""

    seed: int
    num_servers: int  # 1, 2 or 3 cache servers
    algorithm: str
    num_requests: int = 400
    disk_chunks: int = 16
    chunk_bytes: int = 1024
    num_fault_events: int = 4

    def __post_init__(self) -> None:
        if self.num_servers not in (1, 2, 3):
            raise ValueError(
                f"num_servers must be 1, 2 or 3, got {self.num_servers}"
            )

    @property
    def label(self) -> str:
        return (
            f"{self.algorithm}/servers={self.num_servers}/seed={self.seed}"
        )


@dataclass
class FaultCheckResult:
    """Outcome of one fault-fuzz scenario."""

    scenario: FaultScenario
    #: invariant violations collected by the audited caches
    violations: List[Violation] = field(default_factory=list)
    #: accounting/equivalence problems found by the harness itself
    issues: List[str] = field(default_factory=list)
    #: how many requests the faulted replay lost (for reporting)
    requests_lost: int = 0
    restarts: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations and not self.issues


def _build_topology(
    scenario: FaultScenario, audit: bool
) -> Tuple[CdnTopology, Dict[str, AuditedCache]]:
    """A 1/2/3-cache-server topology with optionally audited caches.

    * 1 server — a lone edge filling from the origin (no failover
      target: down means straight to origin);
    * 2 servers — a hierarchy with one edge and a parent;
    * 3 servers — a hierarchy with two edges sharing a parent.
    """

    def cache(scale: int = 1):
        inner = build_cache(
            scenario.algorithm,
            scenario.disk_chunks * scale,
            chunk_bytes=scenario.chunk_bytes,
        )
        return AuditedCache(inner, strict=False) if audit else inner

    audits: Dict[str, AuditedCache] = {}

    def note(name: str, c):
        if audit:
            audits[name] = c
        return c

    if scenario.num_servers == 1:
        topology = CdnTopology(
            [
                CdnServer(name=ORIGIN, cache=None),
                CdnServer(name="edge0", cache=note("edge0", cache())),
            ]
        )
        return topology, audits
    num_edges = scenario.num_servers - 1
    edges = {
        f"edge{i}": note(f"edge{i}", cache()) for i in range(num_edges)
    }
    parent = note("parent", cache(scale=2))
    return hierarchy(edges, parent), audits


def _edge_traces(scenario: FaultScenario) -> Dict[str, List[Request]]:
    num_edges = max(1, scenario.num_servers - 1)
    per_edge = max(1, scenario.num_requests // num_edges)
    return {
        f"edge{i}": adversarial_trace(
            seed=scenario.seed * 31 + i,
            num_requests=per_edge,
            disk_chunks=scenario.disk_chunks,
            chunk_bytes=scenario.chunk_bytes,
            p_oversize=0.0,  # oversized requests never fill; keep traffic real
        )
        for i in range(num_edges)
    }


def _schedule(
    scenario: FaultScenario, traces: Dict[str, List[Request]]
) -> FaultSchedule:
    span = max(
        (trace[-1].t for trace in traces.values() if trace), default=1.0
    )
    cache_servers = [f"edge{i}" for i in range(len(traces))]
    if scenario.num_servers > 1:
        cache_servers.append("parent")
    return FaultSchedule.random(
        cache_servers,
        ORIGIN,
        duration=max(span, 1.0),
        seed=scenario.seed,
        num_events=scenario.num_fault_events,
    )


def _fingerprint(result: CdnSimulationResult) -> tuple:
    """Comparable byte-level summary of one CDN replay."""
    per_server = tuple(
        (name, dataclasses.astuple(result.summary(name)))
        for name in sorted(result.per_server)
    )
    return (
        per_server,
        result.origin_bytes,
        result.origin_requests,
        result.origin_fill_requests,
        result.origin_fill_bytes,
        tuple(sorted(result.redirect_hops.items())),
        result.num_user_requests,
        result.user_requested_bytes,
        result.origin_redirect_bytes,
        result.requests_lost,
        result.lost_bytes,
        result.fill_requests_lost,
        result.fill_bytes_lost,
    )


def run_fault_scenario(scenario: FaultScenario) -> FaultCheckResult:
    """Run one scenario through every check; see the module docstring."""
    outcome = FaultCheckResult(scenario)
    traces = _edge_traces(scenario)
    schedule = _schedule(scenario, traces)

    # 1. Zero-cost disablement: faults=None vs empty schedule.
    topo_none, _ = _build_topology(scenario, audit=False)
    baseline = CdnSimulator(topo_none).run(traces)
    topo_empty, _ = _build_topology(scenario, audit=False)
    empty = CdnSimulator(topo_empty, faults=FaultSchedule([])).run(traces)
    if _fingerprint(baseline) != _fingerprint(empty):
        outcome.issues.append(
            "empty FaultSchedule changed the replay (zero-cost contract broken)"
        )

    # 2. Faulted replay with audited caches: invariants must hold.
    topo_fault, audits = _build_topology(scenario, audit=True)
    faulted = CdnSimulator(topo_fault, faults=schedule).run(traces)
    for name, audited in sorted(audits.items()):
        outcome.violations.extend(audited.violations)
    outcome.requests_lost = faulted.requests_lost
    outcome.restarts = sum(
        stats.restarts for stats in faulted.availability.values()
    )

    # 3. Determinism: same schedule on a fresh topology, same bytes.
    topo_again, _ = _build_topology(scenario, audit=True)
    again = CdnSimulator(topo_again, faults=schedule).run(traces)
    if _fingerprint(faulted) != _fingerprint(again):
        outcome.issues.append(
            "faulted replay is not deterministic across identical runs"
        )

    # 4. Loss conservation and availability bounds.
    edge_lost = sum(
        stats.lost_requests for stats in faulted.availability.values()
    )
    if edge_lost != faulted.requests_lost:
        outcome.issues.append(
            f"lost-request attribution mismatch: CDN-wide "
            f"{faulted.requests_lost} != per-edge sum {edge_lost}"
        )
    ratio = faulted.availability_ratio
    if faulted.num_user_requests and not 0.0 <= ratio <= 1.0:
        outcome.issues.append(f"availability_ratio {ratio} out of [0, 1]")
    served_plus_lost = faulted.num_user_requests
    expected = sum(len(trace) for trace in traces.values())
    if served_plus_lost != expected:
        outcome.issues.append(
            f"user-request conservation broken: replayed {served_plus_lost} "
            f"of {expected} trace requests"
        )
    return outcome


def fault_scenarios(
    seeds: int = 10,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    num_requests: int = 400,
) -> Iterator[FaultScenario]:
    """The default fault-fuzz matrix: ``seeds`` scenarios per algorithm,
    cycling topology sizes 1 -> 2 -> 3."""
    for algorithm in algorithms:
        for i in range(seeds):
            yield FaultScenario(
                seed=4000 + i,
                num_servers=(i % 3) + 1,
                algorithm=algorithm,
                num_requests=num_requests,
            )


def run_fault_fuzz(
    seeds: int = 10,
    algorithms: Sequence[str] = DEFAULT_ALGORITHMS,
    num_requests: int = 400,
) -> List[FaultCheckResult]:
    """Run the whole matrix; returns every scenario outcome."""
    return [
        run_fault_scenario(scenario)
        for scenario in fault_scenarios(seeds, algorithms, num_requests)
    ]
