"""Differential replay: fast implementation vs oracle, byte for byte.

Both caches are driven through the same time-ordered trace.  After
every request the harness compares the full observable outcome —
decision, ``filled_chunks``, ``evicted_chunks`` and disk occupancy —
and at the end of the trace the
:class:`~repro.sim.metrics.MetricsCollector` totals of the two lanes
must be identical in every integer counter.  The fast lane runs inside
an :class:`~repro.verify.audit.AuditedCache`, so a replay also proves
the per-request invariants held.

On divergence the failing trace is shrunk by greedy delta-debugging
(drop progressively smaller slices while the divergence reproduces on
fresh caches) and dumped as a replayable artifact: the minimal trace
in the standard JSONL format next to a ``meta.json`` describing the
scenario, loadable with :func:`load_counterexample` and re-runnable
with ``repro-verify --replay``.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.core.base import VideoCache
from repro.core.policy import kernel_algorithm_names as _policy_kernel_names
from repro.sim.metrics import MetricsCollector
from repro.trace.requests import Request
from repro.trace.io import read_trace_jsonl, write_trace_jsonl
from repro.verify.audit import AuditedCache, Violation
from repro.verify.fuzz import FuzzScenario
from repro.verify.oracles import build_oracle

__all__ = [
    "Divergence",
    "DifferentialResult",
    "diff_replay",
    "shrink_trace",
    "verify_algorithm",
    "verify_kernel_lane",
    "KERNEL_ALGORITHMS",
    "dump_counterexample",
    "load_counterexample",
    "replay_counterexample",
]

#: Online algorithms with a vectorized block decision kernel
#: (:meth:`~repro.core.base.VideoCache.handle_span_block_kernel`
#: override) whose equivalence the fuzzer matrix must also cover.
#: Every registered policy kernel qualifies: KernelCache overrides the
#: kernel entry point at class level (screen-less policies fall back to
#: the scalar block walk inside it, which is still worth pinning).
KERNEL_ALGORITHMS = ("xLRU", "Cafe", "PullLRU", "LFU") + _policy_kernel_names()

#: (decision value, filled_chunks, evicted_chunks, occupancy after)
Outcome = Tuple[str, int, int, int]


def _outcome(cache: VideoCache, response) -> Outcome:
    return (
        response.decision.value,
        response.filled_chunks,
        response.evicted_chunks,
        len(cache),
    )


@dataclass(frozen=True, slots=True)
class Divergence:
    """First point where fast implementation and oracle disagree."""

    index: int
    request: Request
    fast: Optional[Outcome]
    oracle: Optional[Outcome]
    #: which comparison failed: "outcome" (per-request) or "totals:<counter>"
    kind: str = "outcome"

    def __str__(self) -> str:
        return (
            f"divergence at request #{self.index} ({self.kind}): "
            f"fast={self.fast} oracle={self.oracle} on {self.request}"
        )


@dataclass
class DifferentialResult:
    """Outcome of one fast-vs-oracle replay."""

    algorithm: str
    num_requests: int
    divergence: Optional[Divergence] = None
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return self.divergence is None and not self.violations


def diff_replay(
    fast: VideoCache,
    oracle: VideoCache,
    requests: Sequence[Request],
    interval: float = 3600.0,
    audit: bool = True,
) -> DifferentialResult:
    """Drive ``fast`` and ``oracle`` through ``requests`` in lockstep.

    Stops at the first per-request divergence (the caches' states are
    unreliable past that point); otherwise compares the final metric
    totals counter by counter.  With ``audit=True`` the fast lane is
    wrapped in a non-strict :class:`AuditedCache` and any invariant
    violations are returned alongside.
    """
    algorithm = fast.name
    audited: Optional[AuditedCache] = None
    if audit:
        audited = AuditedCache(fast, strict=False)
        fast = audited

    fast_metrics = MetricsCollector(
        fast.cost_model, chunk_bytes=fast.chunk_bytes, interval=interval
    )
    oracle_metrics = MetricsCollector(
        oracle.cost_model, chunk_bytes=oracle.chunk_bytes, interval=interval
    )

    result = DifferentialResult(algorithm=algorithm, num_requests=len(requests))
    last_t = float("-inf")
    for index, request in enumerate(requests):
        if request.t < last_t:
            raise ValueError(
                f"trace not time-ordered at index {index}: {request.t} < {last_t}"
            )
        last_t = request.t
        fast_response = fast.handle(request)
        oracle_response = oracle.handle(request)
        fast_metrics.record(request, fast_response)
        oracle_metrics.record(request, oracle_response)
        fast_out = _outcome(fast, fast_response)
        oracle_out = _outcome(oracle, oracle_response)
        if fast_out != oracle_out:
            result.divergence = Divergence(index, request, fast_out, oracle_out)
            break
    else:
        totals_fast = fast_metrics.totals()
        totals_oracle = oracle_metrics.totals()
        for counter in (
            "num_requests",
            "num_served",
            "requested_bytes",
            "requested_chunks",
            "egress_bytes",
            "ingress_bytes",
            "redirected_bytes",
            "filled_chunks",
            "redirected_chunks",
        ):
            a, b = getattr(totals_fast, counter), getattr(totals_oracle, counter)
            if a != b:
                result.divergence = Divergence(
                    len(requests) - 1,
                    requests[-1],
                    (counter, a, 0, 0),
                    (counter, b, 0, 0),
                    kind=f"totals:{counter}",
                )
                break

    if audited is not None:
        result.violations = list(audited.violations)
    return result


def shrink_trace(
    requests: Sequence[Request],
    still_fails: Callable[[Sequence[Request]], bool],
    max_probes: int = 2000,
) -> List[Request]:
    """Greedy delta-debugging: drop progressively smaller slices.

    ``still_fails`` must rebuild its caches from scratch per call and
    report whether the candidate trace still reproduces the failure.
    Subsequences of a time-ordered trace stay time-ordered, so every
    candidate is a valid replay.  ``max_probes`` bounds the total
    number of replays (each probe is a full differential run).
    """
    trace = list(requests)
    probes = 0
    chunk = max(1, len(trace) // 2)
    while chunk >= 1:
        index = 0
        while index < len(trace) and probes < max_probes:
            candidate = trace[:index] + trace[index + chunk:]
            probes += 1
            if candidate and still_fails(candidate):
                trace = candidate  # keep the cut, retry at same index
            else:
                index += chunk
        if chunk == 1 or probes >= max_probes:
            break
        chunk //= 2
    return trace


def verify_algorithm(
    algorithm: str,
    scenario: FuzzScenario,
    build_fast: Optional[Callable[..., VideoCache]] = None,
    shrink: bool = True,
    interval: float = 3600.0,
) -> Tuple[DifferentialResult, Optional[List[Request]]]:
    """Differentially verify one algorithm on one fuzz scenario.

    Returns the differential result and, when it failed and ``shrink``
    is set, the minimized counterexample trace.  ``build_fast``
    defaults to the production registry
    (:func:`repro.sim.runner.build_cache`); injecting a different
    factory is how the harness's own tests plant deliberate bugs.
    """
    from repro.sim.runner import build_cache

    if build_fast is None:
        build_fast = build_cache
    kwargs = scenario.cache_kwargs.get(algorithm, {})

    def make_pair() -> Tuple[VideoCache, VideoCache]:
        fast = build_fast(
            algorithm,
            scenario.disk_chunks,
            alpha_f2r=scenario.alpha_f2r,
            chunk_bytes=scenario.chunk_bytes,
            **kwargs,
        )
        oracle = build_oracle(
            algorithm,
            scenario.disk_chunks,
            alpha_f2r=scenario.alpha_f2r,
            chunk_bytes=scenario.chunk_bytes,
            **kwargs,
        )
        return fast, oracle

    trace = scenario.trace()
    fast, oracle = make_pair()
    result = diff_replay(fast, oracle, trace, interval=interval)
    if result.ok or not shrink:
        return result, None

    def still_fails(candidate: Sequence[Request]) -> bool:
        f, o = make_pair()
        r = diff_replay(f, o, candidate, interval=interval)
        return not r.ok

    minimal = shrink_trace(trace, still_fails)
    # Re-derive the divergence report on the minimal trace so the
    # artifact describes exactly what it contains.
    f, o = make_pair()
    result = diff_replay(f, o, minimal, interval=interval)
    result.num_requests = len(minimal)
    return result, minimal


#: Metric totals compared counter-by-counter between replay lanes.
_TOTALS_COUNTERS = (
    "num_requests",
    "num_served",
    "requested_bytes",
    "requested_chunks",
    "egress_bytes",
    "ingress_bytes",
    "redirected_bytes",
    "filled_chunks",
    "redirected_chunks",
)


def verify_kernel_lane(
    algorithm: str,
    scenario: FuzzScenario,
    block_size: int = 128,
    interval: float = 3600.0,
    build_fast: Optional[Callable[..., VideoCache]] = None,
) -> DifferentialResult:
    """Verify the vectorized block kernel against the scalar block walk.

    Twin caches replay one fuzz scenario block by block: the reference
    cache through :meth:`~repro.core.base.VideoCache.handle_span_block`
    feeding ``record_packed``, the other through
    :meth:`~repro.core.base.VideoCache.handle_span_block_kernel`
    feeding ``record_packed_block`` — the exact pairing the engine's
    packed single-pass lane dispatches.  Compared per block: every
    response (decision and both chunk counts), the kernel's miss index
    list, disk occupancy, and at the end the metric totals counter by
    counter.  On the ``REPRO_NO_NUMPY`` lane the kernel falls back to
    the scalar walk and the check degenerates to fallback parity.
    """
    from repro.sim.runner import build_cache
    from repro.trace.columnar import pack_trace

    if build_fast is None:
        build_fast = build_cache
    kwargs = scenario.cache_kwargs.get(algorithm, {})

    def make() -> VideoCache:
        return build_fast(
            algorithm,
            scenario.disk_chunks,
            alpha_f2r=scenario.alpha_f2r,
            chunk_bytes=scenario.chunk_bytes,
            **kwargs,
        )

    trace = scenario.trace()
    packed = pack_trace(trace, chunk_bytes=scenario.chunk_bytes)
    scalar = make()
    kernel = make()
    scalar_metrics = MetricsCollector(
        scalar.cost_model, chunk_bytes=scalar.chunk_bytes, interval=interval
    )
    kernel_metrics = MetricsCollector(
        kernel.cost_model, chunk_bytes=kernel.chunk_bytes, interval=interval
    )
    result = DifferentialResult(
        algorithm=f"{algorithm}/kernel", num_requests=len(trace)
    )

    from repro.core.base import SERVE_HIT

    n = len(packed)
    for start in range(0, n, block_size):
        stop = min(start + block_size, n)
        view = packed.block_view(start, stop)
        nbytes = [b1 - b0 + 1 for b0, b1 in zip(view.b0s_l, view.b1s_l)]
        nchunks = [c1 - c0 + 1 for c0, c1 in zip(view.c0s_l, view.c1s_l)]
        expected = scalar.handle_span_block(
            view.ts_l, view.videos_l, view.b0s_l, view.b1s_l, view.c0s_l, view.c1s_l
        )
        got, misses = kernel.handle_span_block_kernel(view)
        scalar_metrics.record_packed(view.ts_l, nbytes, nchunks, expected)
        if view.vectorized:
            kernel_metrics.record_packed_block(
                view.ts, view.num_bytes, view.num_chunks, got, misses
            )
        else:
            kernel_metrics.record_packed(view.ts_l, nbytes, nchunks, got)
        for offset, (a, b) in enumerate(zip(expected, got)):
            if (
                a.decision is not b.decision
                or a.filled_chunks != b.filled_chunks
                or a.evicted_chunks != b.evicted_chunks
            ):
                index = start + offset
                result.divergence = Divergence(
                    index,
                    trace[index],
                    (b.decision.value, b.filled_chunks, b.evicted_chunks, len(kernel)),
                    (a.decision.value, a.filled_chunks, a.evicted_chunks, len(scalar)),
                    kind="kernel-response",
                )
                return result
        expected_misses = [i for i, r in enumerate(got) if r is not SERVE_HIT]
        if misses != expected_misses:
            result.divergence = Divergence(
                start,
                trace[start],
                ("misses", len(misses), 0, 0),
                ("misses", len(expected_misses), 0, 0),
                kind="kernel-misses",
            )
            return result
        if len(scalar) != len(kernel):
            result.divergence = Divergence(
                stop - 1,
                trace[stop - 1],
                ("occupancy", len(kernel), 0, 0),
                ("occupancy", len(scalar), 0, 0),
                kind="kernel-occupancy",
            )
            return result
    totals_scalar = scalar_metrics.totals()
    totals_kernel = kernel_metrics.totals()
    for counter in _TOTALS_COUNTERS:
        a, b = getattr(totals_scalar, counter), getattr(totals_kernel, counter)
        if a != b:
            result.divergence = Divergence(
                n - 1,
                trace[-1],
                (counter, b, 0, 0),
                (counter, a, 0, 0),
                kind=f"kernel-totals:{counter}",
            )
            break
    return result


def dump_counterexample(
    directory: str,
    algorithm: str,
    scenario: FuzzScenario,
    result: DifferentialResult,
    trace: Sequence[Request],
) -> str:
    """Write a replayable counterexample artifact; returns its path.

    Layout: ``<directory>/<algorithm>_<scenario-label>/trace.jsonl``
    plus ``meta.json`` holding the cache knobs and the divergence.
    """
    label = scenario.label.replace("/", "_").replace("=", "-")
    path = os.path.join(directory, f"{algorithm.replace('/', '_')}_{label}")
    os.makedirs(path, exist_ok=True)
    write_trace_jsonl(os.path.join(path, "trace.jsonl"), trace)
    meta = {
        "algorithm": algorithm,
        "disk_chunks": scenario.disk_chunks,
        "chunk_bytes": scenario.chunk_bytes,
        "alpha_f2r": scenario.alpha_f2r,
        "cache_kwargs": scenario.cache_kwargs.get(algorithm, {}),
        "seed": scenario.seed,
        "num_requests": len(trace),
        "divergence": str(result.divergence) if result.divergence else None,
        "violations": [str(v) for v in result.violations],
    }
    with open(os.path.join(path, "meta.json"), "w") as fh:
        json.dump(meta, fh, indent=2)
    return path


def load_counterexample(path: str) -> Tuple[Dict, List[Request]]:
    """Load a dumped counterexample: ``(meta, trace)``."""
    with open(os.path.join(path, "meta.json")) as fh:
        meta = json.load(fh)
    trace = list(read_trace_jsonl(os.path.join(path, "trace.jsonl")))
    return meta, trace


def replay_counterexample(path: str, interval: float = 3600.0) -> DifferentialResult:
    """Re-run a dumped counterexample against the current sources."""
    from repro.sim.runner import build_cache

    meta, trace = load_counterexample(path)
    kwargs = meta.get("cache_kwargs", {})
    fast = build_cache(
        meta["algorithm"],
        meta["disk_chunks"],
        alpha_f2r=meta["alpha_f2r"],
        chunk_bytes=meta["chunk_bytes"],
        **kwargs,
    )
    oracle = build_oracle(
        meta["algorithm"],
        meta["disk_chunks"],
        alpha_f2r=meta["alpha_f2r"],
        chunk_bytes=meta["chunk_bytes"],
        **kwargs,
    )
    return diff_replay(fast, oracle, trace, interval=interval)
