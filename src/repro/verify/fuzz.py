"""Seeded adversarial trace generation for the differential harness.

Real traces are gentle: mostly increasing timestamps, modest ranges,
popularity that moves slowly.  The bugs that survive into a fast cache
implementation live in the corners, so this generator manufactures
them deliberately:

* **timestamp ties and zero-gap bursts** — several requests at the
  exact same instant (EWMA inter-arrival samples of zero, LRU recency
  ties, bucket boundary cases);
* **oversized requests** — byte ranges spanning more chunks than the
  whole disk (must redirect without touching state);
* **degenerate disks** — 1-chunk disks make every admission also an
  eviction decision;
* **odd chunk sizes** — non-power-of-two ``chunk_bytes`` and
  unaligned byte ranges exercise the floor-division chunk mapping;
* **alpha extremes** — ``alpha_F2R`` of 0.5 and 4 flip which of
  fill/redirect is the "cheap" direction and stress tie-breaking in
  the Eq. 6–7 cost comparison.

Timestamps advance in multiples of 1/8 second.  Dyadic steps keep the
EWMA arithmetic (gamma = 0.25) exact in binary floating point, so an
oracle that orders chunks by Eq. 8 IATs and an implementation that
orders by Eq. 9 virtual keys compute *bit-identical* popularity
comparisons — any divergence the harness reports is a logic bug, never
float rounding.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional

from repro.trace.requests import Request

__all__ = ["FuzzScenario", "adversarial_trace", "scenario_matrix"]

#: Timestamp quantum: all inter-arrival gaps are multiples of this.
TIME_STEP = 0.125


@dataclass(frozen=True)
class FuzzScenario:
    """One differential-verification case: a trace plus cache knobs."""

    seed: int
    num_requests: int
    disk_chunks: int
    chunk_bytes: int
    alpha_f2r: float
    name: str = ""
    #: extra per-algorithm constructor kwargs (applied to fast cache
    #: and oracle alike), e.g. tiny cleanup/aging intervals so the
    #: housekeeping paths run inside short traces
    cache_kwargs: Dict[str, Dict] = field(default_factory=dict)

    @property
    def label(self) -> str:
        return self.name or (
            f"seed={self.seed}/disk={self.disk_chunks}"
            f"/k={self.chunk_bytes}/alpha={self.alpha_f2r:g}"
        )

    def trace(self) -> List[Request]:
        return adversarial_trace(
            seed=self.seed,
            num_requests=self.num_requests,
            disk_chunks=self.disk_chunks,
            chunk_bytes=self.chunk_bytes,
        )


def adversarial_trace(
    seed: int,
    num_requests: int = 600,
    disk_chunks: int = 8,
    chunk_bytes: int = 1024,
    num_videos: Optional[int] = None,
    max_request_chunks: Optional[int] = None,
    p_tie: float = 0.25,
    p_burst: float = 0.10,
    p_oversize: float = 0.06,
    p_jump: float = 0.05,
) -> List[Request]:
    """A deterministic, time-ordered, hostile request trace.

    The video pool is kept small relative to the disk so that reuse,
    eviction and re-admission all happen within a short trace; a hot
    subset of videos absorbs most requests (crude popularity skew).
    """
    rng = random.Random(seed)
    if num_videos is None:
        num_videos = max(4, disk_chunks * 2)
    if max_request_chunks is None:
        max_request_chunks = max(2, min(disk_chunks, 6))
    hot = max(1, num_videos // 4)

    requests: List[Request] = []
    t = 0.0
    while len(requests) < num_requests:
        roll = rng.random()
        if roll < p_tie:
            pass  # same instant as the previous request
        elif roll < p_tie + p_jump:
            t += TIME_STEP * rng.randrange(256, 4096)  # long quiet gap
        else:
            t += TIME_STEP * rng.randrange(1, 64)

        burst = 1 + (rng.randrange(2, 6) if rng.random() < p_burst else 0)
        for _ in range(burst):
            if len(requests) >= num_requests:
                break
            video = (
                rng.randrange(hot)
                if rng.random() < 0.7
                else rng.randrange(num_videos)
            )
            if rng.random() < p_oversize:
                # more chunks than the whole disk: must be redirected
                n_chunks = disk_chunks + rng.randrange(1, 4)
                c0 = 0
            else:
                n_chunks = rng.randrange(1, max_request_chunks + 1)
                c0 = rng.randrange(0, 10)
            b0 = c0 * chunk_bytes
            b1 = (c0 + n_chunks) * chunk_bytes - 1
            if rng.random() < 0.5:
                # unaligned range: nibble bytes off either end; the
                # offsets stay inside the first/last chunk, so the
                # chunk range is unchanged (except possibly collapsing
                # a 1-chunk request to a shorter byte span)
                b0 += rng.randrange(0, chunk_bytes)
                b1 -= rng.randrange(0, chunk_bytes)
                if b1 < b0:
                    b1 = b0
            requests.append(Request(t=t, video=video, b0=b0, b1=b1))
    return requests


def scenario_matrix(
    seeds: int = 20, num_requests: int = 600
) -> Iterator[FuzzScenario]:
    """The default differential-verification matrix: ``seeds`` scenarios
    cycling through degenerate disks, odd chunk sizes and alpha
    extremes, with housekeeping intervals shrunk on half of them so
    tracker cleanup (xLRU) and frequency aging (LFU) run inside short
    traces."""
    disks = (1, 2, 7, 32)
    chunk_sizes = (1024, 1000, 4096)
    alphas = (0.5, 1.0, 2.0, 4.0)
    for i in range(seeds):
        stress_housekeeping = i % 2 == 1
        kwargs: Dict[str, Dict] = {}
        if stress_housekeeping:
            kwargs = {
                "xLRU": {"tracker_cleanup_interval": 97},
                "LFU": {"aging_interval": 89},
                # policy kernels: tiny aging cadence for the LFU port,
                # fast-decaying retention boost, off-default insertion
                # position for tunable LRU
                "LFU-PK": {"aging_interval": 89},
                "Retention": {"boost": 7.0, "halflife": 2.0},
                "qLRU": {"q": 0.25},
            }
        yield FuzzScenario(
            seed=1000 + i,
            num_requests=num_requests,
            disk_chunks=disks[i % len(disks)],
            chunk_bytes=chunk_sizes[i % len(chunk_sizes)],
            alpha_f2r=alphas[i % len(alphas)],
            cache_kwargs=kwargs,
        )
