"""Figure 3: month-long time series on the European server.

"Ingress, redirection, and overall cache efficiency over the 1-month
period" for xLRU, Cafe and Psychic — European server, (scaled) 1 TB
disk, ``alpha_F2R = 2``, 2 MB chunks, ``gamma = 0.25``.

Reproduction targets:

* a diurnal pattern in ingress and redirection, peaks at busy hours;
* comparable redirection across the three caches, Cafe slightly higher;
* a significant drop in ingress from xLRU to Cafe/Psychic;
* steady-state efficiency gains over xLRU of roughly +10% (Cafe) and
  +13% (Psychic) — the paper's 10.1% and 12.7%.
"""

from __future__ import annotations

from typing import Dict, List, Sequence

from repro.experiments.common import (
    DISK_SCALED_1TB,
    ExperimentResult,
    ExperimentScale,
    scaled_disk_chunks,
    server_trace,
)
from repro.sim.engine import SimulationResult
from repro.sim.runner import PAPER_ALGORITHMS, RunConfig, run_matrix

__all__ = ["run", "SERVER"]

SERVER = "europe"
ALPHA = 2.0


def run(
    scale: ExperimentScale,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    interval: float = 3600.0,
) -> ExperimentResult:
    """Regenerate Figure 3: hourly series + steady summary per cache."""
    trace = server_trace(SERVER, scale)
    disk = scaled_disk_chunks(SERVER, scale, DISK_SCALED_1TB)

    # One scheduler plan: the online caches (xLRU, Cafe) share a single
    # pass of the trace; Psychic runs as an independent offline task.
    configs = [RunConfig(algo, disk, ALPHA, label=algo) for algo in algorithms]
    results: Dict[str, SimulationResult] = run_matrix(
        configs, trace, interval=interval
    )

    series_rows: List[dict] = []
    for algo, result in results.items():
        for sample in result.metrics.series():
            series_rows.append(
                {
                    "algorithm": algo,
                    "t_hours": sample.t_start / 3600.0,
                    "redirect_ratio": sample.summary.redirect_ratio,
                    "ingress_fraction": sample.summary.ingress_fraction,
                    "efficiency": sample.summary.efficiency,
                }
            )

    steady_rows = []
    xlru_eff = results[algorithms[0]].steady.efficiency if algorithms else None
    for algo, result in results.items():
        s = result.steady
        steady_rows.append(
            {
                "algorithm": algo,
                "efficiency": s.efficiency,
                "redirect_ratio": s.redirect_ratio,
                "ingress_fraction": s.ingress_fraction,
                "gain_over_xLRU": (
                    s.efficiency - xlru_eff if xlru_eff is not None else None
                ),
            }
        )

    return ExperimentResult(
        name="Figure 3",
        description=(
            f"time series on {SERVER}, alpha={ALPHA}, disk={disk} chunks "
            f"(scaled 1 TB), hourly buckets"
        ),
        rows=steady_rows,
        extras={"series": series_rows, "disk_chunks": disk},
    )
