"""CDN-wide experiment: Cafe as the building block of a hierarchy (§10).

"Cafe Cache with defined behavior through alpha_F2R can as well be used
as the underlying building block to adjust traffic between any group of
constrained/non-constrained servers."  This experiment runs the
two-level topology of Section 2 — three regional edge servers
(ingress-constrained, alpha = 2, fills crossing the backbone), one
larger parent cache (cheap ingress, alpha = 0.75), an origin — and
swaps the *edge* algorithm while holding everything else fixed.

Reported per edge algorithm:

* origin egress (traffic the CDN's "lines of defense" failed to
  absorb — fills that walked through every tier plus redirected-to-
  origin requests);
* total edge ingress (the backbone traffic the constrained tier pulls);
* mean edge efficiency and the parent's load.

Expectation from the paper's single-server results: Cafe edges pull far
less backbone traffic than xLRU edges at equal-or-better efficiency,
and pull-through LRU edges are the worst of all worlds.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, Optional, Sequence

from repro.cdn.multiserver import CdnSimulator
from repro.cdn.topology import hierarchy
from repro.experiments.common import (
    DISK_SCALED_1TB,
    ExperimentResult,
    ExperimentScale,
)
from repro.sim.runner import build_cache
from repro.sim.schedule import resolve_workers
from repro.trace.columnar import PackedTrace
from repro.trace.fleet import FleetTrace
from repro.workload.generator import TraceGenerator
from repro.workload.global_catalog import GlobalCatalog
from repro.workload.servers import SERVER_PROFILES

__all__ = ["run", "EDGE_SERVERS", "EDGE_ALPHA", "PARENT_ALPHA"]

EDGE_SERVERS = ("europe", "africa", "asia")
EDGE_ALPHA = 2.0
PARENT_ALPHA = 0.75
PARENT_DISK_FACTOR = 4
#: corpus size relative to the largest edge view — controls how much
#: content the regional views share (the parent's opportunity)
CORPUS_FACTOR = 1.5

_TRACES: Dict[str, Dict[str, PackedTrace]] = {}
_FLEETS: Dict[str, FleetTrace] = {}


def _edge_traces(scale: ExperimentScale) -> Dict[str, PackedTrace]:
    """Per-edge packed shards drawn from one shared global corpus (memoized).

    Unlike the single-server figures, the hierarchy needs content
    identity to be globally consistent: video 5 must be the same video
    (same size) at every edge, so the parent's cache sees true overlap.
    Shards are generated straight into columns (no ``Request`` lists),
    which is what lets the large scales fit in memory.
    """
    if scale.name not in _TRACES:
        profiles = {
            name: SERVER_PROFILES[name].scaled(scale.profile_scale)
            for name in EDGE_SERVERS
        }
        corpus = GlobalCatalog.generate(
            int(CORPUS_FACTOR * max(p.num_videos for p in profiles.values())),
            seed=77,
        )
        duration = scale.days * 86400.0
        shards = {}
        for name, profile in profiles.items():
            view = corpus.server_view(profile, duration)
            shards[name] = TraceGenerator(profile, catalog=view).generate_packed(
                days=scale.days
            )
        _TRACES[scale.name] = shards
    return _TRACES[scale.name]


def _fleet(scale: ExperimentScale) -> FleetTrace:
    """Memoized :class:`FleetTrace` over the packed shards.

    The global time-merge plan is computed once per scale and shared by
    every algorithm arm (and by :mod:`repro.experiments.availability`),
    instead of re-merging per replay like the object lane did.
    """
    if scale.name not in _FLEETS:
        _FLEETS[scale.name] = FleetTrace(_edge_traces(scale))
    return _FLEETS[scale.name]


def _hierarchy_topology(
    algo: str,
    edge_disks: Dict[str, int],
    parent_disk: int,
    parent_algorithm: str,
):
    edges = {
        name: build_cache(algo, edge_disks[name], alpha_f2r=EDGE_ALPHA)
        for name in EDGE_SERVERS
    }
    parent = build_cache(parent_algorithm, parent_disk, alpha_f2r=PARENT_ALPHA)
    return hierarchy(edges, parent)


def _arm_row(algo: str, result, user_bytes: int) -> dict:
    edge_summaries = [result.summary(name) for name in EDGE_SERVERS]
    parent_summary = result.summary("parent")
    return {
        "edge_algo": algo,
        "origin_gb": result.origin_bytes / 1e9,
        "edge_ingress_gb": sum(s.ingress_bytes for s in edge_summaries) / 1e9,
        "edge_eff_mean": sum(s.efficiency for s in edge_summaries)
        / len(edge_summaries),
        "parent_requests": parent_summary.num_requests,
        "origin_share_of_user_bytes": result.origin_bytes / user_bytes,
    }


def _run_arm(payload) -> dict:
    """Worker entry: attach the shared fleet, replay one edge algorithm."""
    algo, handle, edge_disks, parent_disk, parent_algorithm, user_bytes = payload
    fleet = handle.attach()
    try:
        topology = _hierarchy_topology(
            algo, edge_disks, parent_disk, parent_algorithm
        )
        return _arm_row(algo, CdnSimulator(topology).run(fleet), user_bytes)
    finally:
        fleet.close()


def run(
    scale: ExperimentScale,
    edge_algorithms: Sequence[str] = ("PullLRU", "xLRU", "Cafe"),
    parent_algorithm: str = "Cafe",
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Run the hierarchy with each edge algorithm; report CDN-wide traffic.

    ``workers`` (or ``REPRO_WORKERS``) > 1 fans the algorithm arms out
    over a process pool; the packed fleet is exported to shared memory
    once and every worker attaches zero-copy.  Rows are identical to
    the serial path — arms are independent replays.
    """
    traces = _edge_traces(scale)
    edge_disks = {
        name: max(16, int(shard.unique_chunk_count() * DISK_SCALED_1TB))
        for name, shard in traces.items()
    }
    parent_disk = PARENT_DISK_FACTOR * max(edge_disks.values())
    user_bytes = sum(
        shard.total_requested_bytes() for shard in traces.values()
    )
    fleet = _fleet(scale)

    n_workers = min(resolve_workers(workers), len(edge_algorithms))
    if n_workers > 1:
        handle = fleet.to_shared()
        payloads = [
            (algo, handle, edge_disks, parent_disk, parent_algorithm, user_bytes)
            for algo in edge_algorithms
        ]
        try:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                rows = list(pool.map(_run_arm, payloads))
        finally:
            handle.unlink()
    else:
        rows = [
            _arm_row(
                algo,
                CdnSimulator(
                    _hierarchy_topology(
                        algo, edge_disks, parent_disk, parent_algorithm
                    )
                ).run(fleet),
                user_bytes,
            )
            for algo in edge_algorithms
        ]
    return ExperimentResult(
        name="CDN-wide",
        description=(
            f"two-level hierarchy ({'+'.join(EDGE_SERVERS)} -> {parent_algorithm} "
            f"parent -> origin), edge alpha={EDGE_ALPHA}, parent alpha={PARENT_ALPHA}"
        ),
        rows=rows,
        extras={
            "edge_disks": edge_disks,
            "parent_disk": parent_disk,
            "user_gb": user_bytes / 1e9,
        },
    )
