"""LP-relaxation tightness study (a §10 future-work item).

"An exact optimal solution is also within a gap of this theoretical
bound as it is obtained through LP relaxation, a nonzero gap as we have
observed, though theoretical analysis of the tightness of this gap is
left for a future study."

This experiment does the empirical half of that study: on a grid of
small instances (drawn from down-sampled real-shaped traces at varied
disk pressures and alphas), solve both the exact IP and its LP
relaxation and report the integrality gap — ``LP_efficiency −
IP_efficiency`` (the LP bound is an upper bound on efficiency, so the
gap is non-negative up to solver tolerance).  Alongside, the Psychic
heuristic's distance from the *exact* optimum separates "greedy
heuristic loss" from "relaxation looseness" in Figure 2's delta.
"""

from __future__ import annotations

from typing import List, Sequence

from repro.core.costs import CostModel
from repro.core.optimal import solve_optimal
from repro.core.psychic import PsychicCache
from repro.experiments.common import ExperimentResult, ExperimentScale
from repro.experiments.fig2 import downsampled_server_trace
from repro.sim.engine import replay
from repro.trace.sampling import disk_chunks_for_fraction

__all__ = ["run"]

#: instance grid kept tiny: exact MILPs grow fast
DEFAULT_NUM_FILES = 12
DEFAULT_MAX_FILE_BYTES = 6 * 1024 * 1024


def run(
    scale: ExperimentScale,
    servers: Sequence[str] = ("europe", "asia", "africa"),
    alphas: Sequence[float] = (1.0, 2.0),
    disk_fractions: Sequence[float] = (0.05, 0.15),
    num_files: int = DEFAULT_NUM_FILES,
    max_file_bytes: int = DEFAULT_MAX_FILE_BYTES,
    max_requests: int = 160,
) -> ExperimentResult:
    """Solve exact IP vs LP relaxation over the instance grid."""
    rows: List[dict] = []
    for server in servers:
        sample = downsampled_server_trace(
            server, scale, num_files=num_files, max_file_bytes=max_file_bytes
        )[:max_requests]
        if not sample:
            continue
        for fraction in disk_fractions:
            disk = disk_chunks_for_fraction(sample, fraction)
            for alpha in alphas:
                cost_model = CostModel(alpha)
                exact = solve_optimal(
                    sample, disk, cost_model=cost_model, relaxed=False
                )
                relaxed = solve_optimal(
                    sample, disk, cost_model=cost_model, relaxed=True
                )
                psychic = PsychicCache(disk, cost_model=cost_model)
                psychic_eff = replay(psychic, sample).totals.efficiency_chunks
                rows.append(
                    {
                        "server": server,
                        "alpha": alpha,
                        "disk_fraction": fraction,
                        "requests": len(sample),
                        "ip_eff": exact.efficiency,
                        "lp_eff": relaxed.efficiency,
                        "integrality_gap": relaxed.efficiency - exact.efficiency,
                        "psychic_vs_ip": exact.efficiency - psychic_eff,
                    }
                )
    gaps = [r["integrality_gap"] for r in rows]
    return ExperimentResult(
        name="LP tightness",
        description=(
            "integrality gap of the Section 7 relaxation on small "
            "instances (exact MILP vs LP bound), plus Psychic's "
            "distance from the exact optimum"
        ),
        rows=rows,
        extras={
            "gap_mean": sum(gaps) / len(gaps) if gaps else float("nan"),
            "gap_max": max(gaps) if gaps else float("nan"),
        },
    )
