"""Proactive-caching experiment (the §10 "spare ingress" direction).

"For cheap/non-constrained ingress ... we still observe a gap between
the efficiency of our caches and the estimated maximum ... we are
investigating how to take best advantage of under-utilized ingress
whenever possible, such as proactive caching during early morning
hours."

This experiment wraps Cafe in :class:`~repro.cdn.ProactiveFiller` on a
cheap-ingress server (alpha = 0.5) and measures whether off-peak
prefetching of trending content closes part of the gap to Psychic —
reporting demand efficiency (prefetch ingress charged, per Eq. 2),
prefetch volume and the share of prefetched chunks that later served
demand.
"""

from __future__ import annotations

from typing import Sequence

from repro.cdn.proactive import ProactiveFiller
from repro.core.cafe import CafeCache
from repro.core.costs import CostModel
from repro.core.psychic import PsychicCache
from repro.experiments.common import (
    DISK_SCALED_1TB,
    ExperimentResult,
    ExperimentScale,
    scaled_disk_chunks,
    server_trace,
)
from repro.sim.engine import replay
from repro.sim.metrics import MetricsCollector

__all__ = ["run", "SERVER", "ALPHA"]

SERVER = "europe"
ALPHA = 0.5  # the cheap-ingress regime the paper targets


def run(
    scale: ExperimentScale,
    budget_chunks_per_window: Sequence[int] = (0, 64, 256),
) -> ExperimentResult:
    """Sweep the prefetch budget on a cheap-ingress Cafe server."""
    trace = server_trace(SERVER, scale)
    disk = scaled_disk_chunks(SERVER, scale, DISK_SCALED_1TB)
    cost_model = CostModel(ALPHA)

    psychic_eff = replay(
        PsychicCache(disk, cost_model=cost_model), trace
    ).steady.efficiency

    rows = []
    for budget in budget_chunks_per_window:
        cache = CafeCache(disk, cost_model=cost_model)
        if budget == 0:
            result = replay(cache, trace)
            steady = result.steady
            prefetched = 0
            windows = 0
        else:
            filler = ProactiveFiller(
                cache,
                budget_chunks_per_window=budget,
                top_videos=64,
            )
            metrics = MetricsCollector(cost_model, chunk_bytes=cache.chunk_bytes)
            for request in trace:
                metrics.record(request, filler.handle(request))
            steady = metrics.steady_state()
            prefetched = filler.stats.filled_chunks
            windows = filler.stats.windows
        rows.append(
            {
                "prefetch_budget": budget,
                "efficiency": steady.efficiency,
                "ingress_fraction": steady.ingress_fraction,
                "redirect_ratio": steady.redirect_ratio,
                "prefetched_chunks": prefetched,
                "offpeak_windows": windows,
                "gap_to_psychic": psychic_eff - steady.efficiency,
            }
        )
    return ExperimentResult(
        name="Proactive",
        description=(
            f"off-peak prefetching on {SERVER} at cheap ingress "
            f"(alpha={ALPHA}); Psychic reference eff={psychic_eff:.3f}"
        ),
        rows=rows,
        extras={"disk_chunks": disk, "psychic_eff": psychic_eff},
    )
