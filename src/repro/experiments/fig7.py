"""Figure 7: efficiency across the six worldwide servers.

"Cache efficiency of the different algorithms, on a 1 TB disk with
alpha_F2R = 2 ... The same trend between the algorithms is observed
across all servers."  All servers get the *same* disk size — the
spread of efficiencies reflects each server's request volume and
diversity against that common disk.

Reproduction targets:

* Psychic ≥ Cafe > xLRU on every server;
* more concentrated servers (Asia) reach higher efficiency than busier,
  more diverse ones (South America);
* the xLRU gap widens on the busier servers.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    DISK_SCALED_1TB,
    ExperimentResult,
    ExperimentScale,
    scaled_disk_chunks,
    server_trace,
)
from repro.sim.runner import PAPER_ALGORITHMS, RunConfig, run_matrix
from repro.workload.servers import SERVER_PROFILES

__all__ = ["run", "ALPHA", "REFERENCE_SERVER"]

ALPHA = 2.0
#: the common disk is sized off this server's footprint ("1 TB for all")
REFERENCE_SERVER = "europe"


def run(
    scale: ExperimentScale,
    servers: Sequence[str] = tuple(SERVER_PROFILES),
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
) -> ExperimentResult:
    """Regenerate Figure 7: per-server efficiencies on a common disk."""
    disk = scaled_disk_chunks(REFERENCE_SERVER, scale, DISK_SCALED_1TB)
    rows = []
    for server in servers:
        trace = server_trace(server, scale)
        configs = [
            RunConfig(algo, disk, ALPHA, label=algo) for algo in algorithms
        ]
        results = run_matrix(configs, trace)
        row = {"server": server}
        for algo in algorithms:
            row[algo] = results[algo].steady.efficiency
        row["requests"] = len(trace)
        rows.append(row)
    return ExperimentResult(
        name="Figure 7",
        description=f"six servers, common disk={disk} chunks, alpha={ALPHA}",
        rows=rows,
        extras={"disk_chunks": disk},
    )
