"""Robustness experiment: a flash crowd hits the European server.

The paper's motivation leans on "transient demand patterns" (§1); this
experiment quantifies how each algorithm absorbs the sharpest kind — a
video going viral mid-trace — under an ingress constraint (alpha = 2):

* **during** the event window: how much of the flash demand each cache
  serves locally (a cache that cannot admit fast hemorrhages redirects),
  and what ingress spike it pays;
* **after** the event: whether steady-state efficiency recovers to the
  no-event baseline (lasting cache pollution shows up here).
"""

from __future__ import annotations

from typing import Sequence

import numpy as np

from repro.core.costs import CostModel
from repro.experiments.common import (
    DISK_SCALED_1TB,
    ExperimentResult,
    ExperimentScale,
    scaled_disk_chunks,
    server_trace,
)
from repro.sim.engine import replay
from repro.sim.metrics import MetricsCollector
from repro.sim.runner import PAPER_ALGORITHMS, build_cache
from repro.workload.catalog import Video
from repro.workload.events import inject_flash_crowd

__all__ = ["run", "SERVER", "ALPHA"]

SERVER = "europe"
ALPHA = 2.0
FLASH_VIDEO_ID = 10_000_000
FLASH_SEED = 20_140_413  # EuroSys'14 opening day


def run(
    scale: ExperimentScale,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    event_duration: float = 12 * 3600.0,
    peak_sessions_per_hour: float | None = None,
    video_bytes: int = 40 << 20,
) -> ExperimentResult:
    """Inject a flash crowd and measure absorb/recover per algorithm."""
    base_trace = server_trace(SERVER, scale)
    disk = scaled_disk_chunks(SERVER, scale, DISK_SCALED_1TB)

    span = base_trace[-1].t - base_trace[0].t
    t_start = base_trace[0].t + span * 0.6  # inside the steady half
    if peak_sessions_per_hour is None:
        # roughly double the server's organic arrival rate at peak
        peak_sessions_per_hour = max(50.0, 2.0 * len(base_trace) / (span / 3600.0))

    flash_video = Video(
        video_id=FLASH_VIDEO_ID, size_bytes=video_bytes, rank=0, birth=-1.0
    )
    flash_trace = inject_flash_crowd(
        base_trace,
        flash_video,
        t_start,
        event_duration,
        peak_sessions_per_hour,
        np.random.default_rng(FLASH_SEED),
    )
    window = (t_start, t_start + event_duration)

    rows = []
    for algo in algorithms:
        baseline = replay(
            build_cache(algo, disk, alpha_f2r=ALPHA), base_trace
        ).steady.efficiency

        cache = build_cache(algo, disk, alpha_f2r=ALPHA)
        metrics = MetricsCollector(CostModel(ALPHA), chunk_bytes=cache.chunk_bytes)
        flash_metrics = _FlashCounters()
        if cache.offline:
            cache.prepare(flash_trace)
        for request in flash_trace:
            response = cache.handle(request)
            metrics.record(request, response)
            if request.video == FLASH_VIDEO_ID:
                flash_metrics.record(request, response, cache.chunk_bytes)
        during = metrics.window(*window)
        after = metrics.window(window[1])

        rows.append(
            {
                "algorithm": algo,
                "baseline_eff": baseline,
                "during_eff": during.efficiency,
                "after_eff": after.efficiency,
                "recovery_delta": after.efficiency - baseline,
                "flash_local_serve_ratio": flash_metrics.local_serve_ratio,
                "flash_requests": flash_metrics.requests,
            }
        )
    return ExperimentResult(
        name="Robustness",
        description=(
            f"flash crowd on {SERVER} (alpha={ALPHA}, "
            f"{event_duration / 3600.0:g} h event at t+60%): absorb and recover"
        ),
        rows=rows,
        extras={"disk_chunks": disk, "peak_sessions_per_hour": peak_sessions_per_hour},
    )


class _FlashCounters:
    """Serve/redirect accounting restricted to the flash video."""

    def __init__(self) -> None:
        self.requests = 0
        self.served_bytes = 0
        self.requested_bytes = 0

    def record(self, request, response, chunk_bytes: int) -> None:
        self.requests += 1
        self.requested_bytes += request.num_bytes
        if response.served:
            self.served_bytes += request.num_bytes

    @property
    def local_serve_ratio(self) -> float:
        if self.requested_bytes == 0:
            return float("nan")
        return self.served_bytes / self.requested_bytes
