"""Availability experiment: the CDN hierarchy under injected faults.

The paper argues cache servers are "strong lines of defense" against
origin and backbone traffic; this extension measures how gracefully
those lines degrade when servers actually fail.  The CDN-wide workload
of :mod:`repro.experiments.cdnwide` (three regional edges, one parent,
an origin) is replayed twice per edge algorithm — once fault-free, once
under a fixed, seeded fault schedule:

* an **outage** takes the busiest edge (europe) down mid-trace — its
  users fail over to the parent;
* a **cold restart** wipes the africa edge — measuring the re-fill
  bytes and the time it takes the cache to re-warm to its pre-wipe
  occupancy;
* a **degraded link** triples the parent's fill cost for a window;
* an **origin brownout** sheds half the requests that reach the origin
  during a window — the end-to-end failures the defense lines exist to
  prevent.

Reported per edge algorithm: whole-trace efficiency with and without
faults, the efficiency of the failover target *inside* the outage
window, requests lost, re-warm time and re-fill volume.  The schedule
is deterministic (fixed event times as fractions of the trace span,
fixed drop seed), so the experiment is exactly reproducible — and the
no-fault arm is byte-identical to :mod:`repro.experiments.cdnwide`'s
replay of the same topology.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from typing import Dict, List, Optional, Sequence

from repro.cdn.faults import FaultEvent, FaultSchedule
from repro.cdn.multiserver import CdnSimulator
from repro.cdn.topology import ORIGIN, hierarchy
from repro.experiments.cdnwide import (
    EDGE_ALPHA,
    EDGE_SERVERS,
    PARENT_ALPHA,
    PARENT_DISK_FACTOR,
    _edge_traces,
    _fleet,
)
from repro.experiments.common import (
    DISK_SCALED_1TB,
    ExperimentResult,
    ExperimentScale,
)
from repro.sim.runner import build_cache
from repro.sim.schedule import resolve_workers

__all__ = ["run", "fault_schedule", "OUTAGE_SERVER", "RESTART_SERVER"]

#: the edge the outage takes down (its users fail over to the parent)
OUTAGE_SERVER = "europe"
#: the edge the cold restart wipes
RESTART_SERVER = "africa"
#: drop seed of the origin brownout (fixed: the experiment is a benchmark)
FAULT_SEED = 2014

#: event windows as fractions of the trace span ``[start, end)``
OUTAGE_WINDOW = (0.45, 0.50)
RESTART_WINDOW = (0.55, 0.57)
DEGRADE_WINDOW = (0.65, 0.70)
BROWNOUT_WINDOW = (0.75, 0.78)
DEGRADE_FACTOR = 3.0
BROWNOUT_DROP = 0.5


def fault_schedule(span: float) -> FaultSchedule:
    """The experiment's fixed schedule, scaled to a trace span."""

    def window(bounds) -> Dict[str, float]:
        start, end = bounds
        return {"t": start * span, "duration": (end - start) * span}

    return FaultSchedule(
        [
            FaultEvent("outage", OUTAGE_SERVER, **window(OUTAGE_WINDOW)),
            FaultEvent("restart", RESTART_SERVER, **window(RESTART_WINDOW)),
            FaultEvent(
                "degrade", "parent", factor=DEGRADE_FACTOR,
                **window(DEGRADE_WINDOW),
            ),
            FaultEvent(
                "brownout", ORIGIN, drop_fraction=BROWNOUT_DROP,
                **window(BROWNOUT_WINDOW),
            ),
        ],
        seed=FAULT_SEED,
    )


def _build_topology(
    algo: str, edge_disks: Dict[str, int], parent_disk: int,
    parent_algorithm: str,
):
    edges = {
        name: build_cache(algo, edge_disks[name], alpha_f2r=EDGE_ALPHA)
        for name in EDGE_SERVERS
    }
    parent = build_cache(parent_algorithm, parent_disk, alpha_f2r=PARENT_ALPHA)
    return hierarchy(edges, parent)


def _fault_row(algo, clean, faulted, outage_t0, outage_t1) -> dict:
    def edge_eff(result) -> float:
        summaries = [result.summary(name) for name in EDGE_SERVERS]
        return sum(s.efficiency for s in summaries) / len(summaries)

    # The failover target's efficiency inside the outage window: how
    # well the backup line of defense holds while europe is dark.
    parent_outage = faulted.per_server["parent"].window(outage_t0, outage_t1)
    parent_clean_outage = clean.per_server["parent"].window(
        outage_t0, outage_t1
    )
    restart_stats = faulted.availability[RESTART_SERVER]
    rewarm = restart_stats.rewarm_seconds
    return {
        "edge_algo": algo,
        "eff_clean": edge_eff(clean),
        "eff_faulted": edge_eff(faulted),
        "eff_drop": edge_eff(clean) - edge_eff(faulted),
        "parent_eff_in_outage": parent_outage.efficiency,
        "parent_eff_in_outage_clean": parent_clean_outage.efficiency,
        "requests_lost": faulted.requests_lost,
        "availability": faulted.availability_ratio,
        "failover_hops": sum(
            s.failover_hops for s in faulted.availability.values()
        ),
        "rewarm_seconds": rewarm[0] if rewarm else float("nan"),
        "refill_gb": restart_stats.refill_bytes / 1e9,
        "origin_gb_clean": clean.origin_bytes / 1e9,
        "origin_gb_faulted": faulted.origin_bytes / 1e9,
    }


def _run_fault_arm(payload) -> dict:
    """Worker entry: attach the shared fleet, replay both arms of one algo."""
    (
        algo, handle, edge_disks, parent_disk, parent_algorithm,
        schedule, outage_t0, outage_t1,
    ) = payload
    fleet = handle.attach()
    try:
        clean = CdnSimulator(
            _build_topology(algo, edge_disks, parent_disk, parent_algorithm)
        ).run(fleet)
        faulted = CdnSimulator(
            _build_topology(algo, edge_disks, parent_disk, parent_algorithm),
            faults=schedule,
        ).run(fleet)
        return _fault_row(algo, clean, faulted, outage_t0, outage_t1)
    finally:
        fleet.close()


def run(
    scale: ExperimentScale,
    edge_algorithms: Sequence[str] = ("PullLRU", "xLRU", "Cafe"),
    parent_algorithm: str = "Cafe",
    workers: Optional[int] = None,
) -> ExperimentResult:
    """Replay the hierarchy with and without faults per edge algorithm.

    ``workers`` (or ``REPRO_WORKERS``) > 1 fans the algorithm arms out
    over a process pool against one shared-memory fleet export.
    """
    traces = _edge_traces(scale)
    edge_disks = {
        name: max(16, int(shard.unique_chunk_count() * DISK_SCALED_1TB))
        for name, shard in traces.items()
    }
    parent_disk = PARENT_DISK_FACTOR * max(edge_disks.values())
    span = max(
        float(shard.column("t")[-1]) for shard in traces.values() if len(shard)
    )
    schedule = fault_schedule(span)
    outage_t0, outage_t1 = (f * span for f in OUTAGE_WINDOW)
    fleet = _fleet(scale)

    rows: List[dict]
    n_workers = min(resolve_workers(workers), len(edge_algorithms))
    if n_workers > 1:
        handle = fleet.to_shared()
        payloads = [
            (
                algo, handle, edge_disks, parent_disk, parent_algorithm,
                schedule, outage_t0, outage_t1,
            )
            for algo in edge_algorithms
        ]
        try:
            with ProcessPoolExecutor(max_workers=n_workers) as pool:
                rows = list(pool.map(_run_fault_arm, payloads))
        finally:
            handle.unlink()
    else:
        rows = []
        for algo in edge_algorithms:
            clean = CdnSimulator(
                _build_topology(algo, edge_disks, parent_disk, parent_algorithm)
            ).run(fleet)
            faulted = CdnSimulator(
                _build_topology(
                    algo, edge_disks, parent_disk, parent_algorithm
                ),
                faults=schedule,
            ).run(fleet)
            rows.append(
                _fault_row(algo, clean, faulted, outage_t0, outage_t1)
            )
    return ExperimentResult(
        name="Availability",
        description=(
            f"hierarchy under faults: outage[{OUTAGE_SERVER}] "
            f"{OUTAGE_WINDOW[0]:.0%}-{OUTAGE_WINDOW[1]:.0%}, "
            f"cold restart[{RESTART_SERVER}], degraded parent link "
            f"x{DEGRADE_FACTOR:g}, origin brownout drop="
            f"{BROWNOUT_DROP:g}; parent={parent_algorithm}"
        ),
        rows=rows,
        extras={
            "schedule": schedule.describe(),
            "trace_span_seconds": span,
            "edge_disks": edge_disks,
            "parent_disk": parent_disk,
        },
    )
