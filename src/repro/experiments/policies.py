"""Policy-kernel family vs the paper's caches, figure-5 style.

The pluggable policies (DESIGN.md §15) replayed over the same
operating-point sweep as Figure 5: one (ingress, redirect) point per
policy per ``alpha_F2R``, against xLRU and Cafe as the paper anchors
and PullLRU as the no-defense baseline.

What to look for:

* **Retention** (arXiv:1512.03274) — by future-dating early-segment
  scores it keeps the chunks the session generator's abandonment skew
  actually re-reaches, so its efficiency beats the position-blind
  PullLRU/LFU family at equal disk, while its fixed hit-count
  admission keeps ingress below PullLRU's;
* **qLRU** (arXiv:1806.10853) — the ``q`` insertion position trades
  scan resistance against recency reactivity; at ``q = 1`` the row
  reproduces PullLRU exactly (differentially enforced), the default
  ``q = 0.5`` lands between PullLRU and the admission-gated policies;
* neither new policy consults the cost model, so — like PullLRU —
  their points barely move with alpha, which is exactly the paper's
  argument for cost-aware admission (xLRU/Cafe comply with alpha and
  walk left as ingress gets costlier).
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    ExperimentResult,
    ExperimentScale,
    alpha_sweep_cached,
)

__all__ = ["run", "SERVER", "DEFAULT_ALPHAS", "ALGORITHMS"]

SERVER = "europe"
#: left-to-right order of the paper's Figure 5 data points
DEFAULT_ALPHAS: Sequence[float] = (4.0, 2.0, 1.0, 0.5)
#: paper anchors, the no-defense baseline, then the policy-kernel family
ALGORITHMS: Sequence[str] = (
    "xLRU",
    "Cafe",
    "PullLRU",
    "LFU-PK",
    "Retention",
    "qLRU",
)


def run(
    scale: ExperimentScale,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
) -> ExperimentResult:
    """Operating points for the policy-kernel family vs xLRU/Cafe."""
    sweep = alpha_sweep_cached(
        SERVER,
        scale,
        alphas=tuple(sorted(set(alphas))),
        algorithms=ALGORITHMS,
    )
    rows = []
    for alpha in alphas:
        for algo in ALGORITHMS:
            s = sweep[alpha][algo].steady
            rows.append(
                {
                    "alpha": alpha,
                    "algorithm": algo,
                    "ingress_fraction": s.ingress_fraction,
                    "redirect_ratio": s.redirect_ratio,
                    "efficiency": s.efficiency,
                }
            )
    return ExperimentResult(
        name="Policy family",
        description=(
            f"policy-kernel operating points (ingress vs redirect) on {SERVER}"
        ),
        rows=rows,
    )
