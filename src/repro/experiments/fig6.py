"""Figure 6: efficiency vs disk capacity on the European server.

"Efficiency of the algorithms given different disk capacities"
(alpha_F2R = 2).

Reproduction targets:

* every cache improves with disk, but xLRU's *inefficiency* grows
  fastest as disk shrinks while "Cafe maintains its small distance
  with the offline algorithm";
* derived (paper text): at alpha = 2, xLRU needs 2–3x the disk of Cafe
  for equal efficiency; at alpha = 1 only up to ~33% more.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.headline import equivalent_disk_factor
from repro.experiments.common import (
    ExperimentResult,
    ExperimentScale,
    scaled_disk_chunks,
    server_trace,
)
from repro.sim.runner import sweep_disk

__all__ = ["run", "SERVER", "DEFAULT_FRACTIONS"]

SERVER = "europe"
#: fractions of the trace footprint; 0.18 is the scaled "1 TB"
DEFAULT_FRACTIONS: Sequence[float] = (0.045, 0.09, 0.18, 0.36, 0.72)


def run(
    scale: ExperimentScale,
    fractions: Sequence[float] = DEFAULT_FRACTIONS,
    alpha: float = 2.0,
    with_alpha1: bool = True,
) -> ExperimentResult:
    """Regenerate Figure 6: efficiency vs disk size + equivalent-disk factors."""
    trace = server_trace(SERVER, scale)
    disks = sorted({scaled_disk_chunks(SERVER, scale, f) for f in fractions})

    sweep = sweep_disk(trace, disks, alpha_f2r=alpha)
    rows = []
    for disk in disks:
        row = {"disk_chunks": disk}
        for algo, result in sweep[disk].items():
            row[algo] = result.steady.efficiency
        rows.append(row)

    extras: dict = {"alpha": alpha}
    cafe = {d: sweep[d]["Cafe"].steady.efficiency for d in disks}
    xlru = {d: sweep[d]["xLRU"].steady.efficiency for d in disks}
    extras["xlru_disk_factor_vs_cafe"] = equivalent_disk_factor(disks, cafe, xlru)

    if with_alpha1:
        sweep1 = sweep_disk(trace, disks, alpha_f2r=1.0, algorithms=("xLRU", "Cafe"))
        cafe1 = {d: sweep1[d]["Cafe"].steady.efficiency for d in disks}
        xlru1 = {d: sweep1[d]["xLRU"].steady.efficiency for d in disks}
        extras["xlru_disk_factor_vs_cafe_alpha1"] = equivalent_disk_factor(
            disks, cafe1, xlru1
        )

    return ExperimentResult(
        name="Figure 6",
        description=f"efficiency vs disk capacity on {SERVER}, alpha={alpha}",
        rows=rows,
        extras=extras,
    )
