"""Figure 5: operating points in the fill-vs-redirect tradeoff.

"Ingress to egress percentage ... on the horizontal axis, and the
redirection ratio on the vertical axis ... data points from left to
right correspond to alpha_F2R = 4, 2, 1 and 0.5."

Reproduction targets:

* costlier ingress (larger alpha) moves every cache toward less
  ingress / more redirects;
* xLRU's ingress has a floor — the paper measures ~15% even at
  alpha = 4 — while Cafe and Psychic "closely comply with the given
  costs and shrink the ingress to only a few percent";
* at cheap ingress (alpha = 0.5) xLRU and Psychic sit at high ingress.
"""

from __future__ import annotations

from typing import Sequence

from repro.experiments.common import (
    ExperimentResult,
    ExperimentScale,
    alpha_sweep_cached,
)

__all__ = ["run", "SERVER", "DEFAULT_ALPHAS"]

SERVER = "europe"
#: left-to-right order of the paper's data points
DEFAULT_ALPHAS: Sequence[float] = (4.0, 2.0, 1.0, 0.5)


def run(
    scale: ExperimentScale,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
) -> ExperimentResult:
    """Regenerate Figure 5: one (ingress, redirect) point per cache per alpha."""
    sweep = alpha_sweep_cached(SERVER, scale, alphas=tuple(sorted(set(alphas))))
    rows = []
    for alpha in alphas:
        for algo, result in sweep[alpha].items():
            s = result.steady
            rows.append(
                {
                    "alpha": alpha,
                    "algorithm": algo,
                    "ingress_fraction": s.ingress_fraction,
                    "redirect_ratio": s.redirect_ratio,
                    "efficiency": s.efficiency,
                }
            )
    return ExperimentResult(
        name="Figure 5",
        description=f"operating points (ingress vs redirect) on {SERVER}",
        rows=rows,
    )
