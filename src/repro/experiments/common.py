"""Shared experiment infrastructure: scales, trace memoization, sweeps.

Traces are deterministic given (server, scale), so they are memoized
in-process: a bench session that runs Figures 3–7 generates each
server's trace once.
"""

from __future__ import annotations

import os
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.analysis.tables import format_table
from repro.sim.engine import SimulationResult
from repro.sim.runner import sweep_alpha as _sweep_alpha
from repro.trace.requests import Request
from repro.workload.generator import TraceGenerator
from repro.workload.servers import SERVER_PROFILES

__all__ = [
    "ExperimentScale",
    "ExperimentResult",
    "QUICK",
    "FULL",
    "PAPER",
    "DISK_SCALED_1TB",
    "scale_from_env",
    "server_trace",
    "trace_footprint_chunks",
    "scaled_disk_chunks",
    "alpha_sweep_cached",
]

#: The disk fraction of the trace footprint that plays the role of the
#: paper's "1 TB" (calibrated so steady-state efficiencies land in the
#: reported range: xLRU ~0.6, Cafe ~0.75 at alpha=2 on Europe).
DISK_SCALED_1TB = 0.18


@dataclass(frozen=True, slots=True)
class ExperimentScale:
    """How big the synthetic reproduction runs."""

    name: str
    #: multiplier on per-server catalog size and session volume
    profile_scale: float
    #: trace length in days (the paper uses a one-month period)
    days: float

    def __post_init__(self) -> None:
        if self.profile_scale <= 0 or self.days <= 0:
            raise ValueError("profile_scale and days must be positive")


#: Fast scale for unit/integration tests.
QUICK = ExperimentScale("quick", profile_scale=0.04, days=6.0)
#: Default bench scale: month-long traces, quarter-size population.
FULL = ExperimentScale("full", profile_scale=0.25, days=30.0)
#: Full synthetic population (slowest; closest to the paper's volumes).
PAPER = ExperimentScale("paper", profile_scale=1.0, days=30.0)

_SCALES = {s.name: s for s in (QUICK, FULL, PAPER)}


def scale_from_env(default: ExperimentScale = FULL) -> ExperimentScale:
    """Resolve the scale from ``REPRO_SCALE`` (quick|full|paper)."""
    name = os.environ.get("REPRO_SCALE", "").strip().lower()
    if not name:
        return default
    try:
        return _SCALES[name]
    except KeyError:
        known = ", ".join(sorted(_SCALES))
        raise ValueError(f"REPRO_SCALE={name!r}; expected one of: {known}") from None


@dataclass
class ExperimentResult:
    """Rows + extras from one figure experiment."""

    name: str
    description: str
    rows: List[dict]
    columns: Optional[List[str]] = None
    extras: Dict[str, object] = field(default_factory=dict)

    def to_text(self) -> str:
        """Render rows and extras as an aligned text block."""
        parts = [format_table(self.rows, columns=self.columns, title=f"{self.name}: {self.description}")]
        for key, value in self.extras.items():
            parts.append(f"{key}: {value}")
        return "\n".join(parts)


# -- trace memoization --------------------------------------------------------

_TRACE_CACHE: Dict[Tuple[str, str], List[Request]] = {}
_FOOTPRINT_CACHE: Dict[Tuple[str, str], int] = {}


def server_trace(server: str, scale: ExperimentScale) -> List[Request]:
    """The (memoized) synthetic trace of one paper server at a scale."""
    key = (server, scale.name)
    if key not in _TRACE_CACHE:
        profile = SERVER_PROFILES[server].scaled(scale.profile_scale)
        _TRACE_CACHE[key] = TraceGenerator(profile).generate(days=scale.days)
    return _TRACE_CACHE[key]


def trace_footprint_chunks(server: str, scale: ExperimentScale) -> int:
    """Unique requested chunks of the server's trace (memoized)."""
    key = (server, scale.name)
    if key not in _FOOTPRINT_CACHE:
        unique = set()
        for r in server_trace(server, scale):
            unique.update(r.chunk_ids())
        _FOOTPRINT_CACHE[key] = len(unique)
    return _FOOTPRINT_CACHE[key]


def scaled_disk_chunks(
    server: str, scale: ExperimentScale, fraction: float = DISK_SCALED_1TB
) -> int:
    """Disk size in chunks: ``fraction`` of the trace footprint."""
    if fraction <= 0:
        raise ValueError("fraction must be positive")
    return max(16, int(trace_footprint_chunks(server, scale) * fraction))


# -- sweep memoization (figures 4 and 5 share one sweep) -----------------------

_SWEEP_CACHE: Dict[tuple, Mapping[float, Dict[str, SimulationResult]]] = {}


def alpha_sweep_cached(
    server: str,
    scale: ExperimentScale,
    alphas: Sequence[float] = (0.5, 1.0, 2.0, 4.0),
    disk_fraction: float = DISK_SCALED_1TB,
    workers: Optional[int] = None,
    algorithms: Optional[Sequence[str]] = None,
) -> Mapping[float, Dict[str, SimulationResult]]:
    """Run (or reuse) an algorithm/alpha sweep on a server.

    ``algorithms`` defaults to the paper trio (xLRU/Cafe/Psychic, the
    Figure 4/5 matrix); the policy-family experiment passes its own
    lineup.  ``workers`` is forwarded to the sweep scheduler (it also
    honours the ``REPRO_WORKERS`` environment variable); the cache key
    ignores it because the results are execution-strategy independent.
    """
    key = (
        server,
        scale.name,
        tuple(alphas),
        disk_fraction,
        None if algorithms is None else tuple(algorithms),
    )
    if key not in _SWEEP_CACHE:
        trace = server_trace(server, scale)
        disk = scaled_disk_chunks(server, scale, disk_fraction)
        kwargs = {} if algorithms is None else {"algorithms": tuple(algorithms)}
        _SWEEP_CACHE[key] = _sweep_alpha(
            trace, disk, alphas=alphas, workers=workers, **kwargs
        )
    return _SWEEP_CACHE[key]


def clear_caches() -> None:
    """Drop memoized traces and sweeps (tests use this for isolation)."""
    _TRACE_CACHE.clear()
    _FOOTPRINT_CACHE.clear()
    _SWEEP_CACHE.clear()
