"""Paper-figure experiments (Section 9).

One module per figure; each exposes ``run(scale) -> ExperimentResult``
whose rows/series mirror what the figure plots.  The benchmarks in
``benchmarks/`` call these, as does the ``repro-experiment`` CLI.

Scaling: the paper's month-long production traces and 1 TB disks are
reproduced at laptop scale (see DESIGN.md).  ``ExperimentScale``
controls trace volume; disks are sized as a fraction of the trace's
unique-chunk footprint, with ``DISK_SCALED_1TB`` (18%) playing the role
of "1 TB" — chosen so steady-state efficiencies land in the paper's
reported range.
"""

from repro.experiments.common import (
    DISK_SCALED_1TB,
    FULL,
    PAPER,
    QUICK,
    ExperimentResult,
    ExperimentScale,
    scale_from_env,
)
from repro.experiments import (
    availability,
    cdnwide,
    fig2,
    fig3,
    fig4,
    fig5,
    fig6,
    fig7,
    lp_tightness,
    policies,
    proactive,
    robustness,
)

ALL_FIGURES = {
    "fig2": fig2,
    "fig3": fig3,
    "fig4": fig4,
    "fig5": fig5,
    "fig6": fig6,
    "fig7": fig7,
    # not paper figures: the Section 10 extensions and stress tests
    "cdnwide": cdnwide,
    "proactive": proactive,
    "robustness": robustness,
    "lp_tightness": lp_tightness,
    "availability": availability,
    "policies": policies,
}

__all__ = [
    "ExperimentResult",
    "ExperimentScale",
    "QUICK",
    "FULL",
    "PAPER",
    "DISK_SCALED_1TB",
    "scale_from_env",
    "ALL_FIGURES",
    "fig2",
    "fig3",
    "fig4",
    "fig5",
    "fig6",
    "fig7",
    "cdnwide",
    "proactive",
    "robustness",
    "lp_tightness",
    "availability",
    "policies",
]
