"""Figure 2: Psychic Cache vs (LP-relaxed) Optimal Cache (Section 9.1).

Protocol, following the paper: per server, take a two-day window of the
trace, down-sample to the requests of ~100 representative files
(selected uniformly from the hit-count-sorted list), cap file sizes at
20 MB, and set the disk to hold 5% of all requested chunks.  Run
Psychic and the LP-relaxed Optimal on the result.

* Figure 2(a): efficiencies averaged over the six servers (per
  ``alpha_F2R`` configuration);
* Figure 2(b): average/min/max of (LP bound − Psychic) across servers.

Efficiencies here are chunk-normalized (the IP counts redirected
traffic in chunks, Eq. 10a), and totals are not warm-up-trimmed —
"Psychic and Optimal cache ... do not require any history, and their
first-hour outcome is as good as the rest".

The paper reports Psychic "on average within 5–6% of the LP-relaxed
bound"; that gap is the reproduction target.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from repro.core.costs import CostModel
from repro.core.optimal import solve_optimal
from repro.core.psychic import PsychicCache
from repro.experiments.common import ExperimentResult, ExperimentScale, server_trace
from repro.sim.engine import replay
from repro.trace.requests import Request
from repro.trace.sampling import disk_chunks_for_fraction, downsample_trace
from repro.workload.servers import SERVER_PROFILES

__all__ = ["run", "run_one_server", "DEFAULT_ALPHAS"]

DEFAULT_ALPHAS: Sequence[float] = (0.5, 1.0, 2.0, 4.0)
TWO_DAYS = 2 * 86400.0


def downsampled_server_trace(
    server: str,
    scale: ExperimentScale,
    num_files: int = 100,
    max_file_bytes: int = 20 * 1024 * 1024,
) -> List[Request]:
    """The Section 9.1 down-sampled two-day trace of one server."""
    trace = server_trace(server, scale)
    if not trace:
        return []
    t0 = trace[0].t
    return downsample_trace(
        trace,
        num_files=num_files,
        max_file_bytes=max_file_bytes,
        window=(t0, t0 + TWO_DAYS),
    )


def run_one_server(
    server: str,
    scale: ExperimentScale,
    alpha: float,
    num_files: int = 100,
    max_file_bytes: int = 20 * 1024 * 1024,
    disk_fraction: float = 0.05,
    exact: bool = False,
    time_limit: Optional[float] = None,
) -> dict:
    """Psychic vs Optimal on one server's down-sampled trace."""
    sample = downsampled_server_trace(server, scale, num_files, max_file_bytes)
    if not sample:
        raise ValueError(f"empty down-sampled trace for {server!r}")
    disk = disk_chunks_for_fraction(sample, disk_fraction)
    cost_model = CostModel(alpha)

    psychic = PsychicCache(disk, cost_model=cost_model)
    totals = replay(psychic, sample).totals

    bound = solve_optimal(
        sample,
        disk,
        cost_model=cost_model,
        relaxed=not exact,
        time_limit=time_limit,
    )
    return {
        "server": server,
        "alpha": alpha,
        "requests": len(sample),
        "disk_chunks": disk,
        "psychic_eff": totals.efficiency_chunks,
        "optimal_eff": bound.efficiency,
        "delta": bound.efficiency - totals.efficiency_chunks,
    }


def run(
    scale: ExperimentScale,
    servers: Sequence[str] = tuple(SERVER_PROFILES),
    alphas: Sequence[float] = DEFAULT_ALPHAS,
    num_files: int = 100,
    max_file_bytes: int = 20 * 1024 * 1024,
    exact: bool = False,
) -> ExperimentResult:
    """Figure 2(a)+(b): per-alpha averages and delta spread."""
    per_server_rows = []
    for alpha in alphas:
        for server in servers:
            per_server_rows.append(
                run_one_server(
                    server,
                    scale,
                    alpha,
                    num_files=num_files,
                    max_file_bytes=max_file_bytes,
                    exact=exact,
                )
            )

    rows = []
    for alpha in alphas:
        group = [r for r in per_server_rows if r["alpha"] == alpha]
        deltas = [r["delta"] for r in group]
        rows.append(
            {
                "alpha": alpha,
                "psychic_eff_avg": sum(r["psychic_eff"] for r in group) / len(group),
                "optimal_eff_avg": sum(r["optimal_eff"] for r in group) / len(group),
                "delta_avg": sum(deltas) / len(deltas),
                "delta_min": min(deltas),
                "delta_max": max(deltas),
            }
        )
    return ExperimentResult(
        name="Figure 2",
        description="Psychic vs LP-relaxed Optimal (down-sampled two-day traces)",
        rows=rows,
        extras={"per_server": per_server_rows},
    )
