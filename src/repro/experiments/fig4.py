"""Figure 4: efficiency vs ``alpha_F2R`` on the European server.

"Each group of 3 bars represents xLRU, Cafe and Psychic from left to
right" over ``alpha_F2R`` ∈ {0.5, 1, 2, 4}, 1 TB disk.

Reproduction targets (paper text):

* at ``alpha <= 1`` Cafe and xLRU are comparable (Cafe up to ~2%
  higher), with a visible gap to Psychic at ``alpha = 0.5`` (Psychic
  admits never-before-seen files; the online caches intentionally
  don't);
* at ``alpha = 2``: xLRU 62% / Cafe 73% / Psychic 75% in the paper —
  the check is the ordering and the Cafe≈Psychic ≫ xLRU gap shape;
* derived: Cafe cuts xLRU's inefficiency by a relative ~29% at
  ``alpha = 2``.
"""

from __future__ import annotations

from typing import Sequence

from repro.analysis.headline import relative_inefficiency_reduction
from repro.experiments.common import (
    DISK_SCALED_1TB,
    ExperimentResult,
    ExperimentScale,
    alpha_sweep_cached,
    scaled_disk_chunks,
)

__all__ = ["run", "SERVER", "DEFAULT_ALPHAS"]

SERVER = "europe"
DEFAULT_ALPHAS: Sequence[float] = (0.5, 1.0, 2.0, 4.0)


def run(
    scale: ExperimentScale,
    alphas: Sequence[float] = DEFAULT_ALPHAS,
) -> ExperimentResult:
    """Regenerate Figure 4: efficiency per alpha per algorithm."""
    sweep = alpha_sweep_cached(SERVER, scale, alphas=alphas)
    rows = []
    for alpha in alphas:
        row = {"alpha": alpha}
        for algo, result in sweep[alpha].items():
            row[algo] = result.steady.efficiency
        rows.append(row)

    extras = {"disk_chunks": scaled_disk_chunks(SERVER, scale, DISK_SCALED_1TB)}
    if 2.0 in sweep:
        at2 = sweep[2.0]
        if "xLRU" in at2 and "Cafe" in at2:
            extras["relative_inefficiency_reduction_alpha2"] = (
                relative_inefficiency_reduction(
                    at2["xLRU"].steady.efficiency, at2["Cafe"].steady.efficiency
                )
            )
    if 1.0 in sweep:
        at1 = sweep[1.0]
        if "xLRU" in at1 and "Cafe" in at1:
            extras["cafe_minus_xlru_alpha1"] = (
                at1["Cafe"].steady.efficiency - at1["xLRU"].steady.efficiency
            )
    return ExperimentResult(
        name="Figure 4",
        description=f"efficiency vs alpha_F2R on {SERVER} (scaled 1 TB disk)",
        rows=rows,
        extras=extras,
    )
