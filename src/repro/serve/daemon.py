"""The ``repro-serve`` daemon: a crash-safe live decision service.

Architecture (DESIGN.md §13)::

    connections ──parse──► admission ──► bounded queue ──► decision
      (unix/tcp/stdin)    (token bucket,                  worker
                           shed + degrade)                 │
    subscribers ◄── telemetry publisher          snapshotter (atomic,
                                                  watermarked)

Every robustness defense lives in exactly one place:

* **malformed input** is absorbed at the parse step — an error
  *response*, a counter bump, never a disconnect or crash;
* **overload** is refused at admission — the token bucket and queue
  bound answer latency, and a graceful-degradation mode turns off
  telemetry publishing and periodic snapshots *before* any request is
  shed;
* **transient decision failures** are retried with bounded exponential
  backoff inside the worker; a worker crash is caught by the
  supervisor, which restarts it and keeps serving;
* **process death** is covered by the snapshotter: cache state, traffic
  totals and the request-sequence watermark persist as one atomic unit,
  and the exactly-once protocol (:mod:`repro.serve.protocol`) lets
  clients resume from ``watermark + 1`` with nothing double-counted.
"""

from __future__ import annotations

import asyncio
import hashlib
import json
import random
import sys
import time
from dataclasses import dataclass, field
from typing import Optional, Set, Tuple

from repro.cdn.sharding import shard_of
from repro.obs.events import EventLog
from repro.serve.limiter import TokenBucket
from repro.serve.protocol import (
    ProtocolError,
    decide_and_account,
    decision_response,
    duplicate_response,
    error_response,
    new_totals,
    parse_line,
    shed_response,
)
from repro.serve.slo import ServeSLO
from repro.serve.snapshotter import SnapshotStore
from repro.sim.runner import build_cache
from repro.trace.requests import DEFAULT_CHUNK_BYTES

__all__ = [
    "ServeConfig",
    "DecisionService",
    "ServeDaemon",
    "TransientDecisionError",
]


class TransientDecisionError(Exception):
    """A decision failure worth retrying (raised before any mutation)."""


@dataclass(frozen=True)
class ServeConfig:
    """Every knob of one daemon instance (all orthogonal to the wire)."""

    algorithm: str = "xLRU"
    disk_chunks: int = 4096
    chunk_bytes: int = DEFAULT_CHUNK_BYTES
    alpha_f2r: float = 2.0
    #: admission tokens/second (<= 0 disables rate limiting)
    rate: float = 0.0
    burst: float = 256.0
    #: bounded request queue: beyond this, requests are shed
    queue_limit: int = 1024
    snapshot_dir: Optional[str] = None
    #: applied requests between periodic cache snapshots (0 disables)
    snapshot_every: int = 5000
    snapshot_keep: int = 2
    #: per-request deadline covering queue wait (seconds)
    request_timeout: float = 5.0
    #: transient-failure retries (bounded exponential backoff)
    max_retries: int = 3
    retry_base_delay: float = 0.005
    #: queue-depth fractions driving graceful degradation
    degrade_high: float = 0.75
    degrade_low: float = 0.25
    #: seconds between telemetry pushes to subscribers
    publish_interval: float = 1.0
    #: JSONL telemetry written at graceful shutdown (repro.obs schema)
    telemetry_path: Optional[str] = None
    #: enable test-only ops (crash-worker) and fault injection
    test_hooks: bool = False
    #: injected transient-failure probability per decision attempt
    fault_rate: float = 0.0
    fault_seed: int = 0
    #: sharded-fleet identity: ``None`` = unsharded (PR 8 wire, v1
    #: fingerprint); otherwise this worker owns the videos with
    #: ``shard_of(video, num_shards, num_buckets) == shard_id``
    shard_id: Optional[int] = None
    num_shards: int = 1
    num_buckets: int = 1024

    def fingerprint(self) -> str:
        """Binds snapshots to the decision-relevant configuration.

        A sharded worker bakes its shard coordinates into the
        fingerprint, so a resumed fleet can never cross-load state: a
        snapshot written by shard 2-of-4 refuses to restore into shard
        2-of-8 (or into shard 3), loudly, at startup.
        """
        text = (
            f"serve-v1|{self.algorithm}|{self.disk_chunks}|{self.chunk_bytes}"
        )
        if self.shard_id is not None:
            text += (
                f"|shard={self.shard_id}/{self.num_shards}"
                f"|buckets={self.num_buckets}"
            )
        return hashlib.sha256(text.encode()).hexdigest()[:16]


class DecisionService:
    """The synchronous decision core: cache + ledger + snapshots.

    Deliberately asyncio-free so the exactly-once discipline is unit
    testable without an event loop; :class:`ServeDaemon` wraps it with
    admission, queueing and supervision.
    """

    def __init__(self, config: ServeConfig, events: Optional[EventLog] = None):
        self.config = config
        self.events = events if events is not None else EventLog()
        self.cache = build_cache(
            config.algorithm,
            config.disk_chunks,
            alpha_f2r=config.alpha_f2r,
            chunk_bytes=config.chunk_bytes,
        )
        self.totals = new_totals()
        self.watermark = 0
        self.last_t = float("-inf")
        self.resumed = False
        self.snapshots_written = 0
        self._applied_since_snapshot = 0
        self._crash_next = False
        self._rng = random.Random(config.fault_seed)
        self.store: Optional[SnapshotStore] = None
        if config.snapshot_dir is not None:
            self.store = SnapshotStore(
                config.snapshot_dir,
                keep=config.snapshot_keep,
                on_warning=self.events.info,
            )
            restored = self.store.load(self.cache, config.fingerprint())
            if restored is not None:
                self.watermark = restored.watermark
                self.totals = dict(restored.totals)
                self.last_t = restored.last_t
                self.resumed = True
                self.events.info(
                    "snapshot-resume",
                    f"warm restart from {restored.path} "
                    f"(watermark {restored.watermark})",
                )

    def apply(self, request: dict) -> dict:
        """Apply one parsed decision request under the seq discipline.

        Exactly one of: a ``decision`` response (seq consumed), a
        ``duplicate`` ack (nothing changed), a ``sequence-gap`` error
        (nothing changed), or an exception (nothing changed — transient
        failures and injected crashes fire *before* any mutation, so a
        retry or a restart replays safely).
        """
        if self.config.shard_id is not None:
            owner = shard_of(
                request["video"], self.config.num_shards, self.config.num_buckets
            )
            if owner != self.config.shard_id:
                # defense in depth against a buggy router: a misrouted
                # video must never enter this shard's cache or consume
                # its sequence space (it belongs to another stream)
                return error_response(
                    "misrouted",
                    f"video {request['video']} belongs to shard {owner}, "
                    f"this is shard {self.config.shard_id}/"
                    f"{self.config.num_shards}",
                    request["seq"],
                )
        seq = request["seq"]
        if seq is None:
            seq = self.watermark + 1
        if seq <= self.watermark:
            return duplicate_response(seq, self.watermark)
        if seq != self.watermark + 1:
            return error_response(
                "sequence-gap",
                f"seq {seq} but watermark {self.watermark}; "
                f"resend from {self.watermark + 1}",
                seq,
            )
        if self._crash_next:
            self._crash_next = False
            raise RuntimeError("injected worker crash (crash-worker op)")
        if self.config.fault_rate > 0 and (
            self._rng.random() < self.config.fault_rate
        ):
            raise TransientDecisionError("injected transient decision failure")
        fields, self.last_t = decide_and_account(
            self.cache,
            self.totals,
            request["t"],
            request["video"],
            request["b0"],
            request["b1"],
            self.last_t,
        )
        self.watermark = seq
        self._applied_since_snapshot += 1
        return decision_response(seq, fields)

    def arm_crash(self) -> None:
        """Test hook: the next :meth:`apply` raises (worker crash)."""
        self._crash_next = True

    def snapshot_due(self) -> bool:
        return (
            self.store is not None
            and self.config.snapshot_every > 0
            and self._applied_since_snapshot >= self.config.snapshot_every
        )

    def snapshot_now(self) -> Optional[str]:
        """Persist the ledger atomically; returns the payload path."""
        if self.store is None:
            return None
        path = self.store.save(
            self.cache,
            self.watermark,
            self.totals,
            self.last_t,
            self.config.fingerprint(),
        )
        self._applied_since_snapshot = 0
        self.snapshots_written += 1
        return str(path)

    def stats(self) -> dict:
        out = {
            "watermark": self.watermark,
            "totals": dict(self.totals),
            "occupancy": len(self.cache),
            "disk_used": self.cache.disk_used_fraction,
            "snapshots_written": self.snapshots_written,
            "resumed": self.resumed,
        }
        if self.config.shard_id is not None:
            out["shard"] = self.config.shard_id
            out["num_shards"] = self.config.num_shards
        return out


#: one queued request: (parsed request, reply writer, enqueue perf time)
_QueueItem = Tuple[dict, asyncio.StreamWriter, float]


@dataclass
class _DaemonState:
    """Mutable run-state the tasks share (kept off the config)."""

    degraded: bool = False
    worker_restarts: int = 0
    stopping: bool = False
    snapshots_skipped_degraded: int = 0
    lane_snapshots: list = field(default_factory=list)


class ServeDaemon:
    """Asyncio front half: sockets, admission, worker, publisher."""

    def __init__(self, config: ServeConfig, events: Optional[EventLog] = None):
        self.config = config
        self.events = events if events is not None else EventLog()
        self.service = DecisionService(config, self.events)
        self.slo = ServeSLO()
        self.bucket = TokenBucket(config.rate, config.burst)
        self.state = _DaemonState()
        self.queue: "asyncio.Queue[_QueueItem]" = asyncio.Queue()
        self.subscribers: Set[asyncio.StreamWriter] = set()
        self._servers: list = []
        self._tasks: list = []
        self._stopped = asyncio.Event()
        self._stop_requested = asyncio.Event()
        self._started_wall = time.time()
        self._started_perf = time.perf_counter()
        self._stdio = False

    # -- lifecycle -----------------------------------------------------------

    async def start(
        self,
        unix_path: Optional[str] = None,
        tcp: Optional[Tuple[str, int]] = None,
        stdio: bool = False,
    ) -> None:
        """Bind endpoints and start the background tasks."""
        if not (unix_path or tcp or stdio):
            raise ValueError("need at least one of unix_path, tcp, stdio")
        if unix_path:
            self._servers.append(
                await asyncio.start_unix_server(self._handle_conn, path=unix_path)
            )
        if tcp:
            host, port = tcp
            self._servers.append(
                await asyncio.start_server(self._handle_conn, host, port)
            )
        if stdio:
            self._stdio = True
            reader, writer = await _stdio_streams()
            self._tasks.append(
                asyncio.create_task(
                    self._handle_conn(reader, writer, stop_on_eof=True),
                    name="serve-stdio",
                )
            )
        self._tasks.append(
            asyncio.create_task(self._supervisor(), name="serve-supervisor")
        )
        if self.config.publish_interval > 0:
            self._tasks.append(
                asyncio.create_task(self._publisher(), name="serve-publisher")
            )
        self.events.info(
            "serve-start",
            f"{self.config.algorithm} disk={self.config.disk_chunks} "
            f"watermark={self.service.watermark}"
            f"{' (resumed)' if self.service.resumed else ''}",
        )

    def request_stop(self) -> None:
        """Idempotent graceful-stop trigger (signal/op/stdin-EOF safe)."""
        self._stop_requested.set()

    async def run(
        self,
        unix_path: Optional[str] = None,
        tcp: Optional[Tuple[str, int]] = None,
        stdio: bool = False,
        install_signal_handlers: bool = True,
    ) -> int:
        """Start, serve until stopped, shut down cleanly.  Returns 0."""
        await self.start(unix_path=unix_path, tcp=tcp, stdio=stdio)
        if install_signal_handlers:
            import signal

            loop = asyncio.get_running_loop()
            for signum in (signal.SIGTERM, signal.SIGINT):
                try:
                    loop.add_signal_handler(signum, self.request_stop)
                except (NotImplementedError, RuntimeError):
                    pass
        await self._stop_requested.wait()
        await self.shutdown()
        return 0

    async def shutdown(self, drain_timeout: float = 10.0) -> None:
        """Drain, snapshot, flush telemetry, close everything."""
        if self.state.stopping:
            await self._stopped.wait()
            return
        self.state.stopping = True
        for server in self._servers:
            server.close()
        try:
            await asyncio.wait_for(self.queue.join(), timeout=drain_timeout)
        except asyncio.TimeoutError:
            self.events.error(
                "drain-timeout",
                f"{self.queue.qsize()} request(s) abandoned after "
                f"{drain_timeout:g}s",
            )
        for task in self._tasks:
            task.cancel()
        for task in self._tasks:
            try:
                await task
            except (asyncio.CancelledError, Exception):
                pass
        path = self.service.snapshot_now()
        if path is not None:
            self.events.info("final-snapshot", path)
        if self.config.telemetry_path is not None:
            records = self.write_telemetry(self.config.telemetry_path)
            self.events.info(
                "telemetry-flushed",
                f"{records} record(s) -> {self.config.telemetry_path}",
            )
        for server in self._servers:
            try:
                await server.wait_closed()
            except Exception:
                pass
        for writer in list(self.subscribers):
            self._close_writer(writer)
        self._stopped.set()

    # -- connection handling -------------------------------------------------

    async def _handle_conn(
        self,
        reader: asyncio.StreamReader,
        writer: asyncio.StreamWriter,
        stop_on_eof: bool = False,
    ) -> None:
        try:
            while not self.state.stopping:
                line = await reader.readline()
                if not line:
                    break
                await self._handle_line(line.decode("utf-8", "replace"), writer)
        except (ConnectionResetError, BrokenPipeError, asyncio.CancelledError):
            pass
        finally:
            self.subscribers.discard(writer)
            if not self._stdio or stop_on_eof is False:
                self._close_writer(writer)
            if stop_on_eof:
                self.request_stop()

    async def _handle_line(self, line: str, writer: asyncio.StreamWriter) -> None:
        try:
            parsed = parse_line(line)
        except ProtocolError as exc:
            # counted, reported, answered — never fatal
            self.slo.count("serve.malformed")
            await self._send(writer, error_response(exc.code, exc.detail))
            return
        if parsed["type"] == "op":
            await self._handle_op(parsed["op"], writer)
            return
        self.slo.count("serve.requests")
        shed = self._admission(parsed)
        if shed is not None:
            self.slo.count("serve.shed")
            await self._send(writer, shed)
            return
        self.slo.count("serve.admitted")
        self.queue.put_nowait((parsed, writer, time.perf_counter()))
        self._update_degraded()

    def _admission(self, parsed: dict) -> Optional[dict]:
        """None when admitted; otherwise the structured shed response."""
        config = self.config
        depth = self.queue.qsize()
        if depth >= config.queue_limit:
            response = shed_response(
                retry_after=self._drain_estimate(depth),
                detail=f"queue full ({depth}/{config.queue_limit})",
            )
        else:
            wait = self.bucket.try_acquire()
            if wait <= 0:
                return None
            response = shed_response(
                retry_after=wait, detail="admission rate exceeded"
            )
        if parsed.get("seq") is not None:
            response["seq"] = parsed["seq"]
        return response

    def _drain_estimate(self, depth: int) -> float:
        qps = self.slo.sustained_qps()
        if qps > 0:
            return depth / qps
        return 0.05

    async def _handle_op(self, op: str, writer: asyncio.StreamWriter) -> None:
        config = self.config
        service = self.service
        if op == "hello":
            hello = {
                "ok": True,
                "kind": "hello",
                "watermark": service.watermark,
                "algorithm": config.algorithm,
                "disk_chunks": config.disk_chunks,
                "chunk_bytes": config.chunk_bytes,
                "alpha_f2r": config.alpha_f2r,
                "resumed": service.resumed,
            }
            if config.shard_id is not None:
                hello["shard"] = config.shard_id
                hello["num_shards"] = config.num_shards
                hello["num_buckets"] = config.num_buckets
            await self._send(writer, hello)
        elif op == "stats":
            stats = service.stats()
            stats.update(
                {
                    "ok": True,
                    "kind": "stats",
                    "counters": {
                        name: value
                        for name, value in self.slo.registry.counters.items()
                    },
                    "slo": self.slo.summary(),
                    "queue_depth": self.queue.qsize(),
                    "degraded": self.state.degraded,
                    "worker_restarts": self.state.worker_restarts,
                    "uptime_seconds": time.perf_counter() - self._started_perf,
                    # full registry (histogram sketches included) so a
                    # fronting router can merge SLOs *exactly* via the
                    # repro.obs cross-process sketch merge
                    "registry": self.slo.registry.to_dict(),
                }
            )
            await self._send(writer, stats)
        elif op == "snapshot":
            if service.store is None:
                await self._send(
                    writer,
                    error_response("unsupported", "daemon runs without --snapshot-dir"),
                )
                return
            path = service.snapshot_now()
            await self._send(
                writer,
                {
                    "ok": True,
                    "kind": "snapshot",
                    "watermark": service.watermark,
                    "path": path,
                },
            )
        elif op == "subscribe":
            self.subscribers.add(writer)
            await self._send(
                writer,
                {
                    "ok": True,
                    "kind": "subscribed",
                    "publish_interval": config.publish_interval,
                },
            )
        elif op == "shutdown":
            await self._send(writer, {"ok": True, "kind": "stopping"})
            self.request_stop()
        elif op == "crash-worker":
            if not config.test_hooks:
                await self._send(
                    writer,
                    error_response(
                        "unsupported", "crash-worker needs --test-hooks"
                    ),
                )
                return
            service.arm_crash()
            await self._send(writer, {"ok": True, "kind": "crash-armed"})

    # -- decision worker + supervisor ----------------------------------------

    async def _worker(self) -> None:
        queue = self.queue
        while True:
            item = await queue.get()
            try:
                await self._process_item(item)
            finally:
                queue.task_done()
                self._update_degraded()

    async def _process_item(self, item: _QueueItem) -> None:
        parsed, writer, enqueued = item
        config = self.config
        waited = time.perf_counter() - enqueued
        if waited > config.request_timeout:
            # the deadline covers queue wait: answering late is worse
            # than a structured timeout the client can retry (seq was
            # not consumed, so the retry is exactly-once safe)
            self.slo.count("serve.timeouts")
            await self._send(
                writer,
                error_response(
                    "timeout",
                    f"queued {waited:.3f}s > deadline {config.request_timeout:g}s",
                    parsed.get("seq"),
                ),
            )
            return
        t0 = time.perf_counter()
        response: Optional[dict] = None
        for attempt in range(config.max_retries + 1):
            try:
                response = self.service.apply(parsed)
                break
            except TransientDecisionError as exc:
                self.slo.count("serve.retries")
                if attempt >= config.max_retries:
                    self.slo.count("serve.decision_failures")
                    response = error_response(
                        "decision-failed",
                        f"{exc} (after {attempt + 1} attempts)",
                        parsed.get("seq"),
                    )
                    break
                await asyncio.sleep(config.retry_base_delay * (2**attempt))
        elapsed = time.perf_counter() - t0
        self.slo.observe_decision(elapsed)
        if self.service.snapshot_due():
            if self.state.degraded:
                # degradation sheds observability first, decisions last
                self.state.snapshots_skipped_degraded += 1
            else:
                self.service.snapshot_now()
        await self._send(writer, response)

    async def _supervisor(self) -> None:
        """Restart the decision worker whenever it crashes."""
        while not self.state.stopping:
            worker = asyncio.create_task(self._worker(), name="serve-worker")
            try:
                await worker
            except asyncio.CancelledError:
                worker.cancel()
                raise
            except Exception as exc:
                self.state.worker_restarts += 1
                self.slo.count("serve.worker_restarts")
                self.events.error("worker-crash", f"restarting worker: {exc!r}")
                continue

    # -- telemetry -----------------------------------------------------------

    def _lane_snapshot(self) -> dict:
        service = self.service
        last_t = service.last_t
        out = {
            "t": last_t if last_t != float("-inf") else 0.0,
            "done": service.watermark,
            "occupancy": len(service.cache),
            "disk_used": service.cache.disk_used_fraction,
            "queue_depth": self.queue.qsize(),
            "shed": self.slo.counter("serve.shed"),
            "malformed": self.slo.counter("serve.malformed"),
            "degraded": int(self.state.degraded),
            "worker_restarts": self.state.worker_restarts,
        }
        if self.config.shard_id is not None:
            out["shard"] = self.config.shard_id
        return out

    async def _publisher(self) -> None:
        interval = self.config.publish_interval
        while True:
            await asyncio.sleep(interval)
            if self.state.degraded:
                # graceful degradation: observability is shed first
                continue
            snapshot = self._lane_snapshot()
            snapshots = self.state.lane_snapshots
            snapshots.append(snapshot)
            if len(snapshots) > 4096:
                self.state.lane_snapshots = snapshots[::2] + snapshots[-1:]
            if not self.subscribers:
                continue
            record = {"kind": "snapshot", "lane": "serve"}
            record.update(snapshot)
            payload = (json.dumps(record) + "\n").encode()
            for writer in list(self.subscribers):
                try:
                    writer.write(payload)
                    await writer.drain()
                except (ConnectionResetError, BrokenPipeError, OSError):
                    self.subscribers.discard(writer)

    def write_telemetry(self, path: str) -> int:
        """Export the run as ``repro.obs`` schema JSONL (validated by
        ``repro-report --check``)."""
        from repro.obs import Telemetry, TelemetryOptions
        from repro.obs.jsonl import write_telemetry

        service = self.service
        telemetry = Telemetry(
            options=TelemetryOptions(probes=False),
            events=self.events,
            meta={
                "source": "repro-serve",
                "algorithm": self.config.algorithm,
                "disk_chunks": self.config.disk_chunks,
                "watermark": service.watermark,
                "resumed": service.resumed,
                **(
                    {
                        "shard": self.config.shard_id,
                        "num_shards": self.config.num_shards,
                    }
                    if self.config.shard_id is not None
                    else {}
                ),
            },
        )
        lane = telemetry.lane("serve")
        lane.algorithm = self.config.algorithm
        lane.registry = self.slo.registry
        lane.snapshots = list(self.state.lane_snapshots)
        lane.num_requests = service.totals["requests"]
        lane.totals = dict(service.totals)
        registry = self.slo.registry
        registry.gauge("occupancy", len(service.cache))
        registry.gauge("disk_used", service.cache.disk_used_fraction)
        registry.gauge("watermark", service.watermark)
        registry.gauge("queue_depth", self.queue.qsize())
        registry.gauge("worker_restarts", self.state.worker_restarts)
        slo = self.slo.summary()
        report = {
            "engine": "serve",
            "mode": "daemon",
            "wall_seconds": time.perf_counter() - self._started_perf,
            "num_requests": service.totals["requests"],
            "extra": {
                "watermark": service.watermark,
                "sustained_qps": slo["sustained_qps"],
                "latency_ms": slo["latency_ms"],
                "snapshots_skipped_degraded": (
                    self.state.snapshots_skipped_degraded
                ),
            },
        }
        return write_telemetry(path, telemetry, reports=[report])

    # -- helpers -------------------------------------------------------------

    def _update_degraded(self) -> None:
        depth = self.queue.qsize()
        limit = self.config.queue_limit
        if not self.state.degraded and depth >= self.config.degrade_high * limit:
            self.state.degraded = True
            self.slo.count("serve.degrade_entered")
            self.events.info(
                "degraded",
                f"queue depth {depth}/{limit}: probes/snapshots off",
            )
        elif self.state.degraded and depth <= self.config.degrade_low * limit:
            self.state.degraded = False
            self.events.info("recovered", f"queue depth {depth}/{limit}")

    async def _send(self, writer: asyncio.StreamWriter, response: dict) -> None:
        try:
            writer.write((json.dumps(response) + "\n").encode())
            await writer.drain()
        except (ConnectionResetError, BrokenPipeError, OSError):
            pass  # client went away; its loss is not our crash

    def _close_writer(self, writer: asyncio.StreamWriter) -> None:
        try:
            writer.close()
        except Exception:
            pass


class _BlockingStdinReader:
    """``readline`` duck-type over ``sys.stdin`` for non-pipe stdio.

    ``connect_read_pipe`` refuses regular files (``repro-serve --stdin
    < requests.jsonl``); reading in the default executor keeps the loop
    responsive while preserving the one-line-in semantics."""

    def __init__(self, loop: asyncio.AbstractEventLoop) -> None:
        self._loop = loop

    async def readline(self) -> bytes:
        return await self._loop.run_in_executor(
            None, sys.stdin.buffer.readline
        )


class _BlockingStdoutWriter:
    """``write``/``drain``/``close`` duck-type over ``sys.stdout``."""

    def write(self, data: bytes) -> None:
        sys.stdout.buffer.write(data)

    async def drain(self) -> None:
        sys.stdout.buffer.flush()

    def close(self) -> None:
        try:
            sys.stdout.buffer.flush()
        except (ValueError, OSError):
            pass


async def _stdio_streams():
    """Wrap stdin/stdout as a stream pair (the ``--stdin`` lane).

    Pipes and terminals get real asyncio transports; redirected regular
    files fall back to blocking shims run off-loop, so
    ``repro-serve --stdin < in.jsonl > out.jsonl`` works too."""
    loop = asyncio.get_running_loop()
    try:
        reader = asyncio.StreamReader()
        await loop.connect_read_pipe(
            lambda: asyncio.StreamReaderProtocol(reader), sys.stdin
        )
    except (ValueError, OSError):
        reader = _BlockingStdinReader(loop)
    try:
        transport, protocol = await loop.connect_write_pipe(
            asyncio.streams.FlowControlMixin, sys.stdout
        )
        writer = asyncio.StreamWriter(transport, protocol, None, loop)
    except (ValueError, OSError):
        writer = _BlockingStdoutWriter()
    return reader, writer
