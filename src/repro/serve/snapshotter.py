"""Crash-safe cache snapshots for the serve daemon.

The daemon periodically persists ``(cache state, traffic totals,
request-sequence watermark)`` as one atomic unit, so a restart resumes
warm and the exactly-once ledger stays consistent: every request at or
below the watermark is *in* the snapshot, everything above it is *not*
— there is no third state.

Durability discipline:

* the payload is written to a temp file in the snapshot directory,
  fsync'd, then ``rename``\\ d into place (atomic on POSIX);
* a versioned ``MANIFEST.json`` naming the latest payload is replaced
  the same way, and the directory is fsync'd so both names survive a
  power cut;
* the manifest binds snapshots to one daemon configuration via a
  fingerprint — restarting with a different algorithm/geometry fails
  fast instead of silently resuming foreign state.

A corrupt or missing payload degrades to a cold start (reported, never
fatal): the exactly-once protocol makes a cold start *correct*, just
slower — the client resends from watermark 0.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Dict, Optional, Union

from repro.core.base import VideoCache
from repro.core.snapshot import load_state_dict, state_dict

__all__ = ["RestoredState", "SnapshotStore"]

_MANIFEST = "MANIFEST.json"
_MANIFEST_VERSION = 1


@dataclass(frozen=True)
class RestoredState:
    """What a successful :meth:`SnapshotStore.load` hands back."""

    watermark: int
    totals: Dict[str, int]
    last_t: float
    path: str


def _fsync_dir(directory: Path) -> None:
    try:
        fd = os.open(directory, os.O_RDONLY)
    except OSError:
        return
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _write_atomic(path: Path, payload: dict) -> None:
    tmp = path.with_name(path.name + ".tmp")
    with open(tmp, "w", encoding="utf-8") as fh:
        json.dump(payload, fh)
        fh.flush()
        os.fsync(fh.fileno())
    os.replace(tmp, path)


class SnapshotStore:
    """Atomic, watermarked snapshots under one directory."""

    def __init__(
        self,
        directory: Union[str, Path],
        keep: int = 2,
        on_warning: Optional[Callable[[str, str], None]] = None,
    ) -> None:
        if keep < 1:
            raise ValueError(f"keep must be >= 1, got {keep}")
        self.directory = Path(directory)
        self.keep = keep
        self.directory.mkdir(parents=True, exist_ok=True)
        self._warn = on_warning or (lambda tag, detail: None)

    @property
    def manifest_path(self) -> Path:
        return self.directory / _MANIFEST

    def save(
        self,
        cache: VideoCache,
        watermark: int,
        totals: Dict[str, int],
        last_t: float,
        fingerprint: str,
    ) -> Path:
        """Persist one snapshot; returns the payload path."""
        name = f"state-{watermark:012d}.json"
        path = self.directory / name
        _write_atomic(
            path,
            {
                "version": _MANIFEST_VERSION,
                "fingerprint": fingerprint,
                "watermark": watermark,
                "totals": dict(totals),
                "last_t": last_t,
                "cache": state_dict(cache),
            },
        )
        _write_atomic(
            self.manifest_path,
            {
                "version": _MANIFEST_VERSION,
                "fingerprint": fingerprint,
                "watermark": watermark,
                "latest": name,
            },
        )
        _fsync_dir(self.directory)
        self._prune(keep_name=name)
        return path

    def load(
        self, cache: VideoCache, fingerprint: str
    ) -> Optional[RestoredState]:
        """Restore the latest snapshot into ``cache``.

        Returns ``None`` for a cold start (no manifest, or corrupt
        artifacts — reported via ``on_warning``).  A *fingerprint
        mismatch* raises ``ValueError``: that is a configuration error,
        not a crash artifact, and resuming would silently corrupt the
        exactly-once ledger.
        """
        try:
            with open(self.manifest_path, encoding="utf-8") as fh:
                manifest = json.load(fh)
        except FileNotFoundError:
            return None
        except (ValueError, OSError) as exc:
            self._warn("snapshot-manifest-corrupt", f"{self.manifest_path}: {exc!r}")
            return None
        if manifest.get("version") != _MANIFEST_VERSION:
            self._warn(
                "snapshot-manifest-version",
                f"unsupported manifest version {manifest.get('version')!r}",
            )
            return None
        if manifest.get("fingerprint") != fingerprint:
            raise ValueError(
                "snapshot directory belongs to a differently configured "
                f"daemon (manifest fingerprint {manifest.get('fingerprint')!r}, "
                f"ours {fingerprint!r}); refusing to resume"
            )
        path = self.directory / str(manifest.get("latest"))
        try:
            with open(path, encoding="utf-8") as fh:
                payload = json.load(fh)
            if payload.get("fingerprint") != fingerprint:
                raise ValueError("payload fingerprint mismatch")
            load_state_dict(cache, payload["cache"])
        except FileNotFoundError:
            self._warn("snapshot-payload-missing", str(path))
            return None
        except (ValueError, KeyError, TypeError) as exc:
            self._warn("snapshot-payload-corrupt", f"{path}: {exc!r}")
            return None
        return RestoredState(
            watermark=int(payload["watermark"]),
            totals={k: int(v) for k, v in payload["totals"].items()},
            last_t=float(payload["last_t"]),
            path=str(path),
        )

    def _prune(self, keep_name: str) -> None:
        """Drop old payloads beyond ``keep`` (newest-first by name)."""
        payloads = sorted(
            (p for p in self.directory.glob("state-*.json")),
            key=lambda p: p.name,
            reverse=True,
        )
        for stale in payloads[self.keep :]:
            if stale.name == keep_name:
                continue
            try:
                stale.unlink()
            except OSError:
                pass
